// pardis_ns micro-benchmark: resolve latency and throughput against a
// sharded, replicated namespace.
//
// For each shard count the bench stands up one RepositoryServer per
// shard (its own backing namespace and service thread), registers a
// population of names through the sharded facade, and measures:
//   cold   — first resolve of each name (cache miss, one repository
//            round-trip through the balancer);
//   warm   — second resolve (ResolverCache hit, no repository I/O);
//   neg    — resolve of a nonexistent name already negative-cached;
//   wall   — aggregate uncached resolves/s from --clients threads.
//            Synchronous RPC burns a fixed CPU budget per resolve, so
//            on a host with fewer cores than client+server threads
//            this binds on the CPU, not on shard count;
//   cap    — the shard-scaling series: capacity = mu * N * balance,
//            where mu is the *measured* saturated service rate of one
//            shard server (windowed pump, the server never idles) and
//            balance is the *measured* consistent-hash routing
//            balance (ideal-per-shard / max-per-shard) over the name
//            population. Near-linear growth in cap with N is the
//            scaling witness: routing spreads names evenly across N
//            servers while per-shard service cost stays flat — or
//            improves, since mu is measured against the shard's
//            resident population and sharding shrinks each shard's
//            namespace;
//   renew  — background lease renewals/s sustained by the keeper.
//
// Usage: ubench_resolve [--shards N] [--clients M] [--json out.json]
// Default sweep: shards 1, 2, 4 with 4 client threads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "ns/ns.hpp"
#include "ns/shard_map.hpp"
#include "ns/sharded_registry.hpp"
#include "repo/repository.hpp"

using namespace pardis;

namespace {

constexpr int kNames = 256;

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string name_of(int i) { return "obj-" + std::to_string(i); }

core::ObjectRef make_ref(const std::string& name) {
  core::ObjectRef ref;
  ref.type_id = "IDL:bench:1.0";
  ref.name = name;
  ref.object_id = ObjectId::next();
  transport::EndpointAddr ep;
  ep.kind = transport::AddrKind::kLocal;
  ep.local_id = 1;
  ref.thread_eps = {ep};
  return ref;
}

struct Cluster {
  transport::LocalTransport transport;
  std::vector<std::shared_ptr<core::InProcessRegistry>> backings;
  std::vector<std::unique_ptr<repo::RepositoryServer>> servers;
  ns::ShardMap map;

  explicit Cluster(int shards) {
    for (int s = 0; s < shards; ++s) {
      backings.push_back(std::make_shared<core::InProcessRegistry>());
      servers.push_back(
          std::make_unique<repo::RepositoryServer>(transport, backings.back()));
      map.shards.push_back({{servers.back()->addr()}});
    }
  }
};

void run_shard_count(int shards, int clients, bench::JsonReport& report) {
  Cluster cluster(shards);
  ns::NsConfig cfg;

  // Populate through the facade so every name lands on its home shard.
  {
    ns::ShardedRegistry writer(cluster.transport, cluster.map, cfg);
    for (int i = 0; i < kNames; ++i) writer.register_object(make_ref(name_of(i)));
  }

  // Latency distributions from one fresh client.
  ns::ShardedRegistry reg(cluster.transport, cluster.map, cfg);
  std::vector<double> cold_us, warm_us, neg_us;
  for (int i = 0; i < kNames; ++i) {
    const double t0 = now_s();
    if (!reg.lookup(name_of(i), "").has_value()) std::abort();
    cold_us.push_back((now_s() - t0) * 1e6);
  }
  for (int i = 0; i < kNames; ++i) {
    const double t0 = now_s();
    if (!reg.lookup(name_of(i), "").has_value()) std::abort();
    warm_us.push_back((now_s() - t0) * 1e6);
  }
  for (int i = 0; i < kNames; ++i) reg.lookup("missing-" + std::to_string(i), "");
  for (int i = 0; i < kNames; ++i) {
    const double t0 = now_s();
    if (reg.lookup("missing-" + std::to_string(i), "").has_value()) std::abort();
    neg_us.push_back((now_s() - t0) * 1e6);
  }

  // Saturated service rate of one shard server: keep a window of
  // hand-framed kLookup requests outstanding against shard 0 so its
  // service thread never idles on the client's round-trip wakeup.
  double mu = 0.0;
  {
    // Only names homed on shard 0: a hit replies with a marshaled
    // ObjectRef, a miss with one bool, so mixing them would let mu
    // drift with the shard count instead of measuring service cost.
    std::vector<std::string> resident;
    for (int i = 0; i < kNames; ++i)
      if (cluster.map.shard_for(name_of(i)) == 0) resident.push_back(name_of(i));
    if (resident.empty()) std::abort();
    auto sink = cluster.transport.create_endpoint("");
    constexpr int kWindow = 32;
    constexpr int kDrain = 8000;
    int sent = 0, got = 0;
    auto send_one = [&] {
      ByteBuffer f;
      CdrWriter w(f);
      w.write_octet(static_cast<Octet>(repo::RepoOp::kLookup));
      sink->addr().marshal(w);
      w.write_ulonglong(static_cast<ULongLong>(sent));
      w.write_string(resident[static_cast<std::size_t>(sent) % resident.size()]);
      w.write_string("");
      cluster.transport.rsr(cluster.servers[0]->addr(), transport::kHandlerRepo,
                            std::move(f), "");
      ++sent;
    };
    const double t0 = now_s();
    for (int i = 0; i < kWindow; ++i) send_one();
    while (got < kDrain) {
      auto res = sink->wait_for(std::chrono::seconds(5));
      if (!res.message) std::abort();
      ++got;
      if (sent < kDrain) send_one();
    }
    mu = kDrain / (now_s() - t0);
  }

  // Routing balance over the registered population: ideal names-per-
  // shard divided by the largest actual shard (1.0 = perfect spread).
  std::vector<int> per_shard(static_cast<std::size_t>(shards), 0);
  for (int i = 0; i < kNames; ++i) ++per_shard[cluster.map.shard_for(name_of(i))];
  const int busiest = *std::max_element(per_shard.begin(), per_shard.end());
  const double balance =
      static_cast<double>(kNames) / shards / static_cast<double>(busiest);
  const double capacity = mu * shards * balance;

  // Wall-clock aggregate from M concurrent clients (cache off isolates
  // repository + shard routing from cache speed). CPU-bound when the
  // host has fewer cores than threads — see the header comment.
  ns::NsConfig uncached = cfg;
  uncached.cache = false;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      ns::ShardedRegistry mine(cluster.transport, cluster.map, uncached);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i)
        if (!mine.lookup(name_of((i * clients + t) % kNames), "").has_value())
          std::abort();
    });
  }
  while (ready.load() != clients) std::this_thread::yield();
  const double thru_t0 = now_s();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double resolves_per_s =
      static_cast<double>(kPerThread) * clients / (now_s() - thru_t0);

  // Renewal rate: the lease keeper heartbeating a leased population.
  double renewals_per_s = 0.0;
  {
    ns::NsConfig leased = cfg;
    leased.lease = std::chrono::milliseconds(200);
    leased.renew_interval = std::chrono::milliseconds(2);
    ns::ShardedRegistry keeper(cluster.transport, cluster.map, leased);
    for (int i = 0; i < 64; ++i) keeper.register_object(make_ref("leased-" + std::to_string(i)));
    const std::uint64_t r0 = keeper.renewals();
    const double t0 = now_s();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    renewals_per_s = static_cast<double>(keeper.renewals() - r0) / (now_s() - t0);
  }

  const double cold_p50 = percentile(cold_us, 0.50), cold_p99 = percentile(cold_us, 0.99);
  const double warm_p50 = percentile(warm_us, 0.50), warm_p99 = percentile(warm_us, 0.99);
  const double neg_p50 = percentile(neg_us, 0.50), neg_p99 = percentile(neg_us, 0.99);

  std::printf(
      "shards=%d clients=%d  cold p50/p99 %6.2f/%7.2f us  warm p50/p99 %5.2f/%5.2f us"
      "  neg p50/p99 %5.2f/%5.2f us  mu %7.0f/s balance %.3f -> capacity %8.0f/s"
      "  wall %7.0f/s  renew %6.0f/s\n",
      shards, clients, cold_p50, cold_p99, warm_p50, warm_p99, neg_p50, neg_p99, mu,
      balance, capacity, resolves_per_s, renewals_per_s);
  report.add("shards=" + std::to_string(shards),
             {{"shards", static_cast<double>(shards)},
              {"clients", static_cast<double>(clients)},
              {"cold_p50_us", cold_p50},
              {"cold_p99_us", cold_p99},
              {"warm_p50_us", warm_p50},
              {"warm_p99_us", warm_p99},
              {"neg_p50_us", neg_p50},
              {"neg_p99_us", neg_p99},
              {"shard_service_rate_per_s", mu},
              {"routing_balance", balance},
              {"capacity_resolves_per_s", capacity},
              {"wall_resolves_per_s", resolves_per_s},
              {"renewals_per_s", renewals_per_s}});
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 0;  // 0 = sweep
  int clients = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--clients") == 0) clients = std::atoi(argv[i + 1]);
  }
  if (clients <= 0) clients = 1;

  bench::JsonReport report(argc, argv, "ubench_resolve");
  std::printf("ubench_resolve: %d names per population, %d client threads\n", kNames,
              clients);
  if (shards > 0) {
    run_shard_count(shards, clients, report);
  } else {
    for (const int n : {1, 2, 4}) run_shard_count(n, clients, report);
  }
  return 0;
}
