// Shared --json support for the bench binaries.
//
// Every bench accepts `--json <path>` and then writes its result rows
// as machine-readable JSON alongside the usual human-readable stdout:
//   {"benchmark": "<name>", "results": [{"name": "...", <metric>: <num>, ...}]}
// Metric values are numbers; row names are strings. The report writes
// on destruction so a bench only needs to `add` rows as it prints them.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bench {

class JsonReport {
 public:
  using Metric = std::pair<std::string, double>;

  /// Scans argv for "--json <path>"; the report stays inactive (all
  /// calls become no-ops) when the flag is absent.
  JsonReport(int argc, char** argv, std::string benchmark)
      : benchmark_(std::move(benchmark)) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  bool active() const { return !path_.empty(); }

  /// Records one result row: a name plus numeric metrics.
  void add(std::string name, std::vector<Metric> metrics) {
    if (!active()) return;
    rows_.push_back(Row{std::move(name), std::move(metrics)});
  }

  /// Writes the file now (also runs from the destructor; idempotent).
  void write() {
    if (!active() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\"benchmark\": \"%s\", \"results\": [", benchmark_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n  {\"name\": \"%s\"", i == 0 ? "" : ",",
                   rows_[i].name.c_str());
      for (const Metric& m : rows_[i].metrics)
        std::fprintf(f, ", \"%s\": %.17g", m.first.c_str(), m.second);
      std::fputc('}', f);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string name;
    std::vector<Metric> metrics;
  };

  std::string benchmark_;
  std::string path_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace bench
