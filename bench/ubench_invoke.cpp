// Ablation A2: invocation paths (paper §4.1's collocation bypass claim
// — "invocation on a local object becomes a direct call to the object,
// bypassing the network transport").
//
// Measures real wall-clock round-trip latency of one `counter`-style
// invocation through:
//   collocated — same domain, direct virtual call through the proxy;
//   local      — in-process transport (queues + POA polling loop);
//   tcp        — real sockets on localhost.
// Plus non-blocking issue latency (time until the stub returns) and a
// payload-size sweep on the local path.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "core/stub_support.hpp"
#include "ft/ft.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "pool/pool.hpp"
#include "reactor/reactor.hpp"
#include "sim/testbed.hpp"
#include "tests/support/calc_api.hpp"

using namespace pardis;
using namespace calc_api;

namespace {

class CalcImpl : public POA_calc {
 public:
  explicit CalcImpl(rts::Communicator* comm) : comm_(&*comm) {}
  double dot(const vec& a, const vec&) override {
    double s = 0.0;
    for (double v : a.local()) s += v;
    return s;
  }
  void scale(double f, const vec& v, vec& r) override {
    for (std::size_t li = 0; li < r.local_size(); ++li)
      r.local()[li] = f * v.local()[li];
  }
  Long counter(Long d) override { return d + 1; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  [[maybe_unused]] rts::Communicator* comm_;
};

class Server {
 public:
  explicit Server(core::Orb& orb) : domain_("bench-server", 1) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, &pp](rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      CalcImpl servant(&ctx.comm);
      poa.activate_spmd(servant, "bench-calc");
      pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }
  ~Server() {
    poa_->deactivate();
    domain_.join();
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

template <typename Fn>
double time_per_call_us(int iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::micro>(dt).count() / iters;
}

/// Runs `calls` invocations with observability counters on (timing has
/// already happened with them off) and returns how many took the
/// collocation bypass vs the transport.
struct PathCounts {
  double bypassed, transported;
};
template <typename Fn>
PathCounts count_paths(int calls, Fn&& fn) {
  obs::Counter& bypassed = obs::metrics().counter("orb.invocations_bypassed");
  obs::Counter& transported = obs::metrics().counter("orb.invocations_transported");
  const std::uint64_t b0 = bypassed.value();
  const std::uint64_t t0 = transported.value();
  obs::set_enabled(true);
  for (int i = 0; i < calls; ++i) fn();
  obs::set_enabled(false);
  return PathCounts{static_cast<double>(bypassed.value() - b0),
                    static_cast<double>(transported.value() - t0)};
}

/// A servant whose counter costs real wall-clock time, so an issue
/// burst outruns the dispatch loop and the admission controller has
/// something to shed.
class SlowCalcImpl : public CalcImpl {
 public:
  using CalcImpl::CalcImpl;
  Long counter(Long d) override {
    const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(30);
    while (std::chrono::steady_clock::now() < until) {
    }
    return d + 1;
  }
};

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[idx];
}

/// Axes for --saturate: which wire engine carries the burst, and
/// whether the reactor's small-frame coalescing is on.
struct SaturateAxes {
  std::string transport = "local";  // local | tcp | reactor
  bool pack = true;
};

SaturateAxes parse_saturate_axes(int argc, char** argv) {
  SaturateAxes axes;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--transport") == 0) axes.transport = argv[i + 1];
    if (std::strcmp(argv[i], "--pack") == 0)
      axes.pack = std::strcmp(argv[i + 1], "off") != 0;
  }
  return axes;
}

/// The two ends of the benchmark wire for one axis setting. `local`
/// shares a single in-process transport; `tcp`/`reactor` stand up two
/// real engines talking over localhost sockets.
struct SaturateWire {
  std::unique_ptr<transport::LocalTransport> local;
  std::unique_ptr<transport::Transport> server_tp, client_tp;
  transport::Transport* server = nullptr;
  transport::Transport* client = nullptr;
};

SaturateWire make_saturate_wire(const SaturateAxes& axes) {
  SaturateWire w;
  if (axes.transport == "local") {
    w.local = std::make_unique<transport::LocalTransport>();
    w.server = w.client = w.local.get();
    return w;
  }
  reactor::set_enabled(axes.transport == "reactor" ? 1 : 0);
  reactor::set_pack(axes.pack ? 1 : 0);
  w.server_tp = reactor::make_tcp_transport(0, nullptr, 1024);
  w.client_tp = reactor::make_tcp_transport(0, nullptr, 1024);
  w.server = w.server_tp.get();
  w.client = w.client_tp.get();
  return w;
}

/// --saturate: two phases over the chosen wire engine.
///
/// Phase 1 (throughput): a fast servant and an unthrottled POA take a
/// deep pipeline of small non-blocking invocations; reports sustained
/// invocations/s plus completion p50/p99. This is the number the
/// reactor's packed frames exist to move.
///
/// Phase 2 (shed): floods a watermarked POA with a non-blocking burst
/// and reports the shed rate plus completion-latency percentiles — the
/// pardis_flow overload-protection profile, re-measured per engine.
int run_saturate(int argc, char** argv) {
  const SaturateAxes axes = parse_saturate_axes(argc, argv);
  bench::JsonReport report(argc, argv, "ubench_invoke_saturate");
  constexpr std::size_t kBurst = 512;
  constexpr std::size_t kHigh = 32, kLow = 8;

  SaturateWire wire = make_saturate_wire(axes);
  core::InProcessRegistry reg;
  std::printf("# Engine: %s%s\n", axes.transport.c_str(),
              axes.transport == "reactor" ? (axes.pack ? " (pack on)" : " (pack off)")
                                          : "");

  // --- Phase 0: raw one-way RSR throughput, many peers --------------------
  // PARDIS invocations are one-way remote service requests (paper §6),
  // and the reactor's reason to exist is many peers: the classic
  // engine pays one reader thread, one syscall, and one condvar wakeup
  // per peer per message, while the reactor multiplexes every socket
  // onto a few epoll loops and packs small frames. This phase floods
  // one server from kPeers independent client transports (connection
  // per peer) and reports the aggregate delivered message rate.
  {
    constexpr std::size_t kPeers = 256;
    constexpr std::size_t kPerPeer = 512;
    constexpr std::size_t kMsgs = kPeers * kPerPeer;
    constexpr std::size_t kPayload = 64;  // a small marshalled request
    auto ep = wire.server->create_endpoint("");
    const transport::EndpointAddr dst = ep->addr();

    std::vector<std::unique_ptr<transport::Transport>> peers;
    std::vector<transport::Transport*> peer_tp(kPeers, wire.client);
    if (axes.transport != "local") {
      // One event loop per peer transport: the peers model remote
      // clients, and only the server side's multiplexing is under test.
      reactor::set_loop_count(1);
      for (std::size_t p = 0; p < kPeers; ++p) {
        peers.push_back(reactor::make_tcp_transport(0, nullptr, 1024));
        peer_tp[p] = peers.back().get();
      }
      reactor::set_loop_count(-1);
    }

    std::atomic<std::size_t> received{0};
    std::thread consumer([&] {
      std::size_t n = 0;
      while (n < kMsgs) {
        auto res = ep->wait_for(std::chrono::seconds(30));
        if (res.status != transport::WaitStatus::kMessage) break;
        ++n;
        while (n < kMsgs && ep->poll().has_value()) ++n;
      }
      received.store(n);
    });

    // Counters stay on through the flood (both engines carry the same
    // overhead) so the pack amortization — frames per wire message —
    // comes out alongside the rate.
    obs::set_enabled(true);
    obs::Counter& packs = obs::metrics().counter("transport.reactor.packs_sent");
    obs::Counter& packed = obs::metrics().counter("transport.reactor.packed_frames_sent");
    const std::uint64_t packs0 = packs.value(), packed0 = packed.value();

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> senders;
    senders.reserve(kPeers);
    for (std::size_t p = 0; p < kPeers; ++p)
      senders.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerPeer; ++i) {
          ByteBuffer payload;
          payload.grow(kPayload);
          peer_tp[p]->rsr(dst, transport::kHandlerOrbRequest, std::move(payload),
                          "");
        }
      });
    for (auto& t : senders) t.join();
    consumer.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    obs::set_enabled(false);
    const double per_s = static_cast<double>(received.load()) / secs;
    const std::uint64_t d_packs = packs.value() - packs0;
    const std::uint64_t d_packed = packed.value() - packed0;
    const double frames_per_pack =
        d_packs == 0 ? 0.0 : static_cast<double>(d_packed) / static_cast<double>(d_packs);
    std::printf("rsr: %zu one-way %zu-byte messages from %zu peers -> "
                "%.0f msgs/s",
                received.load(), kPayload, kPeers, per_s);
    if (d_packs != 0)
      std::printf("  (%.1f frames per wire message)", frames_per_pack);
    std::printf("\n");
    report.add("rsr_oneway", {{"messages", static_cast<double>(received.load())},
                              {"peers", static_cast<double>(kPeers)},
                              {"payload_bytes", static_cast<double>(kPayload)},
                              {"msgs_per_s", per_s},
                              {"frames_per_wire_message", frames_per_pack},
                              {"pack", axes.pack ? 1.0 : 0.0},
                              {"reactor", axes.transport == "reactor" ? 1.0 : 0.0}});
  }

  // --- Phase 1: sustained small-invocation throughput --------------------
  {
    constexpr std::size_t kTotal = 8192, kWindow = 256;
    core::Orb server_orb(*wire.server, reg);
    core::Orb client_orb(*wire.client, reg);
    Server server(server_orb);
    core::ClientCtx ctx(client_orb);
    auto proxy = calc::_bind(ctx, "bench-calc");
    for (int i = 0; i < 64; ++i) (void)proxy->counter(i);  // warm the wire

    std::vector<core::Future<Long>> win(kWindow);
    std::vector<std::chrono::steady_clock::time_point> issued(kWindow);
    std::vector<double> lat_us;
    lat_us.reserve(kTotal);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < kTotal; base += kWindow) {
      for (std::size_t j = 0; j < kWindow; ++j) {
        issued[j] = std::chrono::steady_clock::now();
        proxy->counter_nb(static_cast<Long>(base + j), win[j]);
      }
      for (std::size_t j = 0; j < kWindow; ++j) {
        (void)win[j].get();
        lat_us.push_back(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - issued[j])
                             .count());
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const double per_s = static_cast<double>(kTotal) / secs;
    const double p50 = percentile(lat_us, 0.50);
    const double p99 = percentile(lat_us, 0.99);
    std::printf("throughput: %zu invocations, window %zu -> %.0f inv/s  "
                "p50 %.1f us  p99 %.1f us\n",
                kTotal, kWindow, per_s, p50, p99);
    report.add("throughput", {{"requests", static_cast<double>(kTotal)},
                              {"window", static_cast<double>(kWindow)},
                              {"invocations_per_s", per_s},
                              {"p50_us", p50},
                              {"p99_us", p99},
                              {"pack", axes.pack ? 1.0 : 0.0},
                              {"reactor", axes.transport == "reactor" ? 1.0 : 0.0}});
  }

  // --- Phase 2: watermark shedding under overload -------------------------
  core::OrbConfig cfg;
  cfg.poa_high_watermark = kHigh;
  cfg.poa_low_watermark = kLow;
  cfg.overload_retry_after = std::chrono::milliseconds(2);

  core::Orb orb(*wire.server, reg, cfg);
  core::Orb client_orb(*wire.client, reg);

  rts::Domain domain("saturate-server", 1);
  std::promise<core::Poa*> pp;
  auto pf = pp.get_future();
  domain.start([&orb, &pp](rts::DomainContext& dctx) {
    core::Poa poa(orb, dctx);
    SlowCalcImpl servant(&dctx.comm);
    poa.activate_spmd(servant, "saturate-calc");
    pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* poa = pf.get();

  obs::set_enabled(true);
  obs::Counter& shed_counter = obs::metrics().counter("flow.poa_shed");
  const std::uint64_t shed0 = shed_counter.value();

  std::printf("# Saturation: burst of %zu non-blocking invocations, "
              "watermarks %zu/%zu, 30us servant\n",
              kBurst, kHigh, kLow);
  {
    core::ClientCtx ctx(client_orb);
    auto proxy = calc::_bind(ctx, "saturate-calc");

    std::vector<core::Future<Long>> futures(kBurst);
    std::vector<std::chrono::steady_clock::time_point> issued(kBurst);
    std::vector<double> latency_us(kBurst, 0.0);
    std::vector<char> done(kBurst, 0);

    const auto burst_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBurst; ++i) {
      issued[i] = std::chrono::steady_clock::now();
      proxy->counter_nb(static_cast<Long>(i), futures[i]);
    }
    // resolved() surfaces a shed request's OverloadError directly
    // (every future touch rethrows the server's exception), so the
    // poll itself classifies each completion.
    std::size_t shed = 0, completed = 0;
    std::vector<double> ok_latency;
    ok_latency.reserve(kBurst);
    std::size_t remaining = kBurst;
    while (remaining != 0) {
      for (std::size_t i = 0; i < kBurst; ++i) {
        if (done[i] != 0) continue;
        try {
          if (!futures[i].resolved()) continue;
          latency_us[i] = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - issued[i])
                              .count();
          (void)futures[i].get();
          ++completed;
          ok_latency.push_back(latency_us[i]);
        } catch (const OverloadError&) {
          ++shed;
        }
        done[i] = 1;
        --remaining;
      }
    }
    obs::set_enabled(false);
    const double burst_secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - burst_t0)
                                  .count();

    const double shed_rate = static_cast<double>(shed) / kBurst;
    const double p50 = percentile(ok_latency, 0.50);
    const double p99 = percentile(ok_latency, 0.99);
    std::printf("requests %zu  completed %zu  shed %zu (%.1f%%)\n", kBurst,
                completed, shed, 100.0 * shed_rate);
    std::printf("completed latency p50 %.1f us  p99 %.1f us  "
                "burst drained at %.0f inv/s\n",
                p50, p99, static_cast<double>(kBurst) / burst_secs);
    std::printf("server-side sheds (flow.poa_shed): %llu\n",
                static_cast<unsigned long long>(shed_counter.value() - shed0));
    report.add("saturate", {{"requests", static_cast<double>(kBurst)},
                            {"completed", static_cast<double>(completed)},
                            {"shed", static_cast<double>(shed)},
                            {"shed_rate", shed_rate},
                            {"p50_us", p50},
                            {"p99_us", p99},
                            {"invocations_per_s",
                             static_cast<double>(kBurst) / burst_secs},
                            {"pack", axes.pack ? 1.0 : 0.0},
                            {"reactor", axes.transport == "reactor" ? 1.0 : 0.0},
                            {"high_watermark", static_cast<double>(kHigh)},
                            {"low_watermark", static_cast<double>(kLow)}});
  }

  poa->deactivate();
  domain.join();
  return 0;
}

/// One pool replica: a single-thread server domain whose POA joins the
/// replica group for `name` on a modeled host.
class Replica {
 public:
  Replica(core::Orb& orb, const std::string& name, int idx, const sim::HostModel* host)
      : domain_("replica-" + std::to_string(idx), 1, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, name, &pp](rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      CalcImpl servant(&ctx.comm);
      poa.activate_spmd(servant, name, {}, /*replica=*/true);
      pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }
  ~Replica() {
    poa_->deactivate();
    domain_.join();
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

/// --replicas N: pardis_pool load-balancing and failover profile.
/// N single-thread replicas register under one name; the client runs
/// round-robin traffic with a select() per invocation, then one replica
/// is killed mid-run and the traffic continues on the survivors.
/// Reports the per-replica pick distribution before and after the
/// kill, the survivors' deviation from uniform, and the latency of the
/// failover invocation against the steady-state median.
int run_replicas(int argc, char** argv) {
  int n = 3;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--replicas") == 0) n = std::atoi(argv[i + 1]);
  if (n < 2) n = 2;
  constexpr int kWarm = 300, kPost = 300;

  bench::JsonReport report(argc, argv, "ubench_invoke_replicas");
  pool::set_enabled(true);

  sim::Testbed tb;
  tb.add_host(sim::HostModel{.name = "CLIENT", .gflops = 0.030, .max_threads = 4});
  std::vector<const sim::HostModel*> hosts;
  for (int i = 0; i < n; ++i)
    hosts.push_back(tb.add_host(
        sim::HostModel{.name = "R" + std::to_string(i), .gflops = 0.090, .max_threads = 4}));

  transport::LocalTransport tp(&tb);
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  {
    std::vector<std::unique_ptr<Replica>> replicas;
    for (int i = 0; i < n; ++i)
      replicas.push_back(std::make_unique<Replica>(orb, "pool-calc", i, hosts[static_cast<std::size_t>(i)]));

    core::ClientCtx ctx(orb, "CLIENT");
    pool::PoolConfig cfg;
    cfg.policy = pool::Policy::kRoundRobin;
    // Long probation: the killed replica must not win recovery probes
    // (and pay a failed-probe latency) inside the measurement window.
    cfg.probation = std::chrono::milliseconds(60000);
    auto gb = pool::GroupBinding::bind(ctx, "pool-calc", "", kCalcTypeId, cfg);

    ft::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = std::chrono::milliseconds(1);
    auto call = [&](Long v, bool reselect) {
      if (reselect) gb->select();
      core::ClientRequest req(*gb->binding(), "counter", false, false);
      req.in_value<Long>(v);
      auto out = std::make_shared<Long>(0);
      ft::with_retry(*gb->binding(), "counter", policy, [&](int attempt) {
        auto pending = req.invoke(attempt);
        pending->set_decoder(
            [out](core::ReplyDecoder& d) { *out = d.out_value<Long>(); });
        return pending;
      });
      return *out;
    };

    std::printf("# Pool: %d replicas, %d warm + %d post-kill round-robin calls\n", n,
                kWarm, kPost);
    std::vector<double> steady_us;
    steady_us.reserve(kWarm);
    for (int i = 0; i < kWarm; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)call(i, /*reselect=*/true);
      steady_us.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
    }
    auto before = gb->balancer().snapshot();

    // Kill every endpoint of the replica currently targeted, then
    // invoke on it without reselecting: the failover invocation pays
    // CommFailure detection + the agreed retry on a sibling.
    const std::string killed_key = gb->current().primary_key();
    for (const auto& ep : gb->current().thread_eps)
      tb.faults().kill_endpoint(ep.local_id);
    const auto f0 = std::chrono::steady_clock::now();
    (void)call(kWarm, /*reselect=*/false);
    const double failover_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - f0)
                                   .count();

    for (int i = 1; i < kPost; ++i) (void)call(kWarm + i, /*reselect=*/true);
    auto after = gb->balancer().snapshot();

    const double steady_p50 = percentile(steady_us, 0.50);
    std::uint64_t survivor_picks = 0;
    for (std::size_t i = 0; i < after.size(); ++i)
      if (after[i].key != killed_key) survivor_picks += after[i].picks - before[i].picks;
    double max_dev = 0.0;
    const double uniform = 1.0 / (n - 1);
    std::printf("%-10s %14s %14s %10s\n", "replica", "picks_before", "picks_after",
                "survivor");
    for (std::size_t i = 0; i < after.size(); ++i) {
      const bool survivor = after[i].key != killed_key;
      const auto post = after[i].picks - before[i].picks;
      if (survivor && survivor_picks != 0) {
        const double share = static_cast<double>(post) / survivor_picks;
        max_dev = std::max(max_dev, std::abs(share - uniform));
      }
      std::printf("%-10s %14llu %14llu %10s\n", after[i].host.c_str(),
                  static_cast<unsigned long long>(before[i].picks),
                  static_cast<unsigned long long>(post), survivor ? "yes" : "KILLED");
      report.add("replica_" + after[i].host,
                 {{"picks_before", static_cast<double>(before[i].picks)},
                  {"picks_after", static_cast<double>(post)},
                  {"survivor", survivor ? 1.0 : 0.0},
                  {"health", after[i].health}});
    }
    std::printf("steady p50 %.1f us   failover %.2f ms   failovers %llu   "
                "survivor max |share-uniform| %.3f\n",
                steady_p50, failover_ms,
                static_cast<unsigned long long>(gb->failovers()), max_dev);
    report.add("pool_failover",
               {{"replicas", static_cast<double>(n)},
                {"warm_requests", static_cast<double>(kWarm)},
                {"post_requests", static_cast<double>(kPost)},
                {"steady_p50_us", steady_p50},
                {"failover_ms", failover_ms},
                {"failovers", static_cast<double>(gb->failovers())},
                {"survivors", static_cast<double>(n - 1)},
                {"max_uniform_deviation", max_dev}});
  }
  pool::set_enabled(false);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--saturate") == 0) return run_saturate(argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--replicas") == 0) return run_replicas(argc, argv);
  bench::JsonReport report(argc, argv, "ubench_invoke");
  std::printf("# Ablation A2: invocation latency by path (wall clock)\n");
  constexpr int kIters = 2000;
  constexpr int kPathProbe = 100;  // counted calls per path (timing is done first)

  // --- collocated: client and servant share the domain -----------------
  {
    transport::LocalTransport tp;
    core::InProcessRegistry reg;
    core::Orb orb(tp, reg);
    rts::Domain both("both", 1);
    both.run([&](rts::DomainContext& dctx) {
      core::Poa poa(orb, dctx);
      CalcImpl servant(&dctx.comm);
      poa.activate_spmd(servant, "bench-calc");
      core::ClientCtx ctx(orb, dctx);
      auto proxy = calc::_spmd_bind(ctx, "bench-calc");
      const double us =
          time_per_call_us(kIters * 10, [&] { (void)proxy->counter(1); });
      std::printf("%-12s %10.3f us/call (direct virtual call)\n", "collocated", us);
      const PathCounts pc = count_paths(kPathProbe, [&] { (void)proxy->counter(1); });
      report.add("collocated", {{"us_per_call", us},
                                {"invocations_bypassed", pc.bypassed},
                                {"invocations_transported", pc.transported}});
    });
  }

  // --- local transport ---------------------------------------------------
  {
    transport::LocalTransport tp;
    core::InProcessRegistry reg;
    core::Orb orb(tp, reg);
    Server server(orb);
    core::ClientCtx ctx(orb);
    auto proxy = calc::_bind(ctx, "bench-calc");
    const double us = time_per_call_us(kIters, [&] { (void)proxy->counter(1); });
    std::printf("%-12s %10.3f us/call (in-process queues + POA poll)\n", "local", us);
    const PathCounts pc = count_paths(kPathProbe, [&] { (void)proxy->counter(1); });
    report.add("local", {{"us_per_call", us},
                         {"invocations_bypassed", pc.bypassed},
                         {"invocations_transported", pc.transported}});

    // Non-blocking issue latency: the stub returns after the send.
    std::vector<core::Future<Long>> futures(64);
    const double issue_us = time_per_call_us(kIters, [&, i = 0]() mutable {
      proxy->counter_nb(1, futures[static_cast<std::size_t>(i)]);
      i = (i + 1) % 64;
      if (i == 0)
        for (auto& f : futures) (void)f.get();
    });
    std::printf("%-12s %10.3f us/call (issue only, resolved in batches)\n",
                "local nb", issue_us);
    for (auto& f : futures)
      if (!f.resolved()) (void)f.get();  // drain the tail batch
    report.add("local_nb", {{"us_per_call", issue_us}});
  }

  // --- tcp ----------------------------------------------------------------
  {
    transport::TcpTransport server_tp(0);
    transport::TcpTransport client_tp(0);
    core::InProcessRegistry reg;
    core::Orb server_orb(server_tp, reg);
    core::Orb client_orb(client_tp, reg);
    Server server(server_orb);
    core::ClientCtx ctx(client_orb);
    auto proxy = calc::_bind(ctx, "bench-calc");
    const double us = time_per_call_us(kIters, [&] { (void)proxy->counter(1); });
    std::printf("%-12s %10.3f us/call (localhost sockets)\n", "tcp", us);
    const PathCounts pc = count_paths(kPathProbe, [&] { (void)proxy->counter(1); });
    report.add("tcp", {{"us_per_call", us},
                       {"invocations_bypassed", pc.bypassed},
                       {"invocations_transported", pc.transported}});
  }

  // --- payload sweep on the local path (blocking scale round trip) -------
  std::printf("\n# distributed-argument round trip (scale: in vec + out vec), local path\n");
  std::printf("%10s %12s %14s\n", "elements", "us/call", "MB/s (2x data)");
  {
    transport::LocalTransport tp;
    core::InProcessRegistry reg;
    core::Orb orb(tp, reg);
    Server server(orb);
    core::ClientCtx ctx(orb);
    auto proxy = calc::_bind(ctx, "bench-calc");
    for (std::size_t n : {std::size_t{256}, std::size_t{4096}, std::size_t{65536},
                          std::size_t{1048576}}) {
      std::vector<double> v(n, 1.0), r(n);
      vec v_view = core::single_view(v);
      vec r_view = core::single_view(r);
      const int iters = n > 100000 ? 50 : 400;
      const double us =
          time_per_call_us(iters, [&] { proxy->scale(2.0, v_view, r_view); });
      const double mbps = 2.0 * static_cast<double>(n * sizeof(double)) / us;
      std::printf("%10zu %12.2f %14.1f\n", n, us, mbps);
      report.add("scale_n=" + std::to_string(n),
                 {{"elements", static_cast<double>(n)},
                  {"us_per_call", us},
                  {"mb_per_s", mbps}});
    }
  }
  return 0;
}
