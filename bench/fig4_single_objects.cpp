// Figure 4 reproduction (paper §4.2): centralized vs distributed
// single objects on a parallel server.
//
// A DNA database is searched by an SPMD object on a server of
// 1..8 computing threads; five single list-server objects (exact +
// four edit-distance derivatives) answer client queries concurrently
// with the search. The total single-object query work is fixed
// (~30 virtual seconds, like the paper's experiment). In the
// *centralized* scheme all five objects live on thread 0; in the
// *distributed* scheme they are balanced over the threads **by
// number, not by weight** (kind k -> thread k mod P, the paper's
// placement) — which is why the difference dips at 3 processors.
//
// Left panel: client-observed execution time for both schemes.
// Right panel: their difference.
#include <array>
#include <cstdio>
#include <future>
#include <mutex>

#include "bench/bench_json.hpp"
#include "dna.pardis.hpp"
#include "workloads/dna.hpp"

using namespace pardis;
namespace wl = pardis::workloads;

namespace {

constexpr std::size_t kDbSize = 600;
constexpr int kChunks = 25;       // process_requests cadence inside the search
constexpr int kQueryRounds = 50;  // fixed query schedule
// Budget ~30 virtual seconds of single-object query work at HOST2
// speed: rounds * total_weight * flops == 30 s * 0.09 GF/s.
const double kQueryFlops =
    30.0 * 0.09e9 / (kQueryRounds * wl::total_query_weight());

struct SharedLists {
  std::mutex mutex;
  std::array<std::vector<std::string>, wl::kEditKindCount> lists;
};

class DnaDbImpl : public dna::POA_dna_db {
 public:
  DnaDbImpl(rts::DomainContext& ctx, core::Poa& poa, SharedLists& lists,
            const std::vector<std::string>& db)
      : ctx_(&ctx), poa_(&poa), lists_(&lists), db_(&db) {}

  dna::status search(const std::string& s) override {
    const auto share =
        dist::Distribution::block(db_->size(), ctx_->size).intervals(ctx_->rank);
    const std::size_t begin = share.empty() ? 0 : share.front().begin;
    const std::size_t end = share.empty() ? 0 : share.back().end;
    for (int chunk = 0; chunk < kChunks; ++chunk) {
      const std::size_t a = begin + (end - begin) * chunk / kChunks;
      const std::size_t b = begin + (end - begin) * (chunk + 1) / kChunks;
      for (int k = 0; k < wl::kEditKindCount; ++k) {
        const auto kind = static_cast<wl::EditKind>(k);
        auto found = wl::search_range(*db_, a, b, s, kind);
        ctx_->charge_flops(wl::search_flops(*db_, a, b, s.size(), kind));
        if (!found.empty()) {
          std::lock_guard<std::mutex> lock(lists_->mutex);
          auto& list = lists_->lists[static_cast<std::size_t>(k)];
          list.insert(list.end(), found.begin(), found.end());
        }
      }
      poa_->process_requests();
    }
    rts::barrier(ctx_->comm);
    return dna::status::OK;
  }

 private:
  rts::DomainContext* ctx_;
  core::Poa* poa_;
  SharedLists* lists_;
  const std::vector<std::string>* db_;
};

class ListServerImpl : public dna::POA_list_server {
 public:
  ListServerImpl(wl::EditKind kind, SharedLists& lists, const sim::HostModel* host)
      : kind_(kind), lists_(&lists), host_(host) {}

  void match(const std::string& s, dna::dna_list& l) override {
    std::vector<std::string> snapshot;
    {
      std::lock_guard<std::mutex> lock(lists_->mutex);
      snapshot = lists_->lists[static_cast<std::size_t>(kind_)];
    }
    for (const auto& seq : snapshot)
      if (wl::matches_exact(seq, s)) l.push_back(seq);
    if (host_ != nullptr) host_->charge_flops(kQueryFlops * wl::query_weight(kind_));
  }

 private:
  wl::EditKind kind_;
  SharedLists* lists_;
  const sim::HostModel* host_;
};

const char* kListNames[wl::kEditKindCount] = {
    "substring_list", "transpose_list", "deletion_list", "substitution_list",
    "addition_list"};

double run(int nthreads, bool centralized, const std::vector<std::string>& db) {
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&testbed);
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);

  std::array<int, wl::kEditKindCount> owner{};
  for (int k = 0; k < wl::kEditKindCount; ++k)
    owner[static_cast<std::size_t>(k)] = centralized ? 0 : k % nthreads;

  SharedLists lists;
  rts::Domain server("dna-server", nthreads, testbed.host(sim::Testbed::kHost2));
  std::promise<core::Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    core::Poa poa(orb, ctx);
    DnaDbImpl db_servant(ctx, poa, lists, db);
    poa.activate_spmd(db_servant, "dna_database");
    std::vector<std::unique_ptr<ListServerImpl>> mine;
    for (int k = 0; k < wl::kEditKindCount; ++k) {
      if (owner[static_cast<std::size_t>(k)] != ctx.rank) continue;
      mine.push_back(std::make_unique<ListServerImpl>(static_cast<wl::EditKind>(k),
                                                      lists, ctx.host));
      poa.activate_single(*mine.back(), kListNames[k]);
    }
    // Every rank's list server must be registered before the client
    // is told the server is up.
    rts::barrier(ctx.comm);
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* poa = pf.get();

  double elapsed = 0.0;
  rts::Domain client("client", 1, testbed.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto dna_database = dna::dna_db::_spmd_bind(ctx, "dna_database");
    std::array<dna::list_server::_var, wl::kEditKindCount> list_srv;
    for (int k = 0; k < wl::kEditKindCount; ++k)
      list_srv[static_cast<std::size_t>(k)] = dna::list_server::_bind(ctx, kListNames[k]);

    const double start = dctx.clock.now();
    core::Future<dna::status> stat;
    dna_database->search_nb("ACGT", stat);
    for (int round = 0; round < kQueryRounds; ++round) {
      std::array<core::Future<dna::dna_list>, wl::kEditKindCount> partial;
      for (int k = 0; k < wl::kEditKindCount; ++k)
        list_srv[static_cast<std::size_t>(k)]->match_nb(
            "GG", partial[static_cast<std::size_t>(k)]);
      for (auto& f : partial) (void)f.get();
    }
    (void)stat.get();
    elapsed = dctx.clock.now() - start;
  });

  poa->deactivate();
  server.join();
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig4_single_objects");
  auto db = wl::make_dna_database(kDbSize, 40, 80, 1997);
  std::printf("# Figure 4: centralized vs distributed single objects (paper §4.2)\n");
  std::printf("# fixed single-object query budget: %d rounds x 5 lists (~30 virtual s)\n",
              kQueryRounds);
  std::printf("%6s %14s %14s %14s\n", "procs", "centralized", "distributed",
              "difference");
  for (int p = 1; p <= 8; ++p) {
    const double c = run(p, /*centralized=*/true, db);
    const double d = run(p, /*centralized=*/false, db);
    std::printf("%6d %14.2f %14.2f %14.2f\n", p, c, d, c - d);
    report.add("procs=" + std::to_string(p),
               {{"procs", static_cast<double>(p)},
                {"centralized_s", c},
                {"distributed_s", d},
                {"difference_s", c - d}});
  }
  std::printf("# expected shape: distributed <= centralized; the difference grows\n");
  std::printf("# with processors but dips at 3 (balancing by number, not weight).\n");
  return 0;
}
