// Ablation A1: distribution-aware argument transfer (paper §3.2 /
// [KG97]: "knowledge of distribution allows the ORB to efficiently
// transfer arguments").
//
// Compares, in modeled communication time over the ATM link, moving a
// BLOCK-distributed sequence from a P-thread client to a Q-thread
// server:
//   direct  — the PARDIS scheme: each client thread ships exactly the
//             pieces each server thread owns (P x Q plan, parallel);
//   gather  — the distribution-oblivious baseline: gather everything
//             on client rank 0, ship one message, scatter on the
//             server.
// Also reports real wall time of plan computation + piece encoding.
#include <chrono>
#include <cstdio>

#include "bench/bench_json.hpp"
#include "dist/dsequence.hpp"
#include "rts/domain.hpp"
#include "sim/testbed.hpp"

using namespace pardis;

namespace {

/// Modeled seconds for the direct scheme: every client thread sends
/// its pieces in parallel; completion is the max over (sender serial
/// time per thread), since each thread owns one modeled NIC.
double direct_transfer_time(const dist::TransferPlan& plan, const sim::LinkModel& link,
                            std::size_t elem_size) {
  double worst = 0.0;
  for (int p = 0; p < plan.src().nranks(); ++p) {
    double serial = 0.0;
    for (const auto& piece : plan.outgoing(p))
      serial += link.delay(piece.span.size() * elem_size);
    worst = std::max(worst, serial);
  }
  return worst;
}

/// Modeled seconds for the gather-at-root baseline: in-host gather,
/// one big network message, in-host scatter on the server.
double gather_transfer_time(std::size_t n, int nclient, int nserver,
                            const sim::HostModel& client_host,
                            const sim::HostModel& server_host,
                            const sim::LinkModel& link, std::size_t elem_size) {
  const std::size_t bytes = n * elem_size;
  double t = 0.0;
  if (nclient > 1) t += client_host.intra_delay(bytes);  // gather to rank 0
  t += link.delay(bytes);                                // one serial message
  if (nserver > 1) t += server_host.intra_delay(bytes);  // scatter
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "ubench_transfer");
  sim::Testbed tb = sim::Testbed::paper_testbed();
  const sim::HostModel& h1 = *tb.host(sim::Testbed::kHost1);
  const sim::HostModel& h2 = *tb.host(sim::Testbed::kHost2);
  const sim::LinkModel& atm = tb.link(sim::Testbed::kHost1, sim::Testbed::kHost2);

  std::printf("# Ablation A1: distribution-aware direct transfer vs gather-at-root\n");
  std::printf("# BLOCK(P client) -> BLOCK(Q server), doubles, modeled ATM link\n");
  std::printf("%10s %4s %4s %12s %12s %9s %14s\n", "elements", "P", "Q", "direct(s)",
              "gather(s)", "speedup", "plan+encode(us)");

  for (std::size_t n : {std::size_t{10000}, std::size_t{100000}, std::size_t{1000000}}) {
    for (const auto& [p, q] : {std::pair{2, 4}, std::pair{4, 4}, std::pair{4, 8}}) {
      dist::Distribution src = dist::Distribution::block(n, p);
      dist::Distribution dst = dist::Distribution::block(n, q);
      dist::TransferPlan plan(src, dst);
      const double direct = direct_transfer_time(plan, atm, sizeof(double));
      const double gather = gather_transfer_time(n, p, q, h1, h2, atm, sizeof(double));

      // Real cost of the machinery itself: plan + encode all pieces.
      const auto t0 = std::chrono::steady_clock::now();
      double encoded_bytes = 0.0;
      {
        rts::Domain d("xfer", p);
        d.run([&](rts::DomainContext& ctx) {
          dist::DSequence<double> seq(ctx.comm, n, src);
          for (std::size_t li = 0; li < seq.local_size(); ++li)
            seq.local()[li] = 1.0;
          dist::TransferPlan local_plan(src, dst);
          double bytes = 0.0;
          for (const auto& piece : local_plan.outgoing(ctx.rank))
            bytes += static_cast<double>(seq.encode_range(piece.span).size());
          (void)bytes;
        });
        encoded_bytes = static_cast<double>(n * sizeof(double));
      }
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      (void)encoded_bytes;
      std::printf("%10zu %4d %4d %12.4f %12.4f %8.1fx %14.0f\n", n, p, q, direct,
                  gather, gather / direct, us);
      report.add("n=" + std::to_string(n) + "_p=" + std::to_string(p) + "_q=" +
                     std::to_string(q),
                 {{"elements", static_cast<double>(n)},
                  {"client_threads", static_cast<double>(p)},
                  {"server_threads", static_cast<double>(q)},
                  {"direct_s", direct},
                  {"gather_s", gather},
                  {"speedup", gather / direct},
                  {"plan_encode_us", us}});
    }
  }
  std::printf("# direct wins by ~P (parallel injection) plus avoided staging copies.\n");
  return 0;
}
