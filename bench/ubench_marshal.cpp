// Micro-benchmark A3: CDR marshaling throughput (google-benchmark).
//
// Supports the §4.1 claim that compiler-generated marshaling of
// dynamically-sized, nested elements is practical: bulk primitive
// sequences run at memcpy-like speed and nested dynamic rows cost one
// length-prefixed pass each.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/cdr.hpp"

namespace {

using namespace pardis;

void BM_MarshalPrimSeqDouble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n, 1.5);
  for (auto _ : state) {
    ByteBuffer buf;
    CdrWriter w(buf);
    w.write_prim_seq<double>(values);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_MarshalPrimSeqDouble)->Range(64, 1 << 20);

void BM_UnmarshalPrimSeqDouble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n, 2.5);
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_prim_seq<double>(values);
  for (auto _ : state) {
    CdrReader r(buf.view());
    auto out = r.read_prim_seq<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_UnmarshalPrimSeqDouble)->Range(64, 1 << 20);

void BM_UnmarshalSwappedByteOrder(benchmark::State& state) {
  // The byte-order-mismatch path (per-element swap after bulk copy).
  // Build a genuinely opposite-endian encoding: swap the length prefix
  // and every element in place.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n, 3.5);
  ByteBuffer buf;
  CdrWriter w(buf);
  w.write_prim_seq<double>(values);
  auto bytes = buf.mutable_view();
  for (std::size_t i = 0; i < 2; ++i) std::swap(bytes[i], bytes[3 - i]);  // length
  for (std::size_t e = 0; e < n; ++e) {
    Octet* p = bytes.data() + 8 + e * 8;  // doubles start after the aligned prefix
    for (std::size_t i = 0; i < 4; ++i) std::swap(p[i], p[7 - i]);
  }
  for (auto _ : state) {
    CdrReader r(buf.view(), !kNativeLittleEndian);
    auto out = r.read_prim_seq<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_UnmarshalSwappedByteOrder)->Range(1 << 10, 1 << 18);

void BM_MarshalNestedMatrix(benchmark::State& state) {
  // The paper's `matrix` = dsequence of dynamically-sized rows.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> rows(n, std::vector<double>(n, 1.0));
  for (auto _ : state) {
    ByteBuffer buf = cdr_encode(rows);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * sizeof(double)));
}
BENCHMARK(BM_MarshalNestedMatrix)->Range(8, 512);

void BM_RoundTripStrings(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> len(5, 60);
  std::vector<std::string> strings(n);
  for (auto& s : strings) s.assign(static_cast<std::size_t>(len(rng)), 'x');
  for (auto _ : state) {
    ByteBuffer buf = cdr_encode(strings);
    auto out = cdr_decode<std::vector<std::string>>(buf.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RoundTripStrings)->Range(16, 4096);

void BM_MarshalRequestHeaderSized(benchmark::State& state) {
  // Small-message path: roughly one PIOP request header.
  for (auto _ : state) {
    ByteBuffer buf;
    CdrWriter w(buf);
    w.write_ulonglong(1);
    w.write_ulonglong(2);
    w.write_ulong(3);
    w.write_ulonglong(4);
    w.write_string("solve");
    w.write_octet(0);
    w.write_long(0);
    w.write_long(1);
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_MarshalRequestHeaderSized);

}  // namespace

// Like BENCHMARK_MAIN(), but first translates the repo-wide
// `--json <path>` convention into google-benchmark's output flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--json" && it + 1 != args.end()) {
      out_flag = "--benchmark_out=" + std::string(*(it + 1));
      fmt_flag = "--benchmark_out_format=json";
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
