// Figure 5 reproduction (paper §4.3): overall performance of the
// pipelined POOMA-diffusion -> PSTL-gradient metaapplication compared
// to the performance of its components, with the diffusion and
// gradient processor counts matched (1..8).
//
// Input: 128x128 grid, 100 time-steps, gradient requested every 5th
// step, results of every completed step pipelined to visualizers;
// hosts/links are the paper's models (SGI PC, IBM SP/2, Ethernet).
// Expected shape: components scale with processors, but the overall
// time flattens — the non-oneway sends (the sender is occupied for
// the modeled transfer) and pipeline congestion put a floor under it,
// the two effects §4.3 discusses.
#include <cstdio>
#include <future>
#include <optional>

#include "bench/bench_json.hpp"
#include "pipeline_hpcxx.pardis.hpp"
#include "pipeline_plain.pardis.hpp"
#include "pipeline_pooma.pardis.hpp"
#include "pooma/field2d.hpp"
#include "pstl/distributed_vector.hpp"

using namespace pardis;

namespace {

constexpr std::size_t kGrid = static_cast<std::size_t>(pipeline_plain::N);
constexpr int kSteps = 100;
constexpr int kGradientEvery = 5;
constexpr double kDiffusionFlopsPerCell = 1100.0;
constexpr double kGradientFlopsPerCell = 4400.0;
constexpr double kRenderFlopsPerCell = 40.0;

void init_field(pooma::Field2D<double>& u) {
  for (std::size_t r = 0; r < u.local_rows(); ++r)
    for (std::size_t c = 0; c < kGrid; ++c) {
      const std::size_t gr = u.first_row() + r;
      u.at(r, c) = (gr > kGrid / 3 && gr < 2 * kGrid / 3 && c > kGrid / 3 &&
                    c < 2 * kGrid / 3)
                       ? 100.0
                       : 0.0;
    }
}

/// Diffusion component alone: the simulation loop without pipelining.
double diffusion_alone(const sim::Testbed& testbed, int procs) {
  rts::Domain d("diffusion", procs, testbed.host(sim::Testbed::kHost2));
  d.run([&](rts::DomainContext& ctx) {
    pooma::Field2D<double> u(ctx.comm, kGrid, kGrid), tmp(ctx.comm, kGrid, kGrid);
    init_field(u);
    for (int step = 0; step < kSteps; ++step) {
      pooma::diffusion_step(u, tmp, 0.3);
      std::swap(u.storage(), tmp.storage());
      ctx.charge_flops(kDiffusionFlopsPerCell * static_cast<double>(kGrid * kGrid) /
                       ctx.size);
    }
  });
  return d.max_sim_time();
}

/// Gradient component alone: the 20 gradient computations back to back.
double gradient_alone(const sim::Testbed& testbed, int procs) {
  rts::Domain d("gradient", procs, testbed.host(sim::Testbed::kSp2));
  d.run([&](rts::DomainContext& ctx) {
    pstl::DistributedVector<double> u(ctx.comm, kGrid * kGrid), g(ctx.comm, kGrid * kGrid);
    pstl::par_apply(u, [](std::size_t gi, double& x) {
      x = static_cast<double>(gi % kGrid);
    });
    for (int call = 0; call < kSteps / kGradientEvery; ++call) {
      pstl::gradient_magnitude(u, g, kGrid);
      ctx.charge_flops(kGradientFlopsPerCell * static_cast<double>(kGrid * kGrid) /
                       ctx.size);
    }
  });
  return d.max_sim_time();
}

class VisualizerImpl : public pipeline_plain::POA_visualizer {
 public:
  explicit VisualizerImpl(const sim::HostModel* host) : host_(host) {}
  void show(const pipeline_plain::field& myfield) override {
    if (host_ != nullptr)
      host_->charge_flops(kRenderFlopsPerCell * static_cast<double>(myfield.size()));
  }

 private:
  const sim::HostModel* host_;
};

class GradientImpl : public pipeline_hpcxx::POA_field_operations {
 public:
  GradientImpl(rts::DomainContext& ctx, core::Orb& orb) : ctx_(&ctx) {
    client_.emplace(orb, ctx);
    viz_ = pipeline_hpcxx::visualizer::_spmd_bind(*client_, "gradient_viz");
  }

  void gradient(const pipeline_hpcxx::field& myfield) override {
    pipeline_hpcxx::field g(myfield.comm(), myfield.distribution());
    pstl::gradient_magnitude(myfield, g, kGrid);
    ctx_->charge_flops(kGradientFlopsPerCell * static_cast<double>(myfield.size()) /
                       ctx_->size);
    if (prev_) prev_->get();
    prev_.emplace();
    viz_->show_nb(g, *prev_);
  }

 private:
  rts::DomainContext* ctx_;
  std::optional<core::ClientCtx> client_;
  pipeline_hpcxx::visualizer::_var viz_;
  std::optional<core::FutureVoid> prev_;
};

/// The full metaapplication, client-perspective virtual time.
/// `comm_threads` enables the paper's §6 proposal: dedicated
/// communication threads take over the sends, so the computing threads
/// are not occupied by the transfers.
double overall(const sim::Testbed& testbed, int procs, bool comm_threads = false) {
  transport::LocalTransport transport(&testbed);
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);

  auto start_viz = [&](rts::Domain& domain, const char* name, const char* host) {
    auto pp = std::make_shared<std::promise<core::Poa*>>();
    auto pf = pp->get_future();
    domain.start([&orb, &testbed, name, host, pp](rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      VisualizerImpl servant(testbed.host(host));
      poa.activate_spmd(servant, name,
                        pipeline_plain::POA_visualizer::_default_arg_specs());
      pp->set_value(&poa);
      poa.impl_is_ready();
    });
    return pf.get();
  };

  rts::Domain viz1("viz1", 1, testbed.host(sim::Testbed::kHost2));
  rts::Domain viz2("viz2", 1, testbed.host(sim::Testbed::kWorkstation));
  core::Poa* viz1_poa = start_viz(viz1, "diffusion_viz", sim::Testbed::kHost2);
  core::Poa* viz2_poa = start_viz(viz2, "gradient_viz", sim::Testbed::kWorkstation);

  rts::Domain grad("gradient", procs, testbed.host(sim::Testbed::kSp2));
  std::promise<core::Poa*> grad_pp;
  auto grad_pf = grad_pp.get_future();
  grad.start([&](rts::DomainContext& ctx) {
    core::Poa poa(orb, ctx);
    GradientImpl servant(ctx, orb);
    poa.activate_spmd(servant, "field_operations",
                      pipeline_hpcxx::POA_field_operations::_default_arg_specs());
    if (ctx.rank == 0) grad_pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* grad_poa = grad_pf.get();

  double elapsed = 0.0;
  rts::Domain diffusion("diffusion", procs, testbed.host(sim::Testbed::kHost2));
  diffusion.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    if (comm_threads) ctx.enable_comm_thread();
    auto show_srv = pipeline_pooma::visualizer::_spmd_bind(ctx, "diffusion_viz");
    auto grad_srv = pipeline_pooma::field_operations::_spmd_bind(ctx, "field_operations");

    pipeline_pooma::field u(dctx.comm, kGrid, kGrid), tmp(dctx.comm, kGrid, kGrid);
    init_field(u);

    const double start = dctx.clock.now();
    // Baseline: depth-1 pipelining — the next request waits for the
    // previous one, since a blocked non-oneway send is what the paper
    // measured. With communication threads the client never blocks on
    // a send, so it pipelines without bound and synchronizes once at
    // the end (the behaviour §6 argues the threads would enable).
    std::vector<core::FutureVoid> outstanding;
    outstanding.reserve(kSteps + kSteps / kGradientEvery);
    std::optional<core::FutureVoid> show_prev, grad_prev;
    auto track = [&](std::optional<core::FutureVoid>& prev) -> core::FutureVoid& {
      if (comm_threads) {
        outstanding.emplace_back();
        return outstanding.back();
      }
      if (prev) prev->get();
      prev.emplace();
      return *prev;
    };
    for (int step = 1; step <= kSteps; ++step) {
      pooma::diffusion_step(u, tmp, 0.3);
      std::swap(u.storage(), tmp.storage());
      dctx.charge_flops(kDiffusionFlopsPerCell * static_cast<double>(kGrid * kGrid) /
                        dctx.size);
      show_srv->show_nb(u, track(show_prev));
      if (step % kGradientEvery == 0) grad_srv->gradient_nb(u, track(grad_prev));
    }
    if (show_prev) show_prev->get();
    if (grad_prev) grad_prev->get();
    ctx.flush_sends();
    for (auto& f : outstanding) f.get();
    if (dctx.rank == 0) elapsed = dctx.clock.now() - start;
  });

  grad_poa->deactivate();
  grad.join();
  viz1_poa->deactivate();
  viz2_poa->deactivate();
  viz1.join();
  viz2.join();
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig5_pipeline");
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  std::printf("# Figure 5: overall vs component performance (paper §4.3)\n");
  std::printf("# %zux%zu grid, %d steps, gradient every %d-th step, Ethernet links\n",
              kGrid, kGrid, kSteps, kGradientEvery);
  std::printf("%6s %12s %16s %14s %16s\n", "procs", "overall", "diffusion(SGI)",
              "gradient(SP2)", "overall+commthr");
  for (int p = 1; p <= 8; ++p) {
    const double t_diff = diffusion_alone(testbed, p);
    const double t_grad = gradient_alone(testbed, p);
    const double t_all = overall(testbed, p);
    const double t_ct = overall(testbed, p, /*comm_threads=*/true);
    std::printf("%6d %12.2f %16.2f %14.2f %16.2f\n", p, t_all, t_diff, t_grad, t_ct);
    report.add("procs=" + std::to_string(p),
               {{"procs", static_cast<double>(p)},
                {"overall_s", t_all},
                {"diffusion_s", t_diff},
                {"gradient_s", t_grad},
                {"overall_comm_threads_s", t_ct}});
  }
  std::printf("# expected shape: components scale with processors; the overall\n");
  std::printf("# time flattens (send time + pipeline congestion, §4.3). The last\n");
  std::printf("# column evaluates the paper's §6 proposal — dedicated communication\n");
  std::printf("# threads take over the sends and recover part of the gap.\n");
  return 0;
}
