// Micro-benchmark A4: redistribution cost across distribution shapes
// (paper §3.2: "using different distribution templates the programmer
// can also redistribute the sequence").
//
// Real wall time per collective redistribute() of a double sequence on
// a 4-thread domain, by (from, to) distribution pair and element count.
#include <chrono>
#include <cstdio>

#include "bench/bench_json.hpp"
#include "dist/dsequence.hpp"
#include "rts/domain.hpp"

using namespace pardis;

namespace {

struct Case {
  const char* name;
  dist::Distribution (*from)(std::size_t, int);
  dist::Distribution (*to)(std::size_t, int);
};

dist::Distribution make_block(std::size_t n, int p) { return dist::Distribution::block(n, p); }
dist::Distribution make_cyclic(std::size_t n, int p) {
  return dist::Distribution::cyclic(n, p, 16);
}
dist::Distribution make_conc(std::size_t n, int p) {
  return dist::Distribution::concentrated(n, p, 0);
}
dist::Distribution make_irregular(std::size_t n, int p) {
  std::vector<double> props(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) props[static_cast<std::size_t>(r)] = 1.0 + r;
  return dist::Distribution::irregular(n, props);
}

double run_case(const Case& c, std::size_t n, int procs, int iters) {
  rts::Domain d("redist", procs);
  double us = 0.0;
  d.run([&](rts::DomainContext& ctx) {
    dist::DSequence<double> seq(ctx.comm, n, c.from(n, procs));
    for (std::size_t li = 0; li < seq.local_size(); ++li)
      seq.local()[li] = static_cast<double>(li);
    rts::barrier(ctx.comm);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      seq.redistribute(c.to(n, procs));
      seq.redistribute(c.from(n, procs));
    }
    rts::barrier(ctx.comm);
    if (ctx.rank == 0) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      us = std::chrono::duration<double, std::micro>(dt).count() / (2.0 * iters);
    }
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "ubench_redistribute");
  const Case cases[] = {
      {"block->block (identity)", make_block, make_block},
      {"block->concentrated", make_block, make_conc},
      {"concentrated->block", make_conc, make_block},
      {"block->cyclic(16)", make_block, make_cyclic},
      {"cyclic(16)->irregular", make_cyclic, make_irregular},
      {"irregular->block", make_irregular, make_block},
  };
  std::printf("# Micro A4: DSequence::redistribute cost, 4 threads, wall clock\n");
  std::printf("%-26s %12s %12s %12s\n", "pair", "n=10k (us)", "n=100k (us)",
              "n=1M (us)");
  for (const Case& c : cases) {
    const double a = run_case(c, 10000, 4, 50);
    const double b = run_case(c, 100000, 4, 20);
    const double d = run_case(c, 1000000, 4, 5);
    std::printf("%-26s %12.1f %12.1f %12.1f\n", c.name, a, b, d);
    report.add(c.name,
               {{"us_n10k", a}, {"us_n100k", b}, {"us_n1m", d}});
  }
  return 0;
}
