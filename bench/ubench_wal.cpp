// pardis_wal micro-benchmark: what durability costs.
//
// Two sections:
//
//   log-commit-tN  — raw Log append+commit throughput from N
//                    concurrent committers, plus the measured
//                    fsyncs-per-commit ratio. With group commit the
//                    ratio drops well below 1 as committers pile onto
//                    the same disk barrier; this is the number that
//                    justifies the flusher thread.
//   invoke-*       — end-to-end non-idempotent invocation (counter()
//                    through the pool binding) in three configurations:
//                    WAL off (the pre-WAL baseline), WAL on with one
//                    replica (fsync on the dispatch path), and WAL on
//                    with two replicas (fsync + append forwarding to
//                    the sibling before the reply leaves). ops/s and
//                    p50/p99 latency; the off-vs-on gap is the
//                    group-commit overhead BENCH_wal.json tracks.
//
// Usage: ubench_wal [--iters N] [--json out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "core/pardis.hpp"
#include "core/poa.hpp"
#include "obs/metrics.hpp"
#include "pool/pool.hpp"
#include "tests/support/calc_api.hpp"
#include "wal/wal.hpp"

using namespace pardis;

namespace {

int g_iters = 2000;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

/// Fresh scratch directory for one configuration's log files.
struct Scratch {
  Scratch() : dir(std::filesystem::temp_directory_path() / "pardis-ubench-wal") {
    std::filesystem::remove_all(dir);
    wal::set_dir(dir.string());
  }
  ~Scratch() { std::filesystem::remove_all(dir); }
  std::filesystem::path dir;
};

// ---------------------------------------------------------------------------
// Raw log: group-commit batching.
// ---------------------------------------------------------------------------

void bench_log_commit(int threads, bench::JsonReport& report) {
  Scratch scratch;
  wal::set_enabled(true);
  obs::Counter& fsyncs = obs::metrics().counter("wal.fsyncs");
  const std::uint64_t fsyncs_before = fsyncs.value();

  wal::Log log((scratch.dir / "bench.wal").string());
  const int per_thread = g_iters / threads;
  ByteBuffer payload;
  payload.grow(64);  // typical small-mutation record body

  const double t0 = now_s();
  std::vector<std::thread> committers;
  committers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    committers.emplace_back([&log, &payload, per_thread] {
      for (int i = 0; i < per_thread; ++i)
        log.commit(log.append(wal::kRecordMutation, payload.clone()));
    });
  for (auto& th : committers) th.join();
  const double elapsed = now_s() - t0;

  const double commits = static_cast<double>(per_thread) * threads;
  const double commits_s = commits / elapsed;
  const double fsyncs_per_commit =
      static_cast<double>(fsyncs.value() - fsyncs_before) / commits;
  std::printf("log-commit-t%-2d  %10.0f commits/s   %.3f fsyncs/commit\n", threads,
              commits_s, fsyncs_per_commit);
  report.add("log-commit-t" + std::to_string(threads),
             {{"commits_s", commits_s}, {"fsyncs_per_commit", fsyncs_per_commit}});
  wal::set_enabled(false);
}

// ---------------------------------------------------------------------------
// End-to-end: non-idempotent invoke with and without durability.
// ---------------------------------------------------------------------------

class DurableCounterServant : public calc_api::POA_calc {
 public:
  bool _durable() const override { return true; }
  void _snapshot_state(CdrWriter& w) const override { w.write_long(total_); }
  void _restore_state(CdrReader& r) override { total_ = r.read_long(); }

  double dot(const calc_api::vec&, const calc_api::vec&) override { return 0; }
  void scale(double, const calc_api::vec&, calc_api::vec&) override {}
  Long counter(Long d) override { return total_ += d; }
  void note(const std::string&) override {}
  void boom(const std::string&) override {}

 private:
  Long total_ = 0;
};

class ReplicaServer {
 public:
  ReplicaServer(core::Orb& orb, const std::string& name, const std::string& label)
      : domain_(label, 1) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, name, &pp](rts::DomainContext& sctx) {
      core::Poa poa(orb, sctx);
      DurableCounterServant servant;
      poa.activate_spmd(servant, name, {}, /*replica=*/true);
      pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }

  ~ReplicaServer() {
    poa_->deactivate();
    domain_.join();
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

void bench_invoke(const std::string& row, bool wal_on, int replicas,
                  bench::JsonReport& report) {
  Scratch scratch;
  wal::set_enabled(wal_on);
  pool::set_enabled(true);

  transport::LocalTransport tp;
  core::InProcessRegistry reg;
  core::Orb orb(tp, reg);
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  const std::string name = "bench-" + row;
  for (int r = 0; r < replicas; ++r)
    servers.push_back(std::make_unique<ReplicaServer>(
        orb, name, name + "-r" + std::to_string(r)));

  core::ClientCtx ctx(orb);
  auto gb = pool::GroupBinding::bind(ctx, name, "", calc_api::kCalcTypeId);

  auto one_call = [&gb](Long v) {
    core::ClientRequest req(*gb->binding(), "counter", false, false);
    req.in_value<Long>(v);
    auto pending = req.invoke();
    Long out = 0;
    pending->set_decoder([&out](core::ReplyDecoder& d) { out = d.out_value<Long>(); });
    pending->wait();
    return out;
  };

  for (int i = 0; i < 50; ++i) one_call(0);  // warmup

  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(g_iters));
  const double t0 = now_s();
  for (int i = 0; i < g_iters; ++i) {
    const double c0 = now_s();
    one_call(1);
    lat_us.push_back((now_s() - c0) * 1e6);
  }
  const double elapsed = now_s() - t0;

  const double ops_s = g_iters / elapsed;
  const double p50 = percentile(lat_us, 0.50);
  const double p99 = percentile(lat_us, 0.99);
  std::printf("%-22s  %9.0f ops/s   p50 %7.1f us   p99 %7.1f us\n", row.c_str(),
              ops_s, p50, p99);
  report.add(row, {{"ops_s", ops_s}, {"p50_us", p50}, {"p99_us", p99}});

  servers.clear();
  pool::set_enabled(false);
  wal::set_enabled(false);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--iters") == 0) g_iters = std::atoi(argv[i + 1]);

  bench::JsonReport report(argc, argv, "ubench_wal");
  obs::set_enabled(true);  // fsync/commit counters feed the ratio rows

  std::printf("pardis_wal group-commit cost (%d iters per row)\n\n", g_iters);
  bench_log_commit(1, report);
  bench_log_commit(4, report);
  std::printf("\n");
  bench_invoke("invoke-wal-off", /*wal_on=*/false, /*replicas=*/1, report);
  bench_invoke("invoke-wal-on", /*wal_on=*/true, /*replicas=*/1, report);
  bench_invoke("invoke-wal-replicated", /*wal_on=*/true, /*replicas=*/2, report);
  return 0;
}
