// Figure 2 reproduction (paper §4.1): execution time of the solvers
// metaapplication vs problem size, for the four configurations the
// paper plots:
//   - direct method alone (HOST1)
//   - iterative method alone (HOST2)
//   - different servers (direct local on HOST1, iterative remote on
//     HOST2, overlapped through a non-blocking invocation)
//   - same server (both objects on one HOST1 server; the two requests
//     serialize in the server's polling loop)
//
// Times are virtual seconds on the paper's modeled testbed (4-node SGI
// Onyx R4400, 10-node SGI PC R8000, dedicated ATM link); computations
// are real (Gaussian elimination and Jacobi on the same system, with
// the agreement check). Expected shape: distributed ~= t_o +
// max(t_i, t_d) (the caption's formula), same-server ~= sum of both.
#include <cmath>
#include <cstdio>
#include <future>
#include <optional>

#include "bench/bench_json.hpp"
#include "solvers.pardis.hpp"
#include "workloads/linear.hpp"

using namespace pardis;
namespace wl = pardis::workloads;

namespace {

constexpr double kTol = 1e-6;

class DirectImpl : public solvers::POA_direct {
 public:
  explicit DirectImpl(rts::DomainContext& ctx) : ctx_(&ctx) {}
  void solve(const solvers::matrix& A, const solvers::vector& B,
             solvers::vector& X) override {
    if (ctx_->rank == 0) {
      std::vector<std::vector<double>> a(A.local().begin(), A.local().end());
      std::vector<double> b(B.local().begin(), B.local().end());
      ctx_->charge_flops(wl::gaussian_flops(b.size()));
      auto x = wl::gaussian_solve(std::move(a), std::move(b));
      std::copy(x.begin(), x.end(), X.local().begin());
    }
  }

 private:
  rts::DomainContext* ctx_;
};

class IterativeImpl : public solvers::POA_iterative {
 public:
  explicit IterativeImpl(rts::DomainContext& ctx) : ctx_(&ctx) {}
  void solve(double tol, const solvers::matrix& A, const solvers::vector& B,
             solvers::vector& X) override {
    if (ctx_->rank == 0) {
      std::vector<std::vector<double>> a(A.local().begin(), A.local().end());
      std::vector<double> b(B.local().begin(), B.local().end());
      auto res = wl::jacobi_solve(a, b, tol);
      ctx_->charge_flops(wl::jacobi_flops(b.size(), res.iterations));
      std::copy(res.x.begin(), res.x.end(), X.local().begin());
    }
  }

 private:
  rts::DomainContext* ctx_;
};

class SolverServer {
 public:
  SolverServer(core::Orb& orb, const sim::HostModel* host, bool with_direct,
               bool with_iterative)
      : domain_("solvers", 2, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, with_direct, with_iterative, &pp](rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      DirectImpl direct_servant(ctx);
      IterativeImpl iterative_servant(ctx);
      if (with_direct)
        poa.activate_spmd(direct_servant, "direct_solver",
                          solvers::POA_direct::_default_arg_specs());
      if (with_iterative)
        poa.activate_spmd(iterative_servant, "itrt_solver",
                          solvers::POA_iterative::_default_arg_specs());
      if (ctx.rank == 0) pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }
  ~SolverServer() {
    poa_->deactivate();
    domain_.join();
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

enum class Mode { kDirectOnly, kIterativeOnly, kDistributed, kSingleServer };

double run_scenario(std::size_t n, Mode mode) {
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&testbed);
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);

  const bool single_server = mode == Mode::kSingleServer;
  std::optional<SolverServer> server_a, server_b;
  const std::string direct_host = "HOST1";
  const std::string iter_host = single_server ? "HOST1" : "HOST2";
  if (single_server) {
    server_a.emplace(orb, testbed.host("HOST1"), true, true);
  } else {
    server_a.emplace(orb, testbed.host("HOST1"), true, false);
    server_b.emplace(orb, testbed.host("HOST2"), false, true);
  }

  double elapsed = 0.0;
  rts::Domain client("client", 2, testbed.host("HOST1"));
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto d_solver = solvers::direct::_spmd_bind(ctx, "direct_solver", direct_host);
    auto i_solver = solvers::iterative::_spmd_bind(ctx, "itrt_solver", iter_host);

    wl::DenseSystem sys = wl::make_system(n, 1997);
    solvers::matrix A(dctx.comm, n);
    solvers::vector B(dctx.comm, n);
    for (std::size_t li = 0; li < A.local_size(); ++li)
      A.local()[li] = sys.a[A.local_to_global(li)];
    for (std::size_t li = 0; li < B.local_size(); ++li)
      B.local()[li] = sys.b[B.local_to_global(li)];

    const double start = dctx.clock.now();
    core::Future<solvers::vector_var> X1;
    solvers::vector X2_real(dctx.comm, n);
    switch (mode) {
      case Mode::kDirectOnly:
        d_solver->solve(A, B, X2_real);
        break;
      case Mode::kIterativeOnly: {
        i_solver->solve_nb(kTol, A, B, X1, n, core::DistSpec::block());
        solvers::vector_var X1_real = X1;
        break;
      }
      default: {
        i_solver->solve_nb(kTol, A, B, X1, n, core::DistSpec::block());
        d_solver->solve(A, B, X2_real);
        solvers::vector_var X1_real = X1;
        double local = 0.0;
        for (std::size_t li = 0; li < X1_real->local_size(); ++li)
          local = std::max(local,
                           std::abs(X1_real->local()[li] - X2_real.local()[li]));
        const double agreement = rts::allreduce_max(dctx.comm, local);
        if (agreement > 1e-3)
          std::fprintf(stderr, "WARNING: solver disagreement %.3e at n=%zu\n",
                       agreement, n);
        break;
      }
    }
    if (dctx.rank == 0) elapsed = dctx.clock.now() - start;
  });
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig2_solvers");
  std::printf("# Figure 2: distributed vs local performance (paper §4.1)\n");
  std::printf("# virtual seconds on the modeled 1997 testbed; tol=%.0e\n", kTol);
  std::printf("%8s %14s %16s %14s %14s\n", "size", "direct(H1)", "iterative(H2)",
              "diff-servers", "same-server");
  for (std::size_t n = 200; n <= 1200; n += 200) {
    const double t_d = run_scenario(n, Mode::kDirectOnly);
    const double t_i = run_scenario(n, Mode::kIterativeOnly);
    const double t_dist = run_scenario(n, Mode::kDistributed);
    const double t_same = run_scenario(n, Mode::kSingleServer);
    std::printf("%8zu %14.2f %16.2f %14.2f %14.2f\n", n, t_d, t_i, t_dist, t_same);
    report.add("n=" + std::to_string(n),
               {{"size", static_cast<double>(n)},
                {"direct_s", t_d},
                {"iterative_s", t_i},
                {"diff_servers_s", t_dist},
                {"same_server_s", t_same}});
  }
  std::printf("# expected shape: diff-servers ~= t_o + max(direct, iterative);\n");
  std::printf("# same-server ~= serialized sum (both ran on the slower HOST1).\n");
  return 0;
}
