file(REMOVE_RECURSE
  "CMakeFiles/pardis_core.dir/client.cpp.o"
  "CMakeFiles/pardis_core.dir/client.cpp.o.d"
  "CMakeFiles/pardis_core.dir/comm_thread.cpp.o"
  "CMakeFiles/pardis_core.dir/comm_thread.cpp.o.d"
  "CMakeFiles/pardis_core.dir/ior.cpp.o"
  "CMakeFiles/pardis_core.dir/ior.cpp.o.d"
  "CMakeFiles/pardis_core.dir/object_ref.cpp.o"
  "CMakeFiles/pardis_core.dir/object_ref.cpp.o.d"
  "CMakeFiles/pardis_core.dir/orb.cpp.o"
  "CMakeFiles/pardis_core.dir/orb.cpp.o.d"
  "CMakeFiles/pardis_core.dir/pending_reply.cpp.o"
  "CMakeFiles/pardis_core.dir/pending_reply.cpp.o.d"
  "CMakeFiles/pardis_core.dir/poa.cpp.o"
  "CMakeFiles/pardis_core.dir/poa.cpp.o.d"
  "CMakeFiles/pardis_core.dir/protocol.cpp.o"
  "CMakeFiles/pardis_core.dir/protocol.cpp.o.d"
  "CMakeFiles/pardis_core.dir/registry.cpp.o"
  "CMakeFiles/pardis_core.dir/registry.cpp.o.d"
  "CMakeFiles/pardis_core.dir/servant.cpp.o"
  "CMakeFiles/pardis_core.dir/servant.cpp.o.d"
  "libpardis_core.a"
  "libpardis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
