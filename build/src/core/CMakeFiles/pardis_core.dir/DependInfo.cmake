
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/pardis_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/client.cpp.o.d"
  "/root/repo/src/core/comm_thread.cpp" "src/core/CMakeFiles/pardis_core.dir/comm_thread.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/comm_thread.cpp.o.d"
  "/root/repo/src/core/ior.cpp" "src/core/CMakeFiles/pardis_core.dir/ior.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/ior.cpp.o.d"
  "/root/repo/src/core/object_ref.cpp" "src/core/CMakeFiles/pardis_core.dir/object_ref.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/object_ref.cpp.o.d"
  "/root/repo/src/core/orb.cpp" "src/core/CMakeFiles/pardis_core.dir/orb.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/orb.cpp.o.d"
  "/root/repo/src/core/pending_reply.cpp" "src/core/CMakeFiles/pardis_core.dir/pending_reply.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/pending_reply.cpp.o.d"
  "/root/repo/src/core/poa.cpp" "src/core/CMakeFiles/pardis_core.dir/poa.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/poa.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/pardis_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/pardis_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/servant.cpp" "src/core/CMakeFiles/pardis_core.dir/servant.cpp.o" "gcc" "src/core/CMakeFiles/pardis_core.dir/servant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pardis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/pardis_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/pardis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pardis_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
