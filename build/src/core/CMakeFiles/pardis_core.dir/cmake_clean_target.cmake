file(REMOVE_RECURSE
  "libpardis_core.a"
)
