# Empty compiler generated dependencies file for pardis_core.
# This may be replaced when dependencies are built.
