# Empty dependencies file for pardis_repo.
# This may be replaced when dependencies are built.
