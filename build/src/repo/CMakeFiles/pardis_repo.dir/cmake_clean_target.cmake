file(REMOVE_RECURSE
  "libpardis_repo.a"
)
