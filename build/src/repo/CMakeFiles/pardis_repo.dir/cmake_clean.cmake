file(REMOVE_RECURSE
  "CMakeFiles/pardis_repo.dir/impl_repository.cpp.o"
  "CMakeFiles/pardis_repo.dir/impl_repository.cpp.o.d"
  "CMakeFiles/pardis_repo.dir/repository.cpp.o"
  "CMakeFiles/pardis_repo.dir/repository.cpp.o.d"
  "libpardis_repo.a"
  "libpardis_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
