file(REMOVE_RECURSE
  "libpardis_common.a"
)
