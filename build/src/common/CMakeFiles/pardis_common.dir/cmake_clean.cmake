file(REMOVE_RECURSE
  "CMakeFiles/pardis_common.dir/error.cpp.o"
  "CMakeFiles/pardis_common.dir/error.cpp.o.d"
  "CMakeFiles/pardis_common.dir/ids.cpp.o"
  "CMakeFiles/pardis_common.dir/ids.cpp.o.d"
  "CMakeFiles/pardis_common.dir/log.cpp.o"
  "CMakeFiles/pardis_common.dir/log.cpp.o.d"
  "libpardis_common.a"
  "libpardis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
