# Empty dependencies file for pardis_common.
# This may be replaced when dependencies are built.
