# Empty compiler generated dependencies file for pardis_dist.
# This may be replaced when dependencies are built.
