file(REMOVE_RECURSE
  "libpardis_dist.a"
)
