file(REMOVE_RECURSE
  "CMakeFiles/pardis_dist.dir/distribution.cpp.o"
  "CMakeFiles/pardis_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/pardis_dist.dir/transfer_plan.cpp.o"
  "CMakeFiles/pardis_dist.dir/transfer_plan.cpp.o.d"
  "libpardis_dist.a"
  "libpardis_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
