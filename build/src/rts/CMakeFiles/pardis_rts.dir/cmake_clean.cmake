file(REMOVE_RECURSE
  "CMakeFiles/pardis_rts.dir/collectives.cpp.o"
  "CMakeFiles/pardis_rts.dir/collectives.cpp.o.d"
  "CMakeFiles/pardis_rts.dir/domain.cpp.o"
  "CMakeFiles/pardis_rts.dir/domain.cpp.o.d"
  "CMakeFiles/pardis_rts.dir/thread_comm.cpp.o"
  "CMakeFiles/pardis_rts.dir/thread_comm.cpp.o.d"
  "libpardis_rts.a"
  "libpardis_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
