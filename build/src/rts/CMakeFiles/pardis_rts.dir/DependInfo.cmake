
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rts/collectives.cpp" "src/rts/CMakeFiles/pardis_rts.dir/collectives.cpp.o" "gcc" "src/rts/CMakeFiles/pardis_rts.dir/collectives.cpp.o.d"
  "/root/repo/src/rts/domain.cpp" "src/rts/CMakeFiles/pardis_rts.dir/domain.cpp.o" "gcc" "src/rts/CMakeFiles/pardis_rts.dir/domain.cpp.o.d"
  "/root/repo/src/rts/thread_comm.cpp" "src/rts/CMakeFiles/pardis_rts.dir/thread_comm.cpp.o" "gcc" "src/rts/CMakeFiles/pardis_rts.dir/thread_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pardis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
