# Empty compiler generated dependencies file for pardis_transport.
# This may be replaced when dependencies are built.
