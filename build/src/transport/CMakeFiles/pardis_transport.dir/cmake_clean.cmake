file(REMOVE_RECURSE
  "CMakeFiles/pardis_transport.dir/endpoint.cpp.o"
  "CMakeFiles/pardis_transport.dir/endpoint.cpp.o.d"
  "CMakeFiles/pardis_transport.dir/tcp_transport.cpp.o"
  "CMakeFiles/pardis_transport.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/pardis_transport.dir/transport.cpp.o"
  "CMakeFiles/pardis_transport.dir/transport.cpp.o.d"
  "libpardis_transport.a"
  "libpardis_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
