file(REMOVE_RECURSE
  "libpardis_transport.a"
)
