file(REMOVE_RECURSE
  "libpardis_workloads.a"
)
