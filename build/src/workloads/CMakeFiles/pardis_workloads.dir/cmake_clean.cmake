file(REMOVE_RECURSE
  "CMakeFiles/pardis_workloads.dir/dna.cpp.o"
  "CMakeFiles/pardis_workloads.dir/dna.cpp.o.d"
  "CMakeFiles/pardis_workloads.dir/linear.cpp.o"
  "CMakeFiles/pardis_workloads.dir/linear.cpp.o.d"
  "libpardis_workloads.a"
  "libpardis_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
