# Empty compiler generated dependencies file for pardis_workloads.
# This may be replaced when dependencies are built.
