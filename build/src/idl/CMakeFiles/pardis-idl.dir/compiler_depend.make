# Empty compiler generated dependencies file for pardis-idl.
# This may be replaced when dependencies are built.
