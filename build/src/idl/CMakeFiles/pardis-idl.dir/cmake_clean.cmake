file(REMOVE_RECURSE
  "CMakeFiles/pardis-idl.dir/main.cpp.o"
  "CMakeFiles/pardis-idl.dir/main.cpp.o.d"
  "pardis-idl"
  "pardis-idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis-idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
