
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idl/codegen.cpp" "src/idl/CMakeFiles/pardis_idl.dir/codegen.cpp.o" "gcc" "src/idl/CMakeFiles/pardis_idl.dir/codegen.cpp.o.d"
  "/root/repo/src/idl/include.cpp" "src/idl/CMakeFiles/pardis_idl.dir/include.cpp.o" "gcc" "src/idl/CMakeFiles/pardis_idl.dir/include.cpp.o.d"
  "/root/repo/src/idl/lexer.cpp" "src/idl/CMakeFiles/pardis_idl.dir/lexer.cpp.o" "gcc" "src/idl/CMakeFiles/pardis_idl.dir/lexer.cpp.o.d"
  "/root/repo/src/idl/parser.cpp" "src/idl/CMakeFiles/pardis_idl.dir/parser.cpp.o" "gcc" "src/idl/CMakeFiles/pardis_idl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pardis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/pardis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/pardis_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pardis_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pardis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
