file(REMOVE_RECURSE
  "CMakeFiles/pardis_idl.dir/codegen.cpp.o"
  "CMakeFiles/pardis_idl.dir/codegen.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/include.cpp.o"
  "CMakeFiles/pardis_idl.dir/include.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/lexer.cpp.o"
  "CMakeFiles/pardis_idl.dir/lexer.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/parser.cpp.o"
  "CMakeFiles/pardis_idl.dir/parser.cpp.o.d"
  "libpardis_idl.a"
  "libpardis_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
