file(REMOVE_RECURSE
  "CMakeFiles/pardis_sim.dir/clock.cpp.o"
  "CMakeFiles/pardis_sim.dir/clock.cpp.o.d"
  "CMakeFiles/pardis_sim.dir/testbed.cpp.o"
  "CMakeFiles/pardis_sim.dir/testbed.cpp.o.d"
  "libpardis_sim.a"
  "libpardis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
