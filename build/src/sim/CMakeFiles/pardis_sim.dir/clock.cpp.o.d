src/sim/CMakeFiles/pardis_sim.dir/clock.cpp.o: \
 /root/repo/src/sim/clock.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/clock.hpp
