# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;41;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_solvers "/root/repo/build/examples/solvers")
set_tests_properties(example_solvers PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dna_search "/root/repo/build/examples/dna_search")
set_tests_properties(example_dna_search PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;43;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline")
set_tests_properties(example_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;44;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_repo "/root/repo/build/examples/remote_repo")
set_tests_properties(example_remote_repo PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;45;add_test;/root/repo/examples/CMakeLists.txt;0;")
