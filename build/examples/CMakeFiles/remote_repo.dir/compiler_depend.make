# Empty compiler generated dependencies file for remote_repo.
# This may be replaced when dependencies are built.
