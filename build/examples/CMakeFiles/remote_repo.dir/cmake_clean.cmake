file(REMOVE_RECURSE
  "CMakeFiles/remote_repo.dir/remote_repo.cpp.o"
  "CMakeFiles/remote_repo.dir/remote_repo.cpp.o.d"
  "remote/quickstart.pardis.hpp"
  "remote_repo"
  "remote_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
