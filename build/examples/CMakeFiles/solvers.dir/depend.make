# Empty dependencies file for solvers.
# This may be replaced when dependencies are built.
