file(REMOVE_RECURSE
  "CMakeFiles/solvers.dir/solvers.cpp.o"
  "CMakeFiles/solvers.dir/solvers.cpp.o.d"
  "solvers"
  "solvers.pardis.hpp"
  "solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
