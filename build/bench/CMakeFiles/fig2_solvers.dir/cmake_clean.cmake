file(REMOVE_RECURSE
  "CMakeFiles/fig2_solvers.dir/fig2_solvers.cpp.o"
  "CMakeFiles/fig2_solvers.dir/fig2_solvers.cpp.o.d"
  "fig2_solvers"
  "fig2_solvers.pdb"
  "solvers.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
