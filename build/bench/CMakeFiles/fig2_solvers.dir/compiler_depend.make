# Empty compiler generated dependencies file for fig2_solvers.
# This may be replaced when dependencies are built.
