file(REMOVE_RECURSE
  "CMakeFiles/ubench_transfer.dir/ubench_transfer.cpp.o"
  "CMakeFiles/ubench_transfer.dir/ubench_transfer.cpp.o.d"
  "ubench_transfer"
  "ubench_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
