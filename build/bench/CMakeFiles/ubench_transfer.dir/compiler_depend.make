# Empty compiler generated dependencies file for ubench_transfer.
# This may be replaced when dependencies are built.
