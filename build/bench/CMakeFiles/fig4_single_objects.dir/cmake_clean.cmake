file(REMOVE_RECURSE
  "CMakeFiles/fig4_single_objects.dir/fig4_single_objects.cpp.o"
  "CMakeFiles/fig4_single_objects.dir/fig4_single_objects.cpp.o.d"
  "dna.pardis.hpp"
  "fig4_single_objects"
  "fig4_single_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_single_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
