file(REMOVE_RECURSE
  "CMakeFiles/ubench_invoke.dir/ubench_invoke.cpp.o"
  "CMakeFiles/ubench_invoke.dir/ubench_invoke.cpp.o.d"
  "ubench_invoke"
  "ubench_invoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_invoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
