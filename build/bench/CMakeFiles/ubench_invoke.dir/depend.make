# Empty dependencies file for ubench_invoke.
# This may be replaced when dependencies are built.
