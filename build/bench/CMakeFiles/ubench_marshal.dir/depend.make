# Empty dependencies file for ubench_marshal.
# This may be replaced when dependencies are built.
