file(REMOVE_RECURSE
  "CMakeFiles/ubench_marshal.dir/ubench_marshal.cpp.o"
  "CMakeFiles/ubench_marshal.dir/ubench_marshal.cpp.o.d"
  "ubench_marshal"
  "ubench_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
