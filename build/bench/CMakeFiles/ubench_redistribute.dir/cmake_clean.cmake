file(REMOVE_RECURSE
  "CMakeFiles/ubench_redistribute.dir/ubench_redistribute.cpp.o"
  "CMakeFiles/ubench_redistribute.dir/ubench_redistribute.cpp.o.d"
  "ubench_redistribute"
  "ubench_redistribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
