# Empty compiler generated dependencies file for ubench_redistribute.
# This may be replaced when dependencies are built.
