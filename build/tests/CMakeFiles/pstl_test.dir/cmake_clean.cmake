file(REMOVE_RECURSE
  "CMakeFiles/pstl_test.dir/pstl_test.cpp.o"
  "CMakeFiles/pstl_test.dir/pstl_test.cpp.o.d"
  "pstl_test"
  "pstl_test.pdb"
  "pstl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
