# Empty dependencies file for pstl_test.
# This may be replaced when dependencies are built.
