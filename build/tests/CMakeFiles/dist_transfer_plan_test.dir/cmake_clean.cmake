file(REMOVE_RECURSE
  "CMakeFiles/dist_transfer_plan_test.dir/dist_transfer_plan_test.cpp.o"
  "CMakeFiles/dist_transfer_plan_test.dir/dist_transfer_plan_test.cpp.o.d"
  "dist_transfer_plan_test"
  "dist_transfer_plan_test.pdb"
  "dist_transfer_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_transfer_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
