# Empty dependencies file for dist_transfer_plan_test.
# This may be replaced when dependencies are built.
