# Empty dependencies file for rts_thread_comm_test.
# This may be replaced when dependencies are built.
