file(REMOVE_RECURSE
  "CMakeFiles/rts_thread_comm_test.dir/rts_thread_comm_test.cpp.o"
  "CMakeFiles/rts_thread_comm_test.dir/rts_thread_comm_test.cpp.o.d"
  "rts_thread_comm_test"
  "rts_thread_comm_test.pdb"
  "rts_thread_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_thread_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
