
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rts_thread_comm_test.cpp" "tests/CMakeFiles/rts_thread_comm_test.dir/rts_thread_comm_test.cpp.o" "gcc" "tests/CMakeFiles/rts_thread_comm_test.dir/rts_thread_comm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/repo/CMakeFiles/pardis_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pardis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pardis_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/pardis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/pardis_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pardis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pardis_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
