# Empty dependencies file for core_comm_thread_test.
# This may be replaced when dependencies are built.
