file(REMOVE_RECURSE
  "CMakeFiles/dist_distribution_test.dir/dist_distribution_test.cpp.o"
  "CMakeFiles/dist_distribution_test.dir/dist_distribution_test.cpp.o.d"
  "dist_distribution_test"
  "dist_distribution_test.pdb"
  "dist_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
