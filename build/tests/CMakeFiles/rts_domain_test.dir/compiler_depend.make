# Empty compiler generated dependencies file for rts_domain_test.
# This may be replaced when dependencies are built.
