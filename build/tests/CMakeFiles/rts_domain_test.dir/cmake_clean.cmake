file(REMOVE_RECURSE
  "CMakeFiles/rts_domain_test.dir/rts_domain_test.cpp.o"
  "CMakeFiles/rts_domain_test.dir/rts_domain_test.cpp.o.d"
  "rts_domain_test"
  "rts_domain_test.pdb"
  "rts_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
