# Empty compiler generated dependencies file for pooma_test.
# This may be replaced when dependencies are built.
