# Empty dependencies file for pooma_test.
# This may be replaced when dependencies are built.
