file(REMOVE_RECURSE
  "CMakeFiles/pooma_test.dir/pooma_test.cpp.o"
  "CMakeFiles/pooma_test.dir/pooma_test.cpp.o.d"
  "pooma_test"
  "pooma_test.pdb"
  "pooma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pooma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
