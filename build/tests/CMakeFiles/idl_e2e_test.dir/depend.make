# Empty dependencies file for idl_e2e_test.
# This may be replaced when dependencies are built.
