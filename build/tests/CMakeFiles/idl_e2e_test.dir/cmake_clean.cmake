file(REMOVE_RECURSE
  "CMakeFiles/idl_e2e_test.dir/idl_e2e_test.cpp.o"
  "CMakeFiles/idl_e2e_test.dir/idl_e2e_test.cpp.o.d"
  "e2e.pardis.hpp"
  "idl_e2e_test"
  "idl_e2e_test.pdb"
  "idl_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
