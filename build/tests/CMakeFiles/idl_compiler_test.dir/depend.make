# Empty dependencies file for idl_compiler_test.
# This may be replaced when dependencies are built.
