file(REMOVE_RECURSE
  "CMakeFiles/idl_compiler_test.dir/idl_compiler_test.cpp.o"
  "CMakeFiles/idl_compiler_test.dir/idl_compiler_test.cpp.o.d"
  "idl_compiler_test"
  "idl_compiler_test.pdb"
  "idl_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
