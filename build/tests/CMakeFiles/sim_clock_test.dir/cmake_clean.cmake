file(REMOVE_RECURSE
  "CMakeFiles/sim_clock_test.dir/sim_clock_test.cpp.o"
  "CMakeFiles/sim_clock_test.dir/sim_clock_test.cpp.o.d"
  "sim_clock_test"
  "sim_clock_test.pdb"
  "sim_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
