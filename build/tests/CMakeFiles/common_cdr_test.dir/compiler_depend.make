# Empty compiler generated dependencies file for common_cdr_test.
# This may be replaced when dependencies are built.
