file(REMOVE_RECURSE
  "CMakeFiles/common_cdr_test.dir/common_cdr_test.cpp.o"
  "CMakeFiles/common_cdr_test.dir/common_cdr_test.cpp.o.d"
  "common_cdr_test"
  "common_cdr_test.pdb"
  "common_cdr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_cdr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
