file(REMOVE_RECURSE
  "CMakeFiles/core_orb_test.dir/core_orb_test.cpp.o"
  "CMakeFiles/core_orb_test.dir/core_orb_test.cpp.o.d"
  "core_orb_test"
  "core_orb_test.pdb"
  "core_orb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_orb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
