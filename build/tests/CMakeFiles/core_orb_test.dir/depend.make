# Empty dependencies file for core_orb_test.
# This may be replaced when dependencies are built.
