# Empty dependencies file for rts_collectives_test.
# This may be replaced when dependencies are built.
