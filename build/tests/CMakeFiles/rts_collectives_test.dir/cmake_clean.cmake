file(REMOVE_RECURSE
  "CMakeFiles/rts_collectives_test.dir/rts_collectives_test.cpp.o"
  "CMakeFiles/rts_collectives_test.dir/rts_collectives_test.cpp.o.d"
  "rts_collectives_test"
  "rts_collectives_test.pdb"
  "rts_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
