file(REMOVE_RECURSE
  "CMakeFiles/dist_dsequence_test.dir/dist_dsequence_test.cpp.o"
  "CMakeFiles/dist_dsequence_test.dir/dist_dsequence_test.cpp.o.d"
  "dist_dsequence_test"
  "dist_dsequence_test.pdb"
  "dist_dsequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_dsequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
