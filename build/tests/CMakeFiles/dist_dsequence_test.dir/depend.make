# Empty dependencies file for dist_dsequence_test.
# This may be replaced when dependencies are built.
