file(REMOVE_RECURSE
  "CMakeFiles/repo_test.dir/repo_test.cpp.o"
  "CMakeFiles/repo_test.dir/repo_test.cpp.o.d"
  "repo_test"
  "repo_test.pdb"
  "repo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
