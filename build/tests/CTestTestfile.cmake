# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_cdr_test[1]_include.cmake")
include("/root/repo/build/tests/common_misc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_clock_test[1]_include.cmake")
include("/root/repo/build/tests/rts_thread_comm_test[1]_include.cmake")
include("/root/repo/build/tests/rts_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/rts_domain_test[1]_include.cmake")
include("/root/repo/build/tests/dist_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/dist_transfer_plan_test[1]_include.cmake")
include("/root/repo/build/tests/dist_dsequence_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/core_orb_test[1]_include.cmake")
include("/root/repo/build/tests/idl_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/idl_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/pstl_test[1]_include.cmake")
include("/root/repo/build/tests/pooma_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/repo_test[1]_include.cmake")
include("/root/repo/build/tests/core_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/core_comm_thread_test[1]_include.cmake")
include("/root/repo/build/tests/core_transfer_matrix_test[1]_include.cmake")
