// Paper §4.2: parallel interaction — SPMD and single objects on one
// parallel server.
//
// A 4-thread server owns a DNA database searched collectively by an
// SPMD object; partial results accumulate in five lists (exact match
// plus the four edit-distance derivatives), each exposed through a
// *single* object. During the search the server periodically calls
// POA::process_requests(), so clients can query the lists while the
// SPMD computation is still running. Distributing the five single
// objects over the server's threads (instead of putting them all on
// thread 0) lets queries proceed in parallel — the effect Figure 4
// measures.
#include <array>
#include <cstdio>
#include <future>
#include <mutex>

#include "dna.pardis.hpp"
#include "workloads/dna.hpp"

using namespace pardis;
namespace wl = pardis::workloads;

namespace {

constexpr std::size_t kDbSize = 1200;
constexpr int kServerThreads = 4;
constexpr int kChunks = 40;       // process_requests() cadence during the search
constexpr int kQueryRounds = 40;  // fixed query schedule (deterministic totals)
// One weight-1.0 query costs this much modeled work; with 40 rounds of
// all five lists the total single-object query time is ~15 s at HOST2
// speed, in the spirit of the paper's fixed 30 s budget.
constexpr double kQueryFlops = 2.6e6;

struct SharedLists {
  std::mutex mutex;
  std::array<std::vector<std::string>, wl::kEditKindCount> lists;
};

class DnaDbImpl : public dna::POA_dna_db {
 public:
  DnaDbImpl(rts::DomainContext& ctx, core::Poa& poa, SharedLists& lists,
            const std::vector<std::string>& db)
      : ctx_(&ctx), poa_(&poa), lists_(&lists), db_(&db) {}

  dna::status search(const std::string& s) override {
    if (ctx_->rank == 0) {
      std::lock_guard<std::mutex> lock(lists_->mutex);
      for (auto& l : lists_->lists) l.clear();
    }
    rts::barrier(ctx_->comm);

    // Each computing thread scans its share of the database, in
    // lock-step chunks so the periodic poll stays collective.
    const auto share =
        dist::Distribution::block(db_->size(), ctx_->size).intervals(ctx_->rank);
    const std::size_t begin = share.empty() ? 0 : share.front().begin;
    const std::size_t end = share.empty() ? 0 : share.back().end;
    for (int chunk = 0; chunk < kChunks; ++chunk) {
      const std::size_t a = begin + (end - begin) * chunk / kChunks;
      const std::size_t b = begin + (end - begin) * (chunk + 1) / kChunks;
      for (int k = 0; k < wl::kEditKindCount; ++k) {
        const auto kind = static_cast<wl::EditKind>(k);
        auto found = wl::search_range(*db_, a, b, s, kind);
        ctx_->charge_flops(wl::search_flops(*db_, a, b, s.size(), kind));
        if (!found.empty()) {
          std::lock_guard<std::mutex> lock(lists_->mutex);
          auto& list = lists_->lists[static_cast<std::size_t>(k)];
          list.insert(list.end(), found.begin(), found.end());
        }
      }
      // Make the partial lists available to clients mid-search
      // (paper: "At this time the server can make the lists accessible
      // to the clients by calling POA::process_requests()").
      poa_->process_requests();
    }
    // Every thread must have published its matches before rank 0's
    // reply tells the client the search completed.
    rts::barrier(ctx_->comm);
    return dna::status::OK;
  }

 private:
  rts::DomainContext* ctx_;
  core::Poa* poa_;
  SharedLists* lists_;
  const std::vector<std::string>* db_;
};

class ListServerImpl : public dna::POA_list_server {
 public:
  /// `query_flops` is the modeled cost of one query at weight 1.0; the
  /// per-kind weights make the five servers unequally expensive, which
  /// is what Fig. 4's count-based balancing trips over.
  ListServerImpl(wl::EditKind kind, SharedLists& lists, const sim::HostModel* host,
                 double query_flops)
      : kind_(kind), lists_(&lists), host_(host), query_flops_(query_flops) {}

  void match(const std::string& s, dna::dna_list& l) override {
    std::vector<std::string> snapshot;
    {
      std::lock_guard<std::mutex> lock(lists_->mutex);
      snapshot = lists_->lists[static_cast<std::size_t>(kind_)];
    }
    for (const auto& seq : snapshot)
      if (wl::matches_exact(seq, s)) l.push_back(seq);
    if (host_ != nullptr) host_->charge_flops(query_flops_ * wl::query_weight(kind_));
  }

 private:
  wl::EditKind kind_;
  SharedLists* lists_;
  const sim::HostModel* host_;
  double query_flops_;
};

const char* kListNames[wl::kEditKindCount] = {
    "substring_list", "transpose_list", "deletion_list", "substitution_list",
    "addition_list"};

struct RunResult {
  double client_seconds = 0.0;
  int poll_rounds = 0;
  std::array<std::size_t, wl::kEditKindCount> matches{};
  std::array<double, kServerThreads> thread_clocks{};
};

/// Runs search + concurrent list queries with the five single objects
/// placed by `owner_of_kind` (rank per list, the §4.2 placements).
RunResult run(const std::array<int, wl::kEditKindCount>& owner_of_kind,
              const std::vector<std::string>& db) {
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&testbed);
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);
  const sim::HostModel* host2 = testbed.host(sim::Testbed::kHost2);

  SharedLists lists;
  rts::Domain server("dna-server", kServerThreads, host2);
  std::promise<core::Poa*> pp;
  auto pf = pp.get_future();
  server.start([&](rts::DomainContext& ctx) {
    core::Poa poa(orb, ctx);
    DnaDbImpl db_servant(ctx, poa, lists, db);
    poa.activate_spmd(db_servant, "dna_database");
    // Each thread activates the single objects assigned to it.
    std::vector<std::unique_ptr<ListServerImpl>> mine;
    for (int k = 0; k < wl::kEditKindCount; ++k) {
      if (owner_of_kind[static_cast<std::size_t>(k)] != ctx.rank) continue;
      mine.push_back(std::make_unique<ListServerImpl>(static_cast<wl::EditKind>(k),
                                                      lists, ctx.host, kQueryFlops));
      poa.activate_single(*mine.back(), kListNames[k]);
    }
    // Every rank's list server must be registered before the client
    // is told the server is up.
    rts::barrier(ctx.comm);
    if (ctx.rank == 0) pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* poa = pf.get();

  RunResult result;
  rts::Domain client("client", 1, testbed.host(sim::Testbed::kHost1));
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto dna_database = dna::dna_db::_spmd_bind(ctx, "dna_database");
    std::array<dna::list_server::_var, wl::kEditKindCount> list_srv;
    for (int k = 0; k < wl::kEditKindCount; ++k)
      list_srv[static_cast<std::size_t>(k)] = dna::list_server::_bind(ctx, kListNames[k]);

    const double start = dctx.clock.now();
    core::Future<dna::status> stat;
    dna_database->search_nb("ACGT", stat);
    // A fixed schedule of non-blocking queries runs while the search
    // computes (the paper fixed the total single-object query work so
    // the two placements are comparable).
    for (int round = 0; round < kQueryRounds; ++round) {
      std::array<core::Future<dna::dna_list>, wl::kEditKindCount> partial;
      for (int k = 0; k < wl::kEditKindCount; ++k)
        list_srv[static_cast<std::size_t>(k)]->match_nb(
            "GGG", partial[static_cast<std::size_t>(k)]);
      for (auto& f : partial) (void)f.get();
      if (!stat.resolved()) ++result.poll_rounds;
    }
    (void)stat.get();
    // Final processing once the search completed.
    for (int k = 0; k < wl::kEditKindCount; ++k) {
      dna::dna_list l;
      list_srv[static_cast<std::size_t>(k)]->match("GGG", l);
      result.matches[static_cast<std::size_t>(k)] = l.size();
    }
    result.client_seconds = dctx.clock.now() - start;
  });

  poa->deactivate();
  server.join();
  for (int r = 0; r < kServerThreads; ++r)
    result.thread_clocks[static_cast<std::size_t>(r)] = server.clock(r).now();
  return result;
}

}  // namespace

int main() {
  auto db = wl::make_dna_database(kDbSize, 40, 80, 1997);
  std::printf("PARDIS DNA search (paper §4.2): %zu sequences, %d server threads\n\n",
              db.size(), kServerThreads);

  // Centralized: all five single objects on thread 0.
  RunResult centralized = run({0, 0, 0, 0, 0}, db);
  // Distributed: balanced over threads *by number* (paper's placement).
  RunResult distributed = run({0, 1, 2, 3, 0}, db);

  std::printf("%-22s %12s %12s\n", "list", "centralized", "distributed");
  for (int k = 0; k < wl::kEditKindCount; ++k)
    std::printf("%-22s %12zu %12zu\n", kListNames[k],
                centralized.matches[static_cast<std::size_t>(k)],
                distributed.matches[static_cast<std::size_t>(k)]);
  std::printf("\nclient time, centralized single objects: %7.2f s (%d poll rounds)\n",
              centralized.client_seconds, centralized.poll_rounds);
  std::printf("client time, distributed single objects: %7.2f s (%d poll rounds)\n",
              distributed.client_seconds, distributed.poll_rounds);
  std::printf("\nserver thread virtual clocks (s):\n  centralized:");
  for (double c : centralized.thread_clocks) std::printf(" %6.2f", c);
  std::printf("\n  distributed:");
  for (double c : distributed.thread_clocks) std::printf(" %6.2f", c);
  std::printf("\n");
  std::printf("\ndna example done\n");
  return 0;
}
