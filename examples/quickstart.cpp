// Quickstart: the smallest complete PARDIS metaapplication.
//
//  1. a single object (`greeter`) served by a one-thread server,
//  2. an SPMD object (`accumulator`) served by a 4-thread parallel
//     server, invoked by a 2-thread SPMD client with distributed
//     arguments,
//  3. blocking and non-blocking (future-returning) invocations.
//
// Everything runs in this process over the in-process transport; the
// same code works across processes with TcpTransport (see the
// remote_repo example).
#include <cstdio>
#include <future>

#include "quickstart.pardis.hpp"

using namespace pardis;

namespace {

// --- servants ---------------------------------------------------------------

class GreeterImpl : public quickstart::POA_greeter {
 public:
  std::string hello(const String& who) override { return "hello, " + who + "!"; }
  Long add(Long a, Long b) override { return a + b; }
};

class AccumulatorImpl : public quickstart::POA_accumulator {
 public:
  explicit AccumulatorImpl(rts::Communicator& comm) : comm_(&comm) {}

  double total(const quickstart::dvec& values) override {
    double local = 0.0;
    for (double v : values.local()) local += v;
    return rts::allreduce_sum(*comm_, local);
  }

  void scale(double factor, const quickstart::dvec& values,
             quickstart::dvec& scaled) override {
    // Each server thread fills its part of the result from the
    // (location-transparent) input.
    rts::barrier(*comm_);
    for (std::size_t li = 0; li < scaled.local_size(); ++li)
      scaled.local()[li] = factor * values[scaled.local_to_global(li)];
    rts::barrier(*comm_);
  }

 private:
  rts::Communicator* comm_;
};

}  // namespace

int main() {
  transport::LocalTransport transport;
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);

  // --- single-object server (one computing thread) -------------------------
  rts::Domain greeter_server("greeter-server", 1);
  std::promise<core::Poa*> greeter_poa;
  auto greeter_poa_f = greeter_poa.get_future();
  greeter_server.start([&](rts::DomainContext& ctx) {
    core::Poa poa(orb, ctx);
    GreeterImpl servant;
    poa.activate_single(servant, "greeter");
    greeter_poa.set_value(&poa);
    poa.impl_is_ready();  // poll until deactivated
  });

  // --- SPMD-object server (four computing threads) --------------------------
  rts::Domain acc_server("accumulator-server", 4);
  std::promise<core::Poa*> acc_poa;
  auto acc_poa_f = acc_poa.get_future();
  acc_server.start([&](rts::DomainContext& ctx) {
    core::Poa poa(orb, ctx);
    AccumulatorImpl servant(ctx.comm);
    poa.activate_spmd(servant, "accumulator",
                      quickstart::POA_accumulator::_default_arg_specs());
    if (ctx.rank == 0) acc_poa.set_value(&poa);
    poa.impl_is_ready();
  });

  // Both promises are set after activation, so the objects are
  // registered once the futures resolve.
  core::Poa* greeter_p = greeter_poa_f.get();
  core::Poa* acc_p = acc_poa_f.get();

  // --- a single client talks to the greeter --------------------------------
  {
    core::ClientCtx ctx(orb);
    auto g = quickstart::greeter::_bind(ctx, "greeter");
    std::printf("greeter says: %s\n", g->hello("PARDIS").c_str());
    std::printf("2 + 40 = %d\n", g->add(2, 40));

    // Non-blocking variant: returns a future immediately.
    core::Future<Long> sum;
    g->add_nb(20, 22, sum);
    std::printf("future resolved? %s\n", sum.resolved() ? "maybe already" : "not yet");
    std::printf("non-blocking 20 + 22 = %d\n", static_cast<Long>(sum.get()));
  }

  // --- a 2-thread SPMD client talks to the 4-thread accumulator ------------
  rts::Domain client("client", 2);
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    auto acc = quickstart::accumulator::_spmd_bind(ctx, "accumulator");

    // A distributed sequence of 1000 values, block-distributed over
    // the client's two threads; the ORB moves each thread's pieces
    // directly to the server threads that own them.
    quickstart::dvec values(dctx.comm, 1000);
    for (std::size_t li = 0; li < values.local_size(); ++li)
      values.local()[li] = static_cast<double>(values.local_to_global(li));

    const double sum = acc->total(values);
    if (dctx.rank == 0) std::printf("sum(0..999) = %.1f\n", sum);

    quickstart::dvec scaled(dctx.comm, 1000);
    acc->scale(0.5, values, scaled);
    if (dctx.rank == 0)
      std::printf("scaled[42] = %.2f (expected 21.00)\n", scaled[42]);

    // Non-blocking with a distributed out argument.
    core::Future<quickstart::dvec_var> scaled_nb;
    acc->scale_nb(2.0, values, scaled_nb, 1000, core::DistSpec::block());
    quickstart::dvec_var result = scaled_nb;  // blocks until resolved
    if (dctx.rank == 0)
      std::printf("scale_nb[10] = %.2f (expected 20.00)\n", (*result)[10]);
  });

  greeter_p->deactivate();
  acc_p->deactivate();
  greeter_server.join();
  acc_server.join();
  std::printf("quickstart done\n");
  return 0;
}
