// Paper §4.1: concurrent execution of data-parallel components.
//
// The same linear system is solved by a direct server (Gaussian
// elimination) and an iterative server (Jacobi); an SPMD client
// invokes the iterative solver non-blocking on a remote host, the
// direct solver blocking on its own host, then compares the two
// solutions. Virtual time runs on the paper's modeled testbed
// (HOST1 = 4-node SGI Onyx, HOST2 = 10-node SGI Power Challenge,
// dedicated ATM link), so the printed seconds are comparable to
// Figure 2 of the paper; the computations themselves are real.
#include <cmath>
#include <cstdio>
#include <future>
#include <optional>

#include "solvers.pardis.hpp"
#include "workloads/linear.hpp"

using namespace pardis;
namespace wl = pardis::workloads;

namespace {

constexpr std::size_t kN = 500;
constexpr double kTol = 1e-6;

class DirectImpl : public solvers::POA_direct {
 public:
  explicit DirectImpl(rts::DomainContext& ctx) : ctx_(&ctx) {}

  void solve(const solvers::matrix& A, const solvers::vector& B,
             solvers::vector& X) override {
    // Arguments arrive concentrated on server rank 0 (the registered
    // spec from the IDL typedefs).
    if (ctx_->rank == 0) {
      std::vector<std::vector<double>> a(A.local().begin(), A.local().end());
      std::vector<double> b(B.local().begin(), B.local().end());
      ctx_->charge_flops(wl::gaussian_flops(b.size()));
      auto x = wl::gaussian_solve(std::move(a), std::move(b));
      std::copy(x.begin(), x.end(), X.local().begin());
    }
  }

 private:
  rts::DomainContext* ctx_;
};

class IterativeImpl : public solvers::POA_iterative {
 public:
  explicit IterativeImpl(rts::DomainContext& ctx) : ctx_(&ctx) {}

  void solve(double tol, const solvers::matrix& A, const solvers::vector& B,
             solvers::vector& X) override {
    if (ctx_->rank == 0) {
      std::vector<std::vector<double>> a(A.local().begin(), A.local().end());
      std::vector<double> b(B.local().begin(), B.local().end());
      auto res = wl::jacobi_solve(a, b, tol);
      ctx_->charge_flops(wl::jacobi_flops(b.size(), res.iterations));
      std::copy(res.x.begin(), res.x.end(), X.local().begin());
    }
  }

 private:
  rts::DomainContext* ctx_;
};

/// One server domain hosting a direct and/or an iterative object.
class SolverServer {
 public:
  SolverServer(core::Orb& orb, const std::string& name_suffix, const sim::HostModel* host,
               bool with_direct, bool with_iterative)
      : domain_("solvers@" + host->name, 2, host) {
    std::promise<core::Poa*> pp;
    auto pf = pp.get_future();
    domain_.start([&orb, name_suffix, with_direct, with_iterative, &pp](
                      rts::DomainContext& ctx) {
      core::Poa poa(orb, ctx);
      DirectImpl direct_servant(ctx);
      IterativeImpl iterative_servant(ctx);
      if (with_direct)
        poa.activate_spmd(direct_servant, "direct_solver" + name_suffix,
                          solvers::POA_direct::_default_arg_specs());
      if (with_iterative)
        poa.activate_spmd(iterative_servant, "itrt_solver" + name_suffix,
                          solvers::POA_iterative::_default_arg_specs());
      if (ctx.rank == 0) pp.set_value(&poa);
      poa.impl_is_ready();
    });
    poa_ = pf.get();
  }

  ~SolverServer() {
    poa_->deactivate();
    domain_.join();
  }

 private:
  rts::Domain domain_;
  core::Poa* poa_ = nullptr;
};

struct ScenarioResult {
  double elapsed_virtual_s = 0.0;
  double agreement = 0.0;
};

enum class Mode { kDirectOnly, kIterativeOnly, kDistributed, kSingleServer };

/// Runs the §4.1 client against the given deployment and reports the
/// client's virtual elapsed time. Fresh servers per run keep the
/// virtual clocks of successive measurements independent.
ScenarioResult run_scenario(core::Orb& orb, const sim::Testbed& testbed, Mode mode,
                            const std::string& direct_host, const std::string& iter_host) {
  const sim::HostModel* client_host = testbed.host(sim::Testbed::kHost1);
  const bool single_server = direct_host == iter_host;
  std::optional<SolverServer> server_a;
  std::optional<SolverServer> server_b;
  if (single_server) {
    server_a.emplace(orb, "", testbed.host(direct_host), true, true);
  } else {
    server_a.emplace(orb, "", testbed.host(direct_host), true, false);
    server_b.emplace(orb, "", testbed.host(iter_host), false, true);
  }
  ScenarioResult out;
  rts::Domain client("client", 2, client_host);
  client.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(orb, dctx);
    // The paper's client code, almost verbatim (lines 00-11 in §4.1).
    auto d_solver = solvers::direct::_spmd_bind(ctx, "direct_solver", direct_host);
    auto i_solver = solvers::iterative::_spmd_bind(ctx, "itrt_solver", iter_host);

    wl::DenseSystem sys = wl::make_system(kN, 2026);
    solvers::matrix A(dctx.comm, kN);
    solvers::vector B(dctx.comm, kN);
    for (std::size_t li = 0; li < A.local_size(); ++li)
      A.local()[li] = sys.a[A.local_to_global(li)];
    for (std::size_t li = 0; li < B.local_size(); ++li)
      B.local()[li] = sys.b[B.local_to_global(li)];

    const double start = dctx.clock.now();
    core::Future<solvers::vector_var> X1;
    solvers::vector X2_real(dctx.comm, kN);
    if (mode == Mode::kDistributed || mode == Mode::kSingleServer) {
      i_solver->solve_nb(kTol, A, B, X1, kN, core::DistSpec::block());
      d_solver->solve(A, B, X2_real);
      solvers::vector_var X1_real = X1;  // blocks until the future resolves
      double local = 0.0;
      for (std::size_t li = 0; li < X1_real->local_size(); ++li) {
        const double diff = std::abs(X1_real->local()[li] - X2_real.local()[li]);
        local = std::max(local, diff);
      }
      out.agreement = rts::allreduce_max(dctx.comm, local);
    } else if (mode == Mode::kDirectOnly) {
      d_solver->solve(A, B, X2_real);
    } else {
      i_solver->solve_nb(kTol, A, B, X1, kN, core::DistSpec::block());
      solvers::vector_var X1_real = X1;
    }
    const double elapsed = dctx.clock.now() - start;
    if (dctx.rank == 0) out.elapsed_virtual_s = elapsed;
  });
  return out;
}

}  // namespace

int main() {
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  transport::LocalTransport transport(&testbed);
  core::InProcessRegistry registry;
  core::Orb orb(transport, registry);
  const sim::HostModel* host1 = testbed.host(sim::Testbed::kHost1);
  const sim::HostModel* host2 = testbed.host(sim::Testbed::kHost2);

  (void)host1;
  (void)host2;
  std::printf("PARDIS solvers metaapplication (paper §4.1), n = %zu\n\n", kN);

  // Distributed deployment: direct on HOST1 (with the client), the
  // slower iterative application on the faster remote HOST2.
  auto t_d = run_scenario(orb, testbed, Mode::kDirectOnly, "HOST1", "HOST2");
  auto t_i = run_scenario(orb, testbed, Mode::kIterativeOnly, "HOST1", "HOST2");
  auto t = run_scenario(orb, testbed, Mode::kDistributed, "HOST1", "HOST2");
  std::printf("direct method alone    (HOST1): %7.2f s\n", t_d.elapsed_virtual_s);
  std::printf("iterative method alone (HOST2): %7.2f s\n", t_i.elapsed_virtual_s);
  std::printf("different servers:              %7.2f s   (t = t_o + max(t_i, t_d))\n",
              t.elapsed_virtual_s);
  std::printf("solution agreement |X1 - X2| = %.2e\n\n", t.agreement);

  // Single-server deployment: both objects on one HOST1 server — the
  // two requests serialize in the server's polling loop. Switching
  // deployments changes only the host argument of the bind calls.
  auto t_same = run_scenario(orb, testbed, Mode::kSingleServer, "HOST1", "HOST1");
  std::printf("same server (HOST1):            %7.2f s   (requests serialize)\n",
              t_same.elapsed_virtual_s);

  std::printf("\nsolvers example done\n");
  return 0;
}
