// Distribution machinery demo: real TCP sockets, a repository server
// defining the naming domain, and the implementation repository with
// on-demand activation (paper §2.2).
//
//  - a RepositoryServer exposes one namespace over TCP;
//  - server and client sides use *separate* TCP transports (separate
//    listening sockets — the same wire path as separate processes);
//  - the greeter implementation is not running initially: the first
//    bind triggers the activation agent, which launches the server
//    domain; the object registers itself with the remote repository
//    and the bind completes.
#include <cstdio>
#include <future>

#include "quickstart.pardis.hpp"
#include "repo/impl_repository.hpp"
#include "repo/repository.hpp"

using namespace pardis;

namespace {

class GreeterImpl : public quickstart::POA_greeter {
 public:
  std::string hello(const String& who) override {
    return "greetings over TCP, " + who;
  }
  Long add(Long a, Long b) override { return a + b; }
};

}  // namespace

int main() {
  // The repository daemon with its own transport and namespace.
  transport::TcpTransport repo_tp(0);
  repo::RepositoryServer repository(repo_tp, std::make_shared<core::InProcessRegistry>());
  std::printf("repository listening at %s\n", repository.addr().to_string().c_str());

  // Server side: own TCP transport, registry view through the wire.
  transport::TcpTransport server_tp(0);
  repo::RemoteRegistry server_registry(server_tp, repository.addr());
  core::Orb server_orb(server_tp, server_registry);

  // Client side: another transport and registry connection.
  transport::TcpTransport client_tp(0);
  repo::RemoteRegistry client_registry(client_tp, repository.addr());
  core::Orb client_orb(client_tp, client_registry);

  // Register HOW to start the greeter instead of starting it.
  repo::ImplRepository impls;
  std::promise<core::Poa*> poa_promise;
  auto poa_future = poa_promise.get_future();
  impls.register_impl(
      "tcp-greeter",
      repo::ActivationRecord{[&]() -> std::unique_ptr<rts::Domain> {
                               std::printf("activation agent: launching greeter server\n");
                               auto domain = std::make_unique<rts::Domain>("greeter", 1);
                               domain->start([&](rts::DomainContext& ctx) {
                                 core::Poa poa(server_orb, ctx);
                                 GreeterImpl servant;
                                 poa.activate_single(servant, "tcp-greeter");
                                 poa_promise.set_value(&poa);
                                 poa.impl_is_ready();
                               });
                               return domain;
                             },
                             ""});
  repo::ActivationAgent agent(impls);
  agent.attach(client_orb);

  std::printf("names before bind: %zu\n", client_registry.list().size());

  // First bind activates; later binds reuse the running server.
  core::ClientCtx ctx(client_orb);
  auto greeter = quickstart::greeter::_bind(ctx, "tcp-greeter");
  std::printf("%s\n", greeter->hello("PARDIS").c_str());
  std::printf("12 + 30 = %d\n", greeter->add(12, 30));

  auto names = client_registry.list();
  std::printf("names after bind: %zu (%s)\n", names.size(),
              names.empty() ? "-" : names[0].c_str());

  auto again = quickstart::greeter::_bind(ctx, "tcp-greeter");
  std::printf("%s\n", again->hello("second binding").c_str());
  std::printf("launches: %zu (implementation reused)\n", agent.launched());

  poa_future.get()->deactivate();
  agent.join_all();
  std::printf("remote_repo example done\n");
  return 0;
}
