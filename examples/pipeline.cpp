// Paper §4.3: a pipelined metaapplication built from components in
// *different* parallel packages.
//
//   - a POOMA diffusion application (SPMD client, SGI PC model) runs a
//     9-point-stencil simulation; every time-step it pipelines the
//     field to a visualizer, and every 5th step to
//   - an HPC++ PSTL gradient server (SPMD, IBM SP/2 model), which in
//     turn pipelines its result to its own visualizer,
//   - two sequential visualizer servers (plain C++ mapping).
//
// One .idl file generates three stub variants (-pooma / -hpcxx / plain)
// so each component speaks its package's native container; the ORB
// moves the data between them without the programmer translating
// anything. All invocations are non-blocking with depth-1 pipelining,
// so the congestion effects the paper reports show up in the virtual
// clock.
#include <cstdio>
#include <future>
#include <optional>

#include "pipeline_hpcxx.pardis.hpp"
#include "pipeline_plain.pardis.hpp"
#include "pipeline_pooma.pardis.hpp"
#include "pooma/field2d.hpp"
#include "pstl/distributed_vector.hpp"

using namespace pardis;

namespace {

constexpr std::size_t kGrid = static_cast<std::size_t>(pipeline_plain::N);  // 128
constexpr int kSteps = 100;
constexpr int kGradientEvery = 5;
// Modeled per-cell work (1997-scale): the diffusion application is
// "relatively lightweight"; the gradient costs more per field.
constexpr double kDiffusionFlopsPerCell = 1100.0;
constexpr double kGradientFlopsPerCell = 4400.0;
constexpr double kRenderFlopsPerCell = 40.0;

/// Sequential visualizer (plain mapping: field == DSequence<double>).
class VisualizerImpl : public pipeline_plain::POA_visualizer {
 public:
  VisualizerImpl(const char* label, const sim::HostModel* host)
      : label_(label), host_(host) {}

  int frames = 0;
  double last_max = 0.0;

  void show(const pipeline_plain::field& myfield) override {
    double mx = 0.0;
    for (double v : myfield.local()) mx = std::max(mx, v);
    last_max = mx;
    ++frames;
    if (host_ != nullptr)
      host_->charge_flops(kRenderFlopsPerCell * static_cast<double>(myfield.size()));
  }

 private:
  const char* label_;
  const sim::HostModel* host_;
};

/// Gradient server (HPC++ mapping: field == pstl::DistributedVector).
/// It is simultaneously a server (field_operations) and a client (of
/// its visualizer) — each computing thread owns a ClientCtx.
class GradientImpl : public pipeline_hpcxx::POA_field_operations {
 public:
  GradientImpl(rts::DomainContext& ctx, core::Orb& orb) : ctx_(&ctx) {
    client_.emplace(orb, ctx);
    viz_ = pipeline_hpcxx::visualizer::_spmd_bind(*client_, "gradient_viz");
  }

  void gradient(const pipeline_hpcxx::field& myfield) override {
    pipeline_hpcxx::field g(myfield.comm(), myfield.distribution());
    pstl::gradient_magnitude(myfield, g, kGrid);
    ctx_->charge_flops(kGradientFlopsPerCell * static_cast<double>(myfield.size()) /
                       ctx_->size);
    // Pipeline the result onward; wait for the previous frame first
    // (depth-1 pipeline).
    if (prev_) prev_->get();
    prev_.emplace();
    viz_->show_nb(g, *prev_);
  }

 private:
  rts::DomainContext* ctx_;
  std::optional<core::ClientCtx> client_;
  pipeline_hpcxx::visualizer::_var viz_;
  std::optional<core::FutureVoid> prev_;
};

struct Deployment {
  sim::Testbed testbed = sim::Testbed::paper_testbed();
  transport::LocalTransport transport{&testbed};
  core::InProcessRegistry registry;
  core::Orb orb{transport, registry};
};

/// Starts one single-threaded visualizer server; returns its POA.
core::Poa* start_visualizer(Deployment& dep, rts::Domain& domain, const char* name,
                            const char* host) {
  auto pp = std::make_shared<std::promise<core::Poa*>>();
  auto pf = pp->get_future();
  domain.start([&dep, name, host, pp](rts::DomainContext& ctx) {
    core::Poa poa(dep.orb, ctx);
    VisualizerImpl servant(name, dep.testbed.host(host));
    poa.activate_spmd(servant, name,
                      pipeline_plain::POA_visualizer::_default_arg_specs());
    pp->set_value(&poa);
    poa.impl_is_ready();
    std::printf("  [%s] rendered %d frames (last max %.3f)\n", name, servant.frames,
                servant.last_max);
  });
  return pf.get();
}

}  // namespace

int main() {
  Deployment dep;
  const int nprocs = 4;  // diffusion and gradient use matching widths
  std::printf("PARDIS pipeline metaapplication (paper §4.3)\n");
  std::printf("grid %zux%zu, %d steps, gradient every %d steps, %d+%d processors\n\n",
              kGrid, kGrid, kSteps, kGradientEvery, nprocs, nprocs);

  // Visualizers: one on the diffusion host, one on a workstation.
  rts::Domain viz1_domain("viz1", 1, dep.testbed.host(sim::Testbed::kHost2));
  rts::Domain viz2_domain("viz2", 1, dep.testbed.host(sim::Testbed::kWorkstation));
  core::Poa* viz1_poa = start_visualizer(dep, viz1_domain, "diffusion_viz",
                                         sim::Testbed::kHost2);
  core::Poa* viz2_poa = start_visualizer(dep, viz2_domain, "gradient_viz",
                                         sim::Testbed::kWorkstation);

  // Gradient server on the SP/2.
  rts::Domain grad_domain("gradient", nprocs, dep.testbed.host(sim::Testbed::kSp2));
  std::promise<core::Poa*> grad_pp;
  auto grad_pf = grad_pp.get_future();
  grad_domain.start([&](rts::DomainContext& ctx) {
    core::Poa poa(dep.orb, ctx);
    GradientImpl servant(ctx, dep.orb);
    poa.activate_spmd(servant, "field_operations",
                      pipeline_hpcxx::POA_field_operations::_default_arg_specs());
    if (ctx.rank == 0) grad_pp.set_value(&poa);
    poa.impl_is_ready();
  });
  core::Poa* grad_poa = grad_pf.get();

  // The diffusion application: an SPMD *client* (paper: "the diffusion
  // unit is a parallel client ... and therefore no interface
  // specification for diffusion is required").
  double overall = 0.0;
  rts::Domain diffusion("diffusion", nprocs, dep.testbed.host(sim::Testbed::kHost2));
  diffusion.run([&](rts::DomainContext& dctx) {
    core::ClientCtx ctx(dep.orb, dctx);
    auto show_srv = pipeline_pooma::visualizer::_spmd_bind(ctx, "diffusion_viz");
    auto grad_srv = pipeline_pooma::field_operations::_spmd_bind(ctx, "field_operations");

    pipeline_pooma::field u(dctx.comm, kGrid, kGrid);  // a genuine POOMA Field2D
    pipeline_pooma::field tmp(dctx.comm, kGrid, kGrid);
    // Hot square in the center.
    for (std::size_t r = 0; r < u.local_rows(); ++r)
      for (std::size_t c = 0; c < kGrid; ++c) {
        const std::size_t gr = u.first_row() + r;
        u.at(r, c) = (gr > kGrid / 3 && gr < 2 * kGrid / 3 && c > kGrid / 3 &&
                      c < 2 * kGrid / 3)
                         ? 100.0
                         : 0.0;
      }

    const double start = dctx.clock.now();
    std::optional<core::FutureVoid> show_prev, grad_prev;
    for (int step = 1; step <= kSteps; ++step) {
      pooma::diffusion_step(u, tmp, 0.3);
      std::swap(u.storage(), tmp.storage());
      dctx.charge_flops(kDiffusionFlopsPerCell * static_cast<double>(kGrid * kGrid) /
                        dctx.size);

      // Pipeline the field to the visualizer every step (depth-1).
      if (show_prev) show_prev->get();
      show_prev.emplace();
      show_srv->show_nb(u, *show_prev);

      if (step % kGradientEvery == 0) {
        if (grad_prev) grad_prev->get();
        grad_prev.emplace();
        grad_srv->gradient_nb(u, *grad_prev);
      }
    }
    if (show_prev) show_prev->get();
    if (grad_prev) grad_prev->get();
    const double elapsed = dctx.clock.now() - start;
    if (dctx.rank == 0) overall = elapsed;
  });

  grad_poa->deactivate();
  grad_domain.join();
  const double gradient_time = grad_domain.max_sim_time();
  viz1_poa->deactivate();
  viz2_poa->deactivate();
  viz1_domain.join();
  viz2_domain.join();

  std::printf("\noverall time (client's perspective): %7.2f s\n", overall);
  std::printf("gradient component busy time:        %7.2f s\n", gradient_time);
  std::printf("pipeline example done\n");
  return 0;
}
