#include "ft/ft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/communicator.hpp"
#include "rts/tags.hpp"

namespace pardis::ft {

RetryPolicy RetryPolicy::from_env() {
  static const RetryPolicy cached = [] {
    RetryPolicy p;
    if (const char* v = std::getenv("PARDIS_FT_RETRIES")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 1) p.max_attempts = static_cast<int>(n);
    }
    if (const char* v = std::getenv("PARDIS_FT_BACKOFF_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms >= 0) p.initial_backoff = std::chrono::milliseconds(ms);
    }
    return p;
  }();
  return cached;
}

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy, int attempt,
                                        std::uint64_t salt) {
  double ms = static_cast<double>(policy.initial_backoff.count()) *
              std::pow(policy.multiplier, attempt - 1);
  // splitmix64 finalizer over (salt, attempt): deterministic jitter,
  // different per rank/binding so retries de-synchronize.
  std::uint64_t z = salt + static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  ms *= 1.0 + policy.jitter * u;
  return std::chrono::milliseconds(static_cast<long>(ms));
}

namespace {

/// What one attempt phase (send or wait) produced on this rank.
struct Outcome {
  bool failed = false;
  bool retryable = false;
  std::string message;
  std::exception_ptr error;
  /// Server retry-after hint (kOverload replies); 0 = none.
  unsigned retry_after_ms = 0;
  /// Classification of the failure (drives pool failover decisions).
  ErrorCode code = ErrorCode::kUnknown;
};

Outcome run_guarded(const std::function<void()>& fn) {
  Outcome out;
  try {
    fn();
  } catch (const OverloadError& e) {
    // A shed request is retryable by construction (the server never
    // dispatched it); honor its retry-after hint. Must be caught ahead
    // of the SystemException arm it derives from.
    out = {true, true, e.what(), std::current_exception(), e.retry_after_ms(), e.code()};
  } catch (const TransientError& e) {
    out = {true, true, e.what(), std::current_exception(), 0, e.code()};
  } catch (const CommFailure& e) {
    out = {true, true, e.what(), std::current_exception(), 0, e.code()};
  } catch (const TimeoutError& e) {
    out = {true, true, e.what(), std::current_exception(), 0, e.code()};
  } catch (const SystemException& e) {
    // Not retryable, but still reported to the agreement so the other
    // ranks do not block on a peer that already threw.
    out = {true, false, e.what(), std::current_exception(), 0, e.code()};
  }
  return out;
}

/// Ranks the failure codes a retry round can aggregate: the dominant
/// code is what the pool layer keys its failover decision on. A dead
/// link outranks a timeout outranks a shed request — one rank seeing
/// CommFailure means the replica is suspect even if the rest merely
/// timed out.
int code_severity(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCommFailure: return 4;
    case ErrorCode::kTimeout: return 3;
    case ErrorCode::kOverload: return 2;
    case ErrorCode::kTransient: return 1;
    default: return 0;
  }
}

enum class Verdict : Octet { kDone = 0, kRetry = 1, kGiveUp = 2 };

/// The agreement collective (kTagFtRetry): every rank reports its
/// outcome of (operation, attempt, phase) to rank 0, which publishes
/// one verdict — modeled on check::verify_collective. `diag` carries
/// the failing rank's message to the ranks that succeeded.
Verdict agree(rts::Communicator& comm, const std::string& operation, int attempt,
              int phase, const Outcome& mine, bool attempts_left, std::string& diag,
              unsigned& retry_after_ms, ErrorCode& code) {
  const int rank = comm.rank();
  const int size = comm.size();
  if (rank == 0) {
    bool any_failed = mine.failed;
    bool all_retryable = !mine.failed || mine.retryable;
    diag = mine.failed ? "rank 0: " + mine.message : "";
    retry_after_ms = mine.failed ? mine.retry_after_ms : 0;
    code = mine.failed ? mine.code : ErrorCode::kUnknown;
    for (int r = 1; r < size; ++r) {
      auto msg = comm.recv(r, rts::kTagFtRetry);
      CdrReader rd(msg.payload.view());
      const std::string rop = rd.read_string();
      const Long rattempt = rd.read_long();
      const Long rphase = rd.read_long();
      const bool rfailed = rd.read_bool();
      const bool rretryable = rd.read_bool();
      const std::string rmessage = rd.read_string();
      const ULong rretry_after = rd.read_ulong();
      const auto rcode = static_cast<ErrorCode>(rd.read_octet());
      if (rop != operation || rattempt != attempt || rphase != phase)
        throw InternalError("ft: retry-agreement skew: rank " + std::to_string(r) +
                            " entered '" + rop + "' attempt " + std::to_string(rattempt) +
                            " while rank 0 entered '" + operation + "' attempt " +
                            std::to_string(attempt));
      if (rfailed) {
        any_failed = true;
        if (!rretryable) all_retryable = false;
        if (diag.empty()) diag = "rank " + std::to_string(r) + ": " + rmessage;
        // The longest hint across the shedding server ranks wins: a
        // retry before it would just be shed again.
        if (rretry_after > retry_after_ms) retry_after_ms = rretry_after;
        if (code_severity(rcode) > code_severity(code)) code = rcode;
      }
    }
    Verdict verdict = Verdict::kDone;
    if (any_failed)
      verdict = all_retryable && attempts_left ? Verdict::kRetry : Verdict::kGiveUp;
    ByteBuffer out;
    {
      CdrWriter w(out);
      w.write_octet(static_cast<Octet>(verdict));
      w.write_string(diag);
      w.write_ulong(retry_after_ms);
      w.write_octet(static_cast<Octet>(code));
    }
    // Control-plane sends: the agreement must not advance the
    // computing threads' modeled clocks.
    for (int r = 1; r < size; ++r) comm.send_control(r, rts::kTagFtRetry, out.clone());
    return verdict;
  }
  ByteBuffer fp;
  {
    CdrWriter w(fp);
    w.write_string(operation);
    w.write_long(attempt);
    w.write_long(phase);
    w.write_bool(mine.failed);
    w.write_bool(mine.retryable);
    w.write_string(mine.message);
    w.write_ulong(mine.failed ? mine.retry_after_ms : 0);
    w.write_octet(static_cast<Octet>(mine.failed ? mine.code : ErrorCode::kUnknown));
  }
  comm.send_control(0, rts::kTagFtRetry, std::move(fp));
  const auto verdict_msg = comm.recv(0, rts::kTagFtRetry);
  CdrReader rd(verdict_msg.payload.view());
  const auto verdict = static_cast<Verdict>(rd.read_octet());
  diag = rd.read_string();
  retry_after_ms = rd.read_ulong();
  code = static_cast<ErrorCode>(rd.read_octet());
  return verdict;
}

/// One verdict per phase: the agreement when the binding is
/// collective, the local outcome otherwise. `retry_after_ms` comes out
/// as the max server hint among the failed ranks (0 without one);
/// `code` as the dominant failure code across the failed ranks, so
/// every rank makes the same pool failover decision.
Verdict decide(rts::Communicator* comm, const std::string& operation, int attempt,
               int phase, const Outcome& mine, bool attempts_left, std::string& diag,
               unsigned& retry_after_ms, ErrorCode& code) {
  if (comm != nullptr)
    return agree(*comm, operation, attempt, phase, mine, attempts_left, diag,
                 retry_after_ms, code);
  if (!mine.failed) return Verdict::kDone;
  diag = mine.message;
  retry_after_ms = mine.retry_after_ms;
  code = mine.code;
  return mine.retryable && attempts_left ? Verdict::kRetry : Verdict::kGiveUp;
}

[[noreturn]] void give_up(const Outcome& mine, const std::string& operation,
                          const std::string& diag) {
  if (obs::enabled()) {
    static obs::Counter& abandoned = obs::metrics().counter("ft.invocations_abandoned");
    abandoned.add(1);
  }
  // This rank's own failure is the most precise report; a rank that
  // succeeded throws on behalf of the peer that did not.
  if (mine.error) std::rethrow_exception(mine.error);
  throw CommFailure("coordinated retry of '" + operation + "' abandoned: " + diag);
}

void note_retry(core::Binding& binding, const RetryPolicy& policy,
                const std::string& operation, int attempt, const std::string& diag,
                unsigned retry_after_ms) {
  PARDIS_LOG(kWarn, "ft") << "retrying '" << operation << "' (attempt " << attempt + 1
                          << "): " << diag;
  if (obs::enabled()) {
    static obs::Counter& retries = obs::metrics().counter("ft.retries");
    retries.add(1);
  }
  // The retry event as a short span so it shows up on the trace.
  obs::SpanScope span;
  if (obs::enabled() && obs::current_context().valid()) span.open("ft:retry", "client");
  const std::uint64_t salt =
      binding.id() * 1315423911ULL + static_cast<std::uint64_t>(binding.ctx().rank());
  // An overloaded server's retry-after hint floors the backoff: retry
  // sooner and the admission controller sheds the attempt again.
  std::this_thread::sleep_for(
      std::max(backoff_delay(policy, attempt, salt),
               std::chrono::milliseconds(retry_after_ms)));
}

void note_failover(const std::string& operation, int total, const std::string& diag) {
  // The backoff sleep is skipped on a failover: the sibling is
  // presumed healthy, and the failed replica's quarantine (pool side)
  // is the pacing mechanism.
  PARDIS_LOG(kWarn, "ft") << "failing '" << operation
                          << "' over to a sibling replica (attempt " << total + 1
                          << "): " << diag;
}

}  // namespace

int with_retry(core::Binding& binding, const std::string& operation,
               const RetryPolicy& policy,
               const std::function<std::shared_ptr<core::PendingReply>(int)>& send_attempt) {
  rts::Communicator* comm =
      binding.collective() && binding.ctx().comm() != nullptr && binding.ctx().size() > 1
          ? binding.ctx().comm()
          : nullptr;
  // `total` counts attempts across every replica (what max_attempts
  // caps); `attempt` is the per-target attempt passed to send_attempt,
  // reset to 1 when a pool failover retargets the binding so the
  // sibling sees a fresh request identity instead of a replay of an
  // identity it never met.
  int total = 0;
  for (int attempt = 1;; ++attempt) {
    ++total;
    const bool attempts_left = total < policy.max_attempts;
    std::shared_ptr<core::PendingReply> pending;
    std::string diag;
    unsigned retry_after_ms = 0;
    ErrorCode code = ErrorCode::kUnknown;

    // Phase 0: the sends. A rank whose send failed must stop everyone
    // from blocking on replies the server can never assemble.
    Outcome sent = run_guarded([&] { pending = send_attempt(attempt); });
    Verdict verdict = decide(comm, operation, total, 0, sent, attempts_left, diag,
                             retry_after_ms, code);
    if (verdict == Verdict::kRetry) {
      if (binding.pool_failover(code, diag, retry_after_ms)) {
        note_failover(operation, total, diag);
        // pardis_wal exactly-once: a durable sibling must see the SAME
        // request identity — it answers a committed mutation from its
        // log and executes an uncommitted one exactly once. Only
        // idempotent (non-durable) targets get a fresh identity.
        if (!binding.exactly_once()) attempt = 0;
      } else {
        note_retry(binding, policy, operation, total, diag, retry_after_ms);
      }
      continue;
    }
    if (verdict == Verdict::kGiveUp) give_up(sent, operation, diag);

    if (!pending) {  // oneway: nothing to wait for
      binding.pool_success();
      return total;
    }

    // Phase 1: the waits. A lost reply, expired deadline, or dead peer
    // shows up here; the whole matrix is re-sent, never a slice of it.
    Outcome waited = run_guarded([&] { pending->wait(); });
    verdict = decide(comm, operation, total, 1, waited, attempts_left, diag,
                     retry_after_ms, code);
    if (verdict == Verdict::kDone) {
      binding.pool_success();
      return total;
    }
    if (verdict == Verdict::kGiveUp) give_up(waited, operation, diag);
    if (binding.pool_failover(code, diag, retry_after_ms)) {
      note_failover(operation, total, diag);
      // Exactly-once bindings keep the request identity (see above).
      if (!binding.exactly_once()) attempt = 0;
    } else {
      note_retry(binding, policy, operation, total, diag, retry_after_ms);
    }
  }
}

}  // namespace pardis::ft
