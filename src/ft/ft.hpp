// pardis_ft — coordinated retry of idempotent invocations.
//
// Generated stubs wrap operations marked `#pragma idempotent` in
// with_retry(): transient failures (kTransient, kCommFailure,
// kTimeout) are retried with exponential backoff + deterministic
// jitter. For a collective (SPMD) binding the P client threads first
// *agree* to retry through a rank-0 fingerprint exchange on
// kTagFtRetry — the same shape as check::verify_collective — so the
// P×Q request matrix is never partially re-sent: either every thread
// re-invokes attempt N+1, or every thread gives up.
//
// A re-send keeps the first attempt's request identity (request_id,
// seq_no) and raises the header's attempt counter (kFlagRetry on the
// wire). The POA deduplicates bodies it already assembled and replays
// already-dispatched sequence numbers, so both halves of the failure
// space — requests lost before dispatch, replies lost after — converge
// to exactly-once-observable completion of the idempotent operation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/pending_reply.hpp"

namespace pardis::ft {

/// Retry schedule for idempotent operations.
struct RetryPolicy {
  /// Total attempts, the first send included; 1 disables retry.
  int max_attempts = 3;
  /// Backoff before the second attempt; doubled per further attempt.
  std::chrono::milliseconds initial_backoff{2};
  double multiplier = 2.0;
  /// Fraction of the backoff added as deterministic jitter (hashed
  /// from the binding and attempt, so runs replay identically while
  /// ranks still de-synchronize).
  double jitter = 0.5;

  /// Policy from the environment: PARDIS_FT_RETRIES (max attempts) and
  /// PARDIS_FT_BACKOFF_MS, read once; defaults above otherwise.
  static RetryPolicy from_env();
};

/// The backoff before re-sending `attempt` (>= 1): exponential with
/// deterministic jitter derived from `salt`.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy, int attempt,
                                        std::uint64_t salt);

/// Runs one invocation with the coordinated retry protocol.
///
/// `send_attempt(attempt)` builds/re-sends the request (attempt starts
/// at 1; pass it to ClientRequest::invoke so re-sends keep the request
/// identity) and returns the pending reply (nullptr for oneway). Two
/// agreement points per attempt keep an SPMD client in lockstep:
/// after the sends (a failed send on any rank means nobody blocks
/// waiting for replies the server can never assemble) and after the
/// waits (a lost reply or expired deadline on any rank retries the
/// whole matrix). When the binding carries pool hooks (pardis_pool), a
/// retryable failure first offers the binding a failover: if it
/// retargets at a sibling replica, the next attempt restarts at
/// attempt 1 (fresh request identity) with no backoff sleep, while the
/// max_attempts budget keeps counting every attempt across replicas.
/// Returns the total number of attempts used; throws the
/// original typed exception when the attempts are exhausted, the
/// failure is not retryable, or — on ranks that themselves succeeded —
/// CommFailure describing the peer rank that made the client give up.
int with_retry(core::Binding& binding, const std::string& operation,
               const RetryPolicy& policy,
               const std::function<std::shared_ptr<core::PendingReply>(int)>& send_attempt);

}  // namespace pardis::ft
