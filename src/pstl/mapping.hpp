// PARDIS <-> mini-PSTL direct mapping (paper §3.4).
//
// Referenced by stub code the IDL compiler generates under -hpcxx for
// `#pragma HPC++:vector` typedefs: invocation arguments stay in the
// package-native DistributedVector; marshaling flows through
// no-ownership DSequence views of the native storage.
#pragma once

#include <algorithm>

#include "core/stub_support.hpp"
#include "dist/dsequence.hpp"
#include "pstl/distributed_vector.hpp"

namespace pardis::pstl {

/// No-copy view of the native container's local block.
template <typename T>
dist::DSequence<T> dseq_view(DistributedVector<T>& v) {
  return dist::DSequence<T>::local_view(v.rank(), v.distribution(),
                                        std::span<T>(v.storage()));
}

/// Encode-only view of a const container (marshaling never writes).
template <typename T>
dist::DSequence<T> dseq_view(const DistributedVector<T>& v) {
  return dseq_view(const_cast<DistributedVector<T>&>(v));
}

/// Server side: adopts a received distributed argument into the
/// package-native container (same distribution, one local copy).
template <typename T>
DistributedVector<T> native_from_dseq(dist::DSequence<T>&& seq, rts::Communicator& comm) {
  DistributedVector<T> v(comm, seq.distribution());
  auto loc = seq.local();
  std::copy(loc.begin(), loc.end(), v.storage().begin());
  return v;
}

/// Client side: creates the native target of a non-blocking out
/// argument.
template <typename T>
DistributedVector<T> make_native(core::ClientCtx& ctx, std::size_t n,
                                 const core::DistSpec& spec) {
  if (ctx.comm() == nullptr)
    throw BadInvOrder("the HPC++ PSTL mapping requires an SPMD client");
  return DistributedVector<T>(*ctx.comm(), spec.instantiate(n, ctx.size()));
}

}  // namespace pardis::pstl
