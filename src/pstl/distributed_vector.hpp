// Mini HPC++ PSTL: a distributed vector and parallel algorithms.
//
// Stands in for the HPC++ Parallel Standard Template Library the paper
// interfaces with (§3.4, §4.3). Enough of the package is implemented
// to (a) host real computations (the pipeline example's gradient) and
// (b) exercise the IDL compiler's `#pragma HPC++:vector` direct
// mapping: PARDIS stubs marshal a DistributedVector without going
// through a user-visible PARDIS container.
#pragma once

#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "dist/distribution.hpp"
#include "rts/collectives.hpp"
#include "rts/communicator.hpp"

namespace pardis::pstl {

template <typename T>
class DistributedVector {
 public:
  /// Collective: BLOCK-distributed vector of `n` elements.
  DistributedVector(rts::Communicator& comm, std::size_t n)
      : DistributedVector(comm, dist::Distribution::block(n, comm.size())) {}

  /// Collective: explicit distribution (rank count must match).
  DistributedVector(rts::Communicator& comm, dist::Distribution d)
      : comm_(&comm), dist_(std::move(d)) {
    if (dist_.nranks() != comm.size())
      throw BadParam("DistributedVector: distribution width != communicator size");
    local_.resize(dist_.local_count(comm.rank()));
  }

  rts::Communicator& comm() const noexcept { return *comm_; }
  const dist::Distribution& distribution() const noexcept { return dist_; }
  std::size_t size() const noexcept { return dist_.global_size(); }
  int rank() const noexcept { return comm_->rank(); }

  std::span<T> local() noexcept { return local_; }
  std::span<const T> local() const noexcept { return local_; }
  std::size_t local_size() const noexcept { return local_.size(); }
  std::size_t local_to_global(std::size_t li) const {
    return dist_.local_to_global(comm_->rank(), li);
  }

  /// Mutable access to the raw local storage (package-native escape
  /// hatch used by the PARDIS mapping).
  std::vector<T>& storage() noexcept { return local_; }
  const std::vector<T>& storage() const noexcept { return local_; }

 private:
  rts::Communicator* comm_;
  dist::Distribution dist_;
  std::vector<T> local_;
};

// --- parallel algorithms ----------------------------------------------------

/// Applies fn(global_index, element&) to every local element.
template <typename T, typename Fn>
void par_apply(DistributedVector<T>& v, Fn&& fn) {
  for (std::size_t li = 0; li < v.local_size(); ++li)
    fn(v.local_to_global(li), v.local()[li]);
}

/// out[i] = fn(in[i]); distributions must match.
template <typename T, typename Fn>
void par_transform(const DistributedVector<T>& in, DistributedVector<T>& out, Fn&& fn) {
  if (!(in.distribution() == out.distribution()))
    throw BadParam("par_transform: distributions differ");
  for (std::size_t li = 0; li < in.local_size(); ++li)
    out.local()[li] = fn(in.local()[li]);
}

/// Global reduction (valid on every rank).
template <typename T, typename Op>
T par_reduce(const DistributedVector<T>& v, T init, Op op) {
  T local = init;
  for (const T& x : v.local()) local = op(local, x);
  return rts::allreduce_value(v.comm(), local, op);
}

template <typename T>
T par_sum(const DistributedVector<T>& v) {
  return par_reduce(v, T{}, std::plus<T>{});
}

template <typename T>
T dot(const DistributedVector<T>& a, const DistributedVector<T>& b) {
  if (!(a.distribution() == b.distribution())) throw BadParam("dot: distributions differ");
  T local{};
  for (std::size_t li = 0; li < a.local_size(); ++li)
    local += a.local()[li] * b.local()[li];
  return rts::allreduce_sum(a.comm(), local);
}

/// y += a * x
template <typename T>
void axpy(T a, const DistributedVector<T>& x, DistributedVector<T>& y) {
  if (!(x.distribution() == y.distribution())) throw BadParam("axpy: distributions differ");
  for (std::size_t li = 0; li < x.local_size(); ++li)
    y.local()[li] += a * x.local()[li];
}

/// Exchanges up to `halo` edge elements with the neighbouring ranks of
/// a contiguously-distributed vector; returns (left, right) halos.
/// Missing neighbours yield empty halos.
template <typename T>
std::pair<std::vector<T>, std::vector<T>> exchange_halo(const DistributedVector<T>& v,
                                                        std::size_t halo) {
  const dist::Distribution& d = v.distribution();
  if (d.kind() == dist::DistKind::kCyclic)
    throw BadParam("exchange_halo: requires a contiguous distribution");
  rts::Communicator& comm = v.comm();
  const int rank = comm.rank();

  // Neighbours by ownership of adjacent global indices (ranks with no
  // elements are skipped transparently).
  const auto my_span = d.intervals(rank);
  std::vector<T> left, right;
  if (my_span.empty()) return {left, right};  // empty ranks have no neighbours
  const std::size_t begin = my_span.front().begin;
  const std::size_t end = my_span.back().end;
  const int left_rank = begin > 0 ? d.owner(begin - 1) : -1;
  const int right_rank = end < d.global_size() ? d.owner(end) : -1;

  const std::size_t send_left = std::min(halo, v.local_size());
  const std::size_t send_right = std::min(halo, v.local_size());
  if (left_rank >= 0) {
    std::vector<T> block(v.local().begin(),
                         v.local().begin() + static_cast<std::ptrdiff_t>(send_left));
    comm.send_reserved(left_rank, rts::kTagPackage, cdr_encode(block));
  }
  if (right_rank >= 0) {
    std::vector<T> block(v.local().end() - static_cast<std::ptrdiff_t>(send_right),
                         v.local().end());
    comm.send_reserved(right_rank, rts::kTagPackage, cdr_encode(block));
  }
  if (right_rank >= 0) {
    auto msg = comm.recv(right_rank, rts::kTagPackage);
    right = cdr_decode<std::vector<T>>(msg.payload.view());
  }
  if (left_rank >= 0) {
    auto msg = comm.recv(left_rank, rts::kTagPackage);
    left = cdr_decode<std::vector<T>>(msg.payload.view());
  }
  return {left, right};
}

/// Magnitude of the 2-D gradient of a row-major (nrows x ncols) grid
/// stored in a contiguously-distributed vector — the pipeline
/// example's HPC++ PSTL computation (paper §4.3). Central differences
/// inside, one-sided at the grid edges.
template <typename T>
void gradient_magnitude(const DistributedVector<T>& u, DistributedVector<T>& g,
                        std::size_t ncols) {
  if (ncols == 0 || u.size() % ncols != 0)
    throw BadParam("gradient_magnitude: size is not a multiple of ncols");
  if (!(u.distribution() == g.distribution()))
    throw BadParam("gradient_magnitude: distributions differ");
  const std::size_t n = u.size();
  auto [left, right] = exchange_halo(u, ncols);

  // value at global index gi, reachable because |gi - local range| <= ncols.
  const auto my = u.distribution().intervals(u.rank());
  const std::size_t begin = my.empty() ? 0 : my.front().begin;
  const std::size_t end = my.empty() ? 0 : my.back().end;
  auto value = [&](std::size_t gi) -> T {
    if (gi >= begin && gi < end) return u.local()[gi - begin];
    if (gi < begin) {
      if (begin - gi > left.size())
        throw BadParam("gradient_magnitude: a rank owns fewer than ncols elements");
      return left[left.size() - (begin - gi)];
    }
    if (gi - end >= right.size())
      throw BadParam("gradient_magnitude: a rank owns fewer than ncols elements");
    return right[gi - end];
  };

  for (std::size_t li = 0; li < u.local_size(); ++li) {
    const std::size_t gi = begin + li;
    const std::size_t r = gi / ncols;
    const std::size_t c = gi % ncols;
    const T here = u.local()[li];
    const T up = r > 0 ? value(gi - ncols) : here;
    const T down = r + 1 < n / ncols ? value(gi + ncols) : here;
    const T west = c > 0 ? value(gi - 1) : here;
    const T east = c + 1 < ncols ? value(gi + 1) : here;
    const T dx = (east - west) / T(2);
    const T dy = (down - up) / T(2);
    g.local()[li] = std::sqrt(dx * dx + dy * dy);
  }
}

}  // namespace pardis::pstl
