// Message-tag space management.
//
// The paper (§2.2): "In order to avoid conflicts, we also require a way
// to distinguish between PARDIS messages and messages pertaining to
// computation in user code (for example through a set of reserved
// message tags)." User code owns tags in [0, kReservedTagBase); PARDIS
// subsystems use fixed tags at or above kReservedTagBase. Sends with a
// user-facing API validate the tag and throw BadTag on collision.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace pardis::rts {

/// First tag reserved for PARDIS-internal traffic.
inline constexpr Tag kReservedTagBase = 0x4000'0000;

/// Wildcards for receive matching.
inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// Reserved tags, one per internal protocol.
inline constexpr Tag kTagCollective = kReservedTagBase + 1;
inline constexpr Tag kTagOrbRequest = kReservedTagBase + 2;
inline constexpr Tag kTagOrbReply = kReservedTagBase + 3;
inline constexpr Tag kTagDistTransfer = kReservedTagBase + 4;
inline constexpr Tag kTagDistRedistribute = kReservedTagBase + 5;
inline constexpr Tag kTagPackage = kReservedTagBase + 6;  ///< mini-PSTL / mini-POOMA internals
inline constexpr Tag kTagPoaRound = kReservedTagBase + 7;  ///< POA dispatch schedules
inline constexpr Tag kTagCheck = kReservedTagBase + 8;  ///< pardis_check fingerprints
inline constexpr Tag kTagFtRetry = kReservedTagBase + 9;  ///< pardis_ft retry agreement

/// True when `tag` belongs to user code.
constexpr bool is_user_tag(Tag tag) noexcept { return tag >= 0 && tag < kReservedTagBase; }

/// True when `tag` is one of the reserved tags a PARDIS subsystem
/// actually uses. The runtime verifier flags reserved-range traffic on
/// any other tag: it means a subsystem (or user code bypassing the
/// validated send path) invented a tag inside the reserved space.
constexpr bool is_known_reserved_tag(Tag tag) noexcept {
  return tag >= kTagCollective && tag <= kTagFtRetry;
}

/// Throws BadTag when user code tries to send on a reserved tag.
inline void validate_user_tag(Tag tag) {
  if (!is_user_tag(tag))
    throw BadTag("tag " + std::to_string(tag) + " is in the PARDIS reserved range");
}

}  // namespace pardis::rts
