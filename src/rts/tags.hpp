// Message-tag space management.
//
// The paper (§2.2): "In order to avoid conflicts, we also require a way
// to distinguish between PARDIS messages and messages pertaining to
// computation in user code (for example through a set of reserved
// message tags)." User code owns tags in [0, kReservedTagBase); PARDIS
// subsystems use fixed tags at or above kReservedTagBase. Sends with a
// user-facing API validate the tag and throw BadTag on collision.
// The tag values themselves live in the wire-constant registry
// (core/wire.hpp) with every other on-the-wire constant; this header
// keeps the tag-space *policy* (validation and range predicates).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/wire.hpp"

namespace pardis::rts {

/// True when `tag` belongs to user code.
constexpr bool is_user_tag(Tag tag) noexcept { return tag >= 0 && tag < kReservedTagBase; }

/// True when `tag` is one of the reserved tags a PARDIS subsystem
/// actually uses. The runtime verifier flags reserved-range traffic on
/// any other tag: it means a subsystem (or user code bypassing the
/// validated send path) invented a tag inside the reserved space.
constexpr bool is_known_reserved_tag(Tag tag) noexcept {
  return tag >= kTagCollective && tag <= kTagFtRetry;
}

/// Throws BadTag when user code tries to send on a reserved tag.
inline void validate_user_tag(Tag tag) {
  if (!is_user_tag(tag))
    throw BadTag("tag " + std::to_string(tag) + " is in the PARDIS reserved range");
}

}  // namespace pardis::rts
