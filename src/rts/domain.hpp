// A Domain is one parallel client or server: a named set of computing
// threads (paper §2.2, "a set of one or more computing threads
// determined ... at time of server startup"), optionally pinned to a
// modeled host. Threads communicate through the domain's
// ThreadCommGroup; each thread's virtual clock is bound for the
// duration of the run.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "rts/thread_comm.hpp"
#include "sim/clock.hpp"
#include "sim/testbed.hpp"

namespace pardis::rts {

class Domain;

/// Everything one computing thread needs: its rank, its communicator
/// endpoint and (for modeled runs) its host.
struct DomainContext {
  Domain& domain;
  int rank;
  int size;
  Communicator& comm;
  const sim::HostModel* host;  ///< nullptr when not modeled
  sim::SimClock& clock;

  /// Charges modeled compute work to this thread's virtual clock.
  void charge_flops(double flops) const noexcept {
    if (host != nullptr) host->charge_flops(flops);
  }
};

class Domain {
 public:
  /// `host == nullptr` disables virtual-time charging for this domain.
  Domain(std::string name, int nthreads, const sim::HostModel* host = nullptr);
  ~Domain();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  const std::string& name() const noexcept { return name_; }
  int size() const noexcept { return group_.size(); }
  const sim::HostModel* host() const noexcept { return host_; }
  ThreadCommGroup& comms() noexcept { return group_; }
  sim::SimClock& clock(int rank) { return clocks_.at(rank); }

  /// Spawns one OS thread per rank running `fn`, then joins them all.
  /// The first exception thrown by any computing thread is rethrown.
  void run(const std::function<void(DomainContext&)>& fn);

  /// Asynchronous variant of run(); pair with join().
  void start(std::function<void(DomainContext&)> fn);
  void join();
  bool running() const noexcept { return !threads_.empty(); }

  /// Elapsed virtual time: max over all computing threads' clocks.
  double max_sim_time() const;
  void reset_clocks();

 private:
  std::string name_;
  const sim::HostModel* host_;
  ThreadCommGroup group_;
  std::vector<sim::SimClock> clocks_;
  std::vector<std::thread> threads_;
  std::exception_ptr first_error_ PARDIS_GUARDED_BY(error_mutex_);
  Mutex error_mutex_{"rts.domain_error"};
};

}  // namespace pardis::rts
