#include "rts/domain.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace pardis::rts {

Domain::Domain(std::string name, int nthreads, const sim::HostModel* host)
    : name_(std::move(name)), host_(host), group_(nthreads, host), clocks_(nthreads) {
  if (host_ != nullptr && nthreads > host_->max_threads) {
    PARDIS_LOG(kWarn, "rts") << "domain " << name_ << " oversubscribes host "
                             << host_->name << " (" << nthreads << " > "
                             << host_->max_threads << " threads)";
  }
}

Domain::~Domain() {
  if (!threads_.empty()) {
    // Joining in a destructor keeps crashes local, but reaching this
    // point means the caller forgot join(); surface it loudly.
    PARDIS_LOG(kError, "rts") << "domain " << name_ << " destroyed while running";
    for (auto& t : threads_)
      if (t.joinable()) t.join();
  }
}

void Domain::start(std::function<void(DomainContext&)> fn) {
  if (!threads_.empty()) throw BadInvOrder("Domain::start: already running");
  {
    LockGuard lock(error_mutex_);
    first_error_ = nullptr;
  }
  auto shared_fn = std::make_shared<std::function<void(DomainContext&)>>(std::move(fn));
  threads_.reserve(group_.size());
  for (int r = 0; r < group_.size(); ++r) {
    threads_.emplace_back([this, r, shared_fn] {
      sim::ClockBinding binding(clocks_[r]);
      DomainContext ctx{*this, r, group_.size(), group_.comm(r), host_, clocks_[r]};
      try {
        (*shared_fn)(ctx);
      } catch (const std::exception& e) {
        PARDIS_LOG(kError, "rts") << "domain " << name_ << " rank " << r
                                  << " failed: " << e.what();
        LockGuard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      } catch (...) {
        LockGuard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
  }
}

void Domain::join() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
  std::exception_ptr err;
  {
    LockGuard lock(error_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void Domain::run(const std::function<void(DomainContext&)>& fn) {
  start(fn);
  join();
}

double Domain::max_sim_time() const {
  double t = 0.0;
  for (const auto& c : clocks_)
    if (c.now() > t) t = c.now();
  return t;
}

void Domain::reset_clocks() {
  for (auto& c : clocks_) c.reset();
}

}  // namespace pardis::rts
