// The PARDIS run-time system interface.
//
// The ORB extends "into the communication domain of the parallel
// server" (paper §2.2) through this interface. Its functional
// requirements are deliberately minimal — basic tagged point-to-point
// message passing plus reserved tags — so that it can be implemented on
// top of MPI, Tulip, POOMA's communication abstraction, or (here) an
// in-process thread runtime.
#pragma once

#include <optional>

#include "common/buffer.hpp"
#include "common/types.hpp"
#include "rts/tags.hpp"

namespace pardis::rts {

/// One received message.
struct RtsMessage {
  int source = kAnySource;
  Tag tag = kAnyTag;
  double sim_time = 0.0;  ///< sender's virtual clock + modeled delay
  ByteBuffer payload;
};

/// Metadata returned by probe.
struct MessageInfo {
  int source;
  Tag tag;
  std::size_t size;
};

/// Tagged point-to-point messaging among the computing threads of one
/// parallel client or server. Implementations must deliver messages
/// FIFO per (source, destination, tag) triple.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const noexcept = 0;
  virtual int size() const noexcept = 0;

  /// Stable identity of the communicator group: two communicators with
  /// the same key belong to the same parallel client/server. Used by
  /// the ORB's collocation check.
  virtual const void* group_key() const noexcept = 0;

  /// User-facing send: validates that `tag` is outside the PARDIS
  /// reserved range, then behaves like send_reserved.
  void send(int dest, Tag tag, ByteBuffer payload) {
    validate_user_tag(tag);
    send_reserved(dest, tag, std::move(payload));
  }

  /// Internal send used by PARDIS subsystems (no tag validation).
  /// Asynchronous and buffered: the payload is moved, never referenced
  /// after return.
  virtual void send_reserved(int dest, Tag tag, ByteBuffer payload) = 0;

  /// Control-plane send: like send_reserved but carries no virtual
  /// timestamp, so ORB-internal coordination (POA dispatch schedules)
  /// does not couple the computing threads' modeled clocks.
  virtual void send_control(int dest, Tag tag, ByteBuffer payload) {
    send_reserved(dest, tag, std::move(payload));
  }

  /// Blocking receive; wildcards kAnySource / kAnyTag are honored.
  virtual RtsMessage recv(int source = kAnySource, Tag tag = kAnyTag) = 0;

  /// Non-blocking receive; empty when no matching message is queued.
  virtual std::optional<RtsMessage> try_recv(int source = kAnySource, Tag tag = kAnyTag) = 0;

  /// Non-blocking probe for a matching message.
  virtual std::optional<MessageInfo> probe(int source = kAnySource, Tag tag = kAnyTag) = 0;
};

}  // namespace pardis::rts
