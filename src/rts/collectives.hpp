// Collective operations over a Communicator.
//
// PARDIS itself only needs a handful of collectives (collective binding,
// collective request ordering, argument redistribution); the mini
// packages (PSTL / POOMA) and the example applications use the richer
// set. All collectives ride the reserved kTagCollective and rely on the
// FIFO-per-(src,dst,tag) guarantee, so concurrent user traffic cannot
// interleave with them. Every rank of the communicator must call the
// same collectives in the same order (SPMD discipline).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/cdr.hpp"
#include "rts/communicator.hpp"

namespace pardis::rts {

/// Blocks until all ranks have entered the barrier.
void barrier(Communicator& comm);

/// Root's buffer is replicated to all ranks (byte payload).
ByteBuffer broadcast(Communicator& comm, ByteBuffer payload, int root);

/// Each rank contributes one buffer; root receives all of them in rank
/// order. Non-root ranks get an empty vector.
std::vector<ByteBuffer> gather(Communicator& comm, ByteBuffer local, int root);

/// gather + broadcast: all ranks receive all contributions in rank order.
std::vector<ByteBuffer> allgather(Communicator& comm, ByteBuffer local);

/// Root distributes one buffer per rank; returns this rank's piece.
ByteBuffer scatter(Communicator& comm, std::vector<ByteBuffer> pieces, int root);

// --- typed convenience wrappers -------------------------------------------

template <typename T>
T broadcast_value(Communicator& comm, const T& value, int root) {
  ByteBuffer buf;
  if (comm.rank() == root) buf = cdr_encode(value);
  ByteBuffer out = broadcast(comm, std::move(buf), root);
  return cdr_decode<T>(out.view());
}

template <typename T>
std::vector<T> gather_values(Communicator& comm, const T& value, int root) {
  auto bufs = gather(comm, cdr_encode(value), root);
  std::vector<T> out;
  out.reserve(bufs.size());
  for (const auto& b : bufs) out.push_back(cdr_decode<T>(b.view()));
  return out;
}

template <typename T>
std::vector<T> allgather_values(Communicator& comm, const T& value) {
  auto bufs = allgather(comm, cdr_encode(value));
  std::vector<T> out;
  out.reserve(bufs.size());
  for (const auto& b : bufs) out.push_back(cdr_decode<T>(b.view()));
  return out;
}

/// Reduction with a binary op; result valid on every rank.
template <typename T, typename Op>
T allreduce_value(Communicator& comm, const T& value, Op op) {
  auto all = allgather_values(comm, value);
  T acc = all.front();
  for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
  return acc;
}

template <typename T>
T allreduce_sum(Communicator& comm, const T& value) {
  return allreduce_value(comm, value, std::plus<T>{});
}

template <typename T>
T allreduce_max(Communicator& comm, const T& value) {
  return allreduce_value(comm, value, [](const T& a, const T& b) { return a < b ? b : a; });
}

template <typename T>
T allreduce_min(Communicator& comm, const T& value) {
  return allreduce_value(comm, value, [](const T& a, const T& b) { return b < a ? b : a; });
}

}  // namespace pardis::rts
