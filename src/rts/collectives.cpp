#include "rts/collectives.hpp"

#include "check/check.hpp"
#include "check/collective.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::rts {

namespace {

void check_root(const Communicator& comm, int root) {
  if (root < 0 || root >= comm.size()) throw BadParam("collective: root out of range");
}

}  // namespace

void barrier(Communicator& comm) {
  if (check::enabled())
    check::verify_collective(comm, check::CollectiveKind::kBarrier, 0, "rts::barrier");
  // Every participating rank increments, so divide by domain width for
  // the number of collective rounds (same for the counters below).
  if (obs::enabled()) {
    static obs::Counter& c = obs::metrics().counter("rts.barriers");
    c.add(1);
  }
  // Gather-to-0 then broadcast; O(P) messages, fine for the thread
  // counts PARDIS domains use (the paper's largest server is 10 nodes).
  const int rank = comm.rank();
  const int size = comm.size();
  if (size == 1) return;
  if (rank == 0) {
    for (int r = 1; r < size; ++r) comm.recv(r, kTagCollective);
    for (int r = 1; r < size; ++r) comm.send_reserved(r, kTagCollective, ByteBuffer{});
  } else {
    comm.send_reserved(0, kTagCollective, ByteBuffer{});
    comm.recv(0, kTagCollective);
  }
}

ByteBuffer broadcast(Communicator& comm, ByteBuffer payload, int root) {
  check_root(comm, root);
  if (check::enabled())
    check::verify_collective(comm, check::CollectiveKind::kBroadcast, root,
                             "rts::broadcast");
  if (obs::enabled()) {
    static obs::Counter& c = obs::metrics().counter("rts.broadcasts");
    c.add(1);
  }
  const int rank = comm.rank();
  const int size = comm.size();
  if (size == 1) return payload;
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      comm.send_reserved(r, kTagCollective, payload.clone());
    }
    return payload;
  }
  return comm.recv(root, kTagCollective).payload;
}

std::vector<ByteBuffer> gather(Communicator& comm, ByteBuffer local, int root) {
  check_root(comm, root);
  if (check::enabled())
    check::verify_collective(comm, check::CollectiveKind::kGather, root, "rts::gather");
  if (obs::enabled()) {
    static obs::Counter& c = obs::metrics().counter("rts.gathers");
    c.add(1);
  }
  const int rank = comm.rank();
  const int size = comm.size();
  if (rank == root) {
    std::vector<ByteBuffer> out(size);
    out[root] = std::move(local);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      out[r] = comm.recv(r, kTagCollective).payload;
    }
    return out;
  }
  comm.send_reserved(root, kTagCollective, std::move(local));
  return {};
}

std::vector<ByteBuffer> allgather(Communicator& comm, ByteBuffer local) {
  auto gathered = gather(comm, std::move(local), 0);
  // Root re-broadcasts the concatenation as one framed buffer.
  ByteBuffer frame;
  if (comm.rank() == 0) {
    CdrWriter w(frame);
    w.write_ulong(static_cast<ULong>(gathered.size()));
    for (const auto& b : gathered) {
      w.write_ulong(static_cast<ULong>(b.size()));
      w.write_bytes(b.view());
    }
  }
  ByteBuffer all = broadcast(comm, std::move(frame), 0);
  CdrReader r(all.view());
  const ULong count = r.read_ulong();
  std::vector<ByteBuffer> out;
  out.reserve(count);
  for (ULong i = 0; i < count; ++i) {
    const ULong len = r.read_ulong();
    out.push_back(ByteBuffer::from(r.read_bytes(len)));
  }
  return out;
}

ByteBuffer scatter(Communicator& comm, std::vector<ByteBuffer> pieces, int root) {
  check_root(comm, root);
  if (check::enabled())
    check::verify_collective(comm, check::CollectiveKind::kScatter, root, "rts::scatter");
  if (obs::enabled()) {
    static obs::Counter& c = obs::metrics().counter("rts.scatters");
    c.add(1);
  }
  const int rank = comm.rank();
  const int size = comm.size();
  if (rank == root) {
    if (static_cast<int>(pieces.size()) != size)
      throw BadParam("scatter: need exactly one piece per rank");
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      comm.send_reserved(r, kTagCollective, std::move(pieces[r]));
    }
    return std::move(pieces[root]);
  }
  return comm.recv(root, kTagCollective).payload;
}

}  // namespace pardis::rts
