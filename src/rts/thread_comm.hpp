// In-process implementation of the run-time system interface.
//
// Computing threads of one domain exchange tagged messages through
// per-rank mailboxes. Each rank logically owns its address space (data
// is only shared through messages and through the explicitly-shared
// dsequence block directory), matching the paper's assumption that
// server threads are "associated with a distributed memory model".
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "rts/communicator.hpp"
#include "sim/testbed.hpp"

namespace pardis::rts {

class ThreadComm;

/// Shared state of one domain's communicator: `nranks` mailboxes.
/// Construct once, then obtain one ThreadComm per computing thread.
class ThreadCommGroup {
 public:
  /// `host` (optional) provides the intra-host cost model used to
  /// timestamp messages for virtual-time runs.
  explicit ThreadCommGroup(int nranks, const sim::HostModel* host = nullptr);
  ~ThreadCommGroup();

  ThreadCommGroup(const ThreadCommGroup&) = delete;
  ThreadCommGroup& operator=(const ThreadCommGroup&) = delete;

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  const sim::HostModel* host() const noexcept { return host_; }

  /// The communicator endpoint for `rank` (owned by the group).
  ThreadComm& comm(int rank);

 private:
  friend class ThreadComm;

  struct Mailbox {
    Mutex mutex{"rts.mailbox"};
    std::condition_variable_any cv;
    std::deque<RtsMessage> queue PARDIS_GUARDED_BY(mutex);
    bool closed PARDIS_GUARDED_BY(mutex) = false;
  };

  void deliver(int src, int dest, Tag tag, ByteBuffer payload, bool timed);
  bool matches(const RtsMessage& m, int source, Tag tag) const noexcept;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;
  const sim::HostModel* host_;
};

/// Per-rank facade over a ThreadCommGroup.
class ThreadComm final : public Communicator {
 public:
  ThreadComm(ThreadCommGroup& group, int rank) : group_(&group), rank_(rank) {}

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return group_->size(); }
  const void* group_key() const noexcept override { return group_; }

  void send_reserved(int dest, Tag tag, ByteBuffer payload) override;
  void send_control(int dest, Tag tag, ByteBuffer payload) override;
  RtsMessage recv(int source = kAnySource, Tag tag = kAnyTag) override;
  std::optional<RtsMessage> try_recv(int source = kAnySource, Tag tag = kAnyTag) override;
  std::optional<MessageInfo> probe(int source = kAnySource, Tag tag = kAnyTag) override;

 private:
  ThreadCommGroup* group_;
  int rank_;
};

}  // namespace pardis::rts
