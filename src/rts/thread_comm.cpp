#include "rts/thread_comm.hpp"

#include <algorithm>
#include <string>

#include "check/check.hpp"
#include "common/error.hpp"
#include "sim/clock.hpp"

namespace pardis::rts {

ThreadCommGroup::ThreadCommGroup(int nranks, const sim::HostModel* host) : host_(host) {
  if (nranks <= 0) throw BadParam("ThreadCommGroup needs at least one rank");
  mailboxes_.reserve(nranks);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::make_unique<ThreadComm>(*this, r));
  }
}

ThreadCommGroup::~ThreadCommGroup() = default;

ThreadComm& ThreadCommGroup::comm(int rank) {
  if (rank < 0 || rank >= size()) throw BadParam("ThreadCommGroup::comm: rank out of range");
  return *comms_[rank];
}

bool ThreadCommGroup::matches(const RtsMessage& m, int source, Tag tag) const noexcept {
  return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
}

void ThreadCommGroup::deliver(int src, int dest, Tag tag, ByteBuffer payload, bool timed) {
  if (dest < 0 || dest >= size()) throw BadParam("ThreadComm send: destination out of range");
  // Reserved-range traffic must use one of the named protocol tags; an
  // unknown tag up here means a subsystem invented one (or user code
  // bypassed the validated send path).
  if (check::enabled() && !is_user_tag(tag) && !is_known_reserved_tag(tag))
    check::violation("tags", "send on unassigned reserved tag " + std::to_string(tag) +
                                 " (rank " + std::to_string(src) + " -> " +
                                 std::to_string(dest) + ")");
  RtsMessage msg;
  msg.source = src;
  msg.tag = tag;
  const std::size_t bytes = payload.size();
  msg.sim_time = timed ? sim::timestamp_now() +
                             (host_ != nullptr ? host_->intra_delay(bytes) : 0.0)
                       : 0.0;
  msg.payload = std::move(payload);
  Mailbox& box = *mailboxes_[dest];
  {
    LockGuard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void ThreadComm::send_reserved(int dest, Tag tag, ByteBuffer payload) {
  group_->deliver(rank_, dest, tag, std::move(payload), /*timed=*/true);
}

void ThreadComm::send_control(int dest, Tag tag, ByteBuffer payload) {
  group_->deliver(rank_, dest, tag, std::move(payload), /*timed=*/false);
}

RtsMessage ThreadComm::recv(int source, Tag tag) {
  auto& box = *group_->mailboxes_[rank_];
  UniqueLock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const RtsMessage& m) { return group_->matches(m, source, tag); });
    if (it != box.queue.end()) {
      RtsMessage msg = std::move(*it);
      box.queue.erase(it);
      lock.unlock();
      sim::merge_time(msg.sim_time);
      return msg;
    }
    box.cv.wait(lock);
  }
}

std::optional<RtsMessage> ThreadComm::try_recv(int source, Tag tag) {
  auto& box = *group_->mailboxes_[rank_];
  UniqueLock lock(box.mutex);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const RtsMessage& m) { return group_->matches(m, source, tag); });
  if (it == box.queue.end()) return std::nullopt;
  RtsMessage msg = std::move(*it);
  box.queue.erase(it);
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

std::optional<MessageInfo> ThreadComm::probe(int source, Tag tag) {
  auto& box = *group_->mailboxes_[rank_];
  LockGuard lock(box.mutex);
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const RtsMessage& m) { return group_->matches(m, source, tag); });
  if (it == box.queue.end()) return std::nullopt;
  return MessageInfo{it->source, it->tag, it->payload.size()};
}

}  // namespace pardis::rts
