// Transfer plans: the data-movement schedule between two distributions.
//
// "Knowledge of distribution allows the ORB to efficiently transfer
// arguments between the client and server" (paper §3.2, [KG97]): given
// the client-side and server-side distributions of a dsequence, each
// pair of computing threads exchanges exactly the intervals they share,
// directly and in parallel — no gather at a root. The same plan drives
// in-domain redistribution.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.hpp"

namespace pardis::dist {

/// One contiguous run of global indices moving from one source rank to
/// one destination rank.
struct TransferPiece {
  int src_rank = 0;
  int dst_rank = 0;
  Interval span;  ///< global indices

  bool operator==(const TransferPiece&) const = default;
};

/// The complete schedule for moving a global index space from `src`
/// distribution to `dst` distribution. Pieces are in global order.
class TransferPlan {
 public:
  TransferPlan(const Distribution& src, const Distribution& dst);

  const Distribution& src() const noexcept { return src_; }
  const Distribution& dst() const noexcept { return dst_; }
  const std::vector<TransferPiece>& pieces() const noexcept { return pieces_; }

  /// Pieces this source rank must send, in global order.
  std::vector<TransferPiece> outgoing(int src_rank) const;
  /// Pieces this destination rank will receive, in global order.
  std::vector<TransferPiece> incoming(int dst_rank) const;

  /// Destination ranks `src_rank` sends to / source ranks `dst_rank`
  /// receives from (each listed once, ascending).
  std::vector<int> destinations(int src_rank) const;
  std::vector<int> sources(int dst_rank) const;

  std::size_t total_elements() const noexcept;

 private:
  Distribution src_;
  Distribution dst_;
  std::vector<TransferPiece> pieces_;
};

}  // namespace pardis::dist
