#include "dist/distribution.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace pardis::dist {

const char* dist_kind_name(DistKind kind) noexcept {
  switch (kind) {
    case DistKind::kBlock: return "BLOCK";
    case DistKind::kCyclic: return "CYCLIC";
    case DistKind::kIrregular: return "IRREGULAR";
    case DistKind::kConcentrated: return "CONCENTRATED";
  }
  return "?";
}

namespace {

std::vector<std::size_t> offsets_from_counts(const std::vector<std::size_t>& counts) {
  std::vector<std::size_t> offsets(counts.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r) offsets[r + 1] = offsets[r] + counts[r];
  return offsets;
}

}  // namespace

Distribution Distribution::block(std::size_t n, int nranks) {
  if (nranks <= 0) throw BadParam("Distribution::block: nranks must be positive");
  Distribution d;
  d.kind_ = DistKind::kBlock;
  d.global_size_ = n;
  d.nranks_ = nranks;
  std::vector<std::size_t> counts(nranks);
  const std::size_t base = n / nranks;
  const std::size_t rem = n % nranks;
  for (int r = 0; r < nranks; ++r) counts[r] = base + (static_cast<std::size_t>(r) < rem ? 1 : 0);
  d.offsets_ = offsets_from_counts(counts);
  return d;
}

Distribution Distribution::cyclic(std::size_t n, int nranks, std::size_t block_size) {
  if (nranks <= 0) throw BadParam("Distribution::cyclic: nranks must be positive");
  if (block_size == 0) throw BadParam("Distribution::cyclic: block_size must be positive");
  Distribution d;
  d.kind_ = DistKind::kCyclic;
  d.global_size_ = n;
  d.nranks_ = nranks;
  d.block_size_ = block_size;
  return d;
}

Distribution Distribution::from_counts(std::vector<std::size_t> counts) {
  if (counts.empty()) throw BadParam("Distribution::from_counts: no ranks");
  Distribution d;
  d.kind_ = DistKind::kIrregular;
  d.nranks_ = static_cast<int>(counts.size());
  d.offsets_ = offsets_from_counts(counts);
  d.global_size_ = d.offsets_.back();
  return d;
}

Distribution Distribution::irregular(std::size_t n, const std::vector<double>& proportions) {
  if (proportions.empty()) throw BadParam("Distribution::irregular: no proportions");
  double total = 0.0;
  for (double p : proportions) {
    if (p < 0.0) throw BadParam("Distribution::irregular: negative proportion");
    total += p;
  }
  if (total <= 0.0) throw BadParam("Distribution::irregular: proportions sum to zero");

  // Largest-remainder apportionment: counts sum to exactly n.
  const std::size_t nranks = proportions.size();
  std::vector<std::size_t> counts(nranks, 0);
  std::vector<std::pair<double, std::size_t>> remainders(nranks);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    const double exact = static_cast<double>(n) * proportions[r] / total;
    counts[r] = static_cast<std::size_t>(exact);
    assigned += counts[r];
    remainders[r] = {exact - static_cast<double>(counts[r]), r};
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break by rank
  });
  for (std::size_t i = 0; assigned < n; ++i, ++assigned) counts[remainders[i % nranks].second]++;
  return from_counts(std::move(counts));
}

Distribution Distribution::concentrated(std::size_t n, int nranks, int root) {
  if (nranks <= 0) throw BadParam("Distribution::concentrated: nranks must be positive");
  if (root < 0 || root >= nranks) throw BadParam("Distribution::concentrated: root out of range");
  Distribution d;
  d.kind_ = DistKind::kConcentrated;
  d.global_size_ = n;
  d.nranks_ = nranks;
  d.root_ = root;
  std::vector<std::size_t> counts(nranks, 0);
  counts[root] = n;
  d.offsets_ = offsets_from_counts(counts);
  return d;
}

std::size_t Distribution::local_count(int rank) const {
  if (rank < 0 || rank >= nranks_) throw BadParam("Distribution::local_count: rank out of range");
  if (kind_ == DistKind::kCyclic) {
    // Number of elements g in [0, n) with (g / bs) % P == rank.
    const std::size_t bs = block_size_;
    const std::size_t full_rounds = global_size_ / (bs * nranks_);
    std::size_t count = full_rounds * bs;
    const std::size_t tail = global_size_ - full_rounds * bs * nranks_;
    const std::size_t my_start = static_cast<std::size_t>(rank) * bs;
    if (tail > my_start) count += std::min(bs, tail - my_start);
    return count;
  }
  return offsets_[rank + 1] - offsets_[rank];
}

int Distribution::owner(std::size_t global_index) const {
  if (global_index >= global_size_) throw BadParam("Distribution::owner: index out of range");
  if (kind_ == DistKind::kCyclic)
    return static_cast<int>((global_index / block_size_) % nranks_);
  // Contiguous kinds: find the rank whose [offset, next offset) holds it.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), global_index);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

std::size_t Distribution::global_to_local(std::size_t global_index) const {
  const int rank = owner(global_index);
  if (kind_ == DistKind::kCyclic) {
    const std::size_t bs = block_size_;
    const std::size_t round = global_index / (bs * nranks_);
    return round * bs + global_index % bs;
  }
  return global_index - offsets_[rank];
}

std::size_t Distribution::local_to_global(int rank, std::size_t local_index) const {
  if (rank < 0 || rank >= nranks_)
    throw BadParam("Distribution::local_to_global: rank out of range");
  if (local_index >= local_count(rank))
    throw BadParam("Distribution::local_to_global: local index out of range");
  if (kind_ == DistKind::kCyclic) {
    const std::size_t bs = block_size_;
    const std::size_t round = local_index / bs;
    return round * bs * nranks_ + static_cast<std::size_t>(rank) * bs + local_index % bs;
  }
  return offsets_[rank] + local_index;
}

std::vector<Interval> Distribution::intervals(int rank) const {
  if (rank < 0 || rank >= nranks_) throw BadParam("Distribution::intervals: rank out of range");
  std::vector<Interval> out;
  if (kind_ == DistKind::kCyclic) {
    const std::size_t bs = block_size_;
    for (std::size_t start = static_cast<std::size_t>(rank) * bs; start < global_size_;
         start += bs * nranks_)
      out.push_back({start, std::min(start + bs, global_size_)});
    return out;
  }
  if (offsets_[rank + 1] > offsets_[rank]) out.push_back({offsets_[rank], offsets_[rank + 1]});
  return out;
}

std::vector<std::pair<int, Interval>> Distribution::cover(Interval span) const {
  if (span.end > global_size_) throw BadParam("Distribution::cover: interval out of range");
  std::vector<std::pair<int, Interval>> out;
  std::size_t pos = span.begin;
  while (pos < span.end) {
    const int rank = owner(pos);
    std::size_t run_end;
    if (kind_ == DistKind::kCyclic) {
      run_end = std::min((pos / block_size_ + 1) * block_size_, span.end);
    } else {
      run_end = std::min(offsets_[rank + 1], span.end);
    }
    out.push_back({rank, Interval{pos, run_end}});
    pos = run_end;
  }
  return out;
}

bool Distribution::operator==(const Distribution& other) const {
  if (kind_ != other.kind_ || global_size_ != other.global_size_ || nranks_ != other.nranks_)
    return false;
  switch (kind_) {
    case DistKind::kCyclic: return block_size_ == other.block_size_;
    case DistKind::kConcentrated: return root_ == other.root_;
    default: return offsets_ == other.offsets_;
  }
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  os << dist_kind_name(kind_) << "(n=" << global_size_ << ", P=" << nranks_;
  if (kind_ == DistKind::kCyclic) os << ", bs=" << block_size_;
  if (kind_ == DistKind::kConcentrated) os << ", root=" << root_;
  os << ")";
  return os.str();
}

void Distribution::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind_));
  w.write_ulonglong(global_size_);
  w.write_long(nranks_);
  w.write_long(root_);
  w.write_ulonglong(block_size_);
  w.write_ulong(static_cast<ULong>(offsets_.size()));
  for (std::size_t off : offsets_) w.write_ulonglong(off);
}

Distribution Distribution::unmarshal(CdrReader& r) {
  Distribution d;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(DistKind::kConcentrated))
    throw MarshalError("Distribution: bad kind octet");
  d.kind_ = static_cast<DistKind>(kind);
  d.global_size_ = r.read_ulonglong();
  d.nranks_ = r.read_long();
  d.root_ = r.read_long();
  d.block_size_ = r.read_ulonglong();
  const ULong noff = r.read_ulong();
  d.offsets_.resize(noff);
  for (ULong i = 0; i < noff; ++i) d.offsets_[i] = r.read_ulonglong();
  if (d.nranks_ <= 0) throw MarshalError("Distribution: bad nranks");
  if (d.kind_ != DistKind::kCyclic && d.offsets_.size() != static_cast<std::size_t>(d.nranks_) + 1)
    throw MarshalError("Distribution: offsets/nranks mismatch");
  return d;
}

}  // namespace pardis::dist
