// Distributions of a one-dimensional index space over the computing
// threads of a parallel client or server (paper §3.2).
//
// A dsequence IDL definition names its client- and server-side
// distributions (e.g. BLOCK on the client, concentrated on one
// processor on the server); a *distribution template* describes "in
// what proportions the elements of a sequence should be distributed
// among the processors" and can be applied to set or change a
// distribution at run time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/cdr.hpp"
#include "common/types.hpp"

namespace pardis::dist {

/// Half-open global index interval [begin, end).
struct Interval {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
  bool operator==(const Interval&) const = default;
};

enum class DistKind : Octet {
  kBlock = 0,        ///< uniform contiguous blocks (paper's BLOCK default)
  kCyclic = 1,       ///< block-cyclic with a block size
  kIrregular = 2,    ///< contiguous blocks in caller-given proportions
  kConcentrated = 3, ///< everything on one rank
};

const char* dist_kind_name(DistKind kind) noexcept;

/// An immutable description of how `global_size` elements are spread
/// over `nranks` computing threads.
class Distribution {
 public:
  Distribution() = default;  ///< empty BLOCK over 1 rank

  static Distribution block(std::size_t n, int nranks);
  static Distribution cyclic(std::size_t n, int nranks, std::size_t block_size = 1);
  /// Contiguous blocks sized by explicit per-rank counts (must sum to n).
  static Distribution from_counts(std::vector<std::size_t> counts);
  /// Contiguous blocks in the given proportions (a distribution
  /// template); counts are derived by the largest-remainder method.
  static Distribution irregular(std::size_t n, const std::vector<double>& proportions);
  static Distribution concentrated(std::size_t n, int nranks, int root);

  DistKind kind() const noexcept { return kind_; }
  std::size_t global_size() const noexcept { return global_size_; }
  int nranks() const noexcept { return nranks_; }
  /// The rank owning all data for kConcentrated; -1 otherwise.
  int root() const noexcept { return root_; }
  std::size_t block_size() const noexcept { return block_size_; }

  std::size_t local_count(int rank) const;
  int owner(std::size_t global_index) const;
  /// Local slot of `global_index` on its owner.
  std::size_t global_to_local(std::size_t global_index) const;
  std::size_t local_to_global(int rank, std::size_t local_index) const;

  /// Global intervals owned by `rank`, ordered by local index.
  std::vector<Interval> intervals(int rank) const;

  /// Splits a global interval into maximal runs of constant ownership,
  /// in global order. Building block for transfer plans.
  std::vector<std::pair<int, Interval>> cover(Interval span) const;

  bool operator==(const Distribution& other) const;

  std::string to_string() const;

  void marshal(CdrWriter& w) const;
  static Distribution unmarshal(CdrReader& r);

 private:
  DistKind kind_ = DistKind::kBlock;
  std::size_t global_size_ = 0;
  int nranks_ = 1;
  int root_ = -1;
  std::size_t block_size_ = 1;     // cyclic only
  std::vector<std::size_t> offsets_;  // contiguous kinds: size nranks_+1
};

}  // namespace pardis::dist

namespace pardis {

template <>
struct CdrTraits<dist::Distribution> {
  static void marshal(CdrWriter& w, const dist::Distribution& d) { d.marshal(w); }
  static void unmarshal(CdrReader& r, dist::Distribution& d) {
    d = dist::Distribution::unmarshal(r);
  }
};

}  // namespace pardis
