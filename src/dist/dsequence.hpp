// DSequence<T>: the PARDIS distributed sequence (paper §3.2).
//
// "A generalization of the CORBA sequence ... behaves like a
// one-dimensional array with variable length and distribution."
// Its main purpose is to be a *container for argument data*: it offers
// no-ownership constructors and direct access to owned data so that
// conversions to package-native structures are cheap, plus
// `operator[]` element access with location transparency and
// redistribution through distribution templates.
//
// A DSequence is created collectively by all computing threads of a
// domain (each rank holds one DSequence instance backed by its local
// block). Location transparency is implemented through a directory of
// per-rank blocks shared by the domain's threads — legitimate on the
// shared-memory nodes PARDIS domains run on; cross-domain movement
// always goes through marshaled transfer plans.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "common/cdr.hpp"
#include "common/error.hpp"
#include "dist/distribution.hpp"
#include "dist/transfer_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/collectives.hpp"
#include "rts/communicator.hpp"

namespace pardis::dist {

namespace detail {

/// Domain-shared directory of every rank's local block. Intrusively
/// refcounted: each rank's DSequence holds one reference.
template <typename T>
struct DSeqDirectory {
  explicit DSeqDirectory(int nranks) : slots(nranks, nullptr), sizes(nranks, 0) {}
  std::vector<T*> slots;
  std::vector<std::size_t> sizes;
  std::atomic<int> refs{0};
};

}  // namespace detail

template <typename T>
class DSequence {
 public:
  /// Collective: every rank of `comm` calls with identical `n` and
  /// `dist`; each rank allocates (and owns) its local block.
  DSequence(rts::Communicator& comm, std::size_t n, Distribution dist)
      : comm_(&comm), dist_(std::move(dist)) {
    check_shape(n);
    owned_.resize(dist_.local_count(comm_->rank()));
    local_ = owned_;
    attach_directory();
  }

  /// Collective, defaulting to BLOCK distribution (the paper's default).
  DSequence(rts::Communicator& comm, std::size_t n)
      : DSequence(comm, n, Distribution::block(n, comm.size())) {}

  /// Collective no-ownership constructor: the local block aliases
  /// caller storage (e.g. a package-native container); the caller
  /// guarantees it outlives the sequence. This is the cheap-conversion
  /// path the paper calls out.
  DSequence(rts::Communicator& comm, std::size_t n, Distribution dist,
            std::span<T> borrowed_local)
      : comm_(&comm), dist_(std::move(dist)) {
    check_shape(n);
    if (borrowed_local.size() != dist_.local_count(comm_->rank()))
      throw BadParam("DSequence: borrowed storage size != local count");
    local_ = borrowed_local;
    attach_directory();
  }

  /// Non-distributed sequence (single client / single object side):
  /// one rank, everything local, no communicator needed.
  explicit DSequence(std::size_t n)
      : comm_(nullptr), dist_(Distribution::block(n, 1)) {
    owned_.resize(n);
    local_ = owned_;
  }

  /// Non-collective borrowed view used by generated stub code to
  /// marshal package-native containers without copying: `rank`'s local
  /// part under `dist` aliases `storage`. No block directory is built,
  /// so remote operator[] reads, redistribute() and gather_all() are
  /// unavailable — encode/decode of owned ranges (all a stub needs)
  /// work fine.
  static DSequence local_view(int rank, Distribution dist, std::span<T> storage) {
    if (rank < 0 || rank >= dist.nranks())
      throw BadParam("DSequence::local_view: rank out of range");
    if (storage.size() != dist.local_count(rank))
      throw BadParam("DSequence::local_view: storage size != local count");
    DSequence s;
    s.dist_ = std::move(dist);
    s.local_ = storage;
    s.view_rank_ = rank;
    return s;
  }

  DSequence(DSequence&& other) noexcept { *this = std::move(other); }
  DSequence& operator=(DSequence&& other) noexcept {
    release_directory();
    comm_ = other.comm_;
    dist_ = std::move(other.dist_);
    owned_ = std::move(other.owned_);
    local_ = other.local_;
    dir_ = other.dir_;
    view_rank_ = other.view_rank_;
    other.dir_ = nullptr;
    other.comm_ = nullptr;
    other.local_ = {};
    return *this;
  }
  DSequence(const DSequence&) = delete;
  DSequence& operator=(const DSequence&) = delete;

  ~DSequence() { release_directory(); }

  std::size_t size() const noexcept { return dist_.global_size(); }
  const Distribution& distribution() const noexcept { return dist_; }
  int rank() const noexcept {
    if (view_rank_ >= 0) return view_rank_;
    return comm_ != nullptr ? comm_->rank() : 0;
  }
  bool distributed() const noexcept { return comm_ != nullptr; }
  bool owns_storage() const noexcept { return !owned_.empty() || local_.empty(); }

  /// Direct access to this rank's owned data (paper: "provides access
  /// to owned data" for building conversions).
  std::span<T> local() noexcept { return local_; }
  std::span<const T> local() const noexcept { return local_; }
  std::size_t local_size() const noexcept { return local_.size(); }

  std::size_t local_to_global(std::size_t li) const { return dist_.local_to_global(rank(), li); }

  bool is_local(std::size_t global_index) const { return dist_.owner(global_index) == rank(); }

  /// Location-transparent element read. Remote reads go through the
  /// domain-shared directory; callers must not overlap them with
  /// writes by the owner (use collective phases, as all PARDIS
  /// argument-handling code does).
  T operator[](std::size_t global_index) const {
    const int owner = dist_.owner(global_index);
    const std::size_t li = dist_.global_to_local(global_index);
    if (owner == rank()) return local_[li];
    if (dir_ == nullptr)
      throw BadInvOrder("DSequence: remote read on a non-distributed sequence");
    return dir_->slots[owner][li];
  }

  /// Location-transparent mutable element access. The SPMD discipline
  /// allows writes only to elements this rank owns; a cross-rank write
  /// works mechanically (the directory is shared memory) but races
  /// with the owner outside collective phases, so under PARDIS_CHECK
  /// it throws check::Violation naming both ranks. For remote *reads*
  /// use the const overload (e.g. through std::as_const).
  T& operator[](std::size_t global_index) {
    const int owner = dist_.owner(global_index);
    const std::size_t li = dist_.global_to_local(global_index);
    if (owner == rank()) return local_[li];
    if (check::enabled())
      check::violation("dsequence",
                       "cross-rank write access: rank " + std::to_string(rank()) +
                           " touched global index " + std::to_string(global_index) +
                           " owned by rank " + std::to_string(owner));
    if (dir_ == nullptr)
      throw BadInvOrder("DSequence: remote access on a non-distributed sequence");
    return dir_->slots[owner][li];
  }

  /// Mutable access to a locally-owned element.
  T& local_ref(std::size_t global_index) {
    if (!is_local(global_index))
      throw BadParam("DSequence::local_ref: element not owned by this rank");
    return local_[dist_.global_to_local(global_index)];
  }

  /// Collective: moves the sequence to a new distribution (paper:
  /// "using different distribution templates the programmer can also
  /// redistribute the sequence"). Always ends in owned storage.
  void redistribute(const Distribution& new_dist) {
    if (new_dist.global_size() != size())
      throw BadParam("DSequence::redistribute: size mismatch");
    if (comm_ == nullptr) {
      if (new_dist.nranks() != 1)
        throw BadInvOrder("DSequence::redistribute: non-distributed sequence");
      dist_ = new_dist;
      return;
    }
    if (new_dist.nranks() != comm_->size())
      throw BadParam("DSequence::redistribute: rank count != domain width");
    const int me = rank();
    TransferPlan plan(dist_, new_dist);
    if (obs::enabled() && me == 0) {
      static obs::Counter& redistributed =
          obs::metrics().counter("dist.redistributed_elements");
      redistributed.add(plan.total_elements());
    }

    std::vector<T> fresh(new_dist.local_count(me));
    // Local pieces copy directly; remote pieces ride the communicator.
    for (const TransferPiece& piece : plan.outgoing(me)) {
      if (piece.dst_rank == me) {
        const std::size_t src_off = dist_.global_to_local(piece.span.begin);
        const std::size_t dst_off = new_dist.global_to_local(piece.span.begin);
        for (std::size_t i = 0; i < piece.span.size(); ++i)
          fresh[dst_off + i] = local_[src_off + i];
      } else {
        comm_->send_reserved(piece.dst_rank, rts::kTagDistRedistribute,
                             encode_range(piece.span));
      }
    }
    for (const TransferPiece& piece : plan.incoming(me)) {
      if (piece.src_rank == me) continue;
      auto msg = comm_->recv(piece.src_rank, rts::kTagDistRedistribute);
      CdrReader r(msg.payload.view());
      decode_range_into(new_dist, fresh, piece.span, r);
    }
    owned_ = std::move(fresh);
    local_ = owned_;
    dist_ = new_dist;
    reattach_directory();
  }

  /// Collective: every rank receives the fully-assembled global
  /// contents. Convenience for result checking and small sequences.
  std::vector<T> gather_all() const {
    std::vector<T> out(size());
    if (comm_ == nullptr) {
      std::copy(local_.begin(), local_.end(), out.begin());
      return out;
    }
    std::vector<T> mine(local_.begin(), local_.end());
    auto blocks = rts::allgather_values(*comm_, mine);
    for (int r = 0; r < dist_.nranks(); ++r) {
      std::size_t li = 0;
      for (const Interval& iv : dist_.intervals(r))
        for (std::size_t g = iv.begin; g < iv.end; ++g) out[g] = blocks[r][li++];
    }
    return out;
  }

  /// Encodes locally-owned global range [span.begin, span.end) — used
  /// by redistribution and by the ORB's distributed-argument transfer.
  ByteBuffer encode_range(Interval span) const {
    ByteBuffer buf;
    CdrWriter w(buf);
    encode_range(span, w);
    return buf;
  }

  void encode_range(Interval span, CdrWriter& w) const {
    if (span.empty()) return;
    if (dist_.owner(span.begin) != rank() || dist_.owner(span.end - 1) != rank())
      throw BadParam("DSequence::encode_range: range not locally owned");
    const std::size_t off = dist_.global_to_local(span.begin);
    if constexpr (std::is_arithmetic_v<T>) {
      w.write_prim_seq(std::span<const T>(local_.data() + off, span.size()));
    } else {
      w.write_ulong(static_cast<ULong>(span.size()));
      for (std::size_t i = 0; i < span.size(); ++i)
        CdrTraits<T>::marshal(w, local_[off + i]);
    }
  }

  /// Decodes a global range into locally-owned storage.
  void decode_range(Interval span, CdrReader& r) {
    decode_range_into(dist_, local_, span, r);
    if (dist_.owner(span.begin) != rank())
      throw BadParam("DSequence::decode_range: range not locally owned");
  }

 private:
  void check_shape(std::size_t n) {
    if (dist_.global_size() != n) throw BadParam("DSequence: distribution size != n");
    if (dist_.nranks() != comm_->size())
      throw BadParam("DSequence: distribution rank count != domain width");
  }

  static void decode_range_into(const Distribution& dist, std::span<T> storage, Interval span,
                                CdrReader& r) {
    if (span.empty()) return;
    const std::size_t off = dist.global_to_local(span.begin);
    if (off + span.size() > storage.size())
      throw MarshalError("DSequence: decoded range exceeds local storage");
    if constexpr (std::is_arithmetic_v<T>) {
      r.read_prim_seq_into(std::span<T>(storage.data() + off, span.size()));
    } else {
      const ULong n = r.read_ulong();
      if (n != span.size()) throw MarshalError("DSequence: piece size mismatch");
      for (std::size_t i = 0; i < span.size(); ++i)
        CdrTraits<T>::unmarshal(r, storage[off + i]);
    }
  }

  void attach_directory() {
    // Rank 0 allocates the directory and broadcasts its address; every
    // rank registers its block, then a barrier publishes all slots.
    auto* dir = comm_->rank() == 0 ? new detail::DSeqDirectory<T>(comm_->size()) : nullptr;
    const auto addr = rts::broadcast_value<ULongLong>(
        *comm_, reinterpret_cast<ULongLong>(dir), 0);
    dir_ = reinterpret_cast<detail::DSeqDirectory<T>*>(addr);
    dir_->refs.fetch_add(1, std::memory_order_relaxed);
    dir_->slots[rank()] = local_.data();
    dir_->sizes[rank()] = local_.size();
    rts::barrier(*comm_);
  }

  void reattach_directory() {
    if (dir_ == nullptr) return;
    dir_->slots[rank()] = local_.data();
    dir_->sizes[rank()] = local_.size();
    rts::barrier(*comm_);
  }

  void release_directory() noexcept {
    if (dir_ == nullptr) return;
    if (dir_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete dir_;
    dir_ = nullptr;
  }

  DSequence() = default;  // used by local_view

  rts::Communicator* comm_ = nullptr;
  Distribution dist_;
  std::vector<T> owned_;
  std::span<T> local_;
  detail::DSeqDirectory<T>* dir_ = nullptr;
  int view_rank_ = -1;  ///< fixed rank of a local_view (-1 otherwise)
};

}  // namespace pardis::dist
