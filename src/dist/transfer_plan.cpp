#include "dist/transfer_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pardis::dist {

TransferPlan::TransferPlan(const Distribution& src, const Distribution& dst)
    : src_(src), dst_(dst) {
  if (src.global_size() != dst.global_size())
    throw BadParam("TransferPlan: src and dst global sizes differ");
  // Walk every source-owned interval and split it by destination
  // ownership. Piece count is O(P + Q) for contiguous kinds and
  // O(n / block_size) for cyclic — both fine at PARDIS thread counts.
  for (int p = 0; p < src.nranks(); ++p) {
    for (const Interval& iv : src.intervals(p)) {
      for (const auto& [q, piece] : dst.cover(iv)) {
        pieces_.push_back(TransferPiece{p, q, piece});
      }
    }
  }
  // Source intervals are per-rank, so globally the list may be out of
  // order; normalize to global order for deterministic wire layout.
  std::sort(pieces_.begin(), pieces_.end(), [](const TransferPiece& a, const TransferPiece& b) {
    return a.span.begin < b.span.begin;
  });
}

std::vector<TransferPiece> TransferPlan::outgoing(int src_rank) const {
  std::vector<TransferPiece> out;
  for (const auto& p : pieces_)
    if (p.src_rank == src_rank) out.push_back(p);
  return out;
}

std::vector<TransferPiece> TransferPlan::incoming(int dst_rank) const {
  std::vector<TransferPiece> out;
  for (const auto& p : pieces_)
    if (p.dst_rank == dst_rank) out.push_back(p);
  return out;
}

std::vector<int> TransferPlan::destinations(int src_rank) const {
  std::vector<int> out;
  for (const auto& p : pieces_)
    if (p.src_rank == src_rank) out.push_back(p.dst_rank);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> TransferPlan::sources(int dst_rank) const {
  std::vector<int> out;
  for (const auto& p : pieces_)
    if (p.dst_rank == dst_rank) out.push_back(p.src_rank);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t TransferPlan::total_elements() const noexcept {
  std::size_t n = 0;
  for (const auto& p : pieces_) n += p.span.size();
  return n;
}

}  // namespace pardis::dist
