// Process-unique identifiers for objects, requests and endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace pardis {

/// Identity of a PARDIS object within its repository namespace.
/// Unique per process-lifetime; serializable inside object references.
struct ObjectId {
  std::uint64_t value = 0;

  bool operator==(const ObjectId&) const = default;
  auto operator<=>(const ObjectId&) const = default;
  bool valid() const noexcept { return value != 0; }
  std::string to_string() const;

  /// Returns a fresh process-unique id (thread-safe).
  static ObjectId next();
};

/// Identity of one in-flight request (unique per client process).
struct RequestId {
  std::uint64_t value = 0;

  bool operator==(const RequestId&) const = default;
  auto operator<=>(const RequestId&) const = default;
  std::string to_string() const;

  static RequestId next();
};

}  // namespace pardis

template <>
struct std::hash<pardis::ObjectId> {
  std::size_t operator()(const pardis::ObjectId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<pardis::RequestId> {
  std::size_t operator()(const pardis::RequestId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
