#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mutex.hpp"

namespace pardis::log {

namespace {

Level parse_env_level() {
  const char* env = std::getenv("PARDIS_LOG_LEVEL");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "trace") == 0) return Level::kTrace;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

std::atomic<Level> g_level{parse_env_level()};
// Leaf of the lock hierarchy: held only around fprintf. It guards the
// stderr stream — external state no GUARDED_BY can name.
// pardis-lint: allow(unannotated-mutex)
Mutex g_io_mutex{"log.io"};

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

bool enabled(Level lvl) noexcept { return lvl >= level(); }

void write(Level lvl, const char* component, const std::string& message) {
  if (!enabled(lvl)) return;
  LockGuard lock(g_io_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", level_name(lvl), component, message.c_str());
}

}  // namespace pardis::log
