// Clang Thread Safety Analysis annotations, repo-wide.
//
// PARDIS's locking discipline is machine-checked: every
// mutex-protected member carries PARDIS_GUARDED_BY, every function
// that must be entered with a lock held carries PARDIS_REQUIRES, and
// the clang CI lane compiles with -Wthread-safety -Werror so a
// violation is a build break, not a TSan lottery ticket. Under any
// other compiler (gcc builds, which cannot run the analysis) every
// macro expands to nothing, so annotations cost zero and gate nothing.
//
// The annotations attach to pardis::Mutex (common/mutex.hpp), not
// std::mutex: libstdc++ ships no thread-safety attributes, so the
// analysis cannot see acquisitions made through std::lock_guard. The
// repo-wide rule — enforced by pardis-lint (PT003) — is therefore
// that classes hold pardis::Mutex members, never raw std::mutex.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PARDIS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PARDIS_THREAD_ANNOTATION
#define PARDIS_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a type as a lockable capability ("mutex").
#define PARDIS_CAPABILITY(x) PARDIS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define PARDIS_SCOPED_CAPABILITY PARDIS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named mutex held.
#define PARDIS_GUARDED_BY(x) PARDIS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named mutex.
#define PARDIS_PT_GUARDED_BY(x) PARDIS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define PARDIS_REQUIRES(...) \
  PARDIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define PARDIS_ACQUIRE(...) \
  PARDIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define PARDIS_RELEASE(...) \
  PARDIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define PARDIS_TRY_ACQUIRE(...) \
  PARDIS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called with the capability NOT held (guards
/// against self-deadlock on non-recursive mutexes).
#define PARDIS_EXCLUDES(...) PARDIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define PARDIS_RETURN_CAPABILITY(x) PARDIS_THREAD_ANNOTATION(lock_returned(x))

/// Compile-time assertion that the capability is held at this point.
#define PARDIS_ASSERT_CAPABILITY(x) PARDIS_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch. Policy (enforced in review, verified by the CI grep in
/// the -Wthread-safety lane): every use carries a comment stating the
/// invariant the analyzer cannot see. Zero uses is the steady state.
#define PARDIS_NO_THREAD_SAFETY_ANALYSIS \
  PARDIS_THREAD_ANNOTATION(no_thread_safety_analysis)
