// Basic fixed-width type aliases mirroring the CORBA C++ mapping that
// PARDIS IDL types lower to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pardis {

using Octet = std::uint8_t;
using Boolean = bool;
using Short = std::int16_t;
using UShort = std::uint16_t;
using Long = std::int32_t;
using ULong = std::uint32_t;
using LongLong = std::int64_t;
using ULongLong = std::uint64_t;
using Float = float;
using Double = double;
using String = std::string;

/// IDL `sequence<T>` lowers to a std::vector in the C++ mapping.
template <typename T>
using Sequence = std::vector<T>;

/// Rank of a computing thread within a parallel client/server.
using Rank = int;

/// Message tag in the run-time system interface.
using Tag = int;

}  // namespace pardis
