// Minimal leveled logger. Configure with PARDIS_LOG_LEVEL=trace|debug|
// info|warn|error (default warn). Thread-safe; one line per call.
#pragma once

#include <sstream>
#include <string>

namespace pardis::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current threshold (read once from the environment, override with set_level).
Level level() noexcept;
void set_level(Level lvl) noexcept;

bool enabled(Level lvl) noexcept;

/// Emits one formatted line: "[LEVEL component] message".
void write(Level lvl, const char* component, const std::string& message);

/// Stream-style helper:  PARDIS_LOG(kDebug, "orb") << "bound " << name;
class LineStream {
 public:
  LineStream(Level lvl, const char* component) : lvl_(lvl), component_(component) {}
  ~LineStream() { write(lvl_, component_, os_.str()); }
  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  const char* component_;
  std::ostringstream os_;
};

}  // namespace pardis::log

#define PARDIS_LOG(lvl, component)                          \
  if (!::pardis::log::enabled(::pardis::log::Level::lvl)) { \
  } else                                                    \
    ::pardis::log::LineStream(::pardis::log::Level::lvl, component)
