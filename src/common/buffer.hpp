// Contiguous growable byte buffer used for all marshaled payloads.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pardis {

/// A growable, movable byte buffer. Cheap to move; copies are explicit
/// via clone() so accidental payload duplication is visible in code.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t initial_capacity) { storage_.reserve(initial_capacity); }

  ByteBuffer(ByteBuffer&&) noexcept = default;
  ByteBuffer& operator=(ByteBuffer&&) noexcept = default;
  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;

  static ByteBuffer from(std::span<const Octet> bytes) {
    ByteBuffer b;
    b.storage_.assign(bytes.begin(), bytes.end());
    return b;
  }

  ByteBuffer clone() const { return from(view()); }

  std::size_t size() const noexcept { return storage_.size(); }
  bool empty() const noexcept { return storage_.empty(); }
  const Octet* data() const noexcept { return storage_.data(); }
  Octet* data() noexcept { return storage_.data(); }

  std::span<const Octet> view() const noexcept { return {storage_.data(), storage_.size()}; }
  std::span<Octet> mutable_view() noexcept { return {storage_.data(), storage_.size()}; }

  void clear() noexcept { storage_.clear(); }
  void reserve(std::size_t n) { storage_.reserve(n); }

  /// Appends `n` zero bytes and returns a pointer to the first of them.
  Octet* grow(std::size_t n) {
    const std::size_t old = storage_.size();
    storage_.resize(old + n);
    return storage_.data() + old;
  }

  void append(std::span<const Octet> bytes) { append_raw(bytes.data(), bytes.size()); }

  // resize+memcpy rather than insert(end, first, last): gcc 12's
  // -Wstringop-overflow misfires on the vector pointer-range insert
  // when fully inlined, and this keeps every marshal TU warning-free.
  void append_raw(const void* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = storage_.size();
    storage_.resize(old + n);
    std::memcpy(storage_.data() + old, src, n);
  }

  bool operator==(const ByteBuffer& other) const noexcept { return storage_ == other.storage_; }

 private:
  std::vector<Octet> storage_;
};

}  // namespace pardis
