// CDR (Common Data Representation) marshaling, the encoding PARDIS uses
// for every request, reply and repository record.
//
// Like CORBA CDR, primitives are aligned to their natural size relative
// to the start of the stream, and a stream is tagged with the byte order
// of its producer; the consumer swaps lazily if its native order
// differs. This keeps the common case (homogeneous hosts) copy-through.
#pragma once

#include <bit>
#include <concepts>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace pardis {

/// True when this machine is little-endian (the CDR flag we emit).
constexpr bool kNativeLittleEndian = (std::endian::native == std::endian::little);

namespace detail {

template <std::size_t N>
void byteswap_inplace(void* p) {
  auto* b = static_cast<Octet*>(p);
  for (std::size_t i = 0; i < N / 2; ++i) std::swap(b[i], b[N - 1 - i]);
}

}  // namespace detail

/// Serializes primitives into a ByteBuffer with CDR alignment rules.
class CdrWriter {
 public:
  /// The writer appends to `buf`; alignment is computed relative to the
  /// buffer offset at construction, so a writer can extend an existing
  /// header as long as that header ends 8-byte aligned.
  explicit CdrWriter(ByteBuffer& buf) : buf_(&buf), base_(buf.size()) {}

  ByteBuffer& buffer() noexcept { return *buf_; }
  std::size_t offset() const noexcept { return buf_->size() - base_; }

  void align(std::size_t boundary) {
    const std::size_t off = offset();
    const std::size_t pad = (boundary - off % boundary) % boundary;
    if (pad != 0) buf_->grow(pad);
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void write(T value) {
    align(sizeof(T));
    buf_->append_raw(&value, sizeof(T));
  }

  void write_octet(Octet v) { write<Octet>(v); }
  void write_bool(bool v) { write<Octet>(v ? 1 : 0); }
  void write_short(Short v) { write(v); }
  void write_ushort(UShort v) { write(v); }
  void write_long(Long v) { write(v); }
  void write_ulong(ULong v) { write(v); }
  void write_longlong(LongLong v) { write(v); }
  void write_ulonglong(ULongLong v) { write(v); }
  void write_float(Float v) { write(v); }
  void write_double(Double v) { write(v); }

  /// CDR string: ulong length including NUL, then bytes, then NUL.
  void write_string(std::string_view s) {
    write_ulong(static_cast<ULong>(s.size() + 1));
    buf_->append_raw(s.data(), s.size());
    buf_->grow(1);  // terminating NUL
  }

  /// Raw bytes, no length prefix, no alignment.
  void write_bytes(std::span<const Octet> bytes) { buf_->append(bytes); }

  /// Primitive sequence: ulong count, then the elements as one aligned
  /// block (bulk memcpy — this is the path distributed-argument
  /// transfer rides, so it must not degenerate to per-element calls).
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void write_prim_seq(std::span<const T> values) {
    write_ulong(static_cast<ULong>(values.size()));
    align(alignof(T));
    buf_->append_raw(values.data(), values.size() * sizeof(T));
  }

 private:
  ByteBuffer* buf_;
  std::size_t base_;
};

/// Deserializes primitives from a byte span with CDR alignment rules.
class CdrReader {
 public:
  /// `producer_little_endian` is the byte-order flag carried by the
  /// enclosing message; the reader swaps when it differs from native.
  explicit CdrReader(std::span<const Octet> data,
                     bool producer_little_endian = kNativeLittleEndian)
      : data_(data), swap_(producer_little_endian != kNativeLittleEndian) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool swapping() const noexcept { return swap_; }

  void align(std::size_t boundary) {
    const std::size_t pad = (boundary - pos_ % boundary) % boundary;
    skip(pad);
  }

  void skip(std::size_t n) {
    if (pos_ + n > data_.size()) throw MarshalError("CDR underrun (skip)");
    pos_ += n;
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  T read() {
    align(sizeof(T));
    if (pos_ + sizeof(T) > data_.size()) throw MarshalError("CDR underrun (read)");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_) detail::byteswap_inplace<sizeof(T)>(&value);
    }
    return value;
  }

  Octet read_octet() { return read<Octet>(); }
  bool read_bool() { return read<Octet>() != 0; }
  Short read_short() { return read<Short>(); }
  UShort read_ushort() { return read<UShort>(); }
  Long read_long() { return read<Long>(); }
  ULong read_ulong() { return read<ULong>(); }
  LongLong read_longlong() { return read<LongLong>(); }
  ULongLong read_ulonglong() { return read<ULongLong>(); }
  Float read_float() { return read<Float>(); }
  Double read_double() { return read<Double>(); }

  std::string read_string() {
    const ULong len = read_ulong();
    if (len == 0) throw MarshalError("CDR string with zero encoded length");
    if (pos_ + len > data_.size()) throw MarshalError("CDR underrun (string)");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
    if (data_[pos_ + len - 1] != 0) throw MarshalError("CDR string missing NUL");
    pos_ += len;
    return s;
  }

  std::span<const Octet> read_bytes(std::size_t n) {
    if (pos_ + n > data_.size()) throw MarshalError("CDR underrun (bytes)");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  std::vector<T> read_prim_seq() {
    const ULong count = read_ulong();
    align(alignof(T));
    if (pos_ + std::size_t{count} * sizeof(T) > data_.size())
      throw MarshalError("CDR underrun (prim seq)");
    std::vector<T> out(count);
    // count == 0 must skip the memcpy: both .data() pointers may be
    // null then, and memcpy's arguments are declared nonnull.
    if (count != 0) std::memcpy(out.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_)
        for (T& v : out) detail::byteswap_inplace<sizeof(T)>(&v);
    }
    return out;
  }

  /// Reads a primitive sequence directly into caller storage (used by
  /// distributed-argument unmarshaling into no-ownership dsequences).
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void read_prim_seq_into(std::span<T> out) {
    const ULong count = read_ulong();
    if (count != out.size()) throw MarshalError("CDR prim seq size mismatch");
    align(alignof(T));
    if (pos_ + std::size_t{count} * sizeof(T) > data_.size())
      throw MarshalError("CDR underrun (prim seq into)");
    if (count != 0) std::memcpy(out.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_)
        for (T& v : out) detail::byteswap_inplace<sizeof(T)>(&v);
    }
  }

 private:
  std::span<const Octet> data_;
  std::size_t pos_ = 0;
  bool swap_;
};

// ---------------------------------------------------------------------------
// CdrTraits: extension point used by generated stub code. A user-defined
// IDL struct S gets a specialization with marshal/unmarshal; the defaults
// below cover primitives, strings and vectors (IDL sequences) of
// marshalable types, including nested dynamically-sized sequences.
// ---------------------------------------------------------------------------

template <typename T>
struct CdrTraits;

template <typename T>
  requires(std::is_arithmetic_v<T>)
struct CdrTraits<T> {
  static void marshal(CdrWriter& w, const T& v) { w.write(v); }
  static void unmarshal(CdrReader& r, T& v) { v = r.read<T>(); }
};

template <>
struct CdrTraits<std::string> {
  static void marshal(CdrWriter& w, const std::string& v) { w.write_string(v); }
  static void unmarshal(CdrReader& r, std::string& v) { v = r.read_string(); }
};

template <typename T>
struct CdrTraits<std::vector<T>> {
  static void marshal(CdrWriter& w, const std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      w.write_prim_seq(std::span<const T>(v));
    } else {
      w.write_ulong(static_cast<ULong>(v.size()));
      for (const T& e : v) CdrTraits<T>::marshal(w, e);
    }
  }
  static void unmarshal(CdrReader& r, std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      v = r.read_prim_seq<T>();
    } else {
      const ULong n = r.read_ulong();
      v.clear();
      v.reserve(n);
      for (ULong i = 0; i < n; ++i) {
        T e;
        CdrTraits<T>::unmarshal(r, e);
        v.push_back(std::move(e));
      }
    }
  }
};

/// Convenience: marshal a value into a fresh buffer.
template <typename T>
ByteBuffer cdr_encode(const T& value) {
  ByteBuffer buf;
  CdrWriter w(buf);
  CdrTraits<T>::marshal(w, value);
  return buf;
}

/// Convenience: unmarshal a whole buffer into a value.
template <typename T>
T cdr_decode(std::span<const Octet> bytes,
             bool producer_little_endian = kNativeLittleEndian) {
  CdrReader r(bytes, producer_little_endian);
  T value;
  CdrTraits<T>::unmarshal(r, value);
  return value;
}

}  // namespace pardis
