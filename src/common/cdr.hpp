// CDR (Common Data Representation) marshaling, the encoding PARDIS uses
// for every request, reply and repository record.
//
// Like CORBA CDR, primitives are aligned to their natural size relative
// to the start of the stream, and a stream is tagged with the byte order
// of its producer; the consumer swaps lazily if its native order
// differs. This keeps the common case (homogeneous hosts) copy-through.
#pragma once

#include <bit>
#include <concepts>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace pardis {

/// True when this machine is little-endian (the CDR flag we emit).
constexpr bool kNativeLittleEndian = (std::endian::native == std::endian::little);

namespace detail {

template <std::size_t N>
void byteswap_inplace(void* p) {
  auto* b = static_cast<Octet*>(p);
  for (std::size_t i = 0; i < N / 2; ++i) std::swap(b[i], b[N - 1 - i]);
}

}  // namespace detail

/// Serializes primitives into a ByteBuffer with CDR alignment rules.
class CdrWriter {
 public:
  /// The writer appends to `buf`; alignment is computed relative to the
  /// buffer offset at construction, so a writer can extend an existing
  /// header as long as that header ends 8-byte aligned.
  explicit CdrWriter(ByteBuffer& buf) : buf_(&buf), base_(buf.size()) {}

  ByteBuffer& buffer() noexcept { return *buf_; }
  std::size_t offset() const noexcept { return buf_->size() - base_; }

  void align(std::size_t boundary) {
    const std::size_t off = offset();
    const std::size_t pad = (boundary - off % boundary) % boundary;
    if (pad != 0) buf_->grow(pad);
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void write(T value) {
    align(sizeof(T));
    buf_->append_raw(&value, sizeof(T));
  }

  void write_octet(Octet v) { write<Octet>(v); }
  void write_bool(bool v) { write<Octet>(v ? 1 : 0); }
  void write_short(Short v) { write(v); }
  void write_ushort(UShort v) { write(v); }
  void write_long(Long v) { write(v); }
  void write_ulong(ULong v) { write(v); }
  void write_longlong(LongLong v) { write(v); }
  void write_ulonglong(ULongLong v) { write(v); }
  void write_float(Float v) { write(v); }
  void write_double(Double v) { write(v); }

  /// CDR string: ulong length including NUL, then bytes, then NUL.
  void write_string(std::string_view s) {
    write_ulong(static_cast<ULong>(s.size() + 1));
    buf_->append_raw(s.data(), s.size());
    buf_->grow(1);  // terminating NUL
  }

  /// Raw bytes, no length prefix, no alignment.
  void write_bytes(std::span<const Octet> bytes) { buf_->append(bytes); }

  /// Primitive sequence: ulong count, then the elements as one aligned
  /// block (bulk memcpy — this is the path distributed-argument
  /// transfer rides, so it must not degenerate to per-element calls).
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void write_prim_seq(std::span<const T> values) {
    write_ulong(static_cast<ULong>(values.size()));
    align(alignof(T));
    buf_->append_raw(values.data(), values.size() * sizeof(T));
  }

 private:
  ByteBuffer* buf_;
  std::size_t base_;
};

/// Ceiling on nested-sequence decode depth. Each level of a hostile
/// frame costs a recursion frame and a container allocation, so the
/// budget is enforced before either — 32 levels is far beyond any IDL
/// type the generator emits.
inline constexpr int kMaxDecodeDepth = 32;

/// Deserializes primitives from a byte span with CDR alignment rules.
///
/// Hardened against hostile producers: every length prefix is
/// validated against remaining() *before* any allocation, nested
/// sequences burn a bounded decode-depth budget, and failures throw a
/// located DecodeError naming the offset — never crash, over-allocate,
/// or silently misread.
class CdrReader {
 public:
  /// `producer_little_endian` is the byte-order flag carried by the
  /// enclosing message; the reader swaps when it differs from native.
  explicit CdrReader(std::span<const Octet> data,
                     bool producer_little_endian = kNativeLittleEndian)
      : data_(data), swap_(producer_little_endian != kNativeLittleEndian) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool swapping() const noexcept { return swap_; }

  /// The full span the reader was constructed over (minus any trim),
  /// independent of the read position. Frame-integrity checks hash it.
  std::span<const Octet> raw() const noexcept { return data_; }

  /// The unread tail: everything from the read position to the
  /// (possibly trimmed) end. Body extraction uses this instead of
  /// re-slicing the original buffer so a verified-and-trimmed CRC
  /// trailer never leaks into the body bytes.
  std::span<const Octet> rest() const noexcept { return data_.subspan(pos_); }

  /// Removes `n` bytes from the logical end of the stream (they become
  /// unreadable and vanish from remaining()/rest()). Used to strip a
  /// verified frame trailer.
  void trim(std::size_t n) {
    if (n > remaining()) throw DecodeError("trim past end of data", pos_, "CDR");
    data_ = data_.first(data_.size() - n);
  }

  /// Charges one level of nested-sequence decode depth; leave_nested
  /// refunds it. Guard object: CdrReader::NestedScope.
  void enter_nested() {
    if (++depth_ > kMaxDecodeDepth)
      throw DecodeError("nested sequence deeper than " + std::to_string(kMaxDecodeDepth),
                        pos_, "CDR sequence");
  }
  void leave_nested() noexcept { --depth_; }

  /// RAII guard for one nesting level of sequence decoding.
  class NestedScope {
   public:
    explicit NestedScope(CdrReader& r) : r_(&r) { r.enter_nested(); }
    ~NestedScope() { r_->leave_nested(); }
    NestedScope(const NestedScope&) = delete;
    NestedScope& operator=(const NestedScope&) = delete;

   private:
    CdrReader* r_;
  };

  void align(std::size_t boundary) {
    const std::size_t pad = (boundary - pos_ % boundary) % boundary;
    skip(pad);
  }

  void skip(std::size_t n) {
    if (pos_ + n > data_.size()) throw DecodeError("underrun (skip)", pos_, "CDR");
    pos_ += n;
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  T read() {
    align(sizeof(T));
    if (pos_ + sizeof(T) > data_.size()) throw DecodeError("underrun (read)", pos_, "CDR");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_) detail::byteswap_inplace<sizeof(T)>(&value);
    }
    return value;
  }

  Octet read_octet() { return read<Octet>(); }
  bool read_bool() { return read<Octet>() != 0; }
  Short read_short() { return read<Short>(); }
  UShort read_ushort() { return read<UShort>(); }
  Long read_long() { return read<Long>(); }
  ULong read_ulong() { return read<ULong>(); }
  LongLong read_longlong() { return read<LongLong>(); }
  ULongLong read_ulonglong() { return read<ULongLong>(); }
  Float read_float() { return read<Float>(); }
  Double read_double() { return read<Double>(); }

  std::string read_string() {
    const ULong len = read_ulong();
    if (len == 0) throw DecodeError("string with zero encoded length", pos_, "CDR string");
    // Bounds-check the attacker-controlled length BEFORE constructing
    // the string: a 4-byte frame claiming 4 GB must throw here, not OOM.
    if (len > remaining())
      throw DecodeError("claimed length " + std::to_string(len) + " exceeds " +
                            std::to_string(remaining()) + " remaining bytes",
                        pos_, "CDR string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
    if (data_[pos_ + len - 1] != 0)
      throw DecodeError("missing NUL terminator", pos_ + len - 1, "CDR string");
    pos_ += len;
    return s;
  }

  std::span<const Octet> read_bytes(std::size_t n) {
    if (n > remaining()) throw DecodeError("underrun (bytes)", pos_, "CDR");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  std::vector<T> read_prim_seq() {
    const ULong count = read_ulong();
    align(alignof(T));
    // Validate before the vector allocation below — the count is wire
    // data and must not size an allocation until proven in-bounds.
    if (std::size_t{count} * sizeof(T) > remaining())
      throw DecodeError("claimed count " + std::to_string(count) + " exceeds " +
                            std::to_string(remaining()) + " remaining bytes",
                        pos_, "CDR prim seq");
    std::vector<T> out(count);
    // count == 0 must skip the memcpy: both .data() pointers may be
    // null then, and memcpy's arguments are declared nonnull.
    if (count != 0) std::memcpy(out.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_)
        for (T& v : out) detail::byteswap_inplace<sizeof(T)>(&v);
    }
    return out;
  }

  /// Reads a primitive sequence directly into caller storage (used by
  /// distributed-argument unmarshaling into no-ownership dsequences).
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void read_prim_seq_into(std::span<T> out) {
    const ULong count = read_ulong();
    if (count != out.size())
      throw DecodeError("prim seq size mismatch (wire " + std::to_string(count) +
                            ", expected " + std::to_string(out.size()) + ")",
                        pos_, "CDR prim seq");
    align(alignof(T));
    if (std::size_t{count} * sizeof(T) > remaining())
      throw DecodeError("underrun (prim seq into)", pos_, "CDR prim seq");
    if (count != 0) std::memcpy(out.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    if constexpr (sizeof(T) > 1) {
      if (swap_)
        for (T& v : out) detail::byteswap_inplace<sizeof(T)>(&v);
    }
  }

 private:
  std::span<const Octet> data_;
  std::size_t pos_ = 0;
  bool swap_;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// CdrTraits: extension point used by generated stub code. A user-defined
// IDL struct S gets a specialization with marshal/unmarshal; the defaults
// below cover primitives, strings and vectors (IDL sequences) of
// marshalable types, including nested dynamically-sized sequences.
// ---------------------------------------------------------------------------

template <typename T>
struct CdrTraits;

template <typename T>
  requires(std::is_arithmetic_v<T>)
struct CdrTraits<T> {
  static void marshal(CdrWriter& w, const T& v) { w.write(v); }
  static void unmarshal(CdrReader& r, T& v) { v = r.read<T>(); }
};

template <>
struct CdrTraits<std::string> {
  static void marshal(CdrWriter& w, const std::string& v) { w.write_string(v); }
  static void unmarshal(CdrReader& r, std::string& v) { v = r.read_string(); }
};

template <typename T>
struct CdrTraits<std::vector<T>> {
  static void marshal(CdrWriter& w, const std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      w.write_prim_seq(std::span<const T>(v));
    } else {
      w.write_ulong(static_cast<ULong>(v.size()));
      for (const T& e : v) CdrTraits<T>::marshal(w, e);
    }
  }
  static void unmarshal(CdrReader& r, std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      v = r.read_prim_seq<T>();
    } else {
      const ULong n = r.read_ulong();
      // Every element consumes at least one wire byte, so a count
      // above remaining() is provably hostile — reject before the
      // reserve() sizes an allocation from it.
      if (n > r.remaining())
        throw DecodeError("claimed count " + std::to_string(n) + " exceeds " +
                              std::to_string(r.remaining()) + " remaining bytes",
                          r.offset(), "CDR sequence");
      CdrReader::NestedScope depth(r);
      v.clear();
      v.reserve(n);
      for (ULong i = 0; i < n; ++i) {
        T e;
        CdrTraits<T>::unmarshal(r, e);
        v.push_back(std::move(e));
      }
    }
  }
};

/// Convenience: marshal a value into a fresh buffer.
template <typename T>
ByteBuffer cdr_encode(const T& value) {
  ByteBuffer buf;
  CdrWriter w(buf);
  CdrTraits<T>::marshal(w, value);
  return buf;
}

/// Convenience: unmarshal a whole buffer into a value.
template <typename T>
T cdr_decode(std::span<const Octet> bytes,
             bool producer_little_endian = kNativeLittleEndian) {
  CdrReader r(bytes, producer_little_endian);
  T value;
  CdrTraits<T>::unmarshal(r, value);
  return value;
}

}  // namespace pardis
