// CRC-32 (IEEE 802.3 polynomial, bit-reflected) — the one checksum
// implementation shared by every PARDIS subsystem that frames bytes:
// the write-ahead log's record frames (pardis_wal) and the optional
// PIOP frame trailer (wire hardening, kFlagCrc / kReplyFlagCrc).
//
// Computed bitwise on purpose: the inputs are small frames and one-shot
// recovery scans, so a lookup table buys nothing worth 1 KiB of static
// data. The chainable begin/update/final form exists so a caller can
// checksum a frame assembled from several spans (the WAL frames its
// header and payload separately) without concatenating them first.
#pragma once

#include <span>

#include "common/types.hpp"

namespace pardis {

/// Raw chaining state for an in-progress CRC-32.
inline ULong crc32_begin() noexcept { return 0xFFFFFFFFu; }

/// Folds `bytes` into the chaining state.
inline ULong crc32_update(ULong state, std::span<const Octet> bytes) noexcept {
  for (const Octet b : bytes) {
    state ^= b;
    for (int i = 0; i < 8; ++i)
      state = (state >> 1) ^ (0xEDB88320u & (~(state & 1u) + 1u));
  }
  return state;
}

/// Finalizes the chaining state into the CRC value.
inline ULong crc32_final(ULong state) noexcept { return ~state; }

/// One-shot CRC-32 of `bytes` (check value: crc32("123456789") ==
/// 0xCBF43926).
inline ULong crc32(std::span<const Octet> bytes) noexcept {
  return crc32_final(crc32_update(crc32_begin(), bytes));
}

}  // namespace pardis
