// CORBA-style system exception hierarchy.
//
// PARDIS follows the CORBA convention that all failures surfaced by the
// ORB, the transports and the run-time system interface are instances of
// a small closed set of system exceptions, so callers can catch
// `SystemException` at metaapplication boundaries.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace pardis {

enum class ErrorCode {
  kUnknown,        ///< unclassified failure
  kBadParam,       ///< invalid argument passed by the caller
  kMarshal,        ///< error (un)marshaling a request or reply
  kCommFailure,    ///< transport-level communication failure
  kObjectNotExist, ///< reference denotes a non-existent object
  kNoImplement,    ///< operation exists in IDL but has no implementation
  kBadInvOrder,    ///< calls made in an order the spec forbids
  kTransient,      ///< request not delivered, retry may succeed
  kTimeout,        ///< blocking call exceeded its deadline
  kBadTag,         ///< user message tag collides with the PARDIS reserved range
  kInternal,       ///< internal invariant violated
  kCheckViolation, ///< SPMD-discipline violation caught by pardis_check
  kOverload,       ///< server shed the request under overload; retry later
};

/// Human-readable name of an ErrorCode ("COMM_FAILURE", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Root of the PARDIS exception hierarchy.
class SystemException : public std::runtime_error {
 public:
  SystemException(ErrorCode code, const std::string& what_arg);

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

#define PARDIS_DEFINE_EXCEPTION(NAME, CODE)                      \
  class NAME : public SystemException {                          \
   public:                                                       \
    explicit NAME(const std::string& what_arg)                   \
        : SystemException(ErrorCode::CODE, what_arg) {}          \
  }

PARDIS_DEFINE_EXCEPTION(BadParam, kBadParam);
PARDIS_DEFINE_EXCEPTION(MarshalError, kMarshal);
PARDIS_DEFINE_EXCEPTION(CommFailure, kCommFailure);
PARDIS_DEFINE_EXCEPTION(ObjectNotExist, kObjectNotExist);
PARDIS_DEFINE_EXCEPTION(NoImplement, kNoImplement);
PARDIS_DEFINE_EXCEPTION(BadInvOrder, kBadInvOrder);
PARDIS_DEFINE_EXCEPTION(TransientError, kTransient);
PARDIS_DEFINE_EXCEPTION(TimeoutError, kTimeout);
PARDIS_DEFINE_EXCEPTION(BadTag, kBadTag);
PARDIS_DEFINE_EXCEPTION(InternalError, kInternal);

#undef PARDIS_DEFINE_EXCEPTION

/// A *located* demarshalling failure: what was being decoded and at
/// which byte offset of the frame it went wrong. Subclasses
/// MarshalError so every existing catch site treats it as the marshal
/// failure it is; the extra location makes a hostile or corrupt frame
/// diagnosable instead of a bare "underrun". Thrown by the hardened
/// CdrReader paths and by strict header validation (wire hardening).
class DecodeError : public MarshalError {
 public:
  DecodeError(const std::string& what_arg, std::size_t offset, const std::string& context)
      : MarshalError(context + ": " + what_arg + " (at byte " + std::to_string(offset) +
                     ")"),
        offset_(offset),
        context_(context) {}

  /// Byte offset into the decoded frame where the failure was detected.
  std::size_t offset() const noexcept { return offset_; }
  /// What was being decoded ("RequestHeader", "CDR string", ...).
  const std::string& context() const noexcept { return context_; }

 private:
  std::size_t offset_;
  std::string context_;
};

/// Raised when an overloaded server sheds a request (pardis_flow
/// admission control), or when the client-side in-flight window is
/// full under the fail-fast policy. Carries the server's retry-after
/// hint in milliseconds (0 = none) so retry layers can pace re-sends.
class OverloadError : public SystemException {
 public:
  explicit OverloadError(const std::string& what_arg, unsigned retry_after_ms = 0)
      : SystemException(ErrorCode::kOverload, what_arg),
        retry_after_ms_(retry_after_ms) {}

  unsigned retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  unsigned retry_after_ms_;
};

/// Throws InternalError when `cond` is false. Used for invariants that
/// must hold in release builds as well (protocol state machines).
void require(bool cond, const char* message);

}  // namespace pardis
