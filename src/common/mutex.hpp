// The PARDIS mutex: std::mutex + thread-safety annotations + located
// lock-order instrumentation.
//
// Why a wrapper exists at all:
//
//  * Clang Thread Safety Analysis needs annotated acquire/release
//    functions; libstdc++'s std::mutex and std::lock_guard carry none,
//    so locking through them is invisible to the analysis. Mutex,
//    LockGuard and UniqueLock are the annotated equivalents (see
//    common/thread_annotations.hpp).
//  * The pardis_check lock-order cycle detector (check/lockorder.cpp)
//    hooks every acquisition with its call site, building the merged
//    cross-thread acquisition graph that diagnoses *potential*
//    deadlocks. The hooks ride the PR-2 contract: with PARDIS_CHECK
//    off, the entire detour is one relaxed atomic load per lock/unlock.
//
// Call-site capture uses __builtin_FILE/__builtin_LINE default
// arguments (supported by gcc >= 8 and clang >= 9), so `mutex_.lock()`
// and `LockGuard lock(mutex_)` record the caller's file:line with no
// macro at the call site.
//
// Condition variables: use std::condition_variable_any, which accepts
// any BasicLockable — pair it with UniqueLock. Prefer explicit
//     while (!ready_) cv_.wait(lock);
// loops over the predicate-lambda overloads: the analysis treats a
// lambda as a separate unannotated function, so predicate bodies
// reading guarded members would need their own annotations.
#pragma once

#include <mutex>

#include "check/check.hpp"
#include "common/thread_annotations.hpp"

namespace pardis::check {

// Lock-order detector hooks, defined in src/check/lockorder.cpp.
// Mutex calls them only when check::enabled() — the PARDIS_CHECK
// master toggle — is on.

/// About to block on `m` at file:line with this thread's held set.
/// Records held->m edges in the merged acquisition graph and throws
/// check::Violation when an edge closes a cycle (a potential deadlock,
/// even if this schedule would not have hung).
void lock_acquiring(const void* m, const char* name, const char* file, int line);

/// `m` is now held by this thread (blocking = false for try_lock
/// acquisitions, which cannot complete a deadlock cycle themselves and
/// therefore contribute no edges — only held-set membership).
void lock_acquired(const void* m, const char* name, const char* file, int line,
                   bool blocking) noexcept;

/// `m` left this thread's held set.
void lock_released(const void* m) noexcept;

/// `m` is being destroyed: purge its node so a recycled address cannot
/// inherit stale edges.
void lock_destroyed(const void* m) noexcept;

}  // namespace pardis::check

namespace pardis {

/// Annotated, instrumented replacement for a std::mutex member.
/// pardis-lint rule PT003 flags raw std::mutex members; this is the
/// type they should be.
class PARDIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept = default;
  /// `name` (a string literal) labels the mutex in lock-order
  /// diagnostics; unnamed mutexes report their address.
  explicit Mutex(const char* name) noexcept : name_(name) {}

  ~Mutex() {
    if (check::enabled()) check::lock_destroyed(this);
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) PARDIS_ACQUIRE() {
    if (check::enabled()) {  // off: this relaxed load is the whole detour
      check::lock_acquiring(this, name_, file, line);
      m_.lock();
      check::lock_acquired(this, name_, file, line, /*blocking=*/true);
    } else {
      m_.lock();
    }
  }

  bool try_lock(const char* file = __builtin_FILE(),
                int line = __builtin_LINE()) PARDIS_TRY_ACQUIRE(true) {
    const bool got = m_.try_lock();
    if (got && check::enabled())
      check::lock_acquired(this, name_, file, line, /*blocking=*/false);
    return got;
  }

  void unlock() PARDIS_RELEASE() {
    if (check::enabled()) check::lock_released(this);
    m_.unlock();
  }

  const char* name() const noexcept { return name_; }

 private:
  // pardis-lint: allow(raw-mutex) the wrapped primitive itself
  std::mutex m_;
  const char* name_ = nullptr;
};

/// Annotated std::lock_guard equivalent.
class PARDIS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) PARDIS_ACQUIRE(m)
      : m_(m) {
    m_.lock(file, line);
  }

  ~LockGuard() PARDIS_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Annotated std::unique_lock equivalent: relockable, and itself
/// BasicLockable so std::condition_variable_any::wait(lock) works (the
/// wait's internal unlock/relock flows through the instrumented Mutex,
/// keeping the lock-order held-set exact across waits).
class PARDIS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) PARDIS_ACQUIRE(m)
      : m_(&m) {
    m_->lock(file, line);
    owned_ = true;
  }

  ~UniqueLock() PARDIS_RELEASE() {
    if (owned_) m_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) PARDIS_ACQUIRE() {
    m_->lock(file, line);
    owned_ = true;
  }

  void unlock() PARDIS_RELEASE() {
    owned_ = false;
    m_->unlock();
  }

  bool owns_lock() const noexcept { return owned_; }
  Mutex* mutex() const noexcept { return m_; }

 private:
  Mutex* m_;
  bool owned_ = false;
};

}  // namespace pardis
