#include "common/error.hpp"

namespace pardis {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "UNKNOWN";
    case ErrorCode::kBadParam: return "BAD_PARAM";
    case ErrorCode::kMarshal: return "MARSHAL";
    case ErrorCode::kCommFailure: return "COMM_FAILURE";
    case ErrorCode::kObjectNotExist: return "OBJECT_NOT_EXIST";
    case ErrorCode::kNoImplement: return "NO_IMPLEMENT";
    case ErrorCode::kBadInvOrder: return "BAD_INV_ORDER";
    case ErrorCode::kTransient: return "TRANSIENT";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kBadTag: return "BAD_TAG";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kCheckViolation: return "CHECK_VIOLATION";
    case ErrorCode::kOverload: return "OVERLOAD";
  }
  return "INVALID_CODE";
}

SystemException::SystemException(ErrorCode code, const std::string& what_arg)
    : std::runtime_error(std::string(error_code_name(code)) + ": " + what_arg),
      code_(code) {}

void require(bool cond, const char* message) {
  if (!cond) throw InternalError(message);
}

}  // namespace pardis
