#include "common/ids.hpp"

#include <atomic>

namespace pardis {

namespace {
std::atomic<std::uint64_t> g_object_counter{1};
std::atomic<std::uint64_t> g_request_counter{1};
}  // namespace

std::string ObjectId::to_string() const { return "obj:" + std::to_string(value); }

ObjectId ObjectId::next() {
  return ObjectId{g_object_counter.fetch_add(1, std::memory_order_relaxed)};
}

std::string RequestId::to_string() const { return "req:" + std::to_string(value); }

RequestId RequestId::next() {
  return RequestId{g_request_counter.fetch_add(1, std::memory_order_relaxed)};
}

}  // namespace pardis
