#include "check/check.hpp"

#include <cstdlib>
#include <mutex>

namespace pardis::check {

namespace detail {

std::atomic<int> g_enabled_cache{-1};

namespace {

// Raw std::mutex on purpose: pardis::Mutex::lock() calls
// check::enabled(), which funnels into init_from_env() under this very
// lock — instrumenting it would recurse.
// pardis-lint: allow(raw-mutex) bootstrap lock below the instrumentation layer
std::mutex g_init_mutex;

bool truthy(const char* v) noexcept {
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

}  // namespace

int init_from_env() noexcept {
  std::lock_guard<std::mutex> lock(g_init_mutex);
  int v = g_enabled_cache.load(std::memory_order_relaxed);
  if (v < 0) {
    v = truthy(std::getenv("PARDIS_CHECK")) ? 1 : 0;
    g_enabled_cache.store(v, std::memory_order_relaxed);
  }
  return v;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  std::lock_guard<std::mutex> lock(detail::g_init_mutex);
  detail::g_enabled_cache.store(on ? 1 : 0, std::memory_order_relaxed);
}

void violation(const char* where, const std::string& what) {
  throw Violation(std::string("pardis_check: ") + where + ": " + what);
}

}  // namespace pardis::check
