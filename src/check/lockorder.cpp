#include "check/lockorder.hpp"

#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.hpp"

namespace pardis::check {

namespace {

/// One acquisition site (file/line are string literals from
/// __builtin_FILE, so storing the pointers is safe for the process
/// lifetime).
struct Site {
  const char* name = nullptr;  ///< mutex name, may be null
  const char* file = "?";
  int line = 0;
};

/// Edge from -> to: "some thread acquired `to` (at to_site) while
/// holding `from` (acquired at from_site)". Sites are first-observation.
struct Edge {
  Site from_site;
  Site to_site;
};

struct Node {
  const char* name = nullptr;
  std::unordered_map<const void*, Edge> out;
};

// The detector's own lock. Deliberately a raw std::mutex, NOT a
// pardis::Mutex: instrumenting the instrumentation would recurse.
// pardis-lint: allow(raw-mutex) detector-internal, never nested with
// product locks (no product code runs under it).
std::mutex g_graph_mutex;
std::unordered_map<const void*, Node> g_graph;  // guarded by g_graph_mutex
std::size_t g_edges = 0;                        // guarded by g_graph_mutex

struct Held {
  const void* m;
  Site site;
};

thread_local std::vector<Held> t_held;

std::string label(const void* m, const Site& s) {
  std::string out;
  if (s.name != nullptr) {
    out = s.name;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "mutex@%p", m);
    out = buf;
  }
  out += " (";
  out += s.file;
  out += ":";
  out += std::to_string(s.line);
  out += ")";
  return out;
}

/// Path from `from` to `to` in the merged graph; fills `first_hop`
/// with the first edge of one such path and `first_hop_node` with the
/// node it leads to. Caller holds g_graph_mutex.
bool path_exists(const void* from, const void* to, Edge* first_hop,
                 const void** first_hop_node) {
  std::unordered_set<const void*> visited;
  // Depth-first, tracking only the first hop out of `from` (enough to
  // name the previously recorded opposite order in the diagnostic).
  struct Frame {
    const void* node;
    const Edge* via_first;       ///< first edge taken from `from`
    const void* via_first_node;  ///< node that first edge leads to
  };
  std::vector<Frame> stack;
  auto it = g_graph.find(from);
  if (it == g_graph.end()) return false;
  for (const auto& [next, edge] : it->second.out)
    stack.push_back(Frame{next, &edge, next});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node == to) {
      if (first_hop != nullptr) *first_hop = *f.via_first;
      if (first_hop_node != nullptr) *first_hop_node = f.via_first_node;
      return true;
    }
    if (!visited.insert(f.node).second) continue;
    auto nit = g_graph.find(f.node);
    if (nit == g_graph.end()) continue;
    for (const auto& [next, edge] : nit->second.out) {
      (void)edge;
      stack.push_back(Frame{next, f.via_first, f.via_first_node});
    }
  }
  return false;
}

}  // namespace

void lock_acquiring(const void* m, const char* name, const char* file, int line) {
  const Site here{name, file, line};
  // Relocking a mutex this thread already holds: std::mutex deadlocks
  // (or UB) — diagnose instead of hanging.
  for (const Held& h : t_held) {
    if (h.m == m)
      violation("lockorder",
                "relocking " + label(m, here) + " already held since " +
                    label(h.m, h.site) + " — non-recursive mutex, self-deadlock");
  }
  if (t_held.empty()) return;  // no edges, no cycle possible

  std::lock_guard<std::mutex> lock(g_graph_mutex);
  // Record held -> m for every held lock (the full order, not just the
  // innermost: with A and B held, acquiring C commits both A<C and B<C).
  for (const Held& h : t_held) {
    Node& node = g_graph[h.m];
    if (node.name == nullptr) node.name = h.site.name;
    auto [it, inserted] = node.out.emplace(m, Edge{h.site, here});
    (void)it;
    if (inserted) ++g_edges;
  }
  g_graph[m].name = name;
  // A path m ~> h means some thread acquired h while (transitively)
  // holding m — the opposite order. Together with the edges above that
  // closes a cycle: a potential deadlock, even if this schedule never
  // interleaves the two orders.
  for (const Held& h : t_held) {
    Edge prior;
    const void* hop = nullptr;
    if (path_exists(m, h.m, &prior, &hop)) {
      violation(
          "lockorder",
          "potential deadlock: acquiring " + label(m, here) + " while holding " +
              label(h.m, h.site) + ", but the opposite order is already in the "
              "acquisition graph — " + label(hop, prior.to_site) +
              " was acquired while holding " + label(m, prior.from_site) +
              ". This schedule did not hang; one that interleaves the two "
              "orders will.");
    }
  }
}

void lock_acquired(const void* m, const char* name, const char* file, int line,
                   bool blocking) noexcept {
  (void)blocking;
  t_held.push_back(Held{m, Site{name, file, line}});
}

void lock_released(const void* m) noexcept {
  // Unlock order need not be LIFO (UniqueLock handoffs); drop the
  // most recent matching entry.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->m == m) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the detector was switched on mid-stream and missed the
  // acquisition. Ignore.
}

void lock_destroyed(const void* m) noexcept {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  auto it = g_graph.find(m);
  if (it != g_graph.end()) {
    g_edges -= it->second.out.size();
    g_graph.erase(it);
  }
  for (auto& [node, data] : g_graph) {
    (void)node;
    g_edges -= data.out.erase(m);
  }
}

void lockorder_reset() noexcept {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  g_graph.clear();
  g_edges = 0;
}

std::size_t lockorder_edge_count() noexcept {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  return g_edges;
}

}  // namespace pardis::check
