// pardis_check — the runtime SPMD-discipline verifier.
//
// PARDIS's correctness rests on conventions no compiler enforces: all
// ranks of a domain issue collectives in the same order, computing
// threads write only the distributed-sequence elements they own, user
// messages stay out of the reserved tag space, futures resolve once,
// POA dispatch rounds stay in lock-step. Broken discipline surfaces
// today as a hang or a late InternalError far from the bug. This
// module turns each convention into a located diagnostic (a
// `check::Violation`) raised at the violating call site.
//
// Everything is gated on one runtime toggle — the PARDIS_CHECK
// environment variable (1/true/on/yes), overridable with
// set_enabled(). Disabled, every hook is a single relaxed atomic load,
// no verification traffic is sent, and the wire format is
// byte-identical to an unchecked build.
#pragma once

#include <atomic>
#include <string>

#include "common/error.hpp"

namespace pardis::check {

namespace detail {
/// -1 = uninitialised (read PARDIS_CHECK on first use), else 0/1.
int init_from_env() noexcept;
extern std::atomic<int> g_enabled_cache;
}  // namespace detail

/// The master toggle. First call reads PARDIS_CHECK from the
/// environment; afterwards it is a single relaxed load.
inline bool enabled() noexcept {
  const int v = detail::g_enabled_cache.load(std::memory_order_relaxed);
  return v < 0 ? detail::init_from_env() > 0 : v > 0;
}

/// Programmatic override (tests).
void set_enabled(bool on) noexcept;

/// Raised for every discipline violation the verifier detects. Derives
/// from SystemException (code CHECK_VIOLATION) so metaapplication
/// boundaries that already catch SystemException keep working.
class Violation : public SystemException {
 public:
  explicit Violation(const std::string& what_arg)
      : SystemException(ErrorCode::kCheckViolation, what_arg) {}
};

/// Throws Violation with the canonical "pardis_check: <where>: <what>"
/// message shape (so diagnostics stay greppable).
[[noreturn]] void violation(const char* where, const std::string& what);

}  // namespace pardis::check
