// pardis_check — runtime lock-order cycle detection.
//
// Every pardis::Mutex acquisition (common/mutex.hpp) reports its call
// site here when PARDIS_CHECK is on. The detector keeps, per thread,
// the stack of currently held locks, and merges every "held H, then
// acquired M" observation into one process-wide acquisition graph:
// edge H -> M means some thread at some point acquired M while holding
// H. A cycle in the *merged* graph is a potential deadlock even when
// no schedule has hung yet — thread 1 locking A then B and thread 2
// locking B then A is diagnosed the moment the second order is
// observed, with both acquisition sites named, instead of whenever the
// interleaving finally bites. The diagnosis is a located
// check::Violation thrown at the acquiring call site *before* the
// thread blocks, so the test that injects the cycle completes instead
// of hanging.
//
// try_lock acquisitions join the held set but contribute no edges: a
// non-blocking acquisition cannot be the waiting arc of a deadlock.
//
// Off (the default), the entire instrumentation is one relaxed atomic
// load on the lock and unlock paths — the PR-2 contract (the load is
// check::enabled(), evaluated inline inside pardis::Mutex).
#pragma once

#include <cstddef>

#include "check/check.hpp"

namespace pardis::check {

// The Mutex-side hooks (lock_acquiring / lock_acquired / lock_released
// / lock_destroyed) are declared in common/mutex.hpp next to their
// caller and defined in lockorder.cpp.

/// Drops the merged acquisition graph (tests; also useful between
/// benchmark phases). Held-lock stacks are per-thread and unaffected.
void lockorder_reset() noexcept;

/// Number of distinct held->acquired edges observed so far (0 when the
/// detector was never enabled). Diagnostics and tests.
std::size_t lockorder_edge_count() noexcept;

}  // namespace pardis::check
