// Collective-ordering verification (the SPMD discipline's core rule:
// every rank of a domain enters the same collectives in the same
// order). Only active under check::enabled().
#pragma once

#include "rts/communicator.hpp"

namespace pardis::check {

/// What kind of collective a rank is entering.
enum class CollectiveKind { kBarrier, kBroadcast, kGather, kScatter };

const char* collective_name(CollectiveKind k) noexcept;

/// Fingerprint exchange run on entry to every collective when the
/// verifier is on. Each rank ships (kind, root, call site) to rank 0 on
/// the dedicated kTagCheck channel; rank 0 compares against its own
/// entry and sends every rank a verdict. On a mismatch all ranks throw
/// check::Violation naming both call sites — instead of the
/// cross-matched sends/recvs deadlocking inside the collective itself.
///
/// The protocol is identical for every kind, so ranks entering
/// *different* collectives still pair up here and get diagnosed. A
/// rank that enters no collective at all cannot be detected without
/// timeouts; that case still blocks (in the verifier, with the other
/// ranks parked at a known tag, which a debugger shows directly).
void verify_collective(rts::Communicator& comm, CollectiveKind kind, int root,
                       const char* where);

}  // namespace pardis::check
