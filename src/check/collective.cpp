#include "check/collective.hpp"

#include <string>

#include "check/check.hpp"
#include "common/cdr.hpp"

namespace pardis::check {

const char* collective_name(CollectiveKind k) noexcept {
  switch (k) {
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kGather: return "gather";
    case CollectiveKind::kScatter: return "scatter";
  }
  return "collective";
}

namespace {

std::string describe(CollectiveKind k, int root, const std::string& where) {
  return std::string(collective_name(k)) + "(root=" + std::to_string(root) + ") at " +
         where;
}

}  // namespace

void verify_collective(rts::Communicator& comm, CollectiveKind kind, int root,
                       const char* where) {
  const int rank = comm.rank();
  const int size = comm.size();
  if (size == 1) return;
  if (rank == 0) {
    // Collect every rank's fingerprint, compare against our own, then
    // publish one verdict. FIFO per (src, dst, tag) keeps successive
    // verifications from interleaving.
    std::string diag;
    for (int r = 1; r < size; ++r) {
      auto msg = comm.recv(r, rts::kTagCheck);
      CdrReader rd(msg.payload.view());
      const auto k = static_cast<CollectiveKind>(rd.read_ulong());
      const int rroot = rd.read_long();
      const std::string rwhere = rd.read_string();
      if (diag.empty() && (k != kind || rroot != root || rwhere != where))
        diag = "collective mismatch: rank 0 entered " + describe(kind, root, where) +
               " while rank " + std::to_string(r) + " entered " +
               describe(k, rroot, rwhere);
    }
    ByteBuffer verdict;
    {
      CdrWriter w(verdict);
      w.write_string(diag);
    }
    // Control-plane sends: verification must not advance the computing
    // threads' modeled clocks.
    for (int r = 1; r < size; ++r) comm.send_control(r, rts::kTagCheck, verdict.clone());
    if (!diag.empty()) violation("collective", diag);
  } else {
    ByteBuffer fp;
    {
      CdrWriter w(fp);
      w.write_ulong(static_cast<ULong>(kind));
      w.write_long(root);
      w.write_string(where);
    }
    comm.send_control(0, rts::kTagCheck, std::move(fp));
    // Keep the message alive for the whole read: view() spans the
    // payload, so a temporary here would dangle before read_string.
    const auto verdict = comm.recv(0, rts::kTagCheck);
    CdrReader rd(verdict.payload.view());
    const std::string diag = rd.read_string();
    if (!diag.empty()) violation("collective", diag);
  }
}

}  // namespace pardis::check
