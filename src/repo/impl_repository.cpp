#include "repo/impl_repository.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace pardis::repo {

void ImplRepository::register_impl(const std::string& name, ActivationRecord record) {
  if (!record.launch) throw BadParam("register_impl: empty launch function");
  LockGuard lock(mutex_);
  records_[name] = std::move(record);
}

void ImplRepository::unregister_impl(const std::string& name) {
  LockGuard lock(mutex_);
  records_.erase(name);
}

const ActivationRecord* ImplRepository::find(const std::string& name,
                                             const std::string& host) {
  LockGuard lock(mutex_);
  auto it = records_.find(name);
  if (it == records_.end()) return nullptr;
  if (!it->second.host.empty() && !host.empty() && it->second.host != host) return nullptr;
  return &it->second;
}

ActivationAgent::~ActivationAgent() = default;

void ActivationAgent::attach(core::Orb& orb) {
  orb.set_activator([this](const std::string& name, const std::string& host) {
    return activate(name, host);
  });
}

bool ActivationAgent::activate(const std::string& name, const std::string& host) {
  if (!activating_) {
    PARDIS_LOG(kInfo, "repo") << "non-activating mode: not starting " << name;
    return false;
  }
  const ActivationRecord* record = impls_->find(name, host);
  if (record == nullptr) return false;
  LockGuard lock(mutex_);
  if (std::find(active_names_.begin(), active_names_.end(), name) != active_names_.end())
    return true;  // a previous bind already triggered this launch
  PARDIS_LOG(kInfo, "repo") << "activating implementation for " << name;
  domains_.push_back(record->launch());
  active_names_.push_back(name);
  return true;
}

std::size_t ActivationAgent::launched() const {
  LockGuard lock(mutex_);
  return domains_.size();
}

void ActivationAgent::join_all() {
  LockGuard lock(mutex_);
  for (auto& d : domains_)
    if (d) d->join();
  domains_.clear();
  active_names_.clear();
}

}  // namespace pardis::repo
