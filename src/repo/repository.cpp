#include "repo/repository.hpp"

#include <algorithm>
#include <atomic>
#include <climits>
#include <thread>

#include "common/log.hpp"
#include "core/orb.hpp"
#include "ft/ft.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::repo {

namespace {
std::atomic<ULongLong> g_call_id{1};
}

// --- server ----------------------------------------------------------------

RepositoryServer::RepositoryServer(transport::Transport& transport,
                                   std::shared_ptr<core::InProcessRegistry> backing,
                                   std::string host_model)
    : transport_(&transport), backing_(std::move(backing)), host_model_(std::move(host_model)) {
  if (!backing_) throw BadParam("RepositoryServer: null backing registry");
  endpoint_ = transport_->create_endpoint(host_model_);
  thread_ = std::thread([this] { serve(); });
}

RepositoryServer::~RepositoryServer() {
  endpoint_->close();
  if (thread_.joinable()) thread_.join();
}

void RepositoryServer::serve() {
  for (;;) {
    transport::RsrMessage msg;
    try {
      msg = endpoint_->wait();
    } catch (const CommFailure&) {
      return;  // endpoint closed: shutdown
    }
    try {
      CdrReader r(msg.payload.view(), msg.little_endian);
      const auto op = static_cast<RepoOp>(r.read_octet());
      const transport::EndpointAddr reply_to = transport::EndpointAddr::unmarshal(r);
      const ULongLong call_id = r.read_ulonglong();

      ByteBuffer reply;
      CdrWriter w(reply);
      w.write_octet(static_cast<Octet>(RepoOp::kReply));
      w.write_ulonglong(call_id);
      switch (op) {
        case RepoOp::kRegister: {
          const core::ObjectRef ref = core::ObjectRef::unmarshal(r);
          // Optional pardis_ns lease trailer: present iff bytes remain.
          if (r.remaining() > 0)
            backing_->register_leased(ref, std::chrono::milliseconds(r.read_ulong()),
                                      /*replica=*/false);
          else
            backing_->register_object(ref);
          break;
        }
        case RepoOp::kLookup: {
          const std::string name = r.read_string();
          const std::string host = r.read_string();
          auto found = backing_->lookup(name, host);
          w.write_bool(found.has_value());
          if (found) found->marshal(w);
          break;
        }
        case RepoOp::kUnregister: {
          const std::string name = r.read_string();
          const std::string host = r.read_string();
          backing_->unregister(name, host);
          break;
        }
        case RepoOp::kList: {
          CdrTraits<std::vector<std::string>>::marshal(w, backing_->list());
          break;
        }
        case RepoOp::kRegisterReplica: {
          const core::ObjectRef ref = core::ObjectRef::unmarshal(r);
          ULongLong epoch;
          if (r.remaining() > 0)
            epoch = backing_->register_leased(ref, std::chrono::milliseconds(r.read_ulong()),
                                              /*replica=*/true);
          else
            epoch = backing_->register_replica(ref);
          w.write_ulonglong(epoch);
          break;
        }
        case RepoOp::kLookupGroup: {
          const std::string name = r.read_string();
          const std::string host = r.read_string();
          auto group = backing_->lookup_group(name, host);
          w.write_bool(group.has_value());
          if (group) group->marshal(w);
          break;
        }
        case RepoOp::kUnregisterReplica: {
          const std::string name = r.read_string();
          const ObjectId id{r.read_ulonglong()};
          backing_->unregister_replica(name, id);
          break;
        }
        case RepoOp::kRenewLease: {
          const std::string name = r.read_string();
          const ObjectId id{r.read_ulonglong()};
          const ULong lease_ms = r.read_ulong();
          w.write_bool(backing_->renew_lease(name, id, std::chrono::milliseconds(lease_ms)));
          break;
        }
        default:
          throw MarshalError("repository: bad op octet");
      }
      transport_->rsr(reply_to, transport::kHandlerRepo, std::move(reply), host_model_);
    } catch (const std::exception& e) {
      PARDIS_LOG(kWarn, "repo") << "bad repository request: " << e.what();
    }
  }
}

// --- client ----------------------------------------------------------------

namespace {

const char* op_name(RepoOp op) {
  switch (op) {
    case RepoOp::kRegister: return "register";
    case RepoOp::kLookup: return "lookup";
    case RepoOp::kUnregister: return "unregister";
    case RepoOp::kList: return "list";
    case RepoOp::kRegisterReplica: return "register_replica";
    case RepoOp::kLookupGroup: return "lookup_group";
    case RepoOp::kUnregisterReplica: return "unregister_replica";
    case RepoOp::kRenewLease: return "renew_lease";
    case RepoOp::kReply: return "reply";
  }
  return "?";
}

}  // namespace

RemoteRegistry::RemoteRegistry(transport::Transport& transport,
                               transport::EndpointAddr repo_addr,
                               std::chrono::milliseconds call_timeout,
                               std::string src_host_model)
    : transport_(&transport),
      repo_addr_(std::move(repo_addr)),
      call_timeout_(call_timeout),
      src_host_model_(std::move(src_host_model)) {
  // The -1 sentinel (and a degenerate non-positive configuration)
  // falls back to the activation-poll budget, so one env knob bounds
  // both ways a dead repository can stall a client.
  if (call_timeout_.count() <= 0)
    call_timeout_ = core::OrbConfig::from_env().resolve_timeout;
  if (call_timeout_.count() <= 0) call_timeout_ = std::chrono::seconds(5);
  reply_ep_ = transport_->create_endpoint(src_host_model_);
}

ByteBuffer RemoteRegistry::call(RepoOp op, ByteBuffer body) {
  LockGuard lock(mutex_);
  const ULongLong call_id = g_call_id.fetch_add(1, std::memory_order_relaxed);
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(static_cast<Octet>(op));
  reply_ep_->addr().marshal(w);
  w.write_ulonglong(call_id);
  frame.append(body.view());

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + call_timeout_;

  // Send, reconnecting with backoff: a CommFailure/TransientError at
  // the sender (severed link, dead connection, fault injection) is
  // retried on an ft::backoff_delay schedule until the link heals or
  // the call budget runs out. Registrations are idempotent and
  // lookups read-only, so a duplicate send is harmless.
  const ft::RetryPolicy reconnect{/*max_attempts=*/INT_MAX,
                                  /*initial_backoff=*/std::chrono::milliseconds(2),
                                  /*multiplier=*/2.0, /*jitter=*/0.5};
  int attempt = 1;
  for (;;) {
    try {
      transport_->rsr(repo_addr_, transport::kHandlerRepo, frame.clone(), src_host_model_);
      break;
    } catch (const SystemException& e) {
      if (e.code() != ErrorCode::kCommFailure && e.code() != ErrorCode::kTransient) throw;
      auto delay = ft::backoff_delay(reconnect, attempt, call_id);
      // Cap at 100 ms so a short outage never parks the client for a
      // whole exponential step; the deadline bounds the total.
      delay = std::min(delay, std::chrono::milliseconds(100));
      const auto now = std::chrono::steady_clock::now();
      if (now + delay >= deadline) {
        PARDIS_LOG(kWarn, "repo") << "repository '" << op_name(op) << "' unreachable after "
                                  << attempt << " send attempts: " << e.what();
        throw;
      }
      if (obs::enabled()) {
        static obs::Counter& reconnects = obs::metrics().counter("ns.repo_reconnects");
        reconnects.add(1);
      }
      std::this_thread::sleep_for(delay);
      ++attempt;
    }
  }
  last_send_attempts_ = attempt;

  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
      throw TimeoutError("repository call '" + std::string(op_name(op)) +
                         "' timed out after " + std::to_string(elapsed.count()) +
                         " ms (PARDIS_RESOLVE_TIMEOUT_MS raises the limit)");
    }
    auto res = reply_ep_->wait_for(
        std::chrono::ceil<std::chrono::milliseconds>(deadline - now));
    if (res.closed()) throw CommFailure("repository reply endpoint closed");
    if (!res.message) continue;  // the loop head converts this to TimeoutError
    auto& msg = res.message;
    CdrReader r(msg->payload.view(), msg->little_endian);
    if (static_cast<RepoOp>(r.read_octet()) != RepoOp::kReply) continue;
    if (r.read_ulonglong() != call_id) continue;  // stale reply
    return ByteBuffer::from(msg->payload.view().subspan(r.offset()));
  }
}

// Registration ships the full ObjectRef, arg_specs included — the
// durable marker (core/durable) therefore crosses the repository wire
// opaquely, with no repo-op or registry change, and non-durable refs
// marshal to the exact pre-WAL bytes.
void RemoteRegistry::register_object(const core::ObjectRef& ref) {
  ByteBuffer body;
  CdrWriter w(body);
  ref.marshal(w);
  call(RepoOp::kRegister, std::move(body));
}

std::optional<core::ObjectRef> RemoteRegistry::lookup(const std::string& name,
                                                      const std::string& host) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_string(host);
  ByteBuffer reply = call(RepoOp::kLookup, std::move(body));
  CdrReader r(reply.view());
  if (!r.read_bool()) return std::nullopt;
  return core::ObjectRef::unmarshal(r);
}

void RemoteRegistry::unregister(const std::string& name, const std::string& host) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_string(host);
  call(RepoOp::kUnregister, std::move(body));
}

std::vector<std::string> RemoteRegistry::list() {
  ByteBuffer reply = call(RepoOp::kList, ByteBuffer{});
  return cdr_decode<std::vector<std::string>>(reply.view());
}

ULongLong RemoteRegistry::register_replica(const core::ObjectRef& ref) {
  ByteBuffer body;
  CdrWriter w(body);
  ref.marshal(w);
  ByteBuffer reply = call(RepoOp::kRegisterReplica, std::move(body));
  CdrReader r(reply.view());
  return r.read_ulonglong();
}

std::optional<core::ReplicaGroup> RemoteRegistry::lookup_group(const std::string& name,
                                                               const std::string& host) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_string(host);
  ByteBuffer reply = call(RepoOp::kLookupGroup, std::move(body));
  CdrReader r(reply.view());
  if (!r.read_bool()) return std::nullopt;
  return core::ReplicaGroup::unmarshal(r);
}

void RemoteRegistry::unregister_replica(const std::string& name, const ObjectId& id) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_ulonglong(id.value);
  call(RepoOp::kUnregisterReplica, std::move(body));
}

ULongLong RemoteRegistry::register_leased(const core::ObjectRef& ref,
                                          std::chrono::milliseconds lease, bool replica) {
  ByteBuffer body;
  CdrWriter w(body);
  ref.marshal(w);
  // The lease rides as an optional trailer so lease-free registrations
  // stay byte-identical to the pre-ns encoding.
  if (lease.count() > 0) w.write_ulong(static_cast<ULong>(lease.count()));
  ByteBuffer reply = call(replica ? RepoOp::kRegisterReplica : RepoOp::kRegister,
                          std::move(body));
  if (!replica) return 0;
  CdrReader r(reply.view());
  return r.read_ulonglong();
}

bool RemoteRegistry::renew_lease(const std::string& name, const ObjectId& id,
                                 std::chrono::milliseconds lease) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_ulonglong(id.value);
  w.write_ulong(static_cast<ULong>(std::max<std::int64_t>(lease.count(), 0)));
  ByteBuffer reply = call(RepoOp::kRenewLease, std::move(body));
  CdrReader r(reply.view());
  return r.read_bool();
}

}  // namespace pardis::repo
