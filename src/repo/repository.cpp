#include "repo/repository.hpp"

#include <atomic>

#include "common/log.hpp"

namespace pardis::repo {

namespace {
std::atomic<ULongLong> g_call_id{1};
}

// --- server ----------------------------------------------------------------

RepositoryServer::RepositoryServer(transport::Transport& transport,
                                   std::shared_ptr<core::InProcessRegistry> backing)
    : transport_(&transport), backing_(std::move(backing)) {
  if (!backing_) throw BadParam("RepositoryServer: null backing registry");
  endpoint_ = transport_->create_endpoint("");
  thread_ = std::thread([this] { serve(); });
}

RepositoryServer::~RepositoryServer() {
  endpoint_->close();
  if (thread_.joinable()) thread_.join();
}

void RepositoryServer::serve() {
  for (;;) {
    transport::RsrMessage msg;
    try {
      msg = endpoint_->wait();
    } catch (const CommFailure&) {
      return;  // endpoint closed: shutdown
    }
    try {
      CdrReader r(msg.payload.view(), msg.little_endian);
      const auto op = static_cast<RepoOp>(r.read_octet());
      const transport::EndpointAddr reply_to = transport::EndpointAddr::unmarshal(r);
      const ULongLong call_id = r.read_ulonglong();

      ByteBuffer reply;
      CdrWriter w(reply);
      w.write_octet(static_cast<Octet>(RepoOp::kReply));
      w.write_ulonglong(call_id);
      switch (op) {
        case RepoOp::kRegister: {
          backing_->register_object(core::ObjectRef::unmarshal(r));
          break;
        }
        case RepoOp::kLookup: {
          const std::string name = r.read_string();
          const std::string host = r.read_string();
          auto found = backing_->lookup(name, host);
          w.write_bool(found.has_value());
          if (found) found->marshal(w);
          break;
        }
        case RepoOp::kUnregister: {
          const std::string name = r.read_string();
          const std::string host = r.read_string();
          backing_->unregister(name, host);
          break;
        }
        case RepoOp::kList: {
          CdrTraits<std::vector<std::string>>::marshal(w, backing_->list());
          break;
        }
        default:
          throw MarshalError("repository: bad op octet");
      }
      transport_->rsr(reply_to, transport::kHandlerRepo, std::move(reply), "");
    } catch (const std::exception& e) {
      PARDIS_LOG(kWarn, "repo") << "bad repository request: " << e.what();
    }
  }
}

// --- client ----------------------------------------------------------------

RemoteRegistry::RemoteRegistry(transport::Transport& transport,
                               transport::EndpointAddr repo_addr)
    : transport_(&transport), repo_addr_(std::move(repo_addr)) {
  reply_ep_ = transport_->create_endpoint("");
}

ByteBuffer RemoteRegistry::call(RepoOp op, ByteBuffer body) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ULongLong call_id = g_call_id.fetch_add(1, std::memory_order_relaxed);
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(static_cast<Octet>(op));
  reply_ep_->addr().marshal(w);
  w.write_ulonglong(call_id);
  frame.append(body.view());
  transport_->rsr(repo_addr_, transport::kHandlerRepo, std::move(frame), "");

  for (;;) {
    auto res = reply_ep_->wait_for(std::chrono::seconds(5));
    if (res.closed()) throw CommFailure("repository reply endpoint closed");
    if (!res.message) throw TimeoutError("repository call timed out");
    auto& msg = res.message;
    CdrReader r(msg->payload.view(), msg->little_endian);
    if (static_cast<RepoOp>(r.read_octet()) != RepoOp::kReply) continue;
    if (r.read_ulonglong() != call_id) continue;  // stale reply
    return ByteBuffer::from(msg->payload.view().subspan(r.offset()));
  }
}

void RemoteRegistry::register_object(const core::ObjectRef& ref) {
  ByteBuffer body;
  CdrWriter w(body);
  ref.marshal(w);
  call(RepoOp::kRegister, std::move(body));
}

std::optional<core::ObjectRef> RemoteRegistry::lookup(const std::string& name,
                                                      const std::string& host) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_string(host);
  ByteBuffer reply = call(RepoOp::kLookup, std::move(body));
  CdrReader r(reply.view());
  if (!r.read_bool()) return std::nullopt;
  return core::ObjectRef::unmarshal(r);
}

void RemoteRegistry::unregister(const std::string& name, const std::string& host) {
  ByteBuffer body;
  CdrWriter w(body);
  w.write_string(name);
  w.write_string(host);
  call(RepoOp::kUnregister, std::move(body));
}

std::vector<std::string> RemoteRegistry::list() {
  ByteBuffer reply = call(RepoOp::kList, ByteBuffer{});
  return cdr_decode<std::vector<std::string>>(reply.view());
}

}  // namespace pardis::repo
