// Object repository service and its remote client.
//
// The paper (§2.2): "Object and Implementation Repositories: databases
// which define a naming domain for interacting objects. On activation,
// every object registers with an object repository, which is searched
// when the client requests a connection to a specific object. Each
// repository is associated with a unique namespace; configuring
// clients and servers to work with different repositories allows the
// programmer to split the namespace for interacting objects."
//
// RepositoryServer exposes an InProcessRegistry-backed namespace over
// the transport, so metaapplications spanning several processes share
// one naming domain; RemoteRegistry is the client-side ObjectRegistry
// implementation that talks to it.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/mutex.hpp"
#include "core/registry.hpp"
#include "core/wire.hpp"  // RepoOp
#include "transport/transport.hpp"

namespace pardis::repo {

// RepoOp — the repository wire operations — lives in the wire-constant
// registry (core/wire.hpp).

/// Serves one namespace over a transport. Runs its own service thread
/// (the repository is an ordinary daemon, not a computing thread).
class RepositoryServer {
 public:
  /// `backing` may be shared with in-process users of the namespace.
  /// `host_model` names the modeled host the server runs on (empty =
  /// unmodeled) — it keys fault-plan links and link-cost lookups for
  /// the reply path.
  RepositoryServer(transport::Transport& transport,
                   std::shared_ptr<core::InProcessRegistry> backing,
                   std::string host_model = "");
  ~RepositoryServer();

  RepositoryServer(const RepositoryServer&) = delete;
  RepositoryServer& operator=(const RepositoryServer&) = delete;

  /// Address clients configure their RemoteRegistry with.
  const transport::EndpointAddr& addr() const { return endpoint_->addr(); }

  core::InProcessRegistry& backing() { return *backing_; }

 private:
  void serve();

  transport::Transport* transport_;
  std::shared_ptr<core::InProcessRegistry> backing_;
  std::string host_model_;
  std::shared_ptr<transport::Endpoint> endpoint_;
  std::thread thread_;
};

/// ObjectRegistry implementation backed by a remote RepositoryServer.
/// Each instance owns a private reply endpoint; calls are synchronous.
///
/// A send that fails with CommFailure/TransientError (severed link,
/// dead connection) no longer fails the bind outright: the registry
/// *reconnects with backoff* — exponential ft::backoff_delay pacing —
/// and re-sends until the call-timeout budget runs out, so a resolve
/// that races a link outage succeeds as soon as the link heals. When
/// the transport is a flow::SessionTransport the session layer redials
/// first; this loop handles whatever escalates past it.
class RemoteRegistry final : public core::ObjectRegistry {
 public:
  /// Every call is bounded by `call_timeout`; the default (-1
  /// sentinel) uses OrbConfig::resolve_timeout
  /// (PARDIS_RESOLVE_TIMEOUT_MS) — a dead repository surfaces as a
  /// TimeoutError carrying the elapsed ms instead of hanging the
  /// client forever. `src_host_model` names the client's modeled host
  /// (fault-plan links, link costs); empty = unmodeled.
  RemoteRegistry(transport::Transport& transport, transport::EndpointAddr repo_addr,
                 std::chrono::milliseconds call_timeout = std::chrono::milliseconds(-1),
                 std::string src_host_model = "");

  void register_object(const core::ObjectRef& ref) override;
  std::optional<core::ObjectRef> lookup(const std::string& name,
                                        const std::string& host) override;
  void unregister(const std::string& name, const std::string& host) override;
  std::vector<std::string> list() override;

  ULongLong register_replica(const core::ObjectRef& ref) override;
  std::optional<core::ReplicaGroup> lookup_group(const std::string& name,
                                                 const std::string& host) override;
  void unregister_replica(const std::string& name, const ObjectId& id) override;

  ULongLong register_leased(const core::ObjectRef& ref, std::chrono::milliseconds lease,
                            bool replica) override;
  bool renew_lease(const std::string& name, const ObjectId& id,
                   std::chrono::milliseconds lease) override;

  /// Send attempts the last call needed (1 = no reconnects). Tests.
  int last_send_attempts() const {
    LockGuard lock(mutex_);
    return last_send_attempts_;
  }

 private:
  ByteBuffer call(RepoOp op, ByteBuffer body);

  transport::Transport* transport_;
  transport::EndpointAddr repo_addr_;
  std::chrono::milliseconds call_timeout_;
  std::string src_host_model_;
  std::shared_ptr<transport::Endpoint> reply_ep_;
  mutable Mutex mutex_{"repo.remote_registry"};  // one outstanding call at a time
  int last_send_attempts_ PARDIS_GUARDED_BY(mutex_) = 0;
};

}  // namespace pardis::repo
