// Implementation repository and activation agent.
//
// Paper §2.2: "In the case of non-persistent servers, the programmer
// can use the register facility to register the object and information
// on how it should be activated with the Implementation Repository...
// since establishing connection with an object can involve starting up
// the server which provides its implementation, PARDIS provides
// activating agents. ... in order to limit the interference between
// the activating agent and the server, the programmer can configure
// the system to work in an activating and non-activating mode."
//
// Activation records are factories: starting a server means launching
// its domain (computing threads) in this process. The agent plugs into
// Orb::set_activator so a failed bind triggers activation transparently.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/orb.hpp"
#include "rts/domain.hpp"

namespace pardis::repo {

/// How a registered implementation is started.
struct ActivationRecord {
  /// Starts the server; must eventually register the named object.
  /// Returns the running domain (owned by the agent until shutdown).
  std::function<std::unique_ptr<rts::Domain>()> launch;
  /// Restrict activation to binds naming this host ("" = any host).
  std::string host;
};

class ImplRepository {
 public:
  void register_impl(const std::string& name, ActivationRecord record);
  void unregister_impl(const std::string& name);
  /// The record able to serve (name, host), if any.
  const ActivationRecord* find(const std::string& name, const std::string& host);

 private:
  Mutex mutex_{"repo.impl_repository"};
  std::map<std::string, ActivationRecord> records_ PARDIS_GUARDED_BY(mutex_);
};

/// Launches registered implementations on demand and keeps their
/// domains alive. In non-activating mode lookups fail instead
/// (paper: activating / non-activating configuration).
class ActivationAgent {
 public:
  explicit ActivationAgent(ImplRepository& impls, bool activating = true)
      : impls_(&impls), activating_(activating) {}
  ~ActivationAgent();

  ActivationAgent(const ActivationAgent&) = delete;
  ActivationAgent& operator=(const ActivationAgent&) = delete;

  void set_activating(bool on) { activating_ = on; }
  bool activating() const { return activating_; }

  /// Installs this agent as `orb`'s activator.
  void attach(core::Orb& orb);

  /// Orb activation hook; true when a launch was started.
  bool activate(const std::string& name, const std::string& host);

  /// Domains launched so far (for shutdown coordination in tests).
  std::size_t launched() const;

  /// Signals every launched domain to finish and joins them. The
  /// launch functions are responsible for making their servers exit
  /// (e.g. a deactivating operation); shutdown() only joins.
  void join_all();

 private:
  ImplRepository* impls_;
  bool activating_;
  mutable Mutex mutex_{"repo.activation_agent"};
  std::vector<std::unique_ptr<rts::Domain>> domains_ PARDIS_GUARDED_BY(mutex_);
  std::vector<std::string> active_names_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::repo
