// IDL lexer.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "idl/token.hpp"

namespace pardis::idl {

/// Raised on any lexical or syntactic error, with source location.
class IdlError : public std::runtime_error {
 public:
  IdlError(const std::string& file, int line, int column, const std::string& message);
};

class Lexer {
 public:
  Lexer(std::string source, std::string filename = "<idl>");

  /// Tokenizes the whole input (ending with a kEof token).
  std::vector<Token> tokenize();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool eof() const { return pos_ >= src_.size(); }
  void skip_ws_and_comments();
  [[noreturn]] void fail(const std::string& message) const;

  std::string src_;
  std::string file_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace pardis::idl
