// Tokens of the PARDIS IDL (CORBA IDL subset + dsequence + pragmas).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pardis::idl {

enum class Tok {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // punctuation
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kLAngle,    // <
  kRAngle,    // >
  kComma,
  kSemicolon,
  kColon,
  kEquals,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  // keywords
  kKwTypedef,
  kKwInterface,
  kKwStruct,
  kKwEnum,
  kKwConst,
  kKwSequence,
  kKwDSequence,
  kKwString,
  kKwVoid,
  kKwBoolean,
  kKwOctet,
  kKwShort,
  kKwLong,
  kKwUnsigned,
  kKwFloat,
  kKwDouble,
  kKwIn,
  kKwOut,
  kKwInOut,
  kKwOneway,
  // distribution keywords inside dsequence<>
  kKwBlock,
  kKwCyclic,
  kKwConcentrated,
  // a whole "#pragma <pkg>:<structure>" line
  kPragma,
};

const char* tok_name(Tok t) noexcept;

struct Token {
  Tok kind = Tok::kEof;
  std::string text;          ///< identifier / literal spelling / pragma body
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;
};

}  // namespace pardis::idl
