#include "idl/lint.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_set>

namespace pardis::idl {

const char* severity_name(Severity s) noexcept {
  return s == Severity::kError ? "error" : "warning";
}

namespace {

class Linter {
 public:
  explicit Linter(const Spec& spec) : spec_(spec) {}

  std::vector<Diagnostic> run() {
    check_unused_types();        // PL001
    check_element_types();       // PL002
    check_package_mappings();    // PL003
    check_generated_collisions();// PL004
    check_cpp_keywords();        // PL005
    check_distribution_specs(); // PL006
    check_empty_interfaces();    // PL007
    check_duplicate_enumerators();// PL008
    check_idempotent_oneway();   // PL009
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                       if (a.loc.column != b.loc.column) return a.loc.column < b.loc.column;
                       return a.code < b.code;
                     });
    return std::move(diags_);
  }

 private:
  void add(const char* code, Severity sev, Loc loc, std::string message) {
    diags_.push_back(Diagnostic{code, sev, spec_.file, loc, std::move(message)});
  }

  /// Marks `t` and every type it mentions as referenced.
  void mark_used(const Type* t, std::unordered_set<const Type*>& used) {
    if (t == nullptr || !used.insert(t).second) return;
    mark_used(t->elem.get(), used);
    mark_used(t->alias_target.get(), used);
    for (const auto& [name, ft] : t->fields) mark_used(ft.get(), used);
  }

  // PL001: a typedef/struct/enum nothing reachable from an interface
  // refers to. Dead type definitions in IDL are usually leftovers from
  // a renamed operation — and every one still costs generated code,
  // CdrTraits instantiations and stub-header compile time.
  void check_unused_types() {
    std::unordered_set<const Type*> used;
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kInterface) continue;
      for (const auto& op : d.interface_def.ops) {
        mark_used(op.ret.get(), used);
        for (const auto& p : op.params) mark_used(p.type.get(), used);
      }
    }
    for (const auto& d : spec_.definitions) {
      const Type* t = nullptr;
      const char* what = nullptr;
      std::string name;
      Loc loc;
      switch (d.kind) {
        case Definition::Kind::kTypedef:
          t = d.typedef_def.type.get();
          what = "typedef";
          name = d.typedef_def.name;
          loc = d.typedef_def.loc;
          break;
        case Definition::Kind::kStruct:
          t = d.struct_or_enum.get();
          what = "struct";
          name = d.struct_or_enum->name;
          loc = d.struct_or_enum->loc;
          break;
        case Definition::Kind::kEnum:
          t = d.struct_or_enum.get();
          what = "enum";
          name = d.struct_or_enum->name;
          loc = d.struct_or_enum->loc;
          break;
        default:
          continue;
      }
      if (used.count(t) == 0)
        add("PL001", Severity::kWarning, loc,
            std::string(what) + " '" + name +
                "' is never used by any interface operation");
    }
  }

  /// Visits every distinct Type node in the spec once.
  template <typename Fn>
  void for_each_type(Fn&& fn) {
    std::unordered_set<const Type*> seen;
    auto walk = [&](auto&& self, const Type* t) -> void {
      if (t == nullptr || !seen.insert(t).second) return;
      fn(t);
      self(self, t->elem.get());
      self(self, t->alias_target.get());
      for (const auto& [name, ft] : t->fields) self(self, ft.get());
    };
    for (const auto& d : spec_.definitions) {
      switch (d.kind) {
        case Definition::Kind::kTypedef: walk(walk, d.typedef_def.type.get()); break;
        case Definition::Kind::kStruct:
        case Definition::Kind::kEnum: walk(walk, d.struct_or_enum.get()); break;
        case Definition::Kind::kConst: walk(walk, d.const_def.type.get()); break;
        case Definition::Kind::kInterface:
          for (const auto& op : d.interface_def.ops) {
            walk(walk, op.ret.get());
            for (const auto& p : op.params) walk(walk, p.type.get());
          }
          break;
      }
    }
  }

  // PL002: sequence/dsequence of boolean. The C++ mapping stores
  // elements in std::vector<T> and marshals primitive runs through
  // std::span — std::vector<bool> has neither contiguous storage nor
  // data(), so the generated code cannot compile, and a distributed
  // block of packed bits could not be transferred by range anyway.
  void check_element_types() {
    for_each_type([&](const Type* t) {
      if (t->kind != Type::Kind::kSequence && t->kind != Type::Kind::kDSequence) return;
      const Type* e = t->elem->resolved();
      if (e->kind == Type::Kind::kBasic && e->basic == BasicKind::kBoolean) {
        const char* kind =
            t->kind == Type::Kind::kDSequence ? "dsequence" : "sequence";
        add("PL002", Severity::kError, t->loc,
            std::string(kind) +
                " element type 'boolean' is not block-marshalable "
                "(std::vector<bool> provides no contiguous storage); use octet");
      }
    });
  }

  // PL003: a #pragma package mapping that no generator adapter
  // implements. Without -hpcxx/-pooma the mapping is dormant and the
  // error only fires when someone finally builds with the package —
  // catch it at lint time instead.
  void check_package_mappings() {
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kTypedef) continue;
      const Type* target = d.typedef_def.type->alias_target.get();
      if (target == nullptr || target->kind != Type::Kind::kDSequence) continue;
      for (const auto& m : target->mappings) {
        const bool known = (m.package == "HPC++" && m.structure == "vector") ||
                           (m.package == "POOMA" && m.structure == "field");
        if (!known)
          add("PL003", Severity::kError, d.typedef_def.loc,
              "#pragma " + m.package + ":" + m.structure + " on typedef '" +
                  d.typedef_def.name +
                  "' has no package adapter (known: HPC++:vector, POOMA:field)");
      }
    }
  }

  struct Ident {
    std::string name;
    Loc loc;
    std::string what;  ///< "interface name", "parameter", ...
  };

  std::vector<Ident> all_identifiers() const {
    std::vector<Ident> ids;
    for (const auto& d : spec_.definitions) {
      switch (d.kind) {
        case Definition::Kind::kTypedef:
          ids.push_back({d.typedef_def.name, d.typedef_def.loc, "typedef name"});
          break;
        case Definition::Kind::kStruct: {
          const Type* t = d.struct_or_enum.get();
          ids.push_back({t->name, t->loc, "struct name"});
          for (std::size_t i = 0; i < t->fields.size(); ++i)
            ids.push_back({t->fields[i].first, t->field_locs[i], "struct field"});
          break;
        }
        case Definition::Kind::kEnum: {
          const Type* t = d.struct_or_enum.get();
          ids.push_back({t->name, t->loc, "enum name"});
          for (std::size_t i = 0; i < t->enumerators.size(); ++i)
            ids.push_back({t->enumerators[i], t->enumerator_locs[i], "enumerator"});
          break;
        }
        case Definition::Kind::kConst:
          ids.push_back({d.const_def.name, d.const_def.loc, "constant name"});
          break;
        case Definition::Kind::kInterface: {
          const InterfaceDef& i = d.interface_def;
          ids.push_back({i.name, i.loc, "interface name"});
          for (const auto& op : i.ops) {
            ids.push_back({op.name, op.loc, "operation name"});
            for (const auto& p : op.params) ids.push_back({p.name, p.loc, "parameter"});
          }
          break;
        }
      }
    }
    return ids;
  }

  // PL004: identifiers that land inside the generator's reserved
  // namespace: `_`-prefixed locals/stub machinery, `POA_` skeletons,
  // and `X_nb` / `X_var` siblings of an existing `X` (the generator
  // emits exactly those names for X's non-blocking stub and managed
  // pointer).
  void check_generated_collisions() {
    const std::vector<Ident> ids = all_identifiers();
    std::set<std::string> toplevel;
    for (const auto& d : spec_.definitions) {
      switch (d.kind) {
        case Definition::Kind::kTypedef: toplevel.insert(d.typedef_def.name); break;
        case Definition::Kind::kStruct:
        case Definition::Kind::kEnum: toplevel.insert(d.struct_or_enum->name); break;
        case Definition::Kind::kConst: toplevel.insert(d.const_def.name); break;
        case Definition::Kind::kInterface: toplevel.insert(d.interface_def.name); break;
      }
    }
    for (const auto& id : ids) {
      if (!id.name.empty() && id.name[0] == '_')
        add("PL004", Severity::kError, id.loc,
            id.what + " '" + id.name +
                "' collides with generated symbols (the '_' prefix is reserved "
                "for stub locals)");
      else if (id.name.rfind("POA_", 0) == 0)
        add("PL004", Severity::kError, id.loc,
            id.what + " '" + id.name +
                "' collides with generated symbols (the 'POA_' prefix names "
                "skeleton classes)");
    }
    // X + X_var / X_nb pairs, at any top level or operation scope.
    auto flag_sibling = [&](const Ident& id, const std::string& stem, const char* gen) {
      add("PL004", Severity::kError, id.loc,
          id.what + " '" + id.name + "' collides with the " + gen + " generated for '" +
              stem + "'");
    };
    for (const auto& id : ids) {
      for (const char* suffix : {"_var", "_bound", "_client_spec", "_server_spec"}) {
        const std::string s(suffix);
        if (id.name.size() > s.size() &&
            id.name.compare(id.name.size() - s.size(), s.size(), s) == 0) {
          const std::string stem = id.name.substr(0, id.name.size() - s.size());
          if (toplevel.count(stem) != 0)
            flag_sibling(id, stem, s == "_var" ? "managed-pointer type" : "typedef metadata");
        }
      }
    }
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kInterface) continue;
      std::set<std::string> op_names;
      for (const auto& op : d.interface_def.ops) op_names.insert(op.name);
      for (const auto& op : d.interface_def.ops) {
        if (op.name.size() > 3 && op.name.compare(op.name.size() - 3, 3, "_nb") == 0 &&
            op_names.count(op.name.substr(0, op.name.size() - 3)) != 0)
          flag_sibling({op.name, op.loc, "operation name"},
                       op.name.substr(0, op.name.size() - 3), "non-blocking stub");
      }
    }
  }

  // PL005: the IDL happily accepts `class` or `template` as an
  // identifier; the generated header then fails to compile with an
  // error pointing nowhere near the .idl file.
  void check_cpp_keywords() {
    static const std::set<std::string> kKeywords = {
        "alignas", "alignof", "and", "and_eq", "asm", "auto", "bitand", "bitor",
        "bool", "break", "case", "catch", "char", "char16_t", "char32_t", "char8_t",
        "class", "co_await", "co_return", "co_yield", "compl", "concept", "const",
        "const_cast", "consteval", "constexpr", "constinit", "continue", "decltype",
        "default", "delete", "do", "double", "dynamic_cast", "else", "enum",
        "explicit", "export", "extern", "false", "float", "for", "friend", "goto",
        "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
        "not", "not_eq", "nullptr", "operator", "or", "or_eq", "private",
        "protected", "public", "register", "reinterpret_cast", "requires", "return",
        "short", "signed", "sizeof", "static", "static_assert", "static_cast",
        "struct", "switch", "template", "this", "thread_local", "throw", "true",
        "try", "typedef", "typeid", "typename", "union", "unsigned", "using",
        "virtual", "void", "volatile", "wchar_t", "while", "xor", "xor_eq"};
    for (const auto& id : all_identifiers())
      if (kKeywords.count(id.name) != 0)
        add("PL005", Severity::kError, id.loc,
            id.what + " '" + id.name +
                "' is a reserved C++ keyword; the generated header cannot compile");
  }

  // PL006: a client-side CONCENTRATED(root) spec with root >= 1. The
  // generator always emits the single-client mapping for operations
  // with dsequence arguments, and a width-1 client domain makes
  // Distribution::concentrated throw "root out of range" on every call
  // — the transfer can never start for non-SPMD clients.
  void check_distribution_specs() {
    for_each_type([&](const Type* t) {
      if (t->kind != Type::Kind::kDSequence) return;
      if (t->client_spec.kind == dist::DistKind::kConcentrated &&
          t->client_spec.root >= 1)
        add("PL006", Severity::kWarning, t->loc,
            "client-side CONCENTRATED(" + std::to_string(t->client_spec.root) +
                ") can never transfer through the single-client mapping "
                "(root out of range for a width-1 domain)");
    });
  }

  // PL007: an interface with no operations (and nothing inherited)
  // produces a proxy no client can do anything with.
  void check_empty_interfaces() {
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kInterface) continue;
      const InterfaceDef& i = d.interface_def;
      if (i.ops.empty() && i.base.empty())
        add("PL007", Severity::kWarning, i.loc,
            "interface '" + i.name + "' declares no operations");
    }
  }

  // PL008: the parser accepts `enum e { A, A }`; the generated C++
  // enum class then fails to compile.
  void check_duplicate_enumerators() {
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kEnum) continue;
      const Type* t = d.struct_or_enum.get();
      std::set<std::string> seen;
      for (std::size_t i = 0; i < t->enumerators.size(); ++i)
        if (!seen.insert(t->enumerators[i]).second)
          add("PL008", Severity::kError, t->enumerator_locs[i],
              "duplicate enumerator '" + t->enumerators[i] + "' in enum '" + t->name +
                  "'");
    }
  }

  // PL009: `#pragma idempotent` on a oneway operation. The retry
  // protocol re-sends when a *reply* is lost or late — a oneway has no
  // reply, so the pragma can only mask a send failure as success after
  // max_attempts of pointless backoff. Warning, not error: the send
  // phase still retries transient transport failures, which can be
  // intentional.
  void check_idempotent_oneway() {
    for (const auto& d : spec_.definitions) {
      if (d.kind != Definition::Kind::kInterface) continue;
      for (const auto& op : d.interface_def.ops)
        if (op.idempotent && op.oneway)
          add("PL009", Severity::kWarning, op.loc,
              "#pragma idempotent on oneway operation '" + op.name +
                  "' retries only the send: a oneway has no reply to detect a "
                  "lost request by");
    }
  }

  const Spec& spec_;
  std::vector<Diagnostic> diags_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> run_lint(const Spec& spec) { return Linter(spec).run(); }

void render_text(const std::vector<Diagnostic>& diags, std::ostream& os) {
  for (const Diagnostic& d : diags)
    os << d.file << ":" << d.loc.line << ":" << d.loc.column << ": "
       << severity_name(d.severity) << ": " << d.message << " [" << d.code << "]\n";
}

void render_json(const std::vector<Diagnostic>& diags, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) os << ",";
    os << "\n  {\"code\":\"" << d.code << "\",\"severity\":\"" << severity_name(d.severity)
       << "\",\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.loc.line
       << ",\"column\":" << d.loc.column << ",\"message\":\"" << json_escape(d.message)
       << "\"}";
  }
  os << (diags.empty() ? "]\n" : "\n]\n");
}

bool lint_failed(const std::vector<Diagnostic>& diags, bool werror) noexcept {
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::kError || werror) return true;
  return false;
}

}  // namespace pardis::idl
