// Recursive-descent parser for the PARDIS IDL, including semantic
// checks (name resolution, constant folding, PARDIS-specific rules).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "idl/ast.hpp"
#include "idl/lexer.hpp"

namespace pardis::idl {

class Parser {
 public:
  Parser(std::string source, std::string filename = "<idl>");

  /// Parses and validates the whole specification.
  Spec parse();

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(int ahead = 1) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token eat(Tok kind, const char* what);
  bool accept(Tok kind);
  [[noreturn]] void fail(const std::string& message) const;

  Definition parse_typedef(std::vector<PackageMapping> pending);
  Definition parse_struct();
  Definition parse_enum();
  Definition parse_const();
  Definition parse_interface();
  Operation parse_operation();
  TypePtr parse_type_spec(bool allow_void = false);
  core::DistSpec parse_dist_spec();
  long long parse_const_int_expr();
  long long parse_const_term();
  long long parse_const_factor();

  TypePtr lookup_type(const std::string& name) const;
  void define_type(const std::string& name, TypePtr type);
  void check_marshalable_element(const TypePtr& t) const;
  void validate_operation(const Operation& op) const;

  std::string file_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, TypePtr> types_;
  std::map<std::string, ConstDef> consts_;
  std::map<std::string, InterfaceDef> interfaces_;
};

}  // namespace pardis::idl
