#include "idl/lexer.hpp"

#include <cctype>
#include <map>

namespace pardis::idl {

const char* tok_name(Tok t) noexcept {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdentifier: return "identifier";
    case Tok::kIntLiteral: return "integer literal";
    case Tok::kFloatLiteral: return "float literal";
    case Tok::kStringLiteral: return "string literal";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLAngle: return "'<'";
    case Tok::kRAngle: return "'>'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kEquals: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kKwTypedef: return "'typedef'";
    case Tok::kKwInterface: return "'interface'";
    case Tok::kKwStruct: return "'struct'";
    case Tok::kKwEnum: return "'enum'";
    case Tok::kKwConst: return "'const'";
    case Tok::kKwSequence: return "'sequence'";
    case Tok::kKwDSequence: return "'dsequence'";
    case Tok::kKwString: return "'string'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwBoolean: return "'boolean'";
    case Tok::kKwOctet: return "'octet'";
    case Tok::kKwShort: return "'short'";
    case Tok::kKwLong: return "'long'";
    case Tok::kKwUnsigned: return "'unsigned'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwDouble: return "'double'";
    case Tok::kKwIn: return "'in'";
    case Tok::kKwOut: return "'out'";
    case Tok::kKwInOut: return "'inout'";
    case Tok::kKwOneway: return "'oneway'";
    case Tok::kKwBlock: return "'BLOCK'";
    case Tok::kKwCyclic: return "'CYCLIC'";
    case Tok::kKwConcentrated: return "'CONCENTRATED'";
    case Tok::kPragma: return "#pragma";
  }
  return "?";
}

IdlError::IdlError(const std::string& file, int line, int column, const std::string& message)
    : std::runtime_error(file + ":" + std::to_string(line) + ":" + std::to_string(column) +
                         ": " + message) {}

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw{
      {"typedef", Tok::kKwTypedef},
      {"interface", Tok::kKwInterface},
      {"struct", Tok::kKwStruct},
      {"enum", Tok::kKwEnum},
      {"const", Tok::kKwConst},
      {"sequence", Tok::kKwSequence},
      {"dsequence", Tok::kKwDSequence},
      {"string", Tok::kKwString},
      {"void", Tok::kKwVoid},
      {"boolean", Tok::kKwBoolean},
      {"octet", Tok::kKwOctet},
      {"short", Tok::kKwShort},
      {"long", Tok::kKwLong},
      {"unsigned", Tok::kKwUnsigned},
      {"float", Tok::kKwFloat},
      {"double", Tok::kKwDouble},
      {"in", Tok::kKwIn},
      {"out", Tok::kKwOut},
      {"inout", Tok::kKwInOut},
      {"oneway", Tok::kKwOneway},
      {"BLOCK", Tok::kKwBlock},
      {"CYCLIC", Tok::kKwCyclic},
      {"CONCENTRATED", Tok::kKwConcentrated},
  };
  return kw;
}

}  // namespace

Lexer::Lexer(std::string source, std::string filename)
    : src_(std::move(source)), file_(std::move(filename)) {}

char Lexer::peek(int ahead) const {
  return pos_ + static_cast<std::size_t>(ahead) < src_.size()
             ? src_[pos_ + static_cast<std::size_t>(ahead)]
             : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::fail(const std::string& message) const { throw IdlError(file_, line_, col_, message); }

void Lexer::skip_ws_and_comments() {
  for (;;) {
    if (eof()) return;
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!eof() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
      if (eof()) fail("unterminated block comment");
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_ws_and_comments();
  Token t;
  t.line = line_;
  t.column = col_;
  if (eof()) {
    t.kind = Tok::kEof;
    return t;
  }
  const char c = peek();

  if (c == '#') {
    // "#pragma <body...>" — the whole rest of the line is the body.
    std::string word;
    advance();  // '#'
    while (!eof() && std::isalpha(static_cast<unsigned char>(peek()))) word += advance();
    if (word != "pragma") fail("unknown preprocessor directive '#" + word + "'");
    std::string body;
    while (!eof() && peek() != '\n') body += advance();
    // trim
    const auto b = body.find_first_not_of(" \t");
    const auto e = body.find_last_not_of(" \t\r");
    t.kind = Tok::kPragma;
    t.text = b == std::string::npos ? "" : body.substr(b, e - b + 1);
    return t;
  }

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    while (!eof() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
      word += advance();
    auto it = keywords().find(word);
    if (it != keywords().end()) {
      t.kind = it->second;
      t.text = word;
    } else {
      t.kind = Tok::kIdentifier;
      t.text = word;
    }
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    bool is_float = false;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' ||
                      ((peek() == '+' || peek() == '-') && num.size() > 0 &&
                       (num.back() == 'e' || num.back() == 'E')))) {
      if (peek() == '.' || peek() == 'e' || peek() == 'E') is_float = true;
      num += advance();
    }
    // hex?
    if (num == "0" && (peek() == 'x' || peek() == 'X')) {
      num += advance();
      while (!eof() && std::isxdigit(static_cast<unsigned char>(peek()))) num += advance();
      t.kind = Tok::kIntLiteral;
      t.text = num;
      t.int_value = std::stoll(num, nullptr, 16);
      return t;
    }
    t.text = num;
    if (is_float) {
      t.kind = Tok::kFloatLiteral;
      t.float_value = std::stod(num);
    } else {
      t.kind = Tok::kIntLiteral;
      t.int_value = std::stoll(num);
    }
    return t;
  }

  if (c == '"') {
    advance();
    std::string s;
    while (!eof() && peek() != '"') {
      char ch = advance();
      if (ch == '\\' && !eof()) {
        const char esc = advance();
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case '\\': ch = '\\'; break;
          case '"': ch = '"'; break;
          default: fail(std::string("unknown escape '\\") + esc + "'");
        }
      }
      s += ch;
    }
    if (eof()) fail("unterminated string literal");
    advance();  // closing quote
    t.kind = Tok::kStringLiteral;
    t.text = s;
    return t;
  }

  advance();
  switch (c) {
    case '{': t.kind = Tok::kLBrace; break;
    case '}': t.kind = Tok::kRBrace; break;
    case '(': t.kind = Tok::kLParen; break;
    case ')': t.kind = Tok::kRParen; break;
    case '<': t.kind = Tok::kLAngle; break;
    case '>': t.kind = Tok::kRAngle; break;
    case ',': t.kind = Tok::kComma; break;
    case ';': t.kind = Tok::kSemicolon; break;
    case ':': t.kind = Tok::kColon; break;
    case '=': t.kind = Tok::kEquals; break;
    case '+': t.kind = Tok::kPlus; break;
    case '-': t.kind = Tok::kMinus; break;
    case '*': t.kind = Tok::kStar; break;
    case '/': t.kind = Tok::kSlash; break;
    default: fail(std::string("unexpected character '") + c + "'");
  }
  t.text = std::string(1, c);
  return t;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    out.push_back(next());
    if (out.back().kind == Tok::kEof) return out;
  }
}

}  // namespace pardis::idl
