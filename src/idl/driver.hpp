// pardis-idl command-line driver, as a library function so tests can
// exercise argument handling, lint output and exit codes without
// spawning a process.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pardis::idl {

/// Runs the compiler with `args` (argv[1..]); diagnostics go to `err`,
/// lint reports to `out`. Returns the process exit code: 0 on success,
/// 1 on any compile/lint/write failure, 2 on usage errors. Every
/// diagnostic path returns non-zero — including write failures after
/// codegen has started.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace pardis::idl
