#include "idl/driver.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "idl/codegen.hpp"
#include "idl/include.hpp"
#include "idl/lint.hpp"
#include "idl/parser.hpp"

namespace pardis::idl {
namespace {

std::string stem_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  for (char& c : base)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return base;
}

int usage(std::ostream& err) {
  err << "usage: pardis-idl <input.idl> [-o <output.hpp>] [--ns <namespace>]"
         " [-I <dir>] [-hpcxx] [-pooma] [--lint] [--lint-json] [--werror]\n"
         "  --lint       report PLxxx diagnostics (codegen needs -o as usual)\n"
         "  --lint-json  like --lint, as a JSON array\n"
         "  --werror     treat lint warnings as errors\n";
  return 2;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::string input, output, ns;
  std::vector<std::string> include_dirs;
  bool lint = false, lint_json = false, werror = false;
  CodegenOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "-o") {
      if (++i >= args.size()) return usage(err);
      output = args[i];
    } else if (arg == "-I") {
      if (++i >= args.size()) return usage(err);
      include_dirs.push_back(args[i]);
    } else if (arg == "--ns") {
      if (++i >= args.size()) return usage(err);
      ns = args[i];
    } else if (arg == "-hpcxx") {
      options.packages.insert("HPC++");
    } else if (arg == "-pooma") {
      options.packages.insert("POOMA");
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint-json") {
      lint = lint_json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option '" << arg << "'\n";
      return usage(err);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(err);
    }
  }
  if (input.empty()) return usage(err);
  if (output.empty() && !lint) return usage(err);
  options.ns = ns.empty() ? stem_of(input) : ns;

  try {
    const std::string source = load_idl_source(input, include_dirs);
    Parser parser(source, input);
    const Spec spec = parser.parse();

    if (lint) {
      const std::vector<Diagnostic> diags = run_lint(spec);
      if (lint_json)
        render_json(diags, out);
      else
        render_text(diags, out);
      if (lint_failed(diags, werror)) return 1;
      if (output.empty()) return 0;
    }

    const std::string code = generate_cpp(spec, options);
    std::ofstream file(output);
    if (!file) {
      err << "cannot write " << output << "\n";
      return 1;
    }
    file << code;
    file.flush();
    // A full disk or closed pipe leaves a truncated header behind;
    // without this check the build would cache it and "succeed".
    if (!file) {
      err << "error writing " << output << "\n";
      file.close();
      std::remove(output.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
}

}  // namespace pardis::idl
