// IDL file inclusion: `#include "file.idl"` with once-only semantics,
// resolved before lexing (the paper's metaapplications share typedefs
// like `field` across component IDL files).
#pragma once

#include <string>
#include <vector>

namespace pardis::idl {

/// Loads `path` and splices in `#include "..."` directives (relative
/// to the including file first, then `include_dirs`), each file at
/// most once. Throws IdlError on missing files or include cycles that
/// exceed the depth limit.
std::string load_idl_source(const std::string& path,
                            const std::vector<std::string>& include_dirs = {});

}  // namespace pardis::idl
