#include "idl/parser.hpp"

namespace pardis::idl {

const char* basic_cpp_type(BasicKind k) noexcept {
  switch (k) {
    case BasicKind::kVoid: return "void";
    case BasicKind::kBoolean: return "bool";
    case BasicKind::kOctet: return "pardis::Octet";
    case BasicKind::kShort: return "pardis::Short";
    case BasicKind::kUShort: return "pardis::UShort";
    case BasicKind::kLong: return "pardis::Long";
    case BasicKind::kULong: return "pardis::ULong";
    case BasicKind::kLongLong: return "pardis::LongLong";
    case BasicKind::kULongLong: return "pardis::ULongLong";
    case BasicKind::kFloat: return "pardis::Float";
    case BasicKind::kDouble: return "pardis::Double";
    case BasicKind::kString: return "pardis::String";
  }
  return "?";
}

Parser::Parser(std::string source, std::string filename) : file_(std::move(filename)) {
  Lexer lexer(std::move(source), file_);
  tokens_ = lexer.tokenize();
}

void Parser::fail(const std::string& message) const {
  throw IdlError(file_, cur().line, cur().column, message);
}

Token Parser::eat(Tok kind, const char* what) {
  if (cur().kind != kind)
    fail(std::string("expected ") + tok_name(kind) + " (" + what + "), got " +
         tok_name(cur().kind) +
         (cur().text.empty() ? std::string() : " '" + cur().text + "'"));
  return tokens_[pos_++];
}

bool Parser::accept(Tok kind) {
  if (cur().kind != kind) return false;
  ++pos_;
  return true;
}

TypePtr Parser::lookup_type(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) return nullptr;
  return it->second;
}

void Parser::define_type(const std::string& name, TypePtr type) {
  if (types_.count(name) != 0 || consts_.count(name) != 0 || interfaces_.count(name) != 0)
    fail("redefinition of '" + name + "'");
  types_[name] = std::move(type);
}

Spec Parser::parse() {
  Spec spec;
  spec.file = file_;
  std::vector<PackageMapping> pending_mappings;
  for (;;) {
    switch (cur().kind) {
      case Tok::kEof:
        if (!pending_mappings.empty()) fail("#pragma mapping not followed by a typedef");
        return spec;
      case Tok::kPragma: {
        // "#pragma <Package>:<structure>"
        const std::string body = cur().text;
        if (body == "idempotent")
          fail("'#pragma idempotent' applies to an operation; place it inside an "
               "interface body, directly before the operation");
        ++pos_;
        const auto colon = body.find(':');
        if (colon == std::string::npos || colon == 0 || colon + 1 >= body.size())
          fail("malformed pragma '" + body + "' (expected <package>:<structure>)");
        pending_mappings.push_back(PackageMapping{body.substr(0, colon), body.substr(colon + 1)});
        break;
      }
      case Tok::kKwTypedef:
        spec.definitions.push_back(parse_typedef(std::move(pending_mappings)));
        pending_mappings.clear();
        break;
      case Tok::kKwStruct:
        spec.definitions.push_back(parse_struct());
        break;
      case Tok::kKwEnum:
        spec.definitions.push_back(parse_enum());
        break;
      case Tok::kKwConst:
        spec.definitions.push_back(parse_const());
        break;
      case Tok::kKwInterface:
        spec.definitions.push_back(parse_interface());
        break;
      default:
        fail("expected a definition (typedef/struct/enum/const/interface)");
    }
    if (!pending_mappings.empty() && cur().kind != Tok::kKwTypedef &&
        cur().kind != Tok::kPragma)
      fail("#pragma mapping not followed by a typedef");
  }
}

core::DistSpec Parser::parse_dist_spec() {
  switch (cur().kind) {
    case Tok::kKwBlock:
      ++pos_;
      return core::DistSpec::block();
    case Tok::kKwCyclic: {
      ++pos_;
      long long bs = 1;
      if (accept(Tok::kLParen)) {
        bs = parse_const_int_expr();
        eat(Tok::kRParen, "closing CYCLIC block size");
        if (bs <= 0) fail("CYCLIC block size must be positive");
      }
      return core::DistSpec::cyclic(static_cast<std::size_t>(bs));
    }
    case Tok::kKwConcentrated: {
      ++pos_;
      long long root = 0;
      if (accept(Tok::kLParen)) {
        root = parse_const_int_expr();
        eat(Tok::kRParen, "closing CONCENTRATED root");
        if (root < 0) fail("CONCENTRATED root must be non-negative");
      }
      return core::DistSpec::concentrated(static_cast<int>(root));
    }
    default:
      fail("expected a distribution (BLOCK, CYCLIC or CONCENTRATED)");
  }
}

long long Parser::parse_const_factor() {
  if (cur().kind == Tok::kIntLiteral) {
    const long long v = cur().int_value;
    ++pos_;
    return v;
  }
  if (cur().kind == Tok::kMinus) {
    ++pos_;
    return -parse_const_factor();
  }
  if (cur().kind == Tok::kLParen) {
    ++pos_;
    const long long v = parse_const_int_expr();
    eat(Tok::kRParen, "closing parenthesis in constant expression");
    return v;
  }
  if (cur().kind == Tok::kIdentifier) {
    auto it = consts_.find(cur().text);
    if (it == consts_.end()) fail("unknown constant '" + cur().text + "'");
    if (it->second.is_float) fail("constant '" + cur().text + "' is not integral");
    ++pos_;
    return it->second.int_value;
  }
  fail("expected an integer constant expression");
}

long long Parser::parse_const_term() {
  long long v = parse_const_factor();
  for (;;) {
    if (accept(Tok::kStar)) {
      v *= parse_const_factor();
    } else if (accept(Tok::kSlash)) {
      const long long d = parse_const_factor();
      if (d == 0) fail("division by zero in constant expression");
      v /= d;
    } else {
      return v;
    }
  }
}

long long Parser::parse_const_int_expr() {
  long long v = parse_const_term();
  for (;;) {
    if (accept(Tok::kPlus)) {
      v += parse_const_term();
    } else if (accept(Tok::kMinus)) {
      v -= parse_const_term();
    } else {
      return v;
    }
  }
}

void Parser::check_marshalable_element(const TypePtr& t) const {
  const Type* r = t->resolved();
  if (r->kind == Type::Kind::kDSequence)
    fail("dsequence elements may not themselves be distributed");
}

TypePtr Parser::parse_type_spec(bool allow_void) {
  auto basic = [&](BasicKind k) {
    ++pos_;
    auto t = std::make_shared<Type>();
    t->kind = Type::Kind::kBasic;
    t->basic = k;
    return t;
  };
  switch (cur().kind) {
    case Tok::kKwVoid:
      if (!allow_void) fail("'void' is only valid as a return type");
      return basic(BasicKind::kVoid);
    case Tok::kKwBoolean: return basic(BasicKind::kBoolean);
    case Tok::kKwOctet: return basic(BasicKind::kOctet);
    case Tok::kKwShort: return basic(BasicKind::kShort);
    case Tok::kKwFloat: return basic(BasicKind::kFloat);
    case Tok::kKwDouble: return basic(BasicKind::kDouble);
    case Tok::kKwString: return basic(BasicKind::kString);
    case Tok::kKwLong: {
      ++pos_;
      if (accept(Tok::kKwLong)) {
        auto t = std::make_shared<Type>();
        t->kind = Type::Kind::kBasic;
        t->basic = BasicKind::kLongLong;
        return t;
      }
      auto t = std::make_shared<Type>();
      t->kind = Type::Kind::kBasic;
      t->basic = BasicKind::kLong;
      return t;
    }
    case Tok::kKwUnsigned: {
      ++pos_;
      if (accept(Tok::kKwShort)) {
        auto t = std::make_shared<Type>();
        t->kind = Type::Kind::kBasic;
        t->basic = BasicKind::kUShort;
        return t;
      }
      eat(Tok::kKwLong, "'unsigned' must be followed by 'short' or 'long'");
      auto t = std::make_shared<Type>();
      t->kind = Type::Kind::kBasic;
      t->basic = accept(Tok::kKwLong) ? BasicKind::kULongLong : BasicKind::kULong;
      return t;
    }
    case Tok::kKwSequence: {
      const Loc loc{cur().line, cur().column};
      ++pos_;
      eat(Tok::kLAngle, "sequence element type");
      auto t = std::make_shared<Type>();
      t->kind = Type::Kind::kSequence;
      t->loc = loc;
      t->elem = parse_type_spec();
      check_marshalable_element(t->elem);
      if (accept(Tok::kComma)) t->bound = parse_const_int_expr();
      eat(Tok::kRAngle, "closing '>' of sequence");
      return t;
    }
    case Tok::kKwDSequence: {
      const Loc loc{cur().line, cur().column};
      ++pos_;
      eat(Tok::kLAngle, "dsequence element type");
      auto t = std::make_shared<Type>();
      t->kind = Type::Kind::kDSequence;
      t->loc = loc;
      t->elem = parse_type_spec();
      check_marshalable_element(t->elem);
      if (accept(Tok::kComma)) {
        // Optional bound, then optional client/server distributions
        // (paper §3.2: "The last two arguments ... are optional").
        if (cur().kind == Tok::kKwBlock || cur().kind == Tok::kKwCyclic ||
            cur().kind == Tok::kKwConcentrated) {
          t->client_spec = parse_dist_spec();
          if (accept(Tok::kComma)) t->server_spec = parse_dist_spec();
        } else {
          t->bound = parse_const_int_expr();
          if (t->bound <= 0) fail("dsequence bound must be positive");
          if (accept(Tok::kComma)) {
            t->client_spec = parse_dist_spec();
            if (accept(Tok::kComma)) t->server_spec = parse_dist_spec();
          }
        }
      }
      eat(Tok::kRAngle, "closing '>' of dsequence");
      return t;
    }
    case Tok::kIdentifier: {
      TypePtr t = lookup_type(cur().text);
      if (!t) fail("unknown type '" + cur().text + "'");
      ++pos_;
      return t;
    }
    default:
      fail("expected a type");
  }
}

Definition Parser::parse_typedef(std::vector<PackageMapping> pending) {
  eat(Tok::kKwTypedef, "typedef");
  TypePtr target = parse_type_spec();
  const Token name = eat(Tok::kIdentifier, "typedef name");
  eat(Tok::kSemicolon, "';' after typedef");

  if (!pending.empty()) {
    if (target->kind != Type::Kind::kDSequence)
      fail("#pragma package mappings apply only to dsequence typedefs");
    target->mappings = pending;
  }

  auto alias = std::make_shared<Type>();
  alias->kind = Type::Kind::kAlias;
  alias->name = name.text;
  alias->loc = Loc{name.line, name.column};
  alias->alias_target = std::move(target);
  define_type(name.text, alias);

  Definition d;
  d.kind = Definition::Kind::kTypedef;
  d.typedef_def = TypedefDef{name.text, alias->loc, alias};
  return d;
}

Definition Parser::parse_struct() {
  eat(Tok::kKwStruct, "struct");
  const Token name = eat(Tok::kIdentifier, "struct name");
  eat(Tok::kLBrace, "struct body");
  auto t = std::make_shared<Type>();
  t->kind = Type::Kind::kStruct;
  t->name = name.text;
  t->loc = Loc{name.line, name.column};
  while (!accept(Tok::kRBrace)) {
    TypePtr ft = parse_type_spec();
    if (ft->is_dseq()) fail("struct members may not be distributed sequences");
    const Token fname = eat(Tok::kIdentifier, "field name");
    eat(Tok::kSemicolon, "';' after struct field");
    for (const auto& [existing, unused] : t->fields)
      if (existing == fname.text) fail("duplicate field '" + fname.text + "'");
    t->fields.emplace_back(fname.text, std::move(ft));
    t->field_locs.push_back(Loc{fname.line, fname.column});
  }
  eat(Tok::kSemicolon, "';' after struct");
  if (t->fields.empty()) fail("struct '" + name.text + "' has no fields");
  define_type(name.text, t);
  Definition d;
  d.kind = Definition::Kind::kStruct;
  d.struct_or_enum = t;
  return d;
}

Definition Parser::parse_enum() {
  eat(Tok::kKwEnum, "enum");
  const Token name = eat(Tok::kIdentifier, "enum name");
  eat(Tok::kLBrace, "enum body");
  auto t = std::make_shared<Type>();
  t->kind = Type::Kind::kEnum;
  t->name = name.text;
  t->loc = Loc{name.line, name.column};
  do {
    const Token e = eat(Tok::kIdentifier, "enumerator");
    t->enumerators.push_back(e.text);
    t->enumerator_locs.push_back(Loc{e.line, e.column});
  } while (accept(Tok::kComma));
  eat(Tok::kRBrace, "closing '}' of enum");
  eat(Tok::kSemicolon, "';' after enum");
  define_type(name.text, t);
  Definition d;
  d.kind = Definition::Kind::kEnum;
  d.struct_or_enum = t;
  return d;
}

Definition Parser::parse_const() {
  eat(Tok::kKwConst, "const");
  TypePtr type = parse_type_spec();
  const Token name = eat(Tok::kIdentifier, "constant name");
  eat(Tok::kEquals, "'=' in constant definition");
  ConstDef c;
  c.name = name.text;
  c.loc = Loc{name.line, name.column};
  c.type = type;
  const Type* r = type->resolved();
  if (r->kind == Type::Kind::kBasic && r->basic == BasicKind::kString) {
    c.string_value = eat(Tok::kStringLiteral, "string constant value").text;
  } else if (r->kind == Type::Kind::kBasic &&
             (r->basic == BasicKind::kFloat || r->basic == BasicKind::kDouble)) {
    if (cur().kind == Tok::kFloatLiteral) {
      c.is_float = true;
      c.float_value = cur().float_value;
      ++pos_;
    } else {
      c.is_float = true;
      c.float_value = static_cast<double>(parse_const_int_expr());
    }
  } else if (r->kind == Type::Kind::kBasic) {
    c.int_value = parse_const_int_expr();
  } else {
    fail("constants must have a basic type");
  }
  eat(Tok::kSemicolon, "';' after constant");
  if (types_.count(c.name) != 0 || consts_.count(c.name) != 0) fail("redefinition of '" + c.name + "'");
  consts_[c.name] = c;
  Definition d;
  d.kind = Definition::Kind::kConst;
  d.const_def = c;
  return d;
}

void Parser::validate_operation(const Operation& op) const {
  if (op.oneway) {
    const Type* r = op.ret->resolved();
    if (!(r->kind == Type::Kind::kBasic && r->basic == BasicKind::kVoid))
      fail("oneway operation '" + op.name + "' must return void");
    for (const auto& p : op.params)
      if (p.dir != Param::Dir::kIn)
        fail("oneway operation '" + op.name + "' may only have 'in' parameters");
  }
  if (op.ret->is_dseq())
    fail("operation '" + op.name + "': distributed sequences must be out parameters, not return values");
  for (const auto& p : op.params)
    if (p.dir == Param::Dir::kInOut && p.type->is_dseq())
      fail("operation '" + op.name + "': inout distributed sequences are not supported");
}

Operation Parser::parse_operation() {
  Operation op;
  op.oneway = accept(Tok::kKwOneway);
  op.ret = parse_type_spec(/*allow_void=*/true);
  const Token op_name = eat(Tok::kIdentifier, "operation name");
  op.name = op_name.text;
  op.loc = Loc{op_name.line, op_name.column};
  eat(Tok::kLParen, "parameter list");
  if (!accept(Tok::kRParen)) {
    do {
      Param p;
      if (accept(Tok::kKwIn)) {
        p.dir = Param::Dir::kIn;
      } else if (accept(Tok::kKwOut)) {
        p.dir = Param::Dir::kOut;
      } else if (accept(Tok::kKwInOut)) {
        p.dir = Param::Dir::kInOut;
      } else {
        fail("expected parameter direction (in/out/inout)");
      }
      p.type = parse_type_spec();
      const Token pname = eat(Tok::kIdentifier, "parameter name");
      p.name = pname.text;
      p.loc = Loc{pname.line, pname.column};
      for (const auto& other : op.params)
        if (other.name == p.name) fail("duplicate parameter '" + p.name + "'");
      op.params.push_back(std::move(p));
    } while (accept(Tok::kComma));
    eat(Tok::kRParen, "closing ')' of parameter list");
  }
  eat(Tok::kSemicolon, "';' after operation");
  validate_operation(op);
  return op;
}

Definition Parser::parse_interface() {
  eat(Tok::kKwInterface, "interface");
  const Token name = eat(Tok::kIdentifier, "interface name");
  InterfaceDef iface;
  iface.name = name.text;
  iface.loc = Loc{name.line, name.column};
  if (accept(Tok::kColon)) {
    const Token base = eat(Tok::kIdentifier, "base interface name");
    if (interfaces_.count(base.text) == 0)
      fail("unknown base interface '" + base.text + "'");
    iface.base = base.text;
  }
  eat(Tok::kLBrace, "interface body");
  bool pending_idempotent = false;
  for (;;) {
    if (cur().kind == Tok::kPragma) {
      // "#pragma idempotent" marks the *next* operation as retry-safe.
      if (cur().text != "idempotent")
        fail("unknown pragma '" + cur().text +
             "' in interface body (expected 'idempotent')");
      pending_idempotent = true;
      ++pos_;
      continue;
    }
    if (cur().kind == Tok::kRBrace) {
      if (pending_idempotent) fail("#pragma idempotent not followed by an operation");
      ++pos_;
      break;
    }
    Operation op = parse_operation();
    op.idempotent = pending_idempotent;
    pending_idempotent = false;
    // Reject duplicates, including against inherited operations.
    for (const InterfaceDef* i = &iface; i != nullptr;
         i = i->base.empty() ? nullptr : &interfaces_.at(i->base))
      for (const auto& other : i->ops)
        if (other.name == op.name) fail("duplicate operation '" + op.name + "'");
    iface.ops.push_back(std::move(op));
  }
  eat(Tok::kSemicolon, "';' after interface");
  if (types_.count(iface.name) != 0 || interfaces_.count(iface.name) != 0)
    fail("redefinition of '" + iface.name + "'");
  interfaces_[iface.name] = iface;
  Definition d;
  d.kind = Definition::Kind::kInterface;
  d.interface_def = iface;
  return d;
}

}  // namespace pardis::idl
