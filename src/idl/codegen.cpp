#include "idl/codegen.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"

namespace pardis::idl {

namespace {

struct DseqInfo {
  std::string decl;     ///< signature type (alias name or inline DSequence<..>)
  std::string var;      ///< managed-pointer type
  std::string elem;     ///< element C++ type
  bool native = false;  ///< lowered to a package-native container
  std::string adapter;  ///< adapter namespace when native
  core::DistSpec client_spec;
  core::DistSpec server_spec;
};

class Generator {
 public:
  Generator(const Spec& spec, const CodegenOptions& options) : spec_(spec), opt_(options) {}

  std::string run();

 private:
  std::ostringstream out_;
  std::ostringstream traits_;  ///< CdrTraits emitted after the namespace
  const Spec& spec_;
  const CodegenOptions& opt_;
  bool uses_pstl_ = false;
  bool uses_pooma_ = false;
  bool uses_ft_ = false;  ///< any operation marked #pragma idempotent

  // --- type spelling helpers ---------------------------------------------

  static bool is_trivial_in(const TypePtr& t) {
    const Type* r = t->resolved();
    return (r->kind == Type::Kind::kBasic && r->basic != BasicKind::kString &&
            r->basic != BasicKind::kVoid) ||
           r->kind == Type::Kind::kEnum;
  }

  static bool is_void(const TypePtr& t) {
    const Type* r = t->resolved();
    return r->kind == Type::Kind::kBasic && r->basic == BasicKind::kVoid;
  }

  std::string cpp_type(const TypePtr& t) const {
    switch (t->kind) {
      case Type::Kind::kAlias: return t->name;
      case Type::Kind::kBasic: return basic_cpp_type(t->basic);
      case Type::Kind::kStruct:
      case Type::Kind::kEnum: return t->name;
      case Type::Kind::kSequence: return "pardis::Sequence<" + cpp_type(t->elem) + ">";
      case Type::Kind::kDSequence:
        return "pardis::dist::DSequence<" + cpp_type(t->elem) + ">";
    }
    throw InternalError("codegen: bad type kind");
  }

  /// The package mapping active for this dsequence type under the
  /// current options, if any.
  const PackageMapping* active_mapping(const Type* dseq) const {
    for (const auto& m : dseq->mappings)
      if (opt_.packages.count(m.package) != 0) return &m;
    return nullptr;
  }

  DseqInfo dseq_info(const TypePtr& t) {
    const Type* r = t->resolved();
    require(r->kind == Type::Kind::kDSequence, "dseq_info on non-dsequence");
    DseqInfo info;
    info.elem = cpp_type(r->elem);
    info.client_spec = r->client_spec;
    info.server_spec = r->server_spec;
    if (const PackageMapping* m = active_mapping(r)) {
      info.native = true;
      if (m->package == "HPC++") {
        info.adapter = "pardis::pstl";
        uses_pstl_ = true;
      } else if (m->package == "POOMA") {
        info.adapter = "pardis::pooma";
        uses_pooma_ = true;
      } else {
        throw BadParam("codegen: no adapter for package '" + m->package + "'");
      }
    }
    if (t->kind == Type::Kind::kAlias) {
      info.decl = t->name;
      info.var = t->name + "_var";
    } else {
      info.decl = cpp_type(t);
      info.var = "std::shared_ptr<" + info.decl + ">";
    }
    return info;
  }

  static std::string spec_expr(const core::DistSpec& s) {
    switch (s.kind) {
      case dist::DistKind::kBlock: return "pardis::core::DistSpec::block()";
      case dist::DistKind::kCyclic:
        return "pardis::core::DistSpec::cyclic(" + std::to_string(s.block_size) + ")";
      case dist::DistKind::kConcentrated:
        return "pardis::core::DistSpec::concentrated(" + std::to_string(s.root) + ")";
      case dist::DistKind::kIrregular:
        break;
    }
    throw InternalError("codegen: IRREGULAR spec cannot appear in IDL");
  }

  std::string param_sig(const Param& p, bool single_mapping) {
    std::string type;
    if (p.type->is_dseq()) {
      type = single_mapping ? "std::vector<" + dseq_info(p.type).elem + ">"
                            : dseq_info(p.type).decl;
    } else {
      type = cpp_type(p.type);
    }
    if (p.dir == Param::Dir::kIn)
      return is_trivial_in(p.type) && !p.type->is_dseq() ? type + " " + p.name
                                                         : "const " + type + "& " + p.name;
    return type + "& " + p.name;
  }

  std::string ret_type(const Operation& op) const {
    return is_void(op.ret) ? "void" : cpp_type(op.ret);
  }

  // --- emitters ------------------------------------------------------------

  void emit_const(const ConstDef& c);
  void emit_typedef(const TypedefDef& t);
  void emit_struct(const TypePtr& t);
  void emit_enum(const TypePtr& t);
  void emit_interface(const InterfaceDef& iface);
  void emit_skeleton(const InterfaceDef& iface);
  void emit_proxy(const InterfaceDef& iface);
  void emit_dispatch_case(const Operation& op);
  void emit_blocking_stub(const InterfaceDef& iface, const Operation& op, bool single_mapping);
  void emit_nb_stub(const InterfaceDef& iface, const Operation& op);
  std::string virtual_signature(const Operation& op);
};

void Generator::emit_const(const ConstDef& c) {
  const Type* r = c.type->resolved();
  if (r->basic == BasicKind::kString) {
    out_ << "inline const pardis::String " << c.name << " = \"" << c.string_value << "\";\n";
  } else if (c.is_float) {
    out_ << "inline constexpr " << cpp_type(c.type) << " " << c.name << " = "
         << c.float_value << ";\n";
  } else {
    out_ << "inline constexpr " << cpp_type(c.type) << " " << c.name << " = "
         << c.int_value << ";\n";
  }
}

void Generator::emit_typedef(const TypedefDef& t) {
  const TypePtr target = t.type->alias_target;
  if (target->kind == Type::Kind::kDSequence) {
    const Type* d = target.get();
    std::string underlying;
    if (const PackageMapping* m = active_mapping(d)) {
      if (m->package == "HPC++" && m->structure == "vector") {
        underlying = "pardis::pstl::DistributedVector<" + cpp_type(d->elem) + ">";
        uses_pstl_ = true;
      } else if (m->package == "POOMA" && m->structure == "field") {
        underlying = "pardis::pooma::Field2D<" + cpp_type(d->elem) + ">";
        uses_pooma_ = true;
      } else {
        throw BadParam("codegen: no mapping for " + m->package + ":" + m->structure);
      }
    } else {
      underlying = "pardis::dist::DSequence<" + cpp_type(d->elem) + ">";
    }
    out_ << "using " << t.name << " = " << underlying << ";\n";
    out_ << "using " << t.name << "_var = std::shared_ptr<" << t.name << ">;\n";
    out_ << "inline constexpr long long " << t.name << "_bound = " << d->bound << ";\n";
    out_ << "inline const pardis::core::DistSpec " << t.name << "_client_spec = "
         << spec_expr(d->client_spec) << ";\n";
    out_ << "inline const pardis::core::DistSpec " << t.name << "_server_spec = "
         << spec_expr(d->server_spec) << ";\n\n";
    return;
  }
  out_ << "using " << t.name << " = " << cpp_type(target) << ";\n\n";
}

void Generator::emit_struct(const TypePtr& t) {
  out_ << "struct " << t->name << " {\n";
  for (const auto& [fname, ftype] : t->fields)
    out_ << "  " << cpp_type(ftype) << " " << fname << "{};\n";
  out_ << "  bool operator==(const " << t->name << "&) const = default;\n";
  out_ << "};\n\n";

  const std::string qual = opt_.ns + "::" + t->name;
  traits_ << "template <>\nstruct pardis::CdrTraits<" << qual << "> {\n";
  traits_ << "  static void marshal(pardis::CdrWriter& w, const " << qual << "& v) {\n";
  for (const auto& [fname, ftype] : t->fields)
    traits_ << "    pardis::CdrTraits<" << cpp_type(ftype) << ">::marshal(w, v." << fname
            << ");\n";
  traits_ << "  }\n";
  traits_ << "  static void unmarshal(pardis::CdrReader& r, " << qual << "& v) {\n";
  for (const auto& [fname, ftype] : t->fields)
    traits_ << "    pardis::CdrTraits<" << cpp_type(ftype) << ">::unmarshal(r, v." << fname
            << ");\n";
  traits_ << "  }\n};\n\n";
}

void Generator::emit_enum(const TypePtr& t) {
  out_ << "enum class " << t->name << " : pardis::ULong {\n";
  for (const auto& e : t->enumerators) out_ << "  " << e << ",\n";
  out_ << "};\n\n";

  const std::string qual = opt_.ns + "::" + t->name;
  traits_ << "template <>\nstruct pardis::CdrTraits<" << qual << "> {\n";
  traits_ << "  static void marshal(pardis::CdrWriter& w, const " << qual << "& v) {\n"
          << "    w.write_ulong(static_cast<pardis::ULong>(v));\n  }\n";
  traits_ << "  static void unmarshal(pardis::CdrReader& r, " << qual << "& v) {\n"
          << "    const pardis::ULong raw = r.read_ulong();\n"
          << "    if (raw >= " << t->enumerators.size() << "u)\n"
          << "      throw pardis::MarshalError(\"bad " << t->name << " enumerator\");\n"
          << "    v = static_cast<" << qual << ">(raw);\n  }\n};\n\n";
}

std::string Generator::virtual_signature(const Operation& op) {
  std::ostringstream sig;
  sig << ret_type(op) << " " << op.name << "(";
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (i != 0) sig << ", ";
    sig << param_sig(op.params[i], /*single_mapping=*/false);
  }
  sig << ")";
  return sig.str();
}

void Generator::emit_dispatch_case(const Operation& op) {
  out_ << "    if (_op == \"" << op.name << "\") {\n";
  // Unmarshal in IDL order.
  for (const auto& p : op.params) {
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      if (p.dir == Param::Dir::kIn) {
        out_ << "      auto _" << p.name << "_seq = _inv.in_dseq<" << d.elem << ">();\n";
        if (d.native)
          out_ << "      " << d.decl << " _" << p.name << " = " << d.adapter
               << "::native_from_dseq(std::move(_" << p.name << "_seq), _inv.comm());\n";
      } else {  // out
        out_ << "      auto _" << p.name << "_seq = _inv.out_dseq_make<" << d.elem
             << ">();\n";
        if (d.native)
          out_ << "      " << d.decl << " _" << p.name << " = " << d.adapter
               << "::native_from_dseq(std::move(_" << p.name << "_seq), _inv.comm());\n";
      }
    } else if (p.dir == Param::Dir::kOut) {
      out_ << "      " << cpp_type(p.type) << " _" << p.name << "{};\n";
    } else {  // in / inout non-dseq
      out_ << "      auto _" << p.name << " = _inv.in_value<" << cpp_type(p.type)
           << ">();\n";
    }
  }
  // Call the user's method.
  out_ << "      ";
  if (!is_void(op.ret)) out_ << "auto _result = ";
  out_ << op.name << "(";
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (i != 0) out_ << ", ";
    const auto& p = op.params[i];
    if (p.type->is_dseq() && !dseq_info(p.type).native)
      out_ << "_" << p.name << "_seq";
    else
      out_ << "_" << p.name;
  }
  out_ << ");\n";
  // Reply: return value first, then out/inout in IDL order.
  if (!is_void(op.ret)) out_ << "      _inv.out_value(_result);\n";
  for (const auto& p : op.params) {
    if (p.dir == Param::Dir::kIn) continue;
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      if (d.native)
        out_ << "      { auto _" << p.name << "_view = " << d.adapter << "::dseq_view(_"
             << p.name << "); _inv.out_dseq(_" << p.name << "_view); }\n";
      else
        out_ << "      _inv.out_dseq(_" << p.name << "_seq);\n";
    } else {
      out_ << "      _inv.out_value(_" << p.name << ");\n";
    }
  }
  out_ << "      return;\n    }\n";
}

void Generator::emit_skeleton(const InterfaceDef& iface) {
  const std::string base =
      iface.base.empty() ? "pardis::core::ServantBase" : "POA_" + iface.base;
  out_ << "class POA_" << iface.name << " : public " << base << " {\n public:\n";
  out_ << "  const char* _type_id() const override { return \"IDL:" << iface.name
       << ":1.0\"; }\n\n";

  for (const auto& op : iface.ops)
    out_ << "  virtual " << virtual_signature(op) << " = 0;\n";
  out_ << "\n";

  // Default server-side distribution specs, from the dsequence
  // typedefs used in the signatures (activate_spmd publishes them in
  // the object reference).
  out_ << "  static std::map<std::string, std::vector<pardis::core::DistSpec>>"
          " _default_arg_specs() {\n";
  if (iface.base.empty())
    out_ << "    std::map<std::string, std::vector<pardis::core::DistSpec>> _m;\n";
  else
    out_ << "    auto _m = POA_" << iface.base << "::_default_arg_specs();\n";
  for (const auto& op : iface.ops) {
    if (!op.has_dseq_params()) continue;
    out_ << "    _m[\"" << op.name << "\"] = {";
    bool first = true;
    for (const auto& p : op.params) {
      if (!p.type->is_dseq()) continue;
      if (!first) out_ << ", ";
      first = false;
      out_ << spec_expr(dseq_info(p.type).server_spec);
    }
    out_ << "};\n";
  }
  out_ << "    return _m;\n  }\n\n";

  out_ << "  void _dispatch(pardis::core::ServerInvocation& _inv) override {\n";
  out_ << "    const std::string& _op = _inv.operation();\n";
  out_ << "    (void)_op;\n";
  for (const auto& op : iface.ops) emit_dispatch_case(op);
  if (iface.base.empty())
    out_ << "    throw pardis::NoImplement(\"" << iface.name
         << " has no operation '\" + _op + \"'\");\n";
  else
    out_ << "    POA_" << iface.base << "::_dispatch(_inv);\n";
  out_ << "  }\n};\n\n";
}

void Generator::emit_blocking_stub(const InterfaceDef& iface, const Operation& op,
                                   bool single_mapping) {
  out_ << "  " << ret_type(op) << " " << op.name << "(";
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (i != 0) out_ << ", ";
    out_ << param_sig(op.params[i], single_mapping);
  }
  out_ << ") {\n";

  if (single_mapping)
    out_ << "    if (_binding()->collective())\n"
            "      throw pardis::BadInvOrder(\"single-mapping stub on a collective "
            "binding; use the distributed mapping\");\n";

  // Collocation bypass (direct virtual call, paper §4.1). With
  // package-native mappings the in-process servant may have been built
  // with a different mapping, so the bypass is skipped.
  bool any_native = false;
  for (const auto& p : op.params)
    if (p.type->is_dseq() && dseq_info(p.type).native) any_native = true;
  if (!any_native) {
    out_ << "    if (auto* _impl = dynamic_cast<POA_" << iface.name
         << "*>(_binding()->collocated_servant())) {\n"
         << "      pardis::core::note_collocated_call();\n";
    // Build single views when needed.
    for (const auto& p : op.params)
      if (single_mapping && p.type->is_dseq())
        out_ << "      auto _" << p.name
             << "_cv = pardis::core::single_view(" << p.name << ");\n";
    out_ << "      ";
    if (!is_void(op.ret)) out_ << "return ";
    out_ << "_impl->" << op.name << "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i != 0) out_ << ", ";
      const auto& p = op.params[i];
      out_ << (single_mapping && p.type->is_dseq() ? "_" + p.name + "_cv" : p.name);
    }
    out_ << ");\n";
    if (is_void(op.ret)) out_ << "      return;\n";
    out_ << "    }\n";
  }

  out_ << "    pardis::core::ClientRequest _req(*_binding(), \"" << op.name << "\", "
       << (op.oneway ? "true" : "false") << ", " << (op.has_dist_out() ? "true" : "false")
       << ");\n";

  // Prepare views for dseq params.
  for (const auto& p : op.params) {
    if (!p.type->is_dseq()) continue;
    const DseqInfo d = dseq_info(p.type);
    if (single_mapping)
      out_ << "    auto _" << p.name << "_view = pardis::core::single_view(" << p.name
           << ");\n";
    else if (d.native)
      out_ << "    auto _" << p.name << "_view = " << d.adapter << "::dseq_view(" << p.name
           << ");\n";
  }
  // Marshal in IDL order.
  for (const auto& p : op.params) {
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      const std::string arg =
          (single_mapping || d.native) ? "_" + p.name + "_view" : p.name;
      if (p.dir == Param::Dir::kIn)
        out_ << "    _req.in_dseq(" << arg << ");\n";
      else
        out_ << "    _req.out_dseq_expected(" << arg << ".distribution());\n";
    } else if (p.dir != Param::Dir::kOut) {
      out_ << "    _req.in_value(" << p.name << ");\n";
    }
  }
  const bool has_ret = !is_void(op.ret);
  const std::string ind = op.idempotent ? "      " : "    ";

  auto emit_decoder = [&](const std::string& d_ind) {
    out_ << d_ind << "_pending->set_decoder([&](pardis::core::ReplyDecoder& _d) {\n";
    out_ << d_ind << "  (void)_d;\n";
    if (has_ret)
      out_ << d_ind << "  *_ret = _d.out_value<" << cpp_type(op.ret) << ">();\n";
    for (const auto& p : op.params) {
      if (p.dir == Param::Dir::kIn) continue;
      if (p.type->is_dseq()) {
        const DseqInfo d = dseq_info(p.type);
        const std::string target =
            (single_mapping || d.native) ? "_" + p.name + "_view" : p.name;
        out_ << d_ind << "  _d.out_dseq(" << target << ");\n";
      } else {
        out_ << d_ind << "  " << p.name << " = _d.out_value<" << cpp_type(p.type)
             << ">();\n";
      }
    }
    out_ << d_ind << "});\n";
  };

  // Non-idempotent two-way operation: plain invoke/wait — except
  // against an exactly-once (pardis_wal durable) binding, where
  // retrying is safe by construction: the server commits each
  // (binding, seq) once and answers re-sends from its log, so the
  // stub may use the full ft retry/failover machinery.
  if (!op.idempotent && !op.oneway) {
    uses_ft_ = true;
    if (has_ret) out_ << "    auto _ret = std::make_shared<" << cpp_type(op.ret) << ">();\n";
    out_ << "    if (_binding()->exactly_once()) {\n"
            "      pardis::ft::with_retry(*_binding(), \"" << op.name
         << "\", pardis::ft::RetryPolicy::from_env(),\n"
            "          [&](int _attempt) -> std::shared_ptr<pardis::core::PendingReply> {\n"
            "        auto _pending = _req.invoke(_attempt);\n";
    emit_decoder("        ");
    out_ << "        return _pending;\n"
            "      });\n"
            "    } else {\n"
            "      auto _pending = _req.invoke();\n";
    emit_decoder("      ");
    out_ << "      _pending->wait();\n"
            "    }\n";
    if (has_ret) out_ << "    return *_ret;\n";
    out_ << "  }\n\n";
    return;
  }

  // `#pragma idempotent`: marshal once (frames append views, so the
  // request body survives re-sends), then let ft::with_retry drive
  // invoke/wait — re-sends keep the request identity and the SPMD
  // ranks agree before any retry.
  if (op.idempotent) {
    uses_ft_ = true;
    if (has_ret && !op.oneway)
      out_ << "    auto _ret = std::make_shared<" << cpp_type(op.ret) << ">();\n";
    out_ << "    pardis::ft::with_retry(*_binding(), \"" << op.name
         << "\", pardis::ft::RetryPolicy::from_env(),\n"
            "        [&](int _attempt) -> std::shared_ptr<pardis::core::PendingReply> {\n";
  }

  out_ << ind << "auto _pending = _req.invoke(" << (op.idempotent ? "_attempt" : "")
       << ");\n";
  if (op.oneway) {
    if (op.idempotent)
      out_ << "      (void)_pending;\n      return nullptr;\n    });\n";
    out_ << "  }\n\n";
    return;
  }

  emit_decoder(ind);
  out_ << "      return _pending;\n    });\n";
  if (has_ret) out_ << "    return *_ret;\n";
  out_ << "  }\n\n";
}

void Generator::emit_nb_stub(const InterfaceDef& iface, const Operation& op) {
  // Signature: in params, then per out param a future (dseq outs also
  // take an explicit length + client-side distribution spec), then the
  // result future.
  out_ << "  void " << op.name << "_nb(";
  bool first = true;
  auto comma = [&] {
    if (!first) out_ << ", ";
    first = false;
  };
  for (const auto& p : op.params) {
    comma();
    if (p.dir == Param::Dir::kIn) {
      out_ << param_sig(p, false);
    } else if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      out_ << "pardis::core::Future<" << d.var << ">& " << p.name << ", std::size_t "
           << p.name << "_n, const pardis::core::DistSpec& " << p.name << "_spec";
    } else {
      out_ << "pardis::core::Future<" << cpp_type(p.type) << ">& " << p.name;
    }
  }
  bool has_out = false;
  for (const auto& p : op.params)
    if (p.dir != Param::Dir::kIn) has_out = true;
  // Completion-only operations still yield a future so callers can
  // pipeline with bounded depth (the §4.3 pattern).
  const bool needs_done = is_void(op.ret) && !has_out;
  if (!is_void(op.ret)) {
    comma();
    out_ << "pardis::core::Future<" << cpp_type(op.ret) << ">& _result";
  }
  if (needs_done) {
    comma();
    out_ << "pardis::core::FutureVoid& _done";
  }
  out_ << ") {\n";

  // Create out-dseq targets up front (collective for SPMD clients).
  for (const auto& p : op.params) {
    if (p.dir == Param::Dir::kIn || !p.type->is_dseq()) continue;
    const DseqInfo d = dseq_info(p.type);
    if (d.native)
      out_ << "    auto _" << p.name << "_target = std::make_shared<" << d.decl << ">("
           << d.adapter << "::make_native(_binding()->ctx(), " << p.name << "_n, "
           << p.name << "_spec));\n";
    else
      out_ << "    auto _" << p.name << "_target = pardis::core::make_dseq<" << d.elem
           << ">(_binding()->ctx(), " << p.name << "_n, " << p.name << "_spec);\n";
  }

  bool any_native = false;
  for (const auto& p : op.params)
    if (p.type->is_dseq() && dseq_info(p.type).native) any_native = true;
  if (!any_native) {
    out_ << "    if (auto* _impl = dynamic_cast<POA_" << iface.name
         << "*>(_binding()->collocated_servant())) {\n"
         << "      pardis::core::note_collocated_call();\n";
    for (const auto& p : op.params)
      if (p.dir != Param::Dir::kIn && !p.type->is_dseq())
        out_ << "      " << cpp_type(p.type) << " _" << p.name << "_tmp{};\n";
    out_ << "      ";
    if (!is_void(op.ret)) out_ << "auto _r = ";
    out_ << "_impl->" << op.name << "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i != 0) out_ << ", ";
      const auto& p = op.params[i];
      if (p.dir == Param::Dir::kIn)
        out_ << p.name;
      else if (p.type->is_dseq())
        out_ << "*_" << p.name << "_target";
      else
        out_ << "_" << p.name << "_tmp";
    }
    out_ << ");\n";
    for (const auto& p : op.params) {
      if (p.dir == Param::Dir::kIn) continue;
      if (p.type->is_dseq()) {
        const DseqInfo d = dseq_info(p.type);
        out_ << "      " << p.name << " = pardis::core::Future<" << d.var << ">::ready(_"
             << p.name << "_target);\n";
      } else {
        out_ << "      " << p.name << " = pardis::core::Future<" << cpp_type(p.type)
             << ">::ready(std::move(_" << p.name << "_tmp));\n";
      }
    }
    if (!is_void(op.ret))
      out_ << "      _result = pardis::core::Future<" << cpp_type(op.ret)
           << ">::ready(std::move(_r));\n";
    if (needs_done) out_ << "      _done = pardis::core::FutureVoid::ready();\n";
    out_ << "      return;\n    }\n";
  }

  out_ << "    pardis::core::ClientRequest _req(*_binding(), \"" << op.name << "\", false, "
       << (op.has_dist_out() ? "true" : "false") << ");\n";
  for (const auto& p : op.params) {
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      if (p.dir == Param::Dir::kIn) {
        if (d.native)
          out_ << "    { auto _" << p.name << "_view = " << d.adapter << "::dseq_view("
               << p.name << "); _req.in_dseq(_" << p.name << "_view); }\n";
        else
          out_ << "    _req.in_dseq(" << p.name << ");\n";
      } else {
        if (d.native)
          out_ << "    { auto _" << p.name << "_view = " << d.adapter << "::dseq_view(*_"
               << p.name << "_target); _req.out_dseq_expected(_" << p.name
               << "_view.distribution()); }\n";
        else
          out_ << "    _req.out_dseq_expected(_" << p.name << "_target->distribution());\n";
      }
    } else if (p.dir != Param::Dir::kOut) {
      out_ << "    _req.in_value(" << p.name << ");\n";
    }
  }
  out_ << "    auto _pending = _req.invoke();\n";

  const bool has_ret = !is_void(op.ret);
  if (has_ret)
    out_ << "    auto _ret_slot = std::make_shared<" << cpp_type(op.ret) << ">();\n";
  for (const auto& p : op.params)
    if (p.dir != Param::Dir::kIn && !p.type->is_dseq())
      out_ << "    auto _" << p.name << "_slot = std::make_shared<" << cpp_type(p.type)
           << ">();\n";

  out_ << "    _pending->set_decoder([=](pardis::core::ReplyDecoder& _d) {\n";
  out_ << "      (void)_d;\n";
  if (has_ret)
    out_ << "      *_ret_slot = _d.out_value<" << cpp_type(op.ret) << ">();\n";
  for (const auto& p : op.params) {
    if (p.dir == Param::Dir::kIn) continue;
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      if (d.native)
        out_ << "      { auto _" << p.name << "_view = " << d.adapter << "::dseq_view(*_"
             << p.name << "_target); _d.out_dseq(_" << p.name << "_view); }\n";
      else
        out_ << "      _d.out_dseq(*_" << p.name << "_target);\n";
    } else {
      out_ << "      *_" << p.name << "_slot = _d.out_value<" << cpp_type(p.type)
           << ">();\n";
    }
  }
  out_ << "    });\n";
  for (const auto& p : op.params) {
    if (p.dir == Param::Dir::kIn) continue;
    if (p.type->is_dseq()) {
      const DseqInfo d = dseq_info(p.type);
      out_ << "    " << p.name << "._bind(_pending, std::make_shared<" << d.var << ">(_"
           << p.name << "_target));\n";
    } else {
      out_ << "    " << p.name << "._bind(_pending, _" << p.name << "_slot);\n";
    }
  }
  if (has_ret) out_ << "    _result._bind(_pending, _ret_slot);\n";
  if (needs_done) out_ << "    _done._bind(_pending);\n";
  out_ << "  }\n\n";
}

void Generator::emit_proxy(const InterfaceDef& iface) {
  const std::string base = iface.base.empty() ? "pardis::core::ProxyRoot" : iface.base;
  out_ << "class " << iface.name << " : public " << base << " {\n public:\n";
  out_ << "  using _var = std::shared_ptr<" << iface.name << ">;\n";
  out_ << "  static constexpr const char* _pardis_type_id = \"IDL:" << iface.name
       << ":1.0\";\n\n";
  out_ << "  static _var _spmd_bind(pardis::core::ClientCtx& _ctx, const std::string& _name,"
          " const std::string& _host = \"\") {\n"
          "    return _var(new "
       << iface.name << "(pardis::core::spmd_bind(_ctx, _name, _host, _pardis_type_id)));\n"
          "  }\n";
  out_ << "  static _var _bind(pardis::core::ClientCtx& _ctx, const std::string& _name,"
          " const std::string& _host = \"\") {\n"
          "    return _var(new "
       << iface.name << "(pardis::core::bind(_ctx, _name, _host, _pardis_type_id)));\n"
          "  }\n";
  out_ << "  static _var _bind_object(pardis::core::ClientCtx& _ctx,"
          " const pardis::core::ObjectRef& _ref) {\n"
          "    return _var(new "
       << iface.name
       << "(pardis::core::bind_object(_ctx, _ref, _pardis_type_id)));\n"
          "  }\n";
  out_ << "  static _var _spmd_bind_object(pardis::core::ClientCtx& _ctx,"
          " const pardis::core::ObjectRef& _ref) {\n"
          "    return _var(new "
       << iface.name
       << "(pardis::core::spmd_bind_object(_ctx, _ref, _pardis_type_id)));\n"
          "  }\n\n";

  for (const auto& op : iface.ops) {
    emit_blocking_stub(iface, op, /*single_mapping=*/false);
    bool has_inout = false;
    for (const auto& p : op.params)
      if (p.dir == Param::Dir::kInOut) has_inout = true;
    if (!op.oneway && !has_inout) emit_nb_stub(iface, op);
    // The paper's second stub: non-distributed argument mapping for
    // single clients.
    if (op.has_dseq_params()) emit_blocking_stub(iface, op, /*single_mapping=*/true);
  }

  out_ << " protected:\n  explicit " << iface.name
       << "(pardis::core::BindingPtr _b) : " << base << "(std::move(_b)) {}\n";
  out_ << "};\n\n";
}

void Generator::emit_interface(const InterfaceDef& iface) {
  emit_skeleton(iface);
  emit_proxy(iface);
}

std::string Generator::run() {
  for (const auto& d : spec_.definitions) {
    switch (d.kind) {
      case Definition::Kind::kConst: emit_const(d.const_def); break;
      case Definition::Kind::kTypedef: emit_typedef(d.typedef_def); break;
      case Definition::Kind::kStruct: emit_struct(d.struct_or_enum); break;
      case Definition::Kind::kEnum: emit_enum(d.struct_or_enum); break;
      case Definition::Kind::kInterface: emit_interface(d.interface_def); break;
    }
  }

  std::ostringstream final_out;
  final_out << "// Generated by pardis-idl. DO NOT EDIT.\n#pragma once\n\n"
            << "#include \"core/pardis.hpp\"\n"
            << "#include \"core/stub_support.hpp\"\n";
  if (uses_ft_) final_out << "#include \"ft/ft.hpp\"\n";
  if (uses_pstl_) final_out << "#include \"pstl/mapping.hpp\"\n";
  if (uses_pooma_) final_out << "#include \"pooma/mapping.hpp\"\n";
  final_out << "\nnamespace " << opt_.ns << " {\n\n"
            << out_.str() << "}  // namespace " << opt_.ns << "\n\n"
            << traits_.str();
  return final_out.str();
}

}  // namespace

std::string generate_cpp(const Spec& spec, const CodegenOptions& options) {
  Generator gen(spec, options);
  return gen.run();
}

}  // namespace pardis::idl
