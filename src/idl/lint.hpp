// pardis-idl --lint: static diagnostics over the parsed IDL AST.
//
// The parser rejects what the language forbids; the lint pass flags
// what the language *allows* but the PARDIS runtime, the generated C++
// or the SPMD discipline cannot honor. Every diagnostic has a stable
// code (PLxxx), a severity, and a file:line:column location, so the
// output is greppable and CI-diffable. `--werror` promotes warnings.
//
//   PL001  unused type definition (typedef/struct/enum never referenced)
//   PL002  (d)sequence element type is not block-marshalable (boolean)
//   PL003  #pragma package mapping names no known adapter
//   PL004  identifier collides with the generated-symbol space
//   PL005  identifier is a reserved C++ keyword
//   PL006  distribution spec the transfer planner must reject at runtime
//   PL007  interface declares no operations
//   PL008  duplicate enumerator within one enum
//   PL009  #pragma idempotent on a oneway operation (nothing to retry)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "idl/ast.hpp"

namespace pardis::idl {

enum class Severity { kWarning, kError };

const char* severity_name(Severity s) noexcept;

struct Diagnostic {
  std::string code;  ///< stable "PLxxx" identifier
  Severity severity = Severity::kWarning;
  std::string file;
  Loc loc;
  std::string message;
};

/// Runs every lint rule over `spec`; diagnostics come back in source
/// order (by line, then column, then code).
std::vector<Diagnostic> run_lint(const Spec& spec);

/// `file:line:col: severity: message [code]`, one per line (the
/// gcc/clang format editors already parse).
void render_text(const std::vector<Diagnostic>& diags, std::ostream& os);

/// A JSON array of {code, severity, file, line, column, message}.
void render_json(const std::vector<Diagnostic>& diags, std::ostream& os);

/// True when `diags` should fail the run: any error, or any diagnostic
/// at all under `werror`.
bool lint_failed(const std::vector<Diagnostic>& diags, bool werror) noexcept;

}  // namespace pardis::idl
