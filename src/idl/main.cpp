// pardis-idl — the PARDIS IDL compiler driver.
//
// Usage:
//   pardis-idl <input.idl> [-o <output.hpp>] [--ns <namespace>]
//              [-I <dir>] [-hpcxx] [-pooma] [--lint] [--lint-json] [--werror]
//
// -hpcxx / -pooma activate the HPC++ PSTL / POOMA package mappings for
// `#pragma`-annotated dsequence typedefs (paper §3.4, §4.3); with no
// option the standard C++ mapping is generated. --lint runs the PLxxx
// static diagnostics pass (see idl/lint.hpp).
#include <iostream>
#include <string>
#include <vector>

#include "idl/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pardis::idl::run(args, std::cout, std::cerr);
}
