// pardis-idl — the PARDIS IDL compiler driver.
//
// Usage:
//   pardis-idl <input.idl> -o <output.hpp> [--ns <namespace>]
//              [-hpcxx] [-pooma]
//
// -hpcxx / -pooma activate the HPC++ PSTL / POOMA package mappings for
// `#pragma`-annotated dsequence typedefs (paper §3.4, §4.3); with no
// option the standard C++ mapping is generated.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "idl/codegen.hpp"
#include "idl/include.hpp"
#include "idl/parser.hpp"

namespace {

std::string stem_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  for (char& c : base)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return base;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.idl> -o <output.hpp> [--ns <namespace>]"
               " [-I <dir>] [-hpcxx] [-pooma]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output, ns;
  std::vector<std::string> include_dirs;
  pardis::idl::CodegenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) return usage(argv[0]);
      output = argv[i];
    } else if (arg == "-I") {
      if (++i >= argc) return usage(argv[0]);
      include_dirs.push_back(argv[i]);
    } else if (arg == "--ns") {
      if (++i >= argc) return usage(argv[0]);
      ns = argv[i];
    } else if (arg == "-hpcxx") {
      options.packages.insert("HPC++");
    } else if (arg == "-pooma") {
      options.packages.insert("POOMA");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty() || output.empty()) return usage(argv[0]);
  options.ns = ns.empty() ? stem_of(input) : ns;

  try {
    const std::string source = pardis::idl::load_idl_source(input, include_dirs);
    pardis::idl::Parser parser(source, input);
    const pardis::idl::Spec spec = parser.parse();
    const std::string code = pardis::idl::generate_cpp(spec, options);
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", output.c_str());
      return 1;
    }
    out << code;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
