// IDL abstract syntax, shared by the parser, semantic checks and the
// C++ code generator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/object_ref.hpp"

namespace pardis::idl {

/// Source position of a declaration (1-based; 0 = unknown). The file
/// name lives on the Spec: includes are textually inlined before
/// parsing, so one parse sees one logical file.
struct Loc {
  int line = 0;
  int column = 0;
};

enum class BasicKind {
  kVoid,
  kBoolean,
  kOctet,
  kShort,
  kUShort,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
  kString,
};

const char* basic_cpp_type(BasicKind k) noexcept;

struct Type;
using TypePtr = std::shared_ptr<Type>;

/// Package mapping attached by a #pragma line to a dsequence typedef.
struct PackageMapping {
  std::string package;    ///< e.g. "HPC++", "POOMA"
  std::string structure;  ///< e.g. "vector", "field"
};

struct Type {
  enum class Kind { kBasic, kSequence, kDSequence, kStruct, kEnum, kAlias };

  Kind kind = Kind::kBasic;
  BasicKind basic = BasicKind::kVoid;

  // sequence / dsequence
  TypePtr elem;
  long long bound = -1;  ///< -1 = unbounded

  // dsequence distribution defaults (client side, server side)
  core::DistSpec client_spec = core::DistSpec::block();
  core::DistSpec server_spec = core::DistSpec::block();
  std::vector<PackageMapping> mappings;  ///< pragma-attached package mappings

  // struct / enum / alias
  std::string name;
  Loc loc;  ///< where the type (or its name) was declared
  std::vector<std::pair<std::string, TypePtr>> fields;  // struct
  std::vector<Loc> field_locs;                          // parallel to fields
  std::vector<std::string> enumerators;                 // enum
  std::vector<Loc> enumerator_locs;                     // parallel to enumerators
  TypePtr alias_target;                                 // alias

  /// Follows typedef aliases to the underlying type.
  const Type* resolved() const {
    const Type* t = this;
    while (t->kind == Kind::kAlias) t = t->alias_target.get();
    return t;
  }
  bool is_dseq() const { return resolved()->kind == Kind::kDSequence; }
};

struct Param {
  enum class Dir { kIn, kOut, kInOut };
  Dir dir = Dir::kIn;
  TypePtr type;
  std::string name;
  Loc loc;
};

struct Operation {
  bool oneway = false;
  /// Marked `#pragma idempotent`: the generated blocking stub retries
  /// transient failures through ft::with_retry.
  bool idempotent = false;
  TypePtr ret;  ///< nullptr or void for none
  std::string name;
  Loc loc;
  std::vector<Param> params;

  bool has_dist_out() const {
    for (const auto& p : params)
      if (p.dir == Param::Dir::kOut && p.type->is_dseq()) return true;
    return false;
  }
  bool has_dseq_params() const {
    for (const auto& p : params)
      if (p.type->is_dseq()) return true;
    return false;
  }
};

struct InterfaceDef {
  std::string name;
  Loc loc;
  std::string base;  ///< empty when none
  std::vector<Operation> ops;
};

struct ConstDef {
  std::string name;
  Loc loc;
  TypePtr type;
  bool is_float = false;
  long long int_value = 0;
  double float_value = 0.0;
  std::string string_value;
};

struct TypedefDef {
  std::string name;
  Loc loc;
  TypePtr type;  ///< the alias Type (kind kAlias)
};

/// One top-level definition, in source order.
struct Definition {
  enum class Kind { kTypedef, kStruct, kEnum, kConst, kInterface };
  Kind kind;
  TypedefDef typedef_def;
  TypePtr struct_or_enum;
  ConstDef const_def;
  InterfaceDef interface_def;
};

struct Spec {
  std::string file;  ///< name of the parsed (include-expanded) source
  std::vector<Definition> definitions;

  const InterfaceDef* find_interface(const std::string& name) const {
    for (const auto& d : definitions)
      if (d.kind == Definition::Kind::kInterface && d.interface_def.name == name)
        return &d.interface_def;
    return nullptr;
  }
};

}  // namespace pardis::idl
