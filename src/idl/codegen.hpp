// C++ code generator: one self-contained header per IDL file.
//
// For every interface the generator emits the classes the paper
// describes (§2.2, §3): a proxy with `_bind`/`_spmd_bind`, *two stubs
// per operation* (blocking and non-blocking `_nb`), a second
// "single mapping" overload with non-distributed argument types for
// operations using dsequences, and a `POA_` skeleton whose `_dispatch`
// drives the ORB's argument transfer. `#pragma <package>:<structure>`
// typedefs lower to package-native containers when the matching
// compiler option (-hpcxx / -pooma) is given.
#pragma once

#include <set>
#include <string>

#include "idl/ast.hpp"

namespace pardis::idl {

struct CodegenOptions {
  /// C++ namespace for the generated declarations.
  std::string ns = "generated";
  /// Activated package mappings, by pragma package name
  /// (e.g. {"HPC++"} for -hpcxx, {"POOMA"} for -pooma).
  std::set<std::string> packages;
};

/// Generates the complete header text for `spec`.
std::string generate_cpp(const Spec& spec, const CodegenOptions& options);

}  // namespace pardis::idl
