#include "idl/include.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "idl/lexer.hpp"

namespace pardis::idl {

namespace {

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Matches `#include "name"` on one line; returns the name or empty.
std::string include_target(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return "";
  ++i;
  i = line.find_first_not_of(" \t", i);
  if (line.compare(i, 7, "include") != 0) return "";
  i = line.find('"', i + 7);
  if (i == std::string::npos) return "";
  const std::size_t end = line.find('"', i + 1);
  if (end == std::string::npos) return "";
  return line.substr(i + 1, end - i - 1);
}

void expand(const std::string& path, const std::vector<std::string>& include_dirs,
            std::set<std::string>& seen, int depth, std::ostringstream& out) {
  if (depth > 32) throw IdlError(path, 0, 0, "include depth limit exceeded (cycle?)");
  if (!seen.insert(path).second) return;  // once-only semantics
  std::string text;
  if (!read_file(path, text)) throw IdlError(path, 0, 0, "cannot open include file");

  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::string target = include_target(line);
    if (target.empty()) {
      out << line << '\n';
      continue;
    }
    // Resolve relative to the including file, then the -I directories.
    std::string resolved = dir_of(path) + "/" + target;
    std::string probe;
    if (!read_file(resolved, probe)) {
      bool found = false;
      for (const auto& dir : include_dirs) {
        resolved = dir + "/" + target;
        if (read_file(resolved, probe)) {
          found = true;
          break;
        }
      }
      if (!found)
        throw IdlError(path, lineno, 1, "cannot find included file \"" + target + "\"");
    }
    expand(resolved, include_dirs, seen, depth + 1, out);
  }
}

}  // namespace

std::string load_idl_source(const std::string& path,
                            const std::vector<std::string>& include_dirs) {
  std::ostringstream out;
  std::set<std::string> seen;
  expand(path, include_dirs, seen, 0, out);
  return out.str();
}

}  // namespace pardis::idl
