#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "obs/obs.hpp"

namespace pardis::obs {

std::atomic<std::uint64_t>& Counter::stripe_for_thread() noexcept {
  return stripes_[thread_tid() % kStripes].v;
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > 1.0)) return 0;  // NaN and <=1 land in bucket 0
  // First i with 2^i >= value == bit width of ceil(value) - 1 rounded up.
  const auto v = static_cast<std::uint64_t>(std::ceil(value));
  std::size_t i = static_cast<std::size_t>(std::bit_width(v - 1));
  return i < kBuckets ? i : kBuckets - 1;
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  return std::ldexp(1.0, static_cast<int>(i));
}

void Histogram::record(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped = value > 0 ? value : 0.0;
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(clamped * 1e3),
                       std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= target && seen > 0) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  LockGuard lock(mutex_);
  for (CounterNode* n = counter_head_; n != nullptr; n = n->next)
    if (n->name == name) return n->counter;
  auto* node = new CounterNode{std::string(name), {}, counter_head_};
  counter_head_ = node;
  return node->counter;
}

Histogram& Registry::histogram(std::string_view name) {
  LockGuard lock(mutex_);
  for (HistogramNode* n = histogram_head_; n != nullptr; n = n->next)
    if (n->name == name) return n->histogram;
  auto* node = new HistogramNode{std::string(name), {}, histogram_head_};
  histogram_head_ = node;
  return node->histogram;
}

std::vector<Registry::CounterRow> Registry::counters() const {
  std::vector<CounterRow> out;
  LockGuard lock(mutex_);
  for (CounterNode* n = counter_head_; n != nullptr; n = n->next)
    out.push_back(CounterRow{n->name, n->counter.value()});
  std::sort(out.begin(), out.end(),
            [](const CounterRow& a, const CounterRow& b) { return a.name < b.name; });
  return out;
}

std::vector<Registry::HistogramRow> Registry::histograms() const {
  std::vector<HistogramRow> out;
  LockGuard lock(mutex_);
  for (HistogramNode* n = histogram_head_; n != nullptr; n = n->next) {
    HistogramRow row;
    row.name = n->name;
    row.count = n->histogram.count();
    row.sum = n->histogram.sum();
    row.p50 = n->histogram.quantile(0.50);
    row.p95 = n->histogram.quantile(0.95);
    row.p99 = n->histogram.quantile(0.99);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      if (const std::uint64_t c = n->histogram.bucket(i)) row.nonzero.emplace_back(i, c);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramRow& a, const HistogramRow& b) { return a.name < b.name; });
  return out;
}

void Registry::dump_text(std::ostream& os) const {
  for (const CounterRow& c : counters()) os << c.name << " " << c.value << "\n";
  for (const HistogramRow& h : histograms())
    os << h.name << "{count=" << h.count << ",sum=" << h.sum << ",p50=" << h.p50
       << ",p95=" << h.p95 << ",p99=" << h.p99 << "}\n";
}

void Registry::dump_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const CounterRow& c : counters()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << c.name << "\":" << c.value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const HistogramRow& h : histograms()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << h.name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
       << ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [bucket, count] : h.nonzero) {
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << bucket << "," << count << "]";
    }
    os << "]}";
  }
  os << "}}\n";
}

void Registry::reset() {
  LockGuard lock(mutex_);
  for (CounterNode* n = counter_head_; n != nullptr; n = n->next) n->counter.reset();
  for (HistogramNode* n = histogram_head_; n != nullptr; n = n->next)
    n->histogram.reset();
}

}  // namespace pardis::obs
