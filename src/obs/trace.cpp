#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

#include "common/log.hpp"
#include "common/mutex.hpp"

namespace pardis::obs {

namespace {

// Sharded sink: threads append to the shard their tid maps to, so
// concurrent computing threads rarely contend on one mutex.
constexpr std::size_t kShards = 16;

struct Shard {
  Mutex mutex{"obs.trace_shard"};
  std::vector<SpanRecord> spans PARDIS_GUARDED_BY(mutex);
};

Shard g_shards[kShards];

Shard& shard_for_thread() { return g_shards[thread_tid() % kShards]; }

Shard* all_shards() { return g_shards; }

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control chars never appear in span names
        else
          os << c;
    }
  }
}

}  // namespace

void record_span(SpanRecord&& span) {
  Shard& s = shard_for_thread();
  LockGuard lock(s.mutex);
  s.spans.push_back(std::move(span));
}

std::vector<SpanRecord> snapshot_spans() {
  std::vector<SpanRecord> out;
  Shard* shards = all_shards();
  for (std::size_t i = 0; i < kShards; ++i) {
    LockGuard lock(shards[i].mutex);
    out.insert(out.end(), shards[i].spans.begin(), shards[i].spans.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.wall_start_us < b.wall_start_us;
  });
  return out;
}

std::size_t span_count() noexcept {
  std::size_t n = 0;
  Shard* shards = all_shards();
  for (std::size_t i = 0; i < kShards; ++i) {
    LockGuard lock(shards[i].mutex);
    n += shards[i].spans.size();
  }
  return n;
}

void clear_spans() {
  Shard* shards = all_shards();
  for (std::size_t i = 0; i < kShards; ++i) {
    LockGuard lock(shards[i].mutex);
    shards[i].spans.clear();
  }
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<SpanRecord> spans = snapshot_spans();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"cat\":\"" << s.category << "\",\"ts\":" << s.wall_start_us
       << ",\"dur\":" << s.wall_dur_us << ",\"id\":\"0x" << std::hex << s.trace_id
       << "\",\"args\":{\"trace_id\":\"0x" << s.trace_id << "\",\"span_id\":\"0x"
       << s.span_id << "\",\"parent_id\":\"0x" << s.parent_id << std::dec
       << "\",\"sim_start\":" << s.sim_start << ",\"sim_end\":" << s.sim_end << "}}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    PARDIS_LOG(kWarn, "obs") << "cannot write trace file " << path;
    return false;
  }
  write_chrome_trace(os);
  return os.good();
}

}  // namespace pardis::obs
