// Span sink and Chrome trace_event exporter.
//
// Completed spans land in a sharded in-memory sink; the exporter
// renders them as Chrome trace_event "complete" events ("ph":"X") that
// chrome://tracing and Perfetto load directly. Each event carries the
// trace/span/parent ids and the virtual-clock interval in its args, so
// wall-clock traces can be lined up against the paper's overlap
// algebra.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace pardis::obs {

/// One completed span.
struct SpanRecord {
  ULongLong trace_id = 0;
  ULongLong span_id = 0;
  ULongLong parent_id = 0;  ///< 0 = root
  std::string name;
  const char* category = "";
  double wall_start_us = 0.0;
  double wall_dur_us = 0.0;
  double sim_start = 0.0;  ///< virtual seconds at open
  double sim_end = 0.0;    ///< virtual seconds at close
  std::uint32_t tid = 0;
};

/// Appends one completed span (called by SpanScope::close).
void record_span(SpanRecord&& span);

/// Copy of every recorded span, across all threads (export order is by
/// wall start).
std::vector<SpanRecord> snapshot_spans();

/// Number of spans currently held.
std::size_t span_count() noexcept;

/// Drops all recorded spans (tests and benches).
void clear_spans();

/// Writes the Chrome trace_event JSON document for every recorded span.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to `path`; false (with a log line) on I/O error.
bool write_chrome_trace_file(const std::string& path);

}  // namespace pardis::obs
