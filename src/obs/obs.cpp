#include "obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "common/mutex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"

namespace pardis::obs {

namespace detail {

// Atomic: tests flip it with set_enabled() while worker threads read
// it through enabled(); a plain int is a data race under TSan.
std::atomic<int> g_enabled_cache{-1};

namespace {

// Serializes init_from_env's check-then-set of the *atomic* cache so
// two first readers agree on the env snapshot; there is no non-atomic
// state for GUARDED_BY to name.
// pardis-lint: allow(unannotated-mutex)
Mutex g_init_mutex{"obs.init"};

bool truthy(const char* v) noexcept {
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

void arm_atexit_flush() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit([] { flush_exports(); }); });
}

}  // namespace

int init_from_env() noexcept {
  LockGuard lock(g_init_mutex);
  int v = g_enabled_cache.load(std::memory_order_relaxed);
  if (v < 0) {
    const bool on = truthy(std::getenv("PARDIS_OBS"));
    if (on) arm_atexit_flush();
    v = on ? 1 : 0;
    g_enabled_cache.store(v, std::memory_order_relaxed);
  }
  return v;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  LockGuard lock(detail::g_init_mutex);
  detail::g_enabled_cache.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) detail::arm_atexit_flush();
}

ULongLong next_id() noexcept {
  static std::atomic<ULongLong> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {

thread_local TraceContext t_ambient;

const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

}  // namespace

const TraceContext& current_context() noexcept { return t_ambient; }

ContextScope::ContextScope(const TraceContext& ctx) noexcept : prev_(t_ambient) {
  t_ambient = ctx;
}

ContextScope::~ContextScope() { t_ambient = prev_; }

double wall_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   g_epoch)
      .count();
}

std::uint32_t thread_tid() noexcept {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local std::uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void SpanScope::open(std::string name, const char* category) {
  open_remote(std::move(name), category, t_ambient);
}

void SpanScope::open_remote(std::string name, const char* category,
                            const TraceContext& parent) {
  if (armed_) close();
  armed_ = true;
  name_ = std::move(name);
  category_ = category;
  parent_span_ = parent.valid() ? parent.span_id : 0;
  ctx_.trace_id = parent.valid() ? parent.trace_id : next_id();
  ctx_.span_id = next_id();
  prev_ambient_ = t_ambient;
  t_ambient = ctx_;
  wall_start_us_ = wall_now_us();
  sim_start_ = sim::timestamp_now();
}

void SpanScope::close() {
  if (!armed_) return;
  armed_ = false;
  t_ambient = prev_ambient_;
  SpanRecord rec;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_id = parent_span_;
  rec.name = std::move(name_);
  rec.category = category_;
  rec.wall_start_us = wall_start_us_;
  rec.wall_dur_us = wall_now_us() - wall_start_us_;
  rec.sim_start = sim_start_;
  rec.sim_end = sim::timestamp_now();
  rec.tid = thread_tid();
  record_span(std::move(rec));
  ctx_ = TraceContext{};
}

void flush_exports() noexcept {
  if (!enabled()) return;
  try {
    const char* trace_path = std::getenv("PARDIS_OBS_TRACE");
    const std::string trace_file = trace_path != nullptr ? trace_path : "pardis_trace.json";
    if (!trace_file.empty() && span_count() > 0) write_chrome_trace_file(trace_file);

    if (const char* metrics_path = std::getenv("PARDIS_OBS_METRICS")) {
      const std::string path(metrics_path);
      std::ofstream os(path);
      if (!os) {
        PARDIS_LOG(kWarn, "obs") << "cannot write metrics dump " << path;
      } else if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
        metrics().dump_json(os);
      } else {
        metrics().dump_text(os);
      }
    }
  } catch (const std::exception& e) {
    PARDIS_LOG(kWarn, "obs") << "export failed: " << e.what();
  }
}

}  // namespace pardis::obs
