// Metrics registry: sharded counters and fixed-bucket histograms.
//
// Counters are striped over cache-line-padded atomics so concurrent
// computing threads do not bounce one line; reads sum the stripes.
// Histograms use fixed power-of-two bucket bounds so recording is a
// branchless index + one atomic increment, and two dumps can be
// compared bucket-by-bucket across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/types.hpp"

namespace pardis::obs {

/// Monotone event counter. add() is wait-free; value() is a sum over
/// the stripes (racy reads see a consistent-enough snapshot).
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(std::uint64_t n = 1) noexcept {
    stripe_for_thread().fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& stripe_for_thread() noexcept;

  Stripe stripes_[kStripes];
};

/// Fixed-bucket histogram. Bucket `i` counts samples with value in
/// (2^(i-1), 2^i]; bucket 0 covers [0, 1]; the last bucket absorbs
/// everything larger. Values are unitless — latency hooks record
/// microseconds, size hooks record bytes.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  /// Index of the bucket a sample lands in.
  static std::size_t bucket_index(double value) noexcept;
  /// Inclusive upper bound of bucket `i` (2^i).
  static double bucket_upper_bound(std::size_t i) noexcept;

  void record(double value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept;
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the bound of
  /// the bucket holding the q-th sample. 0 when empty.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};  // fixed-point sum (value * 1e3)
};

/// Name → instrument registry. Instruments are created on first use
/// and live for the process (hooks cache the reference in a static
/// local, so steady-state lookups are free).
class Registry {
 public:
  static Registry& instance() noexcept;

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count;
    double sum, p50, p95, p99;
    std::vector<std::pair<std::size_t, std::uint64_t>> nonzero;  // (bucket, count)
  };

  std::vector<CounterRow> counters() const;
  std::vector<HistogramRow> histograms() const;

  /// `name value` per line, histograms as name{count,sum,p50,p95,p99}.
  void dump_text(std::ostream& os) const;
  /// {"counters":{name:value,...},"histograms":{name:{...},...}}
  void dump_json(std::ostream& os) const;

  /// Zeroes every instrument (registrations and cached references stay
  /// valid) — benches call this between sections.
  void reset();

 private:
  Registry() = default;

  // Nodes never move once created: hooks hold references across the
  // registry mutex.
  struct CounterNode {
    std::string name;
    Counter counter;
    CounterNode* next = nullptr;
  };
  struct HistogramNode {
    std::string name;
    Histogram histogram;
    HistogramNode* next = nullptr;
  };

  mutable Mutex mutex_{"obs.metrics_registry"};
  CounterNode* counter_head_ PARDIS_GUARDED_BY(mutex_) = nullptr;
  HistogramNode* histogram_head_ PARDIS_GUARDED_BY(mutex_) = nullptr;
};

inline Registry& metrics() noexcept { return Registry::instance(); }

}  // namespace pardis::obs
