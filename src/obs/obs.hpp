// pardis_obs — observability for the ORB stack: request tracing,
// metrics, and profiling hooks.
//
// The paper's evaluation decomposes every end-to-end time into
// `t = t_o + max(t_i, t_d)` (Fig. 2 caption); this module makes that
// decomposition observable on any run instead of hand-instrumented
// benches. Three pieces:
//
//   * per-request distributed tracing — a TraceContext allocated at the
//     client stub rides inside the PIOP headers, is propagated through
//     the transports and restored in the POA dispatch path; spans
//     record both wall time and the sim virtual clock so traces line up
//     with the paper's overlap algebra;
//   * a metrics registry — sharded counters and fixed-bucket
//     histograms (see metrics.hpp);
//   * exporters — Chrome trace_event JSON and text/JSON metric dumps
//     (see trace.hpp / metrics.hpp).
//
// Everything is gated on a single runtime toggle: the PARDIS_OBS
// environment variable (1/true/on/yes), overridable programmatically
// with set_enabled(). Disabled, every hook is one relaxed atomic load
// and the PIOP wire format is byte-identical to the untraced layout.
#pragma once

#include <atomic>
#include <string>

#include "common/types.hpp"

namespace pardis::obs {

namespace detail {
/// -1 = uninitialised (read PARDIS_OBS on first use), else 0/1.
int init_from_env() noexcept;
extern std::atomic<int> g_enabled_cache;
}  // namespace detail

/// The master toggle. First call reads PARDIS_OBS from the
/// environment; afterwards it is a single relaxed load.
inline bool enabled() noexcept {
  const int v = detail::g_enabled_cache.load(std::memory_order_relaxed);
  return v < 0 ? detail::init_from_env() > 0 : v > 0;
}

/// Programmatic override (tests and benches). Enabling also arms the
/// at-exit exporters when PARDIS_OBS_TRACE / PARDIS_OBS_METRICS are
/// set.
void set_enabled(bool on) noexcept;

/// Identity of one request as it travels client → transport → POA →
/// servant → reply → future. `trace_id` names the whole causal tree
/// (one per root invocation); `span_id` names the sender's span so the
/// receiver can parent its own spans under it. trace_id == 0 means "no
/// trace attached".
struct TraceContext {
  ULongLong trace_id = 0;
  ULongLong span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// Process-unique nonzero id (shared pool for trace and span ids).
ULongLong next_id() noexcept;

/// The ambient trace context of the calling thread: the innermost open
/// span, or the context restored by the POA around a dispatch. Invalid
/// when nothing is open.
const TraceContext& current_context() noexcept;

/// Directly swaps the ambient context (used by machinery that crosses
/// threads, e.g. dispatch). Prefer SpanScope, which does this for you.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx) noexcept;
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII span. Default-constructed it is disarmed and free; open()
/// starts the clock, makes this span the ambient context, and the
/// destructor (or close()) records it. Open only under
/// `obs::enabled()`.
class SpanScope {
 public:
  SpanScope() = default;
  ~SpanScope() { close(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Starts a span parented on the calling thread's ambient context
  /// (or starting a fresh trace when there is none).
  void open(std::string name, const char* category);

  /// Starts a span parented on an explicit remote context — the POA
  /// dispatch path restoring the client's context from a PIOP header.
  /// An invalid `parent` starts a fresh trace.
  void open_remote(std::string name, const char* category, const TraceContext& parent);

  /// Records the span and restores the previous ambient context.
  /// Idempotent; also run by the destructor.
  void close();

  bool armed() const noexcept { return armed_; }

  /// This span's context — what gets marshaled into a PIOP header so
  /// the receiver parents under this span. Invalid when disarmed.
  const TraceContext& context() const noexcept { return ctx_; }

 private:
  bool armed_ = false;
  TraceContext ctx_;
  TraceContext prev_ambient_;
  ULongLong parent_span_ = 0;
  std::string name_;
  const char* category_ = "";
  double wall_start_us_ = 0.0;
  double sim_start_ = 0.0;
};

/// Microseconds since process start on the shared steady epoch (what
/// span timestamps and the Chrome exporter use).
double wall_now_us() noexcept;

/// Small dense id of the calling thread (Chrome "tid").
std::uint32_t thread_tid() noexcept;

/// Writes the Chrome trace and/or metrics dump to the paths named by
/// PARDIS_OBS_TRACE (default "pardis_trace.json" when obs is enabled)
/// and PARDIS_OBS_METRICS (no default). Called automatically at
/// process exit and from Orb teardown; safe to call repeatedly.
void flush_exports() noexcept;

}  // namespace pardis::obs
