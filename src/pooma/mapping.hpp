// PARDIS <-> mini-POOMA direct mapping (paper §3.4, §4.3).
//
// Referenced by stub code generated under -pooma for
// `#pragma POOMA:field` typedefs. A field travels as its row-major
// flattening; grids are square (the pipeline example's 128x128), so
// the receiving side can recover the shape from the element count.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/stub_support.hpp"
#include "dist/dsequence.hpp"
#include "pooma/field2d.hpp"

namespace pardis::pooma {

namespace detail {

inline std::size_t square_dim(std::size_t n) {
  const auto dim = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(n))));
  if (dim * dim != n)
    throw BadParam("POOMA field mapping: element count " + std::to_string(n) +
                   " is not a square grid");
  return dim;
}

}  // namespace detail

/// No-copy view of the field's contiguous local interior, distributed
/// by whole rows.
template <typename T>
dist::DSequence<T> dseq_view(Field2D<T>& f) {
  return dist::DSequence<T>::local_view(f.rank(), f.element_distribution(),
                                        std::span<T>(f.storage()));
}

template <typename T>
dist::DSequence<T> dseq_view(const Field2D<T>& f) {
  return dseq_view(const_cast<Field2D<T>&>(f));
}

/// Server side: adopts a received flattened field. The wire
/// distribution (whatever the registered spec produced) is
/// redistributed onto the field's row-aligned decomposition.
template <typename T>
Field2D<T> native_from_dseq(dist::DSequence<T>&& seq, rts::Communicator& comm) {
  const std::size_t dim = detail::square_dim(seq.size());
  Field2D<T> f(comm, dim, dim);
  if (!(seq.distribution() == f.element_distribution()))
    seq.redistribute(f.element_distribution());
  auto loc = seq.local();
  std::copy(loc.begin(), loc.end(), f.storage().begin());
  return f;
}

/// Client side: native target for a non-blocking out argument.
template <typename T>
Field2D<T> make_native(core::ClientCtx& ctx, std::size_t n, const core::DistSpec&) {
  if (ctx.comm() == nullptr)
    throw BadInvOrder("the POOMA mapping requires an SPMD client");
  const std::size_t dim = detail::square_dim(n);
  return Field2D<T>(*ctx.comm(), dim, dim);
}

}  // namespace pardis::pooma
