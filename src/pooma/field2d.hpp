// Mini POOMA: a two-dimensional field with guard-cell exchange.
//
// Stands in for the POOMA library the paper interfaces with (§3.4,
// §4.3): a row-block-decomposed 2-D field supporting the 9-point
// stencil of the pipeline example's diffusion application. Interior
// rows are stored contiguously (guards live in separate buffers), so
// the PARDIS `#pragma POOMA:field` mapping can view the local data as
// a distributed sequence without copying.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/cdr.hpp"
#include "dist/distribution.hpp"
#include "rts/collectives.hpp"
#include "rts/communicator.hpp"

namespace pardis::pooma {

template <typename T>
class Field2D {
 public:
  /// Collective: (nx rows) x (ny cols), rows block-distributed.
  Field2D(rts::Communicator& comm, std::size_t nx, std::size_t ny)
      : comm_(&comm), nx_(nx), ny_(ny), rows_(dist::Distribution::block(nx, comm.size())) {
    local_rows_ = rows_.local_count(comm.rank());
    first_row_ = local_rows_ > 0 ? rows_.local_to_global(comm.rank(), 0) : 0;
    interior_.assign(local_rows_ * ny_, T{});
    north_guard_.assign(ny_, T{});
    south_guard_.assign(ny_, T{});
  }

  rts::Communicator& comm() const noexcept { return *comm_; }
  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t local_rows() const noexcept { return local_rows_; }
  std::size_t first_row() const noexcept { return first_row_; }
  int rank() const noexcept { return comm_->rank(); }

  T& at(std::size_t local_row, std::size_t col) { return interior_[local_row * ny_ + col]; }
  const T& at(std::size_t local_row, std::size_t col) const {
    return interior_[local_row * ny_ + col];
  }

  std::span<T> row(std::size_t local_row) { return {interior_.data() + local_row * ny_, ny_}; }
  std::span<const T> row(std::size_t local_row) const {
    return {interior_.data() + local_row * ny_, ny_};
  }

  /// Contiguous local interior in row-major order (the paper's "two
  /// dimensional array represented as a vector in row-major order").
  std::vector<T>& storage() noexcept { return interior_; }
  const std::vector<T>& storage() const noexcept { return interior_; }

  /// Element-wise distribution of the row-major flattening.
  dist::Distribution element_distribution() const {
    std::vector<std::size_t> counts(static_cast<std::size_t>(rows_.nranks()));
    for (int r = 0; r < rows_.nranks(); ++r)
      counts[static_cast<std::size_t>(r)] = rows_.local_count(r) * ny_;
    return dist::Distribution::from_counts(std::move(counts));
  }

  /// Row above the local block (previous rank's last row after
  /// exchange_guards; boundary value at the global edge).
  std::span<const T> north() const noexcept { return north_guard_; }
  /// Row below the local block.
  std::span<const T> south() const noexcept { return south_guard_; }

  /// Value at (local_row + dr, col) where dr in {-1, 0, +1}, reading
  /// guards across rank boundaries.
  const T& at_with_guards(std::ptrdiff_t local_row, std::ptrdiff_t col) const {
    if (local_row < 0) return north_guard_[static_cast<std::size_t>(col)];
    if (local_row >= static_cast<std::ptrdiff_t>(local_rows_))
      return south_guard_[static_cast<std::size_t>(col)];
    return at(static_cast<std::size_t>(local_row), static_cast<std::size_t>(col));
  }

  /// Collective: refreshes guard rows from the neighbouring ranks.
  /// Guards at the global top/bottom keep `boundary`.
  void exchange_guards(T boundary = T{}) {
    const int rank = comm_->rank();
    const int north_rank = first_row_ > 0 && local_rows_ > 0
                               ? rows_.owner(first_row_ - 1)
                               : -1;
    const std::size_t last = first_row_ + local_rows_;
    const int south_rank = local_rows_ > 0 && last < nx_ ? rows_.owner(last) : -1;

    if (north_rank >= 0) {
      std::vector<T> first(row(0).begin(), row(0).end());
      comm_->send_reserved(north_rank, rts::kTagPackage, cdr_encode(first));
    }
    if (south_rank >= 0) {
      std::vector<T> lastrow(row(local_rows_ - 1).begin(), row(local_rows_ - 1).end());
      comm_->send_reserved(south_rank, rts::kTagPackage, cdr_encode(lastrow));
    }
    if (south_rank >= 0) {
      auto msg = comm_->recv(south_rank, rts::kTagPackage);
      south_guard_ = cdr_decode<std::vector<T>>(msg.payload.view());
    } else {
      south_guard_.assign(ny_, boundary);
    }
    if (north_rank >= 0) {
      auto msg = comm_->recv(north_rank, rts::kTagPackage);
      north_guard_ = cdr_decode<std::vector<T>>(msg.payload.view());
    } else {
      north_guard_.assign(ny_, boundary);
    }
    // Ranks owning zero rows still take part in the collective phase.
    (void)rank;
  }

 private:
  rts::Communicator* comm_;
  std::size_t nx_;
  std::size_t ny_;
  dist::Distribution rows_;
  std::size_t local_rows_ = 0;
  std::size_t first_row_ = 0;
  std::vector<T> interior_;
  std::vector<T> north_guard_;
  std::vector<T> south_guard_;
};

// --- stencil operations -----------------------------------------------------

/// One 9-point diffusion time-step: out = (1-w)*u + w * avg of the 3x3
/// neighbourhood (edge-clamped). Collective (guard exchange inside).
template <typename T>
void diffusion_step(Field2D<T>& u, Field2D<T>& out, T w) {
  if (u.nx() != out.nx() || u.ny() != out.ny())
    throw BadParam("diffusion_step: shape mismatch");
  u.exchange_guards();
  const std::ptrdiff_t rows = static_cast<std::ptrdiff_t>(u.local_rows());
  const std::ptrdiff_t cols = static_cast<std::ptrdiff_t>(u.ny());
  const bool top_edge = u.first_row() == 0;
  const bool bottom_edge = u.first_row() + u.local_rows() == u.nx();
  for (std::ptrdiff_t r = 0; r < rows; ++r) {
    for (std::ptrdiff_t c = 0; c < cols; ++c) {
      T sum{};
      for (std::ptrdiff_t dr = -1; dr <= 1; ++dr) {
        for (std::ptrdiff_t dc = -1; dc <= 1; ++dc) {
          std::ptrdiff_t rr = r + dr;
          std::ptrdiff_t cc = std::clamp<std::ptrdiff_t>(c + dc, 0, cols - 1);
          if (top_edge && rr < 0) rr = 0;
          if (bottom_edge && rr >= rows) rr = rows - 1;
          sum += u.at_with_guards(rr, cc);
        }
      }
      out.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          (T(1) - w) * u.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) +
          w * sum / T(9);
    }
  }
}

/// Central-difference gradient magnitude (edge-clamped). Collective.
template <typename T>
void gradient_magnitude(Field2D<T>& u, Field2D<T>& out) {
  if (u.nx() != out.nx() || u.ny() != out.ny())
    throw BadParam("gradient_magnitude: shape mismatch");
  u.exchange_guards();
  const std::ptrdiff_t rows = static_cast<std::ptrdiff_t>(u.local_rows());
  const std::ptrdiff_t cols = static_cast<std::ptrdiff_t>(u.ny());
  const bool top_edge = u.first_row() == 0;
  const bool bottom_edge = u.first_row() + u.local_rows() == u.nx();
  for (std::ptrdiff_t r = 0; r < rows; ++r) {
    for (std::ptrdiff_t c = 0; c < cols; ++c) {
      std::ptrdiff_t up = r - 1, down = r + 1;
      if (top_edge && up < 0) up = 0;
      if (bottom_edge && down >= rows) down = rows - 1;
      const std::ptrdiff_t west = std::max<std::ptrdiff_t>(c - 1, 0);
      const std::ptrdiff_t east = std::min<std::ptrdiff_t>(c + 1, cols - 1);
      const T dx = (u.at_with_guards(r, east) - u.at_with_guards(r, west)) / T(2);
      const T dy = (u.at_with_guards(down, c) - u.at_with_guards(up, c)) / T(2);
      out.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          std::sqrt(dx * dx + dy * dy);
    }
  }
}

}  // namespace pardis::pooma
