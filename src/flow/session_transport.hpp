// pardis_flow — reconnecting, sequence-numbered transport sessions.
//
// The PARDIS transport model is the one-way RSR: fire it and forget
// it. That is faithful to NexusLite and cheap, but it makes a severed
// TCP connection (or a sim::FaultPlan sever_link) terminal — every
// in-flight future over the link breaks, even when the link heals a
// moment later. SessionTransport decorates any Transport with per-peer
// sessions that survive link outages:
//
//  - every wrapped RSR rides a kHandlerSessionData envelope carrying a
//    session id and a per-session sequence number;
//  - the sender keeps a bounded buffer of unacknowledged frames (the
//    session window); receivers acknowledge cumulatively on
//    kHandlerSessionAck;
//  - a send that fails with CommFailure triggers redial-and-replay:
//    exponential backoff with deterministic jitter (pardis_ft's
//    schedule), then every unacked frame is re-sent in order. The
//    receiver drops replayed duplicates by sequence number, so a
//    healed link resumes exactly where it broke;
//  - only an exhausted reconnect budget surfaces CommFailure to the
//    caller — which is what escalates to ClientCtx::fail_peer.
//
// Scope: sessions recover from *observable* link failures (the sender
// sees CommFailure). Silently dropped messages (e.g. a FaultPlan drop)
// are not retransmitted — there is no ack timeout; end-to-end recovery
// of lost requests stays with ft::with_retry, exactly as before. A
// receive queue at capacity is the one silent drop sessions do survive:
// the endpoint bounds-checks session frames *before* the demux filter
// acks them, so an at-capacity frame is dropped unacked and stays in
// the sender's window — it replays on the next reconnect, or surfaces
// as a stalled window / CommFailure when the window fills. Liveness
// probes (kHandlerPing) bypass sessions: replaying a probe would mask
// the very failure it exists to detect.
//
// Both sides of a link must run their traffic through a
// SessionTransport (endpoints created here install the demux filter
// that unwraps envelopes). With `enabled` false the decorator is a
// pure pass-through: no filter, no envelope — the wire bytes are
// identical to the undecorated transport.
//
// Deployment: construct over the process's Local/Tcp transport and
// hand it to the Orb; the SessionTransport must outlive every endpoint
// it created (it owns their delivery filters).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "transport/transport.hpp"

namespace pardis::flow {

class SessionTransport final : public transport::Transport {
 public:
  struct Options {
    /// Master toggle; false = pass-through (wire bytes unchanged).
    bool enabled = false;
    /// Redial attempts per outage before the session is abandoned and
    /// CommFailure escalates to the caller.
    int max_reconnects = 8;
    /// Base backoff before the first redial; doubles per attempt, with
    /// deterministic jitter (ft::backoff_delay).
    unsigned backoff_ms = 10;
    /// Max unacknowledged frames buffered per peer (the retransmission
    /// window); a sender past it blocks until acks arrive.
    std::size_t window = 256;
    /// How long a full window may stall (no acks at all) before the
    /// sender gives up with CommFailure.
    unsigned window_stall_ms = 10000;

    /// PARDIS_SESSIONS (1/true/on/yes enables), PARDIS_SESSION_RECONNECTS,
    /// PARDIS_SESSION_BACKOFF_MS, PARDIS_SESSION_WINDOW,
    /// PARDIS_SESSION_STALL_MS; read once per process.
    static Options from_env();
  };

  /// `inner` is unowned and must outlive this decorator.
  explicit SessionTransport(transport::Transport& inner, Options opts = Options::from_env());
  ~SessionTransport() override;

  SessionTransport(const SessionTransport&) = delete;
  SessionTransport& operator=(const SessionTransport&) = delete;

  const Options& options() const noexcept { return opts_; }

  std::shared_ptr<transport::Endpoint> create_endpoint(const std::string& host_model) override;
  void rsr(const transport::EndpointAddr& dst, transport::HandlerId handler,
           ByteBuffer payload, const std::string& src_host_model) override;

  // --- introspection (tests, diagnostics) -------------------------------

  /// Unacked frames currently buffered toward `dst` (0 = none/no session).
  std::size_t unacked(const transport::EndpointAddr& dst) const;

  /// Observer for redial outcomes (pardis_pool passive health): fired
  /// once per reconnect-and-replay cycle with the peer, whether the
  /// session resumed, and the redial attempts spent. Runs on the
  /// sending thread; must not throw and must not call back into this
  /// transport.
  using RedialListener =
      std::function<void(const transport::EndpointAddr& peer, bool resumed, int attempts)>;
  void set_redial_listener(RedialListener listener);

 private:
  struct Frame {
    std::uint64_t seq;
    transport::HandlerId handler;
    ByteBuffer payload;
  };

  struct OutSession {
    std::uint64_t id;
    transport::EndpointAddr ack_to;  ///< where the peer sends acks
    /// Serializes wire writes so frame order matches sequence order
    /// (held across the inner send; never taken by the ack path).
    Mutex send_mutex{"flow.session_send"};
    /// Guards the fields below; the ack path takes only this.
    mutable Mutex state_mutex{"flow.session_state"};
    std::condition_variable_any acked_cv;
    std::uint64_t next_seq PARDIS_GUARDED_BY(state_mutex) = 0;
    std::deque<Frame> unacked PARDIS_GUARDED_BY(state_mutex);
  };

  std::shared_ptr<OutSession> out_session(const transport::EndpointAddr& dst,
                                          const std::string& src_host_model);
  ByteBuffer make_envelope(const OutSession& s, const Frame& f) const;
  /// Redials with backoff and replays every unacked frame; throws
  /// CommFailure once the budget is spent. Caller holds s.send_mutex.
  void reconnect_and_replay(OutSession& s, const transport::EndpointAddr& dst,
                            const std::string& src_host_model, const std::string& why)
      PARDIS_REQUIRES(s.send_mutex);

  /// Delivery filter half: data envelopes arriving at a wrapped
  /// endpoint. Rewrites `msg` to the inner message (return false) or
  /// consumes a duplicate (return true). Sends the cumulative ack.
  bool on_session_data(transport::RsrMessage& msg, const std::string& rx_host_model);
  /// Delivery filter half: acks arriving at an ack endpoint.
  bool on_session_ack(transport::RsrMessage& msg);

  void notify_redial(const transport::EndpointAddr& peer, bool resumed, int attempts);

  transport::Transport* inner_;
  Options opts_;

  mutable Mutex out_mutex_{"flow.session_out"};
  std::map<std::string, std::shared_ptr<OutSession>> out_
      PARDIS_GUARDED_BY(out_mutex_);  ///< by dst addr string
  std::map<std::uint64_t, std::shared_ptr<OutSession>> out_by_id_ PARDIS_GUARDED_BY(out_mutex_);
  std::uint64_t next_session_id_ PARDIS_GUARDED_BY(out_mutex_) = 1;
  /// One ack endpoint per source host model (so ack traffic carries
  /// the right link costs and fault-plan identity).
  std::map<std::string, std::shared_ptr<transport::Endpoint>> ack_eps_
      PARDIS_GUARDED_BY(out_mutex_);

  mutable Mutex in_mutex_{"flow.session_in"};
  /// Receiver-side dedup horizon per ("ack addr#session id"): next
  /// expected sequence number.
  std::map<std::string, std::uint64_t> in_next_ PARDIS_GUARDED_BY(in_mutex_);

  mutable Mutex listener_mutex_{"flow.session_listener"};
  RedialListener redial_listener_ PARDIS_GUARDED_BY(listener_mutex_);
};

}  // namespace pardis::flow
