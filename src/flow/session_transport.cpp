#include "flow/session_transport.hpp"

#include <cstdlib>
#include <thread>

#include "common/cdr.hpp"
#include "common/log.hpp"
#include "ft/ft.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::flow {

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<unsigned>(n) : fallback;
}

}  // namespace

SessionTransport::Options SessionTransport::Options::from_env() {
  static const Options cached = [] {
    Options o;
    o.enabled = env_flag("PARDIS_SESSIONS");
    o.max_reconnects =
        static_cast<int>(env_unsigned("PARDIS_SESSION_RECONNECTS", 8));
    o.backoff_ms = env_unsigned("PARDIS_SESSION_BACKOFF_MS", 10);
    o.window = env_unsigned("PARDIS_SESSION_WINDOW", 256);
    o.window_stall_ms = env_unsigned("PARDIS_SESSION_STALL_MS", 10000);
    return o;
  }();
  return cached;
}

SessionTransport::SessionTransport(transport::Transport& inner, Options opts)
    : inner_(&inner), opts_(opts) {
  if (opts_.window == 0) opts_.window = 1;
}

SessionTransport::~SessionTransport() {
  LockGuard lock(out_mutex_);
  for (auto& [host, ep] : ack_eps_) ep->close();
}

std::shared_ptr<transport::Endpoint> SessionTransport::create_endpoint(
    const std::string& host_model) {
  auto ep = inner_->create_endpoint(host_model);
  if (opts_.enabled) {
    // Demux: unwrap session envelopes before they reach the owner's
    // queue; everything else (a disabled peer, control traffic)
    // delivers untouched.
    ep->set_delivery_filter([this, host_model](transport::RsrMessage& msg) {
      if (msg.handler == transport::kHandlerSessionData)
        return on_session_data(msg, host_model);
      if (msg.handler == transport::kHandlerSessionAck) return on_session_ack(msg);
      return false;
    });
  }
  return ep;
}

std::shared_ptr<SessionTransport::OutSession> SessionTransport::out_session(
    const transport::EndpointAddr& dst, const std::string& src_host_model) {
  const std::string key = dst.to_string();
  LockGuard lock(out_mutex_);
  auto it = out_.find(key);
  if (it != out_.end()) return it->second;

  auto& ack_ep = ack_eps_[src_host_model];
  if (!ack_ep) {
    ack_ep = inner_->create_endpoint(src_host_model);
    ack_ep->set_delivery_filter(
        [this](transport::RsrMessage& msg) { return on_session_ack(msg); });
  }
  auto s = std::make_shared<OutSession>();
  s->id = next_session_id_++;
  s->ack_to = ack_ep->addr();
  out_[key] = s;
  out_by_id_[s->id] = s;
  return s;
}

ByteBuffer SessionTransport::make_envelope(const OutSession& s, const Frame& f) const {
  ByteBuffer env;
  CdrWriter w(env);
  s.ack_to.marshal(w);
  w.write_ulonglong(s.id);
  w.write_ulonglong(f.seq);
  w.write_ulong(f.handler);
  env.append(f.payload.view());
  return env;
}

void SessionTransport::rsr(const transport::EndpointAddr& dst,
                           transport::HandlerId handler, ByteBuffer payload,
                           const std::string& src_host_model) {
  // Probes must exercise the raw path (a replayed probe would mask the
  // dead peer it exists to detect); session control frames are already
  // at the bottom of the stack.
  if (!opts_.enabled || handler == transport::kHandlerPing ||
      handler == transport::kHandlerSessionData ||
      handler == transport::kHandlerSessionAck) {
    inner_->rsr(dst, handler, std::move(payload), src_host_model);
    return;
  }

  auto s = out_session(dst, src_host_model);
  // Wire order must match sequence order: the whole assign-and-send is
  // serialized per peer. The ack path never takes send_mutex, so acks
  // (delivered synchronously by LocalTransport on this very thread)
  // still get through.
  LockGuard send_lock(s->send_mutex);
  Frame frame;
  {
    UniqueLock st(s->state_mutex);
    const auto stall_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.window_stall_ms);
    while (s->unacked.size() >= opts_.window) {
      if (obs::enabled()) {
        static obs::Counter& waits = obs::metrics().counter("flow.session_window_waits");
        waits.add(1);
      }
      // Window backpressure BY DESIGN: the sending thread stalls
      // (bounded by window_stall_ms) until acks open the window; the
      // comm thread's job is to absorb exactly this stall.
      // pardis-lint: allow(blocking)
      if (s->acked_cv.wait_until(st, stall_deadline) == std::cv_status::timeout &&
          s->unacked.size() >= opts_.window)
        throw CommFailure("session to " + dst.to_string() + " stalled: " +
                          std::to_string(s->unacked.size()) +
                          " frames unacked for " +
                          std::to_string(opts_.window_stall_ms) + " ms");
    }
    frame.seq = s->next_seq++;
    frame.handler = handler;
    frame.payload = std::move(payload);
    s->unacked.push_back(Frame{frame.seq, frame.handler, frame.payload.clone()});
  }
  if (obs::enabled()) {
    static obs::Counter& frames = obs::metrics().counter("flow.session_frames");
    frames.add(1);
  }
  try {
    inner_->rsr(dst, transport::kHandlerSessionData, make_envelope(*s, frame),
                src_host_model);
  } catch (const CommFailure& e) {
    reconnect_and_replay(*s, dst, src_host_model, e.what());
  }
}

void SessionTransport::reconnect_and_replay(OutSession& s,
                                            const transport::EndpointAddr& dst,
                                            const std::string& src_host_model,
                                            const std::string& why) {
  ft::RetryPolicy policy;
  policy.max_attempts = opts_.max_reconnects;
  policy.initial_backoff = std::chrono::milliseconds(opts_.backoff_ms);
  PARDIS_LOG(kWarn, "flow") << "session to " << dst.to_string() << " broke (" << why
                            << "); reconnecting (budget " << opts_.max_reconnects << ")";
  for (int attempt = 1; attempt <= opts_.max_reconnects; ++attempt) {
    if (obs::enabled()) {
      static obs::Counter& reconnects = obs::metrics().counter("flow.session_reconnects");
      reconnects.add(1);
    }
    // pardis-lint: allow(blocking) redial backoff, bounded by the
    // max_reconnects budget; runs on the sending thread while the
    // session is already broken — nothing else could make progress.
    std::this_thread::sleep_for(ft::backoff_delay(policy, attempt, s.id));
    // Replay everything unacked, in order. The snapshot is taken
    // without holding state_mutex across the sends: acks for replayed
    // frames may arrive (and prune) while we are still sending.
    std::deque<Frame> snapshot;
    {
      LockGuard st(s.state_mutex);
      for (const Frame& f : s.unacked)
        snapshot.push_back(Frame{f.seq, f.handler, f.payload.clone()});
    }
    try {
      for (const Frame& f : snapshot)
        inner_->rsr(dst, transport::kHandlerSessionData, make_envelope(s, f),
                    src_host_model);
      if (obs::enabled()) {
        static obs::Counter& resumed = obs::metrics().counter("flow.sessions_resumed");
        resumed.add(1);
      }
      PARDIS_LOG(kInfo, "flow") << "session to " << dst.to_string() << " resumed after "
                                << attempt << " attempt(s), replayed "
                                << snapshot.size() << " frame(s)";
      notify_redial(dst, /*resumed=*/true, attempt);
      return;
    } catch (const CommFailure&) {
      continue;  // still down; next backoff
    }
  }
  if (obs::enabled()) {
    static obs::Counter& lost = obs::metrics().counter("flow.sessions_lost");
    lost.add(1);
  }
  notify_redial(dst, /*resumed=*/false, opts_.max_reconnects);
  throw CommFailure("session to " + dst.to_string() + " lost: " + why + " (" +
                    std::to_string(opts_.max_reconnects) +
                    " reconnect attempts exhausted)");
}

void SessionTransport::set_redial_listener(RedialListener listener) {
  LockGuard lock(listener_mutex_);
  redial_listener_ = std::move(listener);
}

void SessionTransport::notify_redial(const transport::EndpointAddr& peer, bool resumed,
                                     int attempts) {
  RedialListener listener;
  {
    LockGuard lock(listener_mutex_);
    listener = redial_listener_;
  }
  if (listener) listener(peer, resumed, attempts);
}

bool SessionTransport::on_session_data(transport::RsrMessage& msg,
                                       const std::string& rx_host_model) {
  transport::EndpointAddr ack_to;
  std::uint64_t sid = 0;
  std::uint64_t seq = 0;
  ULong inner_handler = 0;
  std::size_t body_offset = 0;
  try {
    CdrReader r(msg.payload.view(), msg.little_endian);
    ack_to = transport::EndpointAddr::unmarshal(r);
    sid = r.read_ulonglong();
    seq = r.read_ulonglong();
    inner_handler = r.read_ulong();
    body_offset = r.offset();
  } catch (const MarshalError& e) {
    PARDIS_LOG(kWarn, "flow") << "bad session envelope dropped: " << e.what();
    wire::guard().note_bad_frame(msg.src_peer, e.what());
    return true;
  }

  bool deliver = false;
  std::uint64_t ack_val = 0;
  {
    const std::string skey = ack_to.to_string() + "#" + std::to_string(sid);
    LockGuard lock(in_mutex_);
    std::uint64_t& next = in_next_[skey];
    if (seq < next) {
      // Replayed duplicate: already delivered; just re-ack so the
      // sender can prune.
      deliver = false;
    } else {
      if (seq > next) {
        // A silent drop upstream (not a sever — those frames replay).
        // Resync; the lost frames remain lost, as they would be on the
        // raw transport, and ft::with_retry recovers end to end.
        PARDIS_LOG(kDebug, "flow") << "session " << skey << " gap: expected " << next
                                   << ", got " << seq << " (resyncing)";
      }
      next = seq + 1;
      deliver = true;
    }
    ack_val = next;
  }

  // Cumulative ack; advisory, so a failed ack send is ignored (the
  // next frame's ack covers it, and a severed reverse link shows up on
  // the sender as a stalled window at worst).
  try {
    ByteBuffer ack;
    CdrWriter w(ack);
    w.write_ulonglong(sid);
    w.write_ulonglong(ack_val);
    inner_->rsr(ack_to, transport::kHandlerSessionAck, std::move(ack), rx_host_model);
    if (obs::enabled()) {
      static obs::Counter& acks = obs::metrics().counter("flow.session_acks");
      acks.add(1);
    }
  } catch (const SystemException&) {
  }

  if (!deliver) return true;
  msg.handler = inner_handler;
  msg.payload = ByteBuffer::from(msg.payload.view().subspan(body_offset));
  return false;  // enqueue the unwrapped inner message
}

bool SessionTransport::on_session_ack(transport::RsrMessage& msg) {
  std::uint64_t sid = 0;
  std::uint64_t ack_val = 0;
  try {
    CdrReader r(msg.payload.view(), msg.little_endian);
    sid = r.read_ulonglong();
    ack_val = r.read_ulonglong();
  } catch (const MarshalError& e) {
    PARDIS_LOG(kWarn, "flow") << "bad session ack dropped: " << e.what();
    wire::guard().note_bad_frame(msg.src_peer, e.what());
    return true;
  }
  std::shared_ptr<OutSession> s;
  {
    LockGuard lock(out_mutex_);
    auto it = out_by_id_.find(sid);
    if (it != out_by_id_.end()) s = it->second;
  }
  if (s) {
    LockGuard st(s->state_mutex);
    while (!s->unacked.empty() && s->unacked.front().seq < ack_val)
      s->unacked.pop_front();
    s->acked_cv.notify_all();
  }
  return true;  // acks never reach the owner's queue
}

std::size_t SessionTransport::unacked(const transport::EndpointAddr& dst) const {
  std::shared_ptr<OutSession> s;
  {
    LockGuard lock(out_mutex_);
    auto it = out_.find(dst.to_string());
    if (it == out_.end()) return 0;
    s = it->second;
  }
  LockGuard st(s->state_mutex);
  return s->unacked.size();
}

}  // namespace pardis::flow
