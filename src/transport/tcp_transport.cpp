#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/clock.hpp"
#include "transport/pack.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::transport {

namespace {

constexpr std::size_t kHeaderSize = 32;

/// "ip:port" identity of the connected peer — the PeerGuard key for
/// frames arriving on this socket. Empty when the socket is already
/// dead.
std::string peer_key(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return {};
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return {};
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

/// Reads exactly `n` bytes; false on orderly close or error. A signal
/// landing mid-frame (EINTR) is not a peer failure: retry, as the
/// accept loop does.
bool read_full(int fd, Octet* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const Octet* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Errors where accept() can succeed again once resources free up; a
/// bare retry would spin the CPU, so the loop backs off instead.
bool accept_error_is_transient(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == ECONNABORTED;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

int default_listen_backlog() {
  static const int v = env_int("PARDIS_LISTEN_BACKLOG", 64);
  return v;
}

int accept_backoff_ms() {
  static const int v = env_int("PARDIS_ACCEPT_BACKOFF_MS", 10);
  return v;
}

}  // namespace

TcpTransport::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

TcpTransport::TcpTransport(UShort port, const sim::Testbed* testbed, int listen_backlog)
    : testbed_(testbed) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw CommFailure("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw CommFailure("TcpTransport: bind(127.0.0.1:" + std::to_string(port) +
                      ") failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen_backlog <= 0) listen_backlog = default_listen_backlog();
  if (::listen(listen_fd_, listen_backlog) != 0) {
    ::close(listen_fd_);
    throw CommFailure("TcpTransport: listen() failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    LockGuard lock(mutex_);
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
    // shutdown() fails any sender still writing; the Connection
    // destructor closes each fd once the last sender lets go.
    for (auto& [key, conn] : connections_) ::shutdown(conn->fd, SHUT_RDWR);
    connections_.clear();
  }
  for (auto& t : readers_)
    if (t.joinable()) t.join();
  LockGuard lock(mutex_);
  for (int fd : reader_fds_) ::close(fd);
  reader_fds_.clear();
}

void TcpTransport::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      if (accept_error_is_transient(errno)) {
        // Descriptor/buffer exhaustion: the listener must survive it,
        // or every later connection attempt dies against a dead
        // accept thread. Pace retries so the loop does not burn a
        // core while the process is out of fds.
        if (obs::enabled()) {
          static obs::Counter& retries = obs::metrics().counter("transport.tcp.accept_retries");
          retries.add(1);
        }
        PARDIS_LOG(kWarn, "tcp") << "accept failed transiently: " << std::strerror(errno)
                                 << "; retrying in " << accept_backoff_ms() << "ms";
        std::this_thread::sleep_for(std::chrono::milliseconds(accept_backoff_ms()));
        continue;
      }
      PARDIS_LOG(kWarn, "tcp") << "accept failed: " << std::strerror(errno);
      return;
    }
    if (tcp_nodelay()) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    LockGuard lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpTransport::reader_loop(int fd) {
  const std::string peer = peer_key(fd);
  for (;;) {
    Octet header[kHeaderSize];
    if (!read_full(fd, header, kHeaderSize)) return;
    const bool little = header[0] != 0;
    CdrReader r(std::span<const Octet>(header, kHeaderSize), little);
    r.read_octet();  // byte-order flag
    const ULong payload_len = r.read_ulong();
    const ULongLong dst_ep = r.read_ulonglong();
    const ULong handler = r.read_ulong();
    const Double time = r.read_double();

    // A length beyond the frame bound means stream desync or a hostile
    // peer; buffering the claimed bytes would be the OOM the bound
    // exists to prevent. The stream is unrecoverable — disconnect.
    if (payload_len > wire::max_frame_bytes()) {
      wire::guard().note_bad_frame(
          peer, "framed payload of " + std::to_string(payload_len) + " bytes exceeds " +
                    std::to_string(wire::max_frame_bytes()));
      return;
    }
    // A handler id outside the registry is equally desynced-or-hostile:
    // the payload length cannot be trusted to resynchronize on.
    if (handler == 0 || handler > kHandlerPack) {
      wire::guard().note_bad_frame(peer,
                                   "unknown handler id " + std::to_string(handler));
      return;
    }

    ByteBuffer payload;
    if (payload_len > 0) {
      payload.grow(payload_len);
      if (!read_full(fd, payload.data(), payload_len)) return;
    }

    // Quarantined peers get the TCP-level disconnect: stop reading the
    // socket entirely (the sender sees a reset on its next write).
    if (wire::guard().quarantined(peer)) return;

    if (handler == kHandlerHello) {
      // One-way version announcement; a peer we cannot interoperate
      // with is disconnected, which is the documented clean reject.
      try {
        CdrReader hr(payload.view(), little);
        wire::Hello::unmarshal(hr).validate();
      } catch (const MarshalError& e) {
        wire::guard().note_bad_frame(peer, e.what());
        PARDIS_LOG(kWarn, "tcp") << "rejecting peer " << peer << ": " << e.what();
        return;
      }
      continue;
    }

    // Routes one (possibly packed-submessage) RSR to its endpoint —
    // shared between the classic frame path and the kHandlerPack
    // demultiplexer below.
    auto deliver = [&](ULongLong ep_id, HandlerId h, double sim_time, ByteBuffer body) {
      std::shared_ptr<Endpoint> ep;
      {
        LockGuard lock(mutex_);
        auto it = endpoints_.find(ep_id);
        if (it != endpoints_.end()) ep = it->second.lock();
      }
      if (!ep) {
        PARDIS_LOG(kWarn, "tcp") << "RSR for unknown endpoint " << ep_id << ", dropped";
        return;  // one-way semantics: drop
      }
      if (obs::enabled()) {
        static obs::Counter& received = obs::metrics().counter("transport.tcp.rsr_received");
        static obs::Counter& bytes = obs::metrics().counter("transport.tcp.bytes_received");
        received.add(1);
        bytes.add(kHeaderSize + body.size());
      }
      RsrMessage msg;
      msg.handler = h;
      msg.sim_time = sim_time;
      msg.little_endian = little;
      msg.payload = std::move(body);
      msg.src_peer = peer;
      ep->enqueue(std::move(msg));
    };

    if (handler == kHandlerPack) {
      // A reactor peer with PARDIS_REACTOR_PACK on coalesced several
      // small frames into this one wire message; fan them out so a
      // pack-off process still interoperates (packing is sender-side
      // only — the one-way hello cannot negotiate it away).
      if (obs::enabled()) {
        static obs::Counter& packs = obs::metrics().counter("transport.tcp.packs_received");
        packs.add(1);
      }
      const std::string err =
          walk_packed(payload.view(), [&](const PackedSubframe& sf) {
            deliver(sf.dst_ep, sf.handler, sf.sim_time, ByteBuffer::from(sf.payload));
          });
      if (!err.empty()) {
        wire::guard().note_bad_frame(peer, err);
        return;
      }
      continue;
    }

    deliver(dst_ep, handler, time, std::move(payload));
  }
}

std::shared_ptr<Endpoint> TcpTransport::create_endpoint(const std::string& host_model) {
  LockGuard lock(mutex_);
  EndpointAddr addr;
  addr.kind = AddrKind::kTcp;
  addr.host_model = host_model;
  addr.tcp_host = "127.0.0.1";
  addr.tcp_port = port_;
  addr.tcp_ep = next_ep_++;
  auto ep = std::make_shared<Endpoint>(addr);
  endpoints_[addr.tcp_ep] = ep;
  return ep;
}

std::shared_ptr<TcpTransport::Connection> TcpTransport::connect_to(const std::string& host,
                                                                   UShort port) {
  const std::string key = host + ":" + std::to_string(port);
  {
    LockGuard lock(mutex_);
    auto it = connections_.find(key);
    if (it != connections_.end()) return it->second;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw CommFailure("TcpTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw BadParam("TcpTransport: bad address " + host);
  }
  // pardis-lint: allow(blocking) first dial of a peer: the kernel
  // handshake blocks once per connection, after which the cached
  // Connection is reused; loopback/testbed dials complete immediately.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw CommFailure("TcpTransport: connect to " + key +
                      " failed: " + std::strerror(errno));
  }
  if (tcp_nodelay()) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (wire::hello_enabled()) {
    // Announce (magic, version, features) as the first frame on every
    // fresh connection; the receiver disconnects on a mismatch. dst_ep
    // 0 marks a transport-level control frame — no endpoint routing.
    ByteBuffer hello_payload;
    CdrWriter hw(hello_payload);
    wire::local_hello().marshal(hw);
    ByteBuffer frame;
    frame.reserve(kHeaderSize + hello_payload.size());
    CdrWriter w(frame);
    w.write_octet(kNativeLittleEndian ? 1 : 0);
    w.write_ulong(static_cast<ULong>(hello_payload.size()));
    w.write_ulonglong(0);
    w.write_ulong(kHandlerHello);
    w.write_double(sim::timestamp_now());
    require(frame.size() == kHeaderSize, "tcp hello frame header size drifted");
    frame.append(hello_payload.view());
    if (!write_full(fd, frame.data(), frame.size())) {
      ::close(fd);
      throw CommFailure("TcpTransport: hello to " + key + " failed");
    }
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  LockGuard lock(mutex_);
  auto [it, inserted] = connections_.try_emplace(key, conn);
  if (!inserted) {
    // Lost a benign race; reuse the existing connection. `conn`'s
    // destructor closes our redundant fd on return.
    return it->second;
  }
  return conn;
}

void TcpTransport::rsr(const EndpointAddr& dst, HandlerId handler, ByteBuffer payload,
                       const std::string& src_host_model) {
  if (dst.kind != AddrKind::kTcp) throw BadParam("TcpTransport: destination is not tcp");
  obs::SpanScope span;
  if (obs::enabled()) {
    if (obs::current_context().valid()) span.open("rsr:tcp", "transport");
    static obs::Counter& sent = obs::metrics().counter("transport.tcp.rsr_sent");
    static obs::Counter& bytes = obs::metrics().counter("transport.tcp.bytes_sent");
    sent.add(1);
    bytes.add(kHeaderSize + payload.size());
  }
  sim::FaultPlan::Decision fault;
  if (testbed_ != nullptr && testbed_->faults().active()) {
    fault = testbed_->faults().on_message(src_host_model, dst.host_model, dst.tcp_ep);
    apply_fault(fault, dst);  // throws on sever / transient failure
  }
  double delay = fault.extra_delay_s;
  if (testbed_ != nullptr && !src_host_model.empty() && !dst.host_model.empty())
    delay += testbed_->link(src_host_model, dst.host_model).delay(payload.size());
  // The modeled transfer occupies the sending thread (see
  // LocalTransport::rsr for the rationale).
  sim::charge_seconds(delay);
  if (fault.drop) return;  // the sender was still charged for the send
  // Corrupt before framing so the transport header's payload_len
  // matches what actually follows — corruption mangles the payload
  // bytes, never the framing (a real NIC checksums its own framing).
  if (fault.corrupt)
    sim::corrupt_payload(payload, fault.corrupt_mode, fault.corrupt_rand);

  ByteBuffer frame;
  frame.reserve(kHeaderSize + payload.size());
  CdrWriter w(frame);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(static_cast<ULong>(payload.size()));
  w.write_ulonglong(dst.tcp_ep);
  w.write_ulong(handler);
  w.write_double(sim::timestamp_now());
  require(frame.size() == kHeaderSize, "tcp frame header size drifted");
  frame.append(payload.view());

  const std::string conn_key = dst.tcp_host + ":" + std::to_string(dst.tcp_port);
  auto conn = connect_to(dst.tcp_host, dst.tcp_port);
  LockGuard lock(conn->write_mutex);
  const int copies = fault.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i)
    if (!write_full(conn->fd, frame.data(), frame.size())) {
      // Evict the dead socket from the cache, else every later send
      // to this peer keeps failing on it and reconnection is
      // impossible (pardis_flow sessions redial through connect_to).
      drop_connection(conn_key, conn);
      throw CommFailure("TcpTransport: send to " + dst.to_string() + " failed");
    }
}

void TcpTransport::drop_connection(const std::string& key,
                                   const std::shared_ptr<Connection>& conn) {
  {
    LockGuard lock(mutex_);
    auto it = connections_.find(key);
    if (it == connections_.end() || it->second != conn)
      return;  // already evicted or replaced
    connections_.erase(it);
  }
  if (obs::enabled()) {
    static obs::Counter& evicted = obs::metrics().counter("transport.tcp.conn_evicted");
    evicted.add(1);
  }
  // Shutdown only: senders racing on write_mutex fail their writes and
  // evict in turn, and the fd number stays reserved until the last
  // shared_ptr drops and ~Connection closes it — closing here would let
  // the kernel hand the number to a new connection while those senders
  // still target it.
  ::shutdown(conn->fd, SHUT_RDWR);
}

}  // namespace pardis::transport
