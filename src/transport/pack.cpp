#include "transport/pack.hpp"

#include <cstring>

namespace pardis::transport {

namespace {

// Packed subheaders are always little-endian regardless of the outer
// frame's byte-order octet (which still governs the inner payloads).
ULongLong rd_le64(const Octet* p) {
  ULongLong v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

ULong rd_le32(const Octet* p) {
  return static_cast<ULong>(p[0]) | (static_cast<ULong>(p[1]) << 8) |
         (static_cast<ULong>(p[2]) << 16) | (static_cast<ULong>(p[3]) << 24);
}

double rd_lef64(const Octet* p) {
  const ULongLong bits = rd_le64(p);
  double d;
  static_assert(sizeof(d) == sizeof(bits));
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

std::string walk_packed(std::span<const Octet> payload,
                        const std::function<void(const PackedSubframe&)>& fn) {
  std::size_t off = 0;
  while (off < payload.size()) {
    if (payload.size() - off < kPackSubheaderSize) return "truncated packed subheader";
    const Octet* p = payload.data() + off;
    PackedSubframe sf;
    sf.dst_ep = rd_le64(p);
    sf.handler = rd_le32(p + 8);
    const ULong len = rd_le32(p + 12);
    sf.sim_time = rd_lef64(p + 16);
    // No nested packs, and control frames (hello) never ride inside
    // one: inner handlers must be ordinary registry entries.
    if (sf.handler == 0 || sf.handler >= kHandlerHello)
      return "unknown packed handler id " + std::to_string(sf.handler);
    if (len > payload.size() - off - kPackSubheaderSize)
      return "packed submessage length overruns the frame";
    sf.payload = payload.subspan(off + kPackSubheaderSize, len);
    fn(sf);
    off += kPackSubheaderSize + len;
  }
  return {};
}

}  // namespace pardis::transport
