// Wire hardening: frame integrity, strict-decode policy, version
// negotiation, and peer quarantine.
//
// Threat model: once frames cross process boundaries (ROADMAP item 5),
// every received byte may come from a crashed, truncated,
// version-mismatched, or hostile sender. The decode path must therefore
// (a) prove frame integrity before interpreting bytes (optional CRC32
// trailer behind kFlagCrc / kReplyFlagCrc), (b) reject malformed
// headers with a located DecodeError instead of crashing or
// over-allocating (strict demarshalling), and (c) stop listening to a
// peer that keeps sending garbage (PeerGuard quarantine, fed into
// pool::Balancer health).
//
// Everything here is knob-gated so the default wire format stays
// byte-identical to the pre-hardening protocol:
//   PARDIS_FRAME_CRC=1       append + require CRC32 trailers (default off)
//   PARDIS_WIRE_STRICT=0     tolerate unknown flag bits (default strict)
//   PARDIS_WIRE_HELLO=1      announce version on new TCP connections
//   PARDIS_BAD_FRAME_LIMIT=N quarantine a peer after N bad frames
//                            (default 8; 0 disables quarantine)
//   PARDIS_MAX_FRAME_BYTES=N reject framed payloads larger than N
//                            (default 64 MiB)
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/cdr.hpp"
#include "common/mutex.hpp"
#include "core/wire.hpp"

namespace pardis::wire {

// --- Knobs (env default, settable override for tests) ----------------------

/// CRC32 frame trailers on PIOP requests/replies (PARDIS_FRAME_CRC).
bool frame_crc() noexcept;
/// Override: 1 = on, 0 = off, -1 = back to the environment value.
void set_frame_crc(int v) noexcept;

/// Strict demarshalling: reject unknown flag bits and impossible field
/// combinations (PARDIS_WIRE_STRICT, default ON; 0 restores the legacy
/// tolerate-and-ignore behavior for mixed-version fleets).
bool strict() noexcept;
void set_strict(int v) noexcept;

/// Version-announce hello on fresh TCP connections (PARDIS_WIRE_HELLO).
bool hello_enabled() noexcept;
void set_hello(int v) noexcept;

/// Bad frames from one peer before it is quarantined
/// (PARDIS_BAD_FRAME_LIMIT, default 8; 0 = never quarantine).
unsigned bad_frame_limit() noexcept;
void set_bad_frame_limit(int v) noexcept;

/// Largest framed payload a transport will accept
/// (PARDIS_MAX_FRAME_BYTES, default 64 MiB). A TCP length prefix above
/// this means stream desync or hostility — the connection is dropped
/// rather than the claimed bytes buffered.
std::size_t max_frame_bytes() noexcept;

// --- CRC trailer ------------------------------------------------------------

/// Appends the 4-byte CRC32 trailer (little-endian, unaligned — raw
/// bytes, not a CDR ulong, so the trailer length is position-
/// independent) covering every byte currently in `frame`.
void append_crc(ByteBuffer& frame);

/// Verifies that the last 4 bytes of the reader's stream are the CRC32
/// of everything before them, then trims them so body extraction never
/// sees the trailer. Counts `wire.crc_failures` and throws DecodeError
/// on mismatch or a frame too short to carry a trailer. `what` names
/// the frame kind in the diagnostic ("RequestHeader", ...).
void verify_crc(CdrReader& r, const char* what);

// --- Hello (version negotiation) --------------------------------------------

/// Payload of a kHandlerHello frame: a one-way capability announcement
/// sent once per fresh inter-process connection. There is no reply —
/// a receiver that cannot interoperate simply closes the connection,
/// which is the documented reject for a protocol-mismatched peer.
struct Hello {
  ULong magic = transport::kHelloMagic;
  Octet version = transport::kWireVersion;
  ULong features = 0;  ///< transport::kFeature* bits

  void marshal(CdrWriter& w) const;
  static Hello unmarshal(CdrReader& r);

  /// Throws DecodeError on a foreign magic or an incompatible
  /// version. Unknown feature bits are tolerated (a newer peer may
  /// offer more) — the forward-compat path.
  void validate() const;
};

/// The hello this process announces (features reflect current knobs).
Hello local_hello() noexcept;

// --- Peer quarantine --------------------------------------------------------

/// Notified with the peer key when a peer crosses the bad-frame limit.
/// Fired outside the guard lock; pool::Balancer subscribes to hard-fail
/// members on the quarantined host.
using QuarantineListener = std::function<void(const std::string& peer)>;

/// Per-peer malformed-frame accounting and quarantine verdicts.
///
/// Peers are keyed by transport-level identity: the modeled host name
/// for the in-process transport, "ip:port" for TCP. Decode sites call
/// note_bad_frame() when a frame from that peer fails validation
/// (malformed header, CRC mismatch, bogus handler id); once a peer
/// crosses bad_frame_limit() it is quarantined — Endpoint::enqueue
/// drops its frames, the TCP reader closes its connection, and
/// listeners (pool::Balancer) mark its members failed.
///
/// Counters: `wire.bad_frames` (every note), `wire.quarantined_peers`
/// (each peer once), `wire.quarantine_dropped` (frames dropped at the
/// queue because the sender is quarantined).
class PeerGuard {
 public:
  /// Records one bad frame from `peer`; returns true when this call
  /// crossed the limit and quarantined the peer. `why` is logged.
  /// Listeners fire after the guard lock is released.
  bool note_bad_frame(const std::string& peer, const std::string& why);

  /// True when `peer` is quarantined. Empty keys (no peer identity,
  /// e.g. loopback frames) are never quarantined. Lock-free fast path
  /// while nothing is quarantined — the steady state.
  bool quarantined(const std::string& peer) const;

  void add_listener(QuarantineListener listener);

  /// Bad-frame count currently charged to `peer`.
  unsigned bad_frames(const std::string& peer) const;

  /// Drops all accounting, quarantines and listeners (tests only:
  /// peer keys like host names are shared across test cases and the
  /// guard is process-wide).
  void reset();

 private:
  mutable Mutex mutex_{"wire.guard"};
  std::map<std::string, unsigned> bad_ PARDIS_GUARDED_BY(mutex_);
  std::set<std::string> quarantined_ PARDIS_GUARDED_BY(mutex_);
  std::vector<QuarantineListener> listeners_ PARDIS_GUARDED_BY(mutex_);
  std::atomic<std::size_t> quarantined_count_{0};
};

/// The process-wide guard (transports and decode sites share verdicts).
PeerGuard& guard() noexcept;

}  // namespace pardis::wire
