// kHandlerPack payload walking — shared by every receiver that can
// see a packed wire message: the reactor event loops and the classic
// TcpTransport reader. The hello is one-way, so a packing sender can
// never learn whether its peer runs the reactor; mixed-knob
// deployments therefore require every receiver to demultiplex packs,
// and this header is the single definition of how.
//
// Layout (pinned by the reactor golden-bytes tests): the outer frame
// is a normal 32-byte transport header addressed to endpoint 0 with
// kHandlerPack; its payload is a run of submessages, each a 24-byte
// ALWAYS-little-endian subheader [u64 dst ep][u32 handler][u32 len]
// [f64 timestamp] followed by `len` payload bytes (whose byte order
// is the OUTER frame's byte-order octet).
#pragma once

#include <functional>
#include <span>
#include <string>

#include "common/types.hpp"
#include "core/wire.hpp"

namespace pardis::transport {

/// One submessage of a kHandlerPack frame. `payload` aliases the
/// outer frame's buffer — valid only inside the walk callback.
struct PackedSubframe {
  ULongLong dst_ep = 0;
  HandlerId handler = 0;
  double sim_time = 0.0;
  std::span<const Octet> payload;
};

/// Walks the submessages of a kHandlerPack payload, invoking `fn` for
/// each. Returns an empty string on success, else a diagnostic for
/// the wire guard (truncated subheader, inner control/unknown handler
/// id, or a length overrunning the frame) — the stream is desynced-
/// or-hostile and the caller must disconnect. Submessages before the
/// malformed one have already been delivered, matching the classic
/// frame-at-a-time policy.
std::string walk_packed(std::span<const Octet> payload,
                        const std::function<void(const PackedSubframe&)>& fn);

}  // namespace pardis::transport
