#include "transport/transport.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/clock.hpp"

namespace pardis::transport {

namespace {

// -1 = defer to the environment (cached on first read), else override.
std::atomic<int> g_tcp_nodelay{-1};

}  // namespace

bool tcp_nodelay() noexcept {
  const int o = g_tcp_nodelay.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = [] {
    const char* v = std::getenv("PARDIS_TCP_NODELAY");
    if (v == nullptr || *v == '\0') return true;  // default on
    const std::string s(v);
    return !(s == "0" || s == "false" || s == "off" || s == "no");
  }();
  return env;
}

void set_tcp_nodelay(int v) noexcept { g_tcp_nodelay.store(v, std::memory_order_relaxed); }

std::shared_ptr<Endpoint> LocalTransport::create_endpoint(const std::string& host_model) {
  LockGuard lock(mutex_);
  EndpointAddr addr;
  addr.kind = AddrKind::kLocal;
  addr.host_model = host_model;
  addr.local_id = next_id_++;
  auto ep = std::make_shared<Endpoint>(addr);
  endpoints_[addr.local_id] = ep;
  return ep;
}

void apply_fault(const sim::FaultPlan::Decision& d, const EndpointAddr& dst) {
  if (!d.faulty()) return;
  if (obs::enabled()) {
    static obs::Counter& injected = obs::metrics().counter("sim.faults_injected");
    injected.add(1);
  }
  if (d.sever)
    throw CommFailure("fault injection: peer " + dst.to_string() + " unreachable");
  if (d.fail_transient)
    throw TransientError("fault injection: transient send failure to " + dst.to_string());
}

void LocalTransport::rsr(const EndpointAddr& dst, HandlerId handler, ByteBuffer payload,
                         const std::string& src_host_model) {
  if (dst.kind != AddrKind::kLocal)
    throw BadParam("LocalTransport: destination is not a local address");
  std::shared_ptr<Endpoint> ep;
  {
    LockGuard lock(mutex_);
    auto it = endpoints_.find(dst.local_id);
    if (it != endpoints_.end()) ep = it->second.lock();
  }
  if (!ep || ep->closed())
    throw CommFailure("LocalTransport: no endpoint at " + dst.to_string());

  sim::FaultPlan::Decision fault;
  if (testbed_ != nullptr && testbed_->faults().active()) {
    fault = testbed_->faults().on_message(src_host_model, dst.host_model, dst.local_id);
    apply_fault(fault, dst);  // throws on sever / transient failure
  }

  obs::SpanScope span;
  if (obs::enabled()) {
    if (obs::current_context().valid()) span.open("rsr:local", "transport");
    static obs::Counter& sent = obs::metrics().counter("transport.local.rsr_sent");
    static obs::Counter& bytes = obs::metrics().counter("transport.local.bytes_sent");
    sent.add(1);
    bytes.add(payload.size());
  }

  RsrMessage msg;
  msg.handler = handler;
  msg.little_endian = kNativeLittleEndian;
  double delay = fault.extra_delay_s;
  if (testbed_ != nullptr && !src_host_model.empty() && !dst.host_model.empty())
    delay += testbed_->link(src_host_model, dst.host_model).delay(payload.size());
  // The send occupies the sending thread for the transfer (the paper's
  // non-oneway sends: "the time of send began to approach the
  // execution time of this relatively lightweight application", §4.3).
  sim::charge_seconds(delay);
  msg.sim_time = sim::timestamp_now();
  if (fault.drop) return;  // the sender was still charged for the send
  // Corruption happens "on the wire": after the sender was charged,
  // before the receiver sees the bytes. A duplicate of a corrupted
  // message carries the same corruption (one mangled wire transfer,
  // delivered twice).
  if (fault.corrupt)
    sim::corrupt_payload(payload, fault.corrupt_mode, fault.corrupt_rand);
  msg.payload = std::move(payload);
  msg.src_peer = src_host_model;
  if (fault.duplicate) {
    RsrMessage copy;
    copy.handler = msg.handler;
    copy.little_endian = msg.little_endian;
    copy.sim_time = msg.sim_time;
    copy.payload = msg.payload.clone();
    copy.src_peer = msg.src_peer;
    ep->enqueue(std::move(copy));
  }
  ep->enqueue(std::move(msg));
}

}  // namespace pardis::transport
