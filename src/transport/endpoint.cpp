#include "transport/endpoint.hpp"

#include <cstdlib>
#include <sstream>

#include "check/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/clock.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::transport {

std::size_t default_queue_capacity() noexcept {
  static const std::size_t cap = [] {
    const char* v = std::getenv("PARDIS_ENDPOINT_QUEUE_CAP");
    if (v == nullptr || *v == '\0') return std::size_t{0};
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }();
  return cap;
}

std::string EndpointAddr::to_string() const {
  std::ostringstream os;
  if (kind == AddrKind::kLocal) {
    os << "local:" << local_id;
  } else {
    os << "tcp:" << tcp_host << ":" << tcp_port << "/" << tcp_ep;
  }
  if (!host_model.empty()) os << "@" << host_model;
  return os.str();
}

void EndpointAddr::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind));
  w.write_string(host_model);
  w.write_ulonglong(local_id);
  w.write_string(tcp_host);
  w.write_ushort(tcp_port);
  w.write_ulonglong(tcp_ep);
}

EndpointAddr EndpointAddr::unmarshal(CdrReader& r) {
  EndpointAddr a;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(AddrKind::kTcp))
    throw DecodeError("bad kind octet " + std::to_string(kind), r.offset(),
                      "EndpointAddr");
  a.kind = static_cast<AddrKind>(kind);
  a.host_model = r.read_string();
  a.local_id = r.read_ulonglong();
  a.tcp_host = r.read_string();
  a.tcp_port = r.read_ushort();
  a.tcp_ep = r.read_ulonglong();
  return a;
}

void Endpoint::note_depth_locked() {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t depth =
      mailbox_ ? mbox_size_.load(std::memory_order_relaxed) : queue_.size();
  if (cap == 0 || depth < cap) {
    at_cap_streak_ = 0;
    return;
  }
  if (++at_cap_streak_ >= kQueuePinnedRounds && check::enabled()) {
    at_cap_streak_ = 0;
    check::violation("transport.endpoint",
                     "receive queue pinned at capacity " +
                         std::to_string(cap) + " for " +
                         std::to_string(kQueuePinnedRounds) +
                         " consecutive drains at " + addr_.to_string() +
                         " (consumer cannot keep up; raise "
                         "PARDIS_ENDPOINT_QUEUE_CAP or shed load upstream)");
  }
}

std::optional<RsrMessage> Endpoint::poll() {
  if (mailbox_) return poll_mailbox();
  UniqueLock lock(mutex_);
  note_depth_locked();
  if (queue_.empty()) return std::nullopt;
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

RsrMessage Endpoint::wait() {
  if (mailbox_) return wait_mailbox();
  UniqueLock lock(mutex_);
  while (queue_.empty() && !closed_.load(std::memory_order_relaxed)) cv_.wait(lock);
  if (queue_.empty()) throw CommFailure("endpoint closed while waiting: " + addr_.to_string());
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

// The deadline is computed ONCE and every re-wait after a spurious
// wakeup targets the same absolute time point — re-arming the full
// relative timeout per wakeup would let a notify storm extend the wait
// indefinitely (the busy-rewait bug; pinned by
// TransportTest.WaitForDeadlineSurvivesSpuriousWakeups).
WaitResult Endpoint::wait_for(std::chrono::milliseconds timeout) {
  if (mailbox_) return wait_for_mailbox(timeout);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  UniqueLock lock(mutex_);
  while (queue_.empty() && !closed_.load(std::memory_order_relaxed)) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (!queue_.empty() || closed_.load(std::memory_order_relaxed)) break;
      return {WaitStatus::kTimeout, std::nullopt};
    }
  }
  if (queue_.empty()) return {WaitStatus::kClosed, std::nullopt};
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return {WaitStatus::kMessage, std::move(msg)};
}

std::size_t Endpoint::pending() const {
  if (mailbox_) return mbox_size_.load(std::memory_order_acquire);
  LockGuard lock(mutex_);
  return queue_.size();
}

void Endpoint::drop_at_capacity(const RsrMessage& msg, bool session_frame) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& drops = obs::metrics().counter("transport.queue_dropped");
    drops.add(1);
    if (session_frame) {
      static obs::Counter& session_drops =
          obs::metrics().counter("transport.session_queue_dropped");
      session_drops.add(1);
    }
  }
  if (!drop_warned_.exchange(true, std::memory_order_relaxed)) {
    PARDIS_LOG(kWarn, "transport")
        << "endpoint " << addr_.to_string() << " receive queue full (cap "
        << capacity_.load(std::memory_order_relaxed) << "); dropping "
        << (session_frame ? "session frame before its ack (the sender keeps it "
                            "buffered for replay; PARDIS_ENDPOINT_QUEUE_CAP vs "
                            "PARDIS_SESSION_WINDOW)"
                          : "rsr")
        << " handler " << msg.handler
        << " (further drops counted in transport.queue_dropped)";
  } else {
    PARDIS_LOG(kDebug, "transport")
        << "endpoint " << addr_.to_string() << " dropped "
        << (session_frame ? "session frame (unacked)" : "rsr") << " handler "
        << msg.handler << " (queue at cap "
        << capacity_.load(std::memory_order_relaxed) << ")";
  }
}

bool Endpoint::quarantine_drop(const RsrMessage& msg) {
  // Quarantined peers are silenced at the queue mouth — the local
  // transport's analog of the TCP reader closing the connection. The
  // guard's fast path is one relaxed load while nothing is quarantined.
  if (msg.src_peer.empty() || !wire::guard().quarantined(msg.src_peer)) return false;
  if (obs::enabled()) {
    static obs::Counter& drops = obs::metrics().counter("wire.quarantine_dropped");
    drops.add(1);
  }
  return true;
}

void Endpoint::enqueue(RsrMessage msg) {
  if (mailbox_) return enqueue_mailbox(std::move(msg));
  if (quarantine_drop(msg)) return;
  // A session data frame must settle its queue seat BEFORE the demux
  // filter runs: the filter acks the frame, which advances the
  // sender's horizon and prunes it from the retransmission buffer —
  // ack-then-drop would turn a queue-bound drop into a loss the
  // session layer can never replay. Reserving the slot here (instead
  // of re-checking after the filter) closes the race where a
  // concurrent producer fills the queue while the filter is acking.
  bool reserved = false;
  if (msg.handler == kHandlerSessionData) {
    LockGuard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed))
      return;  // dropped unacked: the sender keeps the frame
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    if (cap != 0) {
      if (queue_.size() + reserved_ >= cap) {
        drop_at_capacity(msg, /*session_frame=*/true);
        return;
      }
      ++reserved_;
      reserved = true;
    }
  }
  {
    DeliveryFilter filter;
    {
      LockGuard lock(filter_mutex_);
      filter = filter_;
    }
    if (filter && filter(msg)) {  // consumed by the session layer
      if (reserved) {
        LockGuard lock(mutex_);
        --reserved_;
      }
      return;
    }
  }
  {
    LockGuard lock(mutex_);
    if (reserved) --reserved_;
    if (closed_.load(std::memory_order_relaxed))
      return;  // dropped, like a one-way send to a dead peer
    // A reservation guarantees the seat (every producer counts
    // reserved_ in its capacity check above).
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    if (!reserved && cap != 0 && queue_.size() + reserved_ >= cap) {
      drop_at_capacity(msg, /*session_frame=*/false);
      return;
    }
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

// --- Mailbox (lock-free MPSC) delivery --------------------------------------
//
// Producer protocol (wait-free: no endpoint lock on the delivery path):
//   1. reserve a seat: mbox_size_.fetch_add(1); at capacity, release
//      and drop (so a session frame the queue cannot hold is never
//      acked by the filter — the classic ack-before-drop contract);
//   2. run the delivery filter (session demux); consumed → release;
//   3. push the node, then seq_cst fence, then read sleeping_ — the
//      Dekker pairing with the consumer guarantees that either this
//      producer sees the sleeping flag (and notifies) or the consumer,
//      which set the flag BEFORE its fence and final pop attempt, sees
//      the pushed node. The notify edge briefly takes mutex_, but only
//      while a consumer is parked (it holds mutex_ solely inside
//      cv_.wait at that point), never on the hot path.
void Endpoint::enqueue_mailbox(RsrMessage msg) {
  if (quarantine_drop(msg)) return;
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t prev = mbox_size_.fetch_add(1, std::memory_order_acq_rel);
  if (cap != 0 && prev >= cap) {
    mbox_size_.fetch_sub(1, std::memory_order_acq_rel);
    drop_at_capacity(msg, msg.handler == kHandlerSessionData);
    return;
  }
  if (closed_.load(std::memory_order_acquire)) {
    mbox_size_.fetch_sub(1, std::memory_order_acq_rel);
    return;  // dropped, like a one-way send to a dead peer
  }
  {
    DeliveryFilter filter;
    {
      LockGuard lock(filter_mutex_);
      filter = filter_;
    }
    if (filter && filter(msg)) {  // consumed by the session layer
      mbox_size_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
  }
  mbox_.push(new MailNode(std::move(msg)));
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleeping_.load(std::memory_order_relaxed)) {
    { LockGuard lock(mutex_); }  // order the notify after the consumer parks
    cv_.notify_all();
  }
}

Endpoint::MailNode* Endpoint::pop_ready_locked() {
  // try_pop() can transiently miss: a producer between its seat
  // reservation and the push leaves size_ > 0 with nothing linked yet.
  // A short spin rides out that instruction-scale window; if the seat
  // belongs to a producer stalled in the delivery filter we give up
  // and report empty (callers re-poll or park; the producer's post-
  // push sleeping_ check guarantees the wakeup).
  for (int spin = 0; spin < 64; ++spin) {
    if (MailNode* n = mbox_.try_pop()) return n;
    if (mbox_size_.load(std::memory_order_acquire) == 0) return nullptr;
  }
  return nullptr;
}

std::optional<RsrMessage> Endpoint::take_mailbox_locked() {
  note_depth_locked();
  MailNode* n = pop_ready_locked();
  if (n == nullptr) return std::nullopt;
  RsrMessage msg = std::move(n->value);
  delete n;
  mbox_size_.fetch_sub(1, std::memory_order_acq_rel);
  return msg;
}

std::optional<RsrMessage> Endpoint::poll_mailbox() {
  UniqueLock lock(mutex_);
  auto msg = take_mailbox_locked();
  lock.unlock();
  if (msg) sim::merge_time(msg->sim_time);
  return msg;
}

RsrMessage Endpoint::wait_mailbox() {
  UniqueLock lock(mutex_);
  for (;;) {
    if (auto msg = take_mailbox_locked()) {
      lock.unlock();
      sim::merge_time(msg->sim_time);
      return std::move(*msg);
    }
    if (closed_.load(std::memory_order_acquire))
      throw CommFailure("endpoint closed while waiting: " + addr_.to_string());
    sleeping_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Final pop attempt after raising the flag (see enqueue_mailbox).
    if (auto msg = take_mailbox_locked()) {
      sleeping_.store(false, std::memory_order_relaxed);
      lock.unlock();
      sim::merge_time(msg->sim_time);
      return std::move(*msg);
    }
    if (!closed_.load(std::memory_order_acquire)) cv_.wait(lock);
    sleeping_.store(false, std::memory_order_relaxed);
  }
}

// Deadline-once, exactly like the classic wait_for: spurious wakeups
// re-target the same absolute deadline.
WaitResult Endpoint::wait_for_mailbox(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  UniqueLock lock(mutex_);
  for (;;) {
    if (auto msg = take_mailbox_locked()) {
      lock.unlock();
      sim::merge_time(msg->sim_time);
      return {WaitStatus::kMessage, std::move(*msg)};
    }
    if (closed_.load(std::memory_order_acquire)) return {WaitStatus::kClosed, std::nullopt};
    sleeping_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (auto msg = take_mailbox_locked()) {
      sleeping_.store(false, std::memory_order_relaxed);
      lock.unlock();
      sim::merge_time(msg->sim_time);
      return {WaitStatus::kMessage, std::move(*msg)};
    }
    if (closed_.load(std::memory_order_acquire)) {
      sleeping_.store(false, std::memory_order_relaxed);
      return {WaitStatus::kClosed, std::nullopt};
    }
    const auto st = cv_.wait_until(lock, deadline);
    sleeping_.store(false, std::memory_order_relaxed);
    if (st == std::cv_status::timeout) {
      if (auto msg = take_mailbox_locked()) {
        lock.unlock();
        sim::merge_time(msg->sim_time);
        return {WaitStatus::kMessage, std::move(*msg)};
      }
      if (closed_.load(std::memory_order_acquire)) return {WaitStatus::kClosed, std::nullopt};
      return {WaitStatus::kTimeout, std::nullopt};
    }
  }
}

void Endpoint::set_capacity(std::size_t cap) {
  LockGuard lock(mutex_);
  capacity_.store(cap, std::memory_order_relaxed);
  at_cap_streak_ = 0;
}

std::size_t Endpoint::capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

std::uint64_t Endpoint::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void Endpoint::set_delivery_filter(DeliveryFilter filter) {
  LockGuard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Endpoint::close() {
  {
    LockGuard lock(mutex_);
    closed_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

bool Endpoint::closed() const noexcept {
  return closed_.load(std::memory_order_acquire);
}

}  // namespace pardis::transport
