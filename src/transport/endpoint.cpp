#include "transport/endpoint.hpp"

#include <cstdlib>
#include <sstream>

#include "check/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/clock.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::transport {

std::size_t default_queue_capacity() noexcept {
  static const std::size_t cap = [] {
    const char* v = std::getenv("PARDIS_ENDPOINT_QUEUE_CAP");
    if (v == nullptr || *v == '\0') return std::size_t{0};
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }();
  return cap;
}

std::string EndpointAddr::to_string() const {
  std::ostringstream os;
  if (kind == AddrKind::kLocal) {
    os << "local:" << local_id;
  } else {
    os << "tcp:" << tcp_host << ":" << tcp_port << "/" << tcp_ep;
  }
  if (!host_model.empty()) os << "@" << host_model;
  return os.str();
}

void EndpointAddr::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind));
  w.write_string(host_model);
  w.write_ulonglong(local_id);
  w.write_string(tcp_host);
  w.write_ushort(tcp_port);
  w.write_ulonglong(tcp_ep);
}

EndpointAddr EndpointAddr::unmarshal(CdrReader& r) {
  EndpointAddr a;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(AddrKind::kTcp))
    throw DecodeError("bad kind octet " + std::to_string(kind), r.offset(),
                      "EndpointAddr");
  a.kind = static_cast<AddrKind>(kind);
  a.host_model = r.read_string();
  a.local_id = r.read_ulonglong();
  a.tcp_host = r.read_string();
  a.tcp_port = r.read_ushort();
  a.tcp_ep = r.read_ulonglong();
  return a;
}

void Endpoint::note_depth_locked() {
  if (capacity_ == 0 || queue_.size() < capacity_) {
    at_cap_streak_ = 0;
    return;
  }
  if (++at_cap_streak_ >= kQueuePinnedRounds && check::enabled()) {
    at_cap_streak_ = 0;
    check::violation("transport.endpoint",
                     "receive queue pinned at capacity " +
                         std::to_string(capacity_) + " for " +
                         std::to_string(kQueuePinnedRounds) +
                         " consecutive drains at " + addr_.to_string() +
                         " (consumer cannot keep up; raise "
                         "PARDIS_ENDPOINT_QUEUE_CAP or shed load upstream)");
  }
}

std::optional<RsrMessage> Endpoint::poll() {
  UniqueLock lock(mutex_);
  note_depth_locked();
  if (queue_.empty()) return std::nullopt;
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

RsrMessage Endpoint::wait() {
  UniqueLock lock(mutex_);
  while (queue_.empty() && !closed_) cv_.wait(lock);
  if (queue_.empty()) throw CommFailure("endpoint closed while waiting: " + addr_.to_string());
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

WaitResult Endpoint::wait_for(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  UniqueLock lock(mutex_);
  while (queue_.empty() && !closed_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (!queue_.empty() || closed_) break;
      return {WaitStatus::kTimeout, std::nullopt};
    }
  }
  if (queue_.empty()) return {WaitStatus::kClosed, std::nullopt};
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return {WaitStatus::kMessage, std::move(msg)};
}

std::size_t Endpoint::pending() const {
  LockGuard lock(mutex_);
  return queue_.size();
}

void Endpoint::drop_at_capacity_locked(const RsrMessage& msg, bool session_frame) {
  ++dropped_;
  if (obs::enabled()) {
    static obs::Counter& drops = obs::metrics().counter("transport.queue_dropped");
    drops.add(1);
    if (session_frame) {
      static obs::Counter& session_drops =
          obs::metrics().counter("transport.session_queue_dropped");
      session_drops.add(1);
    }
  }
  if (!drop_warned_) {
    drop_warned_ = true;
    PARDIS_LOG(kWarn, "transport")
        << "endpoint " << addr_.to_string() << " receive queue full (cap "
        << capacity_ << "); dropping "
        << (session_frame ? "session frame before its ack (the sender keeps it "
                            "buffered for replay; PARDIS_ENDPOINT_QUEUE_CAP vs "
                            "PARDIS_SESSION_WINDOW)"
                          : "rsr")
        << " handler " << msg.handler
        << " (further drops counted in transport.queue_dropped)";
  } else {
    PARDIS_LOG(kDebug, "transport")
        << "endpoint " << addr_.to_string() << " dropped "
        << (session_frame ? "session frame (unacked)" : "rsr") << " handler "
        << msg.handler << " (queue at cap " << capacity_ << ")";
  }
}

void Endpoint::enqueue(RsrMessage msg) {
  // Quarantined peers are silenced at the queue mouth — the local
  // transport's analog of the TCP reader closing the connection. The
  // guard's fast path is one relaxed load while nothing is quarantined.
  if (!msg.src_peer.empty() && wire::guard().quarantined(msg.src_peer)) {
    if (obs::enabled()) {
      static obs::Counter& drops = obs::metrics().counter("wire.quarantine_dropped");
      drops.add(1);
    }
    return;
  }
  // A session data frame must settle its queue seat BEFORE the demux
  // filter runs: the filter acks the frame, which advances the
  // sender's horizon and prunes it from the retransmission buffer —
  // ack-then-drop would turn a queue-bound drop into a loss the
  // session layer can never replay. Reserving the slot here (instead
  // of re-checking after the filter) closes the race where a
  // concurrent producer fills the queue while the filter is acking.
  bool reserved = false;
  if (msg.handler == kHandlerSessionData) {
    LockGuard lock(mutex_);
    if (closed_) return;  // dropped unacked: the sender keeps the frame
    if (capacity_ != 0) {
      if (queue_.size() + reserved_ >= capacity_) {
        drop_at_capacity_locked(msg, /*session_frame=*/true);
        return;
      }
      ++reserved_;
      reserved = true;
    }
  }
  {
    DeliveryFilter filter;
    {
      LockGuard lock(filter_mutex_);
      filter = filter_;
    }
    if (filter && filter(msg)) {  // consumed by the session layer
      if (reserved) {
        LockGuard lock(mutex_);
        --reserved_;
      }
      return;
    }
  }
  {
    LockGuard lock(mutex_);
    if (reserved) --reserved_;
    if (closed_) return;  // dropped, like a one-way send to a dead peer
    // A reservation guarantees the seat (every producer counts
    // reserved_ in its capacity check above).
    if (!reserved && capacity_ != 0 && queue_.size() + reserved_ >= capacity_) {
      drop_at_capacity_locked(msg, /*session_frame=*/false);
      return;
    }
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

void Endpoint::set_capacity(std::size_t cap) {
  LockGuard lock(mutex_);
  capacity_ = cap;
  at_cap_streak_ = 0;
}

std::size_t Endpoint::capacity() const {
  LockGuard lock(mutex_);
  return capacity_;
}

std::uint64_t Endpoint::dropped() const {
  LockGuard lock(mutex_);
  return dropped_;
}

void Endpoint::set_delivery_filter(DeliveryFilter filter) {
  LockGuard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Endpoint::close() {
  {
    LockGuard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Endpoint::closed() const noexcept {
  LockGuard lock(mutex_);
  return closed_;
}

}  // namespace pardis::transport
