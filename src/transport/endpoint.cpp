#include "transport/endpoint.hpp"

#include <cstdlib>
#include <sstream>

#include "check/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/clock.hpp"

namespace pardis::transport {

std::size_t default_queue_capacity() noexcept {
  static const std::size_t cap = [] {
    const char* v = std::getenv("PARDIS_ENDPOINT_QUEUE_CAP");
    if (v == nullptr || *v == '\0') return std::size_t{0};
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }();
  return cap;
}

std::string EndpointAddr::to_string() const {
  std::ostringstream os;
  if (kind == AddrKind::kLocal) {
    os << "local:" << local_id;
  } else {
    os << "tcp:" << tcp_host << ":" << tcp_port << "/" << tcp_ep;
  }
  if (!host_model.empty()) os << "@" << host_model;
  return os.str();
}

void EndpointAddr::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind));
  w.write_string(host_model);
  w.write_ulonglong(local_id);
  w.write_string(tcp_host);
  w.write_ushort(tcp_port);
  w.write_ulonglong(tcp_ep);
}

EndpointAddr EndpointAddr::unmarshal(CdrReader& r) {
  EndpointAddr a;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(AddrKind::kTcp))
    throw MarshalError("EndpointAddr: bad kind octet");
  a.kind = static_cast<AddrKind>(kind);
  a.host_model = r.read_string();
  a.local_id = r.read_ulonglong();
  a.tcp_host = r.read_string();
  a.tcp_port = r.read_ushort();
  a.tcp_ep = r.read_ulonglong();
  return a;
}

void Endpoint::note_depth_locked() {
  if (capacity_ == 0 || queue_.size() < capacity_) {
    at_cap_streak_ = 0;
    return;
  }
  if (++at_cap_streak_ >= kQueuePinnedRounds && check::enabled()) {
    at_cap_streak_ = 0;
    check::violation("transport.endpoint",
                     "receive queue pinned at capacity " +
                         std::to_string(capacity_) + " for " +
                         std::to_string(kQueuePinnedRounds) +
                         " consecutive drains at " + addr_.to_string() +
                         " (consumer cannot keep up; raise "
                         "PARDIS_ENDPOINT_QUEUE_CAP or shed load upstream)");
  }
}

std::optional<RsrMessage> Endpoint::poll() {
  std::unique_lock<std::mutex> lock(mutex_);
  note_depth_locked();
  if (queue_.empty()) return std::nullopt;
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

RsrMessage Endpoint::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) throw CommFailure("endpoint closed while waiting: " + addr_.to_string());
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

WaitResult Endpoint::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty() || closed_; }))
    return {WaitStatus::kTimeout, std::nullopt};
  if (queue_.empty()) return {WaitStatus::kClosed, std::nullopt};
  note_depth_locked();
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return {WaitStatus::kMessage, std::move(msg)};
}

std::size_t Endpoint::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Endpoint::enqueue(RsrMessage msg) {
  {
    DeliveryFilter filter;
    {
      std::lock_guard<std::mutex> lock(filter_mutex_);
      filter = filter_;
    }
    if (filter && filter(msg)) return;  // consumed by the session layer
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;  // dropped, like a one-way send to a dead peer
    if (capacity_ != 0 && queue_.size() >= capacity_) {
      ++dropped_;
      if (obs::enabled()) {
        static obs::Counter& drops = obs::metrics().counter("transport.queue_dropped");
        drops.add(1);
      }
      if (!drop_warned_) {
        drop_warned_ = true;
        PARDIS_LOG(kWarn, "transport")
            << "endpoint " << addr_.to_string() << " receive queue full (cap "
            << capacity_ << "); dropping rsr handler " << msg.handler
            << " (further drops counted in transport.queue_dropped)";
      } else {
        PARDIS_LOG(kDebug, "transport")
            << "endpoint " << addr_.to_string() << " dropped rsr handler "
            << msg.handler << " (queue at cap " << capacity_ << ")";
      }
      return;
    }
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

void Endpoint::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = cap;
  at_cap_streak_ = 0;
}

std::size_t Endpoint::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint64_t Endpoint::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Endpoint::set_delivery_filter(DeliveryFilter filter) {
  std::lock_guard<std::mutex> lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Endpoint::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Endpoint::closed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace pardis::transport
