#include "transport/endpoint.hpp"

#include <sstream>

#include "sim/clock.hpp"

namespace pardis::transport {

std::string EndpointAddr::to_string() const {
  std::ostringstream os;
  if (kind == AddrKind::kLocal) {
    os << "local:" << local_id;
  } else {
    os << "tcp:" << tcp_host << ":" << tcp_port << "/" << tcp_ep;
  }
  if (!host_model.empty()) os << "@" << host_model;
  return os.str();
}

void EndpointAddr::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind));
  w.write_string(host_model);
  w.write_ulonglong(local_id);
  w.write_string(tcp_host);
  w.write_ushort(tcp_port);
  w.write_ulonglong(tcp_ep);
}

EndpointAddr EndpointAddr::unmarshal(CdrReader& r) {
  EndpointAddr a;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(AddrKind::kTcp))
    throw MarshalError("EndpointAddr: bad kind octet");
  a.kind = static_cast<AddrKind>(kind);
  a.host_model = r.read_string();
  a.local_id = r.read_ulonglong();
  a.tcp_host = r.read_string();
  a.tcp_port = r.read_ushort();
  a.tcp_ep = r.read_ulonglong();
  return a;
}

std::optional<RsrMessage> Endpoint::poll() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

RsrMessage Endpoint::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) throw CommFailure("endpoint closed while waiting: " + addr_.to_string());
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

std::optional<RsrMessage> Endpoint::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty() || closed_; }))
    return std::nullopt;
  if (queue_.empty()) return std::nullopt;  // closed
  RsrMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  sim::merge_time(msg.sim_time);
  return msg;
}

std::size_t Endpoint::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Endpoint::enqueue(RsrMessage msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;  // dropped, like a one-way send to a dead peer
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

void Endpoint::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Endpoint::closed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace pardis::transport
