// Nexus-style transport layer (the paper's NexusLite substitute).
//
// The unit of communication is the *remote service request* (RSR): a
// one-way message naming a handler at a remote endpoint. Like
// NexusLite — "the single threaded implementation of Nexus" the paper
// uses — delivery is poll-based: arriving RSRs queue at the endpoint
// and the owner (a POA loop or a future touch) drains them from its
// own computing thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "common/buffer.hpp"
#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/mutex.hpp"
#include "core/wire.hpp"  // HandlerId + the kHandler* registry
#include "reactor/mailbox.hpp"

namespace pardis::transport {

enum class AddrKind : Octet { kLocal = 0, kTcp = 1 };

/// Serializable address of an endpoint; embedded in object references.
struct EndpointAddr {
  AddrKind kind = AddrKind::kLocal;
  /// Name of the modeled host this endpoint lives on (for link-cost
  /// lookup); empty when unmodeled.
  std::string host_model;
  ULongLong local_id = 0;  ///< local transport endpoint id
  std::string tcp_host;    ///< tcp only
  UShort tcp_port = 0;     ///< tcp only
  ULongLong tcp_ep = 0;    ///< endpoint id within the tcp listener

  bool operator==(const EndpointAddr&) const = default;
  std::string to_string() const;

  void marshal(CdrWriter& w) const;
  static EndpointAddr unmarshal(CdrReader& r);
};

/// One received remote service request.
struct RsrMessage {
  HandlerId handler = 0;
  double sim_time = 0.0;           ///< sender clock + modeled link delay
  bool little_endian = kNativeLittleEndian;  ///< producer byte order
  ByteBuffer payload;
  /// Transport-level identity of the sender (modeled host name for the
  /// local transport, "ip:port" for TCP; empty when unknown). NOT a
  /// wire field: stamped by the receiving transport so decode failures
  /// can be charged to the peer that sent them (wire::PeerGuard).
  std::string src_peer;
};

/// Outcome of a bounded-time drain: a message, a timeout, or the
/// endpoint closing under the waiter. The latter two used to be
/// conflated, which turned "peer shut down" into an infinite series of
/// apparent timeouts in polling loops.
enum class WaitStatus { kMessage, kTimeout, kClosed };

struct WaitResult {
  WaitStatus status = WaitStatus::kTimeout;
  std::optional<RsrMessage> message;  ///< engaged iff status == kMessage

  bool timed_out() const noexcept { return status == WaitStatus::kTimeout; }
  bool closed() const noexcept { return status == WaitStatus::kClosed; }
};

/// Intercepts an RSR before it reaches the receive queue. Returning
/// true consumes the message (it is never enqueued); false lets normal
/// delivery proceed. Runs on the producer's thread, outside the
/// endpoint lock. The session layer uses this to demux session frames.
using DeliveryFilter = std::function<bool(RsrMessage&)>;

/// Process-wide default receive-queue capacity, read once from
/// PARDIS_ENDPOINT_QUEUE_CAP (0 or unset = unbounded).
std::size_t default_queue_capacity() noexcept;

/// Consecutive at-capacity drain observations before the pardis_check
/// "queue pinned at capacity" rule fires (PARDIS_CHECK=1 only).
inline constexpr int kQueuePinnedRounds = 64;

/// Receiving side of a transport: a queue of RSRs drained by polling.
class Endpoint {
 public:
  explicit Endpoint(EndpointAddr addr)
      : addr_(std::move(addr)), capacity_(default_queue_capacity()) {}
  ~Endpoint() { close(); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const EndpointAddr& addr() const noexcept { return addr_; }

  /// Non-blocking drain of the next queued RSR. Merges the message's
  /// virtual timestamp into the calling thread's clock.
  std::optional<RsrMessage> poll();

  /// Blocking drain; throws CommFailure if the endpoint closes while
  /// waiting.
  RsrMessage wait();

  /// Blocking drain with deadline; the result distinguishes a timeout
  /// from the endpoint closing.
  WaitResult wait_for(std::chrono::milliseconds timeout);

  /// Number of queued messages (snapshot).
  std::size_t pending() const;

  /// Called by transports on delivery. When the queue is at capacity
  /// the message is dropped with a located diagnostic (one warn line
  /// per endpoint, a `transport.queue_dropped` count thereafter) —
  /// mirroring the one-way RSR model, where delivery was never
  /// guaranteed; retry layers recover exactly as for a lost message.
  /// Session data frames (kHandlerSessionData) are capacity-checked
  /// BEFORE the delivery filter runs, so a frame the queue cannot
  /// hold is never acked: it stays in the sender's retransmission
  /// buffer instead of being pruned as delivered. Those drops are
  /// additionally counted in `transport.session_queue_dropped`.
  void enqueue(RsrMessage msg);

  /// Receive-queue bound; 0 = unbounded. Defaults to
  /// PARDIS_ENDPOINT_QUEUE_CAP.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const;

  /// Messages dropped at the queue bound since creation.
  std::uint64_t dropped() const;

  /// Installs (or clears, with nullptr) the delivery filter.
  void set_delivery_filter(DeliveryFilter filter);

  /// Switches delivery to the lock-free MPSC mailbox (pardis_reactor):
  /// enqueue() becomes wait-free — one atomic reservation, the filter,
  /// one queue push — so an event loop delivering here never blocks on
  /// a consumer holding the endpoint lock. Consumers (poll/wait) still
  /// serialize on the endpoint mutex among themselves; producers never
  /// touch it outside the sleeping-consumer wakeup edge. Must be
  /// called before the endpoint is shared across threads (the creating
  /// transport does it inside create_endpoint). One behavioral delta
  /// vs the classic queue: capacity is reserved BEFORE the delivery
  /// filter for every handler, so at capacity a session ack may be
  /// dropped pre-filter (cumulative acks heal on the next frame).
  void use_mailbox() noexcept { mailbox_ = true; }
  bool mailbox() const noexcept { return mailbox_; }

  void close();
  bool closed() const noexcept;

 private:
  /// Bookkeeping for the pinned-at-capacity check rule; call with
  /// mutex_ held at every drain observation. May throw
  /// check::Violation (the unique_lock unwinds cleanly).
  void note_depth_locked() PARDIS_REQUIRES(mutex_);
  /// Diagnostics for one at-capacity drop (any thread; counters and
  /// the warn latch are atomics).
  void drop_at_capacity(const RsrMessage& msg, bool session_frame);
  /// True when the sender is quarantined (frame dropped + counted).
  static bool quarantine_drop(const RsrMessage& msg);

  // --- mailbox mode ---
  using MailNode = reactor::MpscQueue<RsrMessage>::Node;
  void enqueue_mailbox(RsrMessage msg);
  /// Pops the next visible node, riding out producers caught between
  /// their seat reservation and the push (bounded spin). Consumer only.
  MailNode* pop_ready_locked() PARDIS_REQUIRES(mutex_);
  /// One delivery attempt: pop + size release + depth bookkeeping.
  std::optional<RsrMessage> take_mailbox_locked() PARDIS_REQUIRES(mutex_);
  std::optional<RsrMessage> poll_mailbox();
  RsrMessage wait_mailbox();
  WaitResult wait_for_mailbox(std::chrono::milliseconds timeout);

  EndpointAddr addr_;
  mutable Mutex mutex_{"transport.endpoint"};
  std::condition_variable_any cv_;
  std::deque<RsrMessage> queue_ PARDIS_GUARDED_BY(mutex_);
  std::atomic<std::size_t> capacity_{0};  ///< 0 = unbounded
  /// Seats promised to session frames currently passing through the
  /// delivery filter (capacity is checked before the filter acks).
  std::size_t reserved_ PARDIS_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> drop_warned_{false};
  int at_cap_streak_ PARDIS_GUARDED_BY(mutex_) = 0;
  DeliveryFilter filter_ PARDIS_GUARDED_BY(filter_mutex_);
  mutable Mutex filter_mutex_{"transport.endpoint_filter"};
  std::atomic<bool> closed_{false};

  bool mailbox_ = false;  ///< set once, before the endpoint is shared
  reactor::MpscQueue<RsrMessage> mbox_;
  /// Seats taken: reserved by producers before the filter/push,
  /// released by the consumer after a pop (or by the producer when the
  /// filter consumes the message / the endpoint closed under it).
  std::atomic<std::size_t> mbox_size_{0};
  /// Consumer-is-about-to-sleep flag; producers check it after their
  /// push (seq_cst fences on both sides) and take the wakeup edge.
  std::atomic<bool> sleeping_{false};
};

}  // namespace pardis::transport

namespace pardis {

template <>
struct CdrTraits<transport::EndpointAddr> {
  static void marshal(CdrWriter& w, const transport::EndpointAddr& a) { a.marshal(w); }
  static void unmarshal(CdrReader& r, transport::EndpointAddr& a) {
    a = transport::EndpointAddr::unmarshal(r);
  }
};

}  // namespace pardis
