// Nexus-style transport layer (the paper's NexusLite substitute).
//
// The unit of communication is the *remote service request* (RSR): a
// one-way message naming a handler at a remote endpoint. Like
// NexusLite — "the single threaded implementation of Nexus" the paper
// uses — delivery is poll-based: arriving RSRs queue at the endpoint
// and the owner (a POA loop or a future touch) drains them from its
// own computing thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "common/buffer.hpp"
#include "common/cdr.hpp"
#include "common/error.hpp"

namespace pardis::transport {

using HandlerId = ULong;

/// Handlers the ORB registers on every endpoint.
inline constexpr HandlerId kHandlerOrbRequest = 1;
inline constexpr HandlerId kHandlerOrbReply = 2;
inline constexpr HandlerId kHandlerRepo = 3;
/// Liveness probe: an empty RSR whose only purpose is to exercise the
/// path to a peer. Receivers discard it silently; a probe failure at
/// the sender marks the peer dead (pardis_ft broken-future detection).
inline constexpr HandlerId kHandlerPing = 4;

enum class AddrKind : Octet { kLocal = 0, kTcp = 1 };

/// Serializable address of an endpoint; embedded in object references.
struct EndpointAddr {
  AddrKind kind = AddrKind::kLocal;
  /// Name of the modeled host this endpoint lives on (for link-cost
  /// lookup); empty when unmodeled.
  std::string host_model;
  ULongLong local_id = 0;  ///< local transport endpoint id
  std::string tcp_host;    ///< tcp only
  UShort tcp_port = 0;     ///< tcp only
  ULongLong tcp_ep = 0;    ///< endpoint id within the tcp listener

  bool operator==(const EndpointAddr&) const = default;
  std::string to_string() const;

  void marshal(CdrWriter& w) const;
  static EndpointAddr unmarshal(CdrReader& r);
};

/// One received remote service request.
struct RsrMessage {
  HandlerId handler = 0;
  double sim_time = 0.0;           ///< sender clock + modeled link delay
  bool little_endian = kNativeLittleEndian;  ///< producer byte order
  ByteBuffer payload;
};

/// Receiving side of a transport: a queue of RSRs drained by polling.
class Endpoint {
 public:
  explicit Endpoint(EndpointAddr addr) : addr_(std::move(addr)) {}
  ~Endpoint() { close(); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const EndpointAddr& addr() const noexcept { return addr_; }

  /// Non-blocking drain of the next queued RSR. Merges the message's
  /// virtual timestamp into the calling thread's clock.
  std::optional<RsrMessage> poll();

  /// Blocking drain; throws CommFailure if the endpoint closes while
  /// waiting.
  RsrMessage wait();

  /// Blocking drain with deadline; nullopt on timeout.
  std::optional<RsrMessage> wait_for(std::chrono::milliseconds timeout);

  /// Number of queued messages (snapshot).
  std::size_t pending() const;

  /// Called by transports on delivery.
  void enqueue(RsrMessage msg);

  void close();
  bool closed() const noexcept;

 private:
  EndpointAddr addr_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<RsrMessage> queue_;
  bool closed_ = false;
};

}  // namespace pardis::transport

namespace pardis {

template <>
struct CdrTraits<transport::EndpointAddr> {
  static void marshal(CdrWriter& w, const transport::EndpointAddr& a) { a.marshal(w); }
  static void unmarshal(CdrReader& r, transport::EndpointAddr& a) {
    a = transport::EndpointAddr::unmarshal(r);
  }
};

}  // namespace pardis
