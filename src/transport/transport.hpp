// Transport interface + the in-process loopback implementation.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "sim/testbed.hpp"
#include "transport/endpoint.hpp"

namespace pardis::transport {

/// Sending side of the transport abstraction. Implementations deliver
/// one-way RSRs; reliability within a process/localhost is assumed
/// (matching the paper's dedicated testbed links).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Creates an endpoint hosted on modeled host `host_model` (may be
  /// empty when unmodeled). The endpoint stays valid until released.
  virtual std::shared_ptr<Endpoint> create_endpoint(const std::string& host_model) = 0;

  /// Fires a one-way remote service request. `src_host_model` names
  /// the sending host for link-cost lookup.
  virtual void rsr(const EndpointAddr& dst, HandlerId handler, ByteBuffer payload,
                   const std::string& src_host_model) = 0;
};

/// TCP_NODELAY for every accepted and dialed socket, shared by
/// TcpTransport and reactor::ReactorTransport (PARDIS_TCP_NODELAY,
/// default on — Nagle would serialize small one-way RSRs behind ack
/// round-trips). set_tcp_nodelay: 1 = on, 0 = off, -1 = back to the
/// environment value (tests).
bool tcp_nodelay() noexcept;
void set_tcp_nodelay(int v) noexcept;

/// Applies a fault-plan decision at the sender: bumps the obs counter
/// and throws CommFailure (sever / killed endpoint) or TransientError
/// (scheduled transient failure). Drop / duplicate / delay decisions
/// are left for the transport to carry out. Shared by implementations.
void apply_fault(const sim::FaultPlan::Decision& d, const EndpointAddr& dst);

/// In-process transport: endpoints live in a process-wide registry and
/// delivery is a queue push. Used for same-process metaapplications and
/// for all virtual-time benchmarks (the link model supplies the cost).
class LocalTransport final : public Transport {
 public:
  /// `testbed` (optional, unowned) supplies link cost models; it must
  /// outlive the transport.
  explicit LocalTransport(const sim::Testbed* testbed = nullptr) : testbed_(testbed) {}

  std::shared_ptr<Endpoint> create_endpoint(const std::string& host_model) override;
  void rsr(const EndpointAddr& dst, HandlerId handler, ByteBuffer payload,
           const std::string& src_host_model) override;

  const sim::Testbed* testbed() const noexcept { return testbed_; }

 private:
  const sim::Testbed* testbed_;
  Mutex mutex_{"transport.local"};
  ULongLong next_id_ PARDIS_GUARDED_BY(mutex_) = 1;
  std::map<ULongLong, std::weak_ptr<Endpoint>> endpoints_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::transport
