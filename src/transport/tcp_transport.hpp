// TCP implementation of the transport: proves the ORB protocol works
// across real address spaces (separate processes on one node, as in
// the paper's SGI/SP2 testbed front ends).
//
// Wire format per RSR (one-way, no acks — TCP provides reliability):
//   32-byte header: [octet byte-order][u32 payload len][u64 dst endpoint]
//                   [u32 handler][f64 virtual timestamp]  (CDR aligned)
//   followed by `payload len` bytes of CDR payload.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "transport/transport.hpp"

namespace pardis::transport {

class TcpTransport final : public Transport {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept
  /// thread. `testbed` (optional, unowned) supplies link costs.
  /// `listen_backlog` bounds the kernel accept queue; 0 means
  /// PARDIS_LISTEN_BACKLOG (default 64).
  explicit TcpTransport(UShort port = 0, const sim::Testbed* testbed = nullptr,
                        int listen_backlog = 0);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  UShort port() const noexcept { return port_; }

  std::shared_ptr<Endpoint> create_endpoint(const std::string& host_model) override;
  void rsr(const EndpointAddr& dst, HandlerId handler, ByteBuffer payload,
           const std::string& src_host_model) override;

  /// Stops the accept loop and closes every connection. Called by the
  /// destructor; idempotent.
  void shutdown();

 private:
  struct Connection {
    int fd = -1;
    /// Serializes whole-frame ::send calls so concurrent rsr()s never
    /// interleave bytes on the socket — it guards the write *stream*,
    /// not a data member.
    // pardis-lint: allow(unannotated-mutex)
    Mutex write_mutex{"transport.tcp_conn_write"};
    /// Owns the descriptor: ::close runs only when the last holder
    /// drops its reference, never while a racing rsr() may still be
    /// queued on write_mutex with this fd — an early close would let
    /// the kernel reuse the number and aim queued frames at an
    /// unrelated connection. Eviction paths call ::shutdown instead,
    /// which fails pending writes cleanly without recycling the fd.
    ~Connection();
  };

  void accept_loop();
  void reader_loop(int fd);
  std::shared_ptr<Connection> connect_to(const std::string& host, UShort port);
  /// Evicts a broken cached connection so the next rsr() redials
  /// instead of reusing a dead socket (pardis_flow reconnect support).
  void drop_connection(const std::string& key, const std::shared_ptr<Connection>& conn);

  const sim::Testbed* testbed_;
  int listen_fd_ = -1;
  UShort port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  Mutex mutex_{"transport.tcp"};
  ULongLong next_ep_ PARDIS_GUARDED_BY(mutex_) = 1;
  std::map<ULongLong, std::weak_ptr<Endpoint>> endpoints_ PARDIS_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<Connection>> connections_
      PARDIS_GUARDED_BY(mutex_);  // "host:port"
  std::vector<std::thread> readers_ PARDIS_GUARDED_BY(mutex_);
  std::vector<int> reader_fds_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::transport
