#include "transport/wire_guard.hpp"

#include <cstdlib>
#include <cstring>

#include "common/crc.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::wire {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtol(v, nullptr, 10);
}

// Each knob: -1 = defer to the environment, 0/1 (or the value) = test
// override. The env read is cached in a static local on first use.
std::atomic<int> g_frame_crc{-1};
std::atomic<int> g_strict{-1};
std::atomic<int> g_hello{-1};
std::atomic<int> g_bad_frame_limit{-1};

}  // namespace

bool frame_crc() noexcept {
  const int o = g_frame_crc.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = env_flag("PARDIS_FRAME_CRC", false);
  return env;
}

void set_frame_crc(int v) noexcept { g_frame_crc.store(v, std::memory_order_relaxed); }

bool strict() noexcept {
  const int o = g_strict.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = env_flag("PARDIS_WIRE_STRICT", true);
  return env;
}

void set_strict(int v) noexcept { g_strict.store(v, std::memory_order_relaxed); }

bool hello_enabled() noexcept {
  const int o = g_hello.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = env_flag("PARDIS_WIRE_HELLO", false);
  return env;
}

void set_hello(int v) noexcept { g_hello.store(v, std::memory_order_relaxed); }

unsigned bad_frame_limit() noexcept {
  const int o = g_bad_frame_limit.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<unsigned>(o);
  static const unsigned env = [] {
    const long n = env_long("PARDIS_BAD_FRAME_LIMIT", 8);
    return n >= 0 ? static_cast<unsigned>(n) : 8u;
  }();
  return env;
}

void set_bad_frame_limit(int v) noexcept {
  g_bad_frame_limit.store(v, std::memory_order_relaxed);
}

std::size_t max_frame_bytes() noexcept {
  static const std::size_t env = [] {
    const long n = env_long("PARDIS_MAX_FRAME_BYTES", 64L * 1024 * 1024);
    return n > 0 ? static_cast<std::size_t>(n) : std::size_t{64} * 1024 * 1024;
  }();
  return env;
}

// --- CRC trailer ------------------------------------------------------------

inline constexpr std::size_t kCrcTrailerBytes = 4;

void append_crc(ByteBuffer& frame) {
  const ULong crc = crc32(frame.view());
  Octet trailer[kCrcTrailerBytes] = {
      static_cast<Octet>(crc & 0xFF),
      static_cast<Octet>((crc >> 8) & 0xFF),
      static_cast<Octet>((crc >> 16) & 0xFF),
      static_cast<Octet>((crc >> 24) & 0xFF),
  };
  frame.append(std::span<const Octet>(trailer, kCrcTrailerBytes));
}

void verify_crc(CdrReader& r, const char* what) {
  const auto frame = r.raw();
  const std::string context = std::string(what) + " CRC";
  if (frame.size() < kCrcTrailerBytes)
    throw DecodeError("frame too short for CRC trailer", frame.size(), context);
  const auto body = frame.first(frame.size() - kCrcTrailerBytes);
  const auto tail = frame.last(kCrcTrailerBytes);
  const ULong stored = static_cast<ULong>(tail[0]) | (static_cast<ULong>(tail[1]) << 8) |
                       (static_cast<ULong>(tail[2]) << 16) |
                       (static_cast<ULong>(tail[3]) << 24);
  const ULong computed = crc32(body);
  if (stored != computed) {
    if (obs::enabled()) {
      static obs::Counter& c = obs::metrics().counter("wire.crc_failures");
      c.add(1);
    }
    throw DecodeError("checksum mismatch (frame corrupt)", body.size(), context);
  }
  r.trim(kCrcTrailerBytes);
}

// --- Hello ------------------------------------------------------------------

void Hello::marshal(CdrWriter& w) const {
  w.write_ulong(magic);
  w.write_octet(version);
  w.write_ulong(features);
}

Hello Hello::unmarshal(CdrReader& r) {
  Hello h;
  h.magic = r.read_ulong();
  h.version = r.read_octet();
  h.features = r.read_ulong();
  return h;
}

void Hello::validate() const {
  if (magic != transport::kHelloMagic)
    throw DecodeError("bad hello magic", 0, "Hello");
  if (version != transport::kWireVersion)
    throw DecodeError("protocol version " + std::to_string(version) +
                          " incompatible with " + std::to_string(transport::kWireVersion),
                      4, "Hello");
}

Hello local_hello() noexcept {
  Hello h;
  if (frame_crc()) h.features |= transport::kFeatureFrameCrc;
  return h;
}

// --- Peer quarantine --------------------------------------------------------

bool PeerGuard::note_bad_frame(const std::string& peer, const std::string& why) {
  if (obs::enabled()) {
    static obs::Counter& c = obs::metrics().counter("wire.bad_frames");
    c.add(1);
  }
  const unsigned limit = bad_frame_limit();
  bool newly_quarantined = false;
  unsigned count = 0;
  std::vector<QuarantineListener> to_fire;
  {
    LockGuard lock(mutex_);
    count = peer.empty() ? 0 : ++bad_[peer];
    if (limit != 0 && !peer.empty() && count >= limit &&
        quarantined_.insert(peer).second) {
      newly_quarantined = true;
      quarantined_count_.store(quarantined_.size(), std::memory_order_relaxed);
      to_fire = listeners_;  // fire outside the lock (lock-order hygiene)
    }
  }
  PARDIS_LOG(kWarn, "wire") << "bad frame from peer '" << peer << "' (" << count
                            << "): " << why;
  if (newly_quarantined) {
    if (obs::enabled()) {
      static obs::Counter& c = obs::metrics().counter("wire.quarantined_peers");
      c.add(1);
    }
    PARDIS_LOG(kWarn, "wire") << "peer '" << peer << "' quarantined after " << count
                              << " bad frames";
    for (const auto& listener : to_fire) listener(peer);
  }
  return newly_quarantined;
}

bool PeerGuard::quarantined(const std::string& peer) const {
  if (quarantined_count_.load(std::memory_order_relaxed) == 0) return false;
  if (peer.empty()) return false;
  LockGuard lock(mutex_);
  return quarantined_.count(peer) != 0;
}

void PeerGuard::add_listener(QuarantineListener listener) {
  LockGuard lock(mutex_);
  listeners_.push_back(std::move(listener));
}

unsigned PeerGuard::bad_frames(const std::string& peer) const {
  LockGuard lock(mutex_);
  const auto it = bad_.find(peer);
  return it == bad_.end() ? 0 : it->second;
}

void PeerGuard::reset() {
  LockGuard lock(mutex_);
  bad_.clear();
  quarantined_.clear();
  listeners_.clear();
  quarantined_count_.store(0, std::memory_order_relaxed);
}

PeerGuard& guard() noexcept {
  static PeerGuard g;
  return g;
}

}  // namespace pardis::wire
