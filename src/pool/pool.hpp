// pardis_pool — replica groups, health-aware client-side load
// balancing, and transparent failover.
//
// The paper's ORB brokers each name to exactly one (possibly SPMD)
// object. pardis_pool lifts that to a *replica group*: N functionally
// equivalent servers register under one name (core::ReplicaGroup, an
// epoch counting membership changes), and the client picks a replica
// per invocation instead of per bind.
//
//  - Balancer: the per-group selector. Policies: round-robin,
//    least-inflight (fed by the pardis_flow in-flight window), and
//    overload-aware (least-inflight weighted by a health score, with
//    kOverload retry-after hints quarantining the shedding replica).
//    Health is passive: harvested from ClientCtx::fail_peer, from
//    SessionTransport redial outcomes, and from the per-invocation
//    verdicts of ft::with_retry. A hard failure (kCommFailure /
//    kTimeout) halves the health score and quarantines the member
//    under an exponentially growing probation; when probation expires
//    the member gets exactly one recovery-probe pick — success
//    re-admits it, failure re-quarantines it for longer.
//
//  - GroupBinding: one core::Binding facade the generated proxies and
//    ft::with_retry see, retargeted across replicas. Each replica
//    keeps its own (binding id, next sequence number) pair, so every
//    server still observes dense per-binding sequence numbers — the
//    POA's in-order dispatch gate is never left waiting on a hole that
//    went to a sibling. Failover rides the with_retry verdict: on an
//    agreed retryable kCommFailure/kTimeout the binding re-resolves
//    the group, retargets at a sibling, and the idempotent operation
//    restarts there with a fresh request identity. For SPMD clients
//    every choice (per-invocation select() and failover alike) is a
//    rank-0 decision broadcast to the whole domain, so all P threads
//    always target the same replica.
//
// With PARDIS_POOL unset, GroupBinding degrades to the classic
// single-binding path (core::bind / core::spmd_bind): no group lookup,
// no hooks — resolution and invocation wire bytes are identical to a
// plain binding. Obs counters: pool.picks, pool.failovers,
// pool.quarantined.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/client.hpp"
#include "core/registry.hpp"

namespace pardis::pool {

/// Master toggle, read once from PARDIS_POOL (1/true/on/yes). Off
/// (the default), GroupBinding::bind/spmd_bind degrade to the classic
/// single-binding resolution path.
bool enabled() noexcept;
/// Test/bench hook overriding the environment.
void set_enabled(bool on) noexcept;

enum class Policy : Octet {
  kRoundRobin = 0,     ///< rotate over the eligible members
  kLeastInflight = 1,  ///< fewest outstanding invocations (flow window)
  kOverloadAware = 2,  ///< least-inflight weighted by health; kOverload
                       ///< hints quarantine the shedding replica
};

struct PoolConfig {
  Policy policy = Policy::kOverloadAware;
  /// Base quarantine after a hard failure (kCommFailure/kTimeout);
  /// doubles per consecutive failure, capped at 64x.
  std::chrono::milliseconds probation{1000};
  /// Quarantine for a kOverload shed without a retry-after hint
  /// (kOverloadAware policy only; a hint longer than this wins).
  std::chrono::milliseconds overload_quarantine{50};
  /// Health decays multiplicatively on a hard failure and recovers
  /// additively on success; scores live in [min_health, 1].
  double failure_decay = 0.5;
  double recovery_step = 0.25;
  double min_health = 0.05;

  /// PARDIS_POOL_POLICY (rr|least|overload),
  /// PARDIS_POOL_PROBATION_MS, PARDIS_POOL_OVERLOAD_MS; read once per
  /// process.
  static PoolConfig from_env();
};

/// Per-replica state exposed to tests, diagnostics and the bench's
/// pick-distribution report.
struct MemberStat {
  std::string key;  ///< ObjectRef::primary_key()
  std::string host;
  double health = 1.0;
  std::uint64_t picks = 0;
  int consecutive_failures = 0;
  bool quarantined = false;
};

/// Health-aware replica selector for one group. Thread-safe: the
/// passive health feeds (fail_peer listeners, session redial
/// listeners) may fire from threads other than the picking one.
class Balancer {
 public:
  /// `inflight` maps a member key to this client's outstanding
  /// invocation count toward it (ClientCtx::inflight); null = 0.
  /// Members whose server_size differs from the first member's are
  /// dropped with a warning — failover re-sends marshaled request
  /// bodies, which only transfer between equal-width servers.
  Balancer(core::ReplicaGroup group, PoolConfig cfg,
           std::function<std::size_t(const std::string&)> inflight = nullptr);

  /// Picks the member for the next invocation. `avoid` (a member key)
  /// is skipped when any alternative is eligible — the failover path
  /// passes the replica that just failed. A member whose probation
  /// just expired gets the pick as its single recovery probe. When
  /// every member is quarantined, the one closest to release is
  /// picked anyway (availability beats pickiness).
  core::ObjectRef pick(const std::string& avoid = {});

  /// Invocation against `key` completed: reset failures, recover
  /// health, lift any quarantine.
  void report_success(const std::string& key);
  /// Invocation against `key` failed with `code`; `retry_after_ms` is
  /// the server's overload hint (0 = none).
  void report_failure(const std::string& key, ErrorCode code, unsigned retry_after_ms);
  /// Passive endpoint-level health for whichever member owns `ep`:
  /// `resumed` false (a dead peer / exhausted redial budget) counts as
  /// a hard failure; true (a session that healed) is a mild penalty —
  /// the link flapped but the replica answered.
  void report_endpoint(const transport::EndpointAddr& ep, bool resumed);
  /// Wire-hardening verdict: `host` was quarantined for sending
  /// malformed frames (wire::PeerGuard). Every member living on that
  /// modeled host takes a hard failure — a corrupting peer is as
  /// untrustworthy as a crashing one.
  void report_host_abuse(const std::string& host);

  /// Replaces the membership with a fresh registry view, keeping the
  /// health state of surviving members (matched by primary_key).
  void merge(const core::ReplicaGroup& fresh);

  ULongLong epoch() const;
  std::size_t size() const;
  std::vector<MemberStat> snapshot() const;

 private:
  struct Member {
    core::ObjectRef ref;
    std::string key;
    double health = 1.0;
    int consecutive_failures = 0;
    /// Zero time_point = not quarantined.
    std::chrono::steady_clock::time_point quarantined_until{};
    bool probing = false;  ///< recovery probe granted, outcome pending
    std::uint64_t picks = 0;
  };

  void adopt_members_locked(const core::ReplicaGroup& group) PARDIS_REQUIRES(mutex_);
  Member* find_locked(const std::string& key) PARDIS_REQUIRES(mutex_);
  core::ObjectRef picked_locked(Member& m) PARDIS_REQUIRES(mutex_);
  void quarantine_locked(Member& m, std::chrono::milliseconds span) PARDIS_REQUIRES(mutex_);
  void hard_failure_locked(Member& m) PARDIS_REQUIRES(mutex_);
  void mild_failure_locked(Member& m) PARDIS_REQUIRES(mutex_);

  mutable Mutex mutex_{"pool.balancer"};
  PoolConfig cfg_;
  std::string name_;
  ULongLong epoch_ PARDIS_GUARDED_BY(mutex_) = 0;
  std::vector<Member> members_ PARDIS_GUARDED_BY(mutex_);
  std::size_t rr_next_ PARDIS_GUARDED_BY(mutex_) = 0;
  std::function<std::size_t(const std::string&)> inflight_;
};

/// A name bound to a whole replica group: owns the Balancer, the
/// single core::Binding facade proxies invoke through, and the
/// per-replica sequencing identities retarget() swaps between.
class GroupBinding : public std::enable_shared_from_this<GroupBinding> {
 public:
  /// Per-thread group binding (the pool analogue of core::bind).
  static std::shared_ptr<GroupBinding> bind(core::ClientCtx& ctx, const std::string& name,
                                            const std::string& host,
                                            const std::string& expected_type,
                                            PoolConfig cfg = PoolConfig::from_env());
  /// Collective group binding; call from every rank of the client
  /// domain. Selection and failover are rank-0 choices broadcast to
  /// the domain, so all threads target the same replica.
  static std::shared_ptr<GroupBinding> spmd_bind(core::ClientCtx& ctx,
                                                 const std::string& name,
                                                 const std::string& host,
                                                 const std::string& expected_type,
                                                 PoolConfig cfg = PoolConfig::from_env());

  /// The binding requests go through — stable across failovers
  /// (retarget swaps its innards, never the object proxies hold).
  const core::BindingPtr& binding() const noexcept { return binding_; }
  Balancer& balancer() noexcept { return *balancer_; }
  const core::ObjectRef& current() const noexcept { return binding_->ref(); }
  std::uint64_t failovers() const noexcept { return failovers_; }
  /// True when PARDIS_POOL was off at bind time: a plain single
  /// binding with no balancing or failover.
  bool degraded() const noexcept { return degraded_; }

  /// Re-picks the target for the next invocation under the policy.
  /// Call between invocations, never while one is outstanding on the
  /// binding (the outstanding reply's window slot is keyed to the old
  /// target). Collective bindings: call from every rank (costs one
  /// rank-0 broadcast). No-op when degraded or when the pick lands on
  /// the current target.
  void select();

 private:
  GroupBinding(core::ClientCtx& ctx, bool collective, bool degraded);

  /// Wires the balancer, the initial target and the ft/ctx hooks;
  /// separate from the constructor because the hooks capture
  /// weak_from_this.
  void init(core::ReplicaGroup group, PoolConfig cfg, core::ObjectRef initial,
            ULongLong initial_id, const std::string& host);
  void install_hooks();
  /// ft::with_retry failure hook: records health, and for hard
  /// failures (and overload sheds with a sibling available)
  /// re-resolves + retargets. Returns true when the binding switched.
  bool on_failure(ErrorCode code, const std::string& why, unsigned retry_after_ms);
  void on_success();
  /// Parks the current target's (id, next_seq) and restores (or
  /// creates) the new target's.
  void switch_to(const core::ObjectRef& ref, ULongLong id);
  /// The binding id for `ref`: the parked one, else `fresh`.
  ULongLong id_for(const core::ObjectRef& ref, ULongLong fresh);
  /// True when choices must be agreed through the communicator — the
  /// same condition ft::with_retry uses to pick agreement mode.
  bool coordinated() const;
  void refresh_members();

  core::ClientCtx* ctx_;
  bool collective_;
  bool degraded_;
  std::string name_;
  std::string host_;
  std::shared_ptr<Balancer> balancer_;
  core::BindingPtr binding_;
  /// Parked sequencing identities per replica (by primary_key). The
  /// *current* target's live identity is in binding_, not here.
  struct TargetSeq {
    ULongLong id = 0;
    ULong next_seq = 0;
  };
  std::map<std::string, TargetSeq> targets_;
  std::uint64_t failovers_ = 0;
};

}  // namespace pardis::pool
