#include "pool/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::pool {

namespace {

bool is_zero(std::chrono::steady_clock::time_point tp) {
  return tp.time_since_epoch().count() == 0;
}

}  // namespace

Balancer::Balancer(core::ReplicaGroup group, PoolConfig cfg,
                   std::function<std::size_t(const std::string&)> inflight)
    : cfg_(cfg), name_(group.name), inflight_(std::move(inflight)) {
  LockGuard lock(mutex_);
  adopt_members_locked(group);
  epoch_ = group.epoch;
}

void Balancer::adopt_members_locked(const core::ReplicaGroup& group) {
  std::vector<Member> next;
  int width = -1;
  for (const auto& ref : group.members) {
    if (width < 0) width = ref.server_size();
    if (ref.server_size() != width) {
      // Failover re-sends marshaled request bodies, which only
      // transfer between servers of equal width.
      PARDIS_LOG(kWarn, "pool")
          << "group '" << group.name << "': dropping member " << ref.primary_key()
          << " (server size " << ref.server_size() << " != " << width << ")";
      continue;
    }
    Member m;
    m.ref = ref;
    m.key = ref.primary_key();
    if (Member* old = find_locked(m.key)) {
      m.health = old->health;
      m.consecutive_failures = old->consecutive_failures;
      m.quarantined_until = old->quarantined_until;
      m.probing = old->probing;
      m.picks = old->picks;
    }
    next.push_back(std::move(m));
  }
  members_ = std::move(next);
}

Balancer::Member* Balancer::find_locked(const std::string& key) {
  for (auto& m : members_)
    if (m.key == key) return &m;
  return nullptr;
}

core::ObjectRef Balancer::picked_locked(Member& m) {
  ++m.picks;
  if (obs::enabled()) {
    static obs::Counter& picks = obs::metrics().counter("pool.picks");
    picks.add(1);
  }
  return m.ref;
}

core::ObjectRef Balancer::pick(const std::string& avoid) {
  LockGuard lock(mutex_);
  if (members_.empty())
    throw ObjectNotExist("pool: replica group '" + name_ + "' has no members");
  const auto now = std::chrono::steady_clock::now();

  // A member whose probation just expired takes the pick as its single
  // recovery probe: one trial invocation decides re-admission versus a
  // longer quarantine.
  for (auto& m : members_) {
    if (!is_zero(m.quarantined_until) && now >= m.quarantined_until && !m.probing &&
        m.key != avoid) {
      m.probing = true;
      m.quarantined_until = {};
      return picked_locked(m);
    }
  }

  std::vector<Member*> eligible;
  for (auto& m : members_)
    if (is_zero(m.quarantined_until) || now >= m.quarantined_until)
      eligible.push_back(&m);
  if (eligible.empty()) {
    // Every member is quarantined: availability beats pickiness — take
    // whoever is closest to release.
    Member* soonest = &members_.front();
    for (auto& m : members_)
      if (m.quarantined_until < soonest->quarantined_until) soonest = &m;
    return picked_locked(*soonest);
  }
  if (eligible.size() > 1 && !avoid.empty())
    eligible.erase(std::remove_if(eligible.begin(), eligible.end(),
                                  [&](const Member* m) { return m->key == avoid; }),
                   eligible.end());

  Member* chosen = nullptr;
  const std::size_t start = rr_next_++ % eligible.size();
  switch (cfg_.policy) {
    case Policy::kRoundRobin:
      chosen = eligible[start];
      break;
    case Policy::kLeastInflight:
    case Policy::kOverloadAware: {
      // The rotating start breaks score ties, so equal replicas still
      // share the load round-robin style.
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < eligible.size(); ++i) {
        Member* m = eligible[(start + i) % eligible.size()];
        const double load =
            inflight_ ? static_cast<double>(inflight_(m->key)) : 0.0;
        const double score = cfg_.policy == Policy::kOverloadAware
                                 ? (load + 1.0) / std::max(m->health, cfg_.min_health)
                                 : load;
        if (score < best) {
          best = score;
          chosen = m;
        }
      }
      break;
    }
  }
  return picked_locked(*chosen);
}

void Balancer::report_success(const std::string& key) {
  LockGuard lock(mutex_);
  Member* m = find_locked(key);
  if (m == nullptr) return;
  m->consecutive_failures = 0;
  m->probing = false;
  m->quarantined_until = {};
  m->health = std::min(1.0, m->health + cfg_.recovery_step);
}

void Balancer::report_failure(const std::string& key, ErrorCode code,
                              unsigned retry_after_ms) {
  LockGuard lock(mutex_);
  Member* m = find_locked(key);
  if (m == nullptr) return;
  m->probing = false;
  switch (code) {
    case ErrorCode::kOverload: {
      // A shed is pacing, not breakage: quarantine for the server's
      // hint under the overload-aware policy, no failure streak.
      if (cfg_.policy == Policy::kOverloadAware) {
        auto span = std::chrono::milliseconds(retry_after_ms);
        if (span < cfg_.overload_quarantine) span = cfg_.overload_quarantine;
        quarantine_locked(*m, span);
      }
      mild_failure_locked(*m);
      break;
    }
    case ErrorCode::kCommFailure:
    case ErrorCode::kTimeout:
      hard_failure_locked(*m);
      break;
    default:
      mild_failure_locked(*m);
      break;
  }
}

void Balancer::report_endpoint(const transport::EndpointAddr& ep, bool resumed) {
  LockGuard lock(mutex_);
  for (auto& m : members_) {
    const auto& eps = m.ref.thread_eps;
    if (std::find(eps.begin(), eps.end(), ep) == eps.end()) continue;
    if (resumed)
      mild_failure_locked(m);
    else
      hard_failure_locked(m);
    return;
  }
}

void Balancer::report_host_abuse(const std::string& host) {
  if (host.empty()) return;
  LockGuard lock(mutex_);
  for (auto& m : members_)
    if (m.ref.host == host) hard_failure_locked(m);
}

void Balancer::quarantine_locked(Member& m, std::chrono::milliseconds span) {
  m.quarantined_until = std::chrono::steady_clock::now() + span;
  m.probing = false;
  if (obs::enabled()) {
    static obs::Counter& quarantined = obs::metrics().counter("pool.quarantined");
    quarantined.add(1);
  }
  PARDIS_LOG(kInfo, "pool") << "group '" << name_ << "': member " << m.key
                            << " quarantined for " << span.count() << " ms (health "
                            << m.health << ")";
}

void Balancer::hard_failure_locked(Member& m) {
  ++m.consecutive_failures;
  m.health = std::max(cfg_.min_health, m.health * cfg_.failure_decay);
  const int shift = std::min(m.consecutive_failures - 1, 6);
  quarantine_locked(m, cfg_.probation * (1 << shift));
}

void Balancer::mild_failure_locked(Member& m) {
  m.health = std::max(cfg_.min_health, m.health * 0.9);
}

void Balancer::merge(const core::ReplicaGroup& fresh) {
  LockGuard lock(mutex_);
  if (!fresh.valid()) return;
  adopt_members_locked(fresh);
  epoch_ = fresh.epoch;
}

ULongLong Balancer::epoch() const {
  LockGuard lock(mutex_);
  return epoch_;
}

std::size_t Balancer::size() const {
  LockGuard lock(mutex_);
  return members_.size();
}

std::vector<MemberStat> Balancer::snapshot() const {
  LockGuard lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<MemberStat> out;
  out.reserve(members_.size());
  for (const auto& m : members_) {
    MemberStat s;
    s.key = m.key;
    s.host = m.ref.host;
    s.health = m.health;
    s.picks = m.picks;
    s.consecutive_failures = m.consecutive_failures;
    s.quarantined = !is_zero(m.quarantined_until) && now < m.quarantined_until;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace pardis::pool
