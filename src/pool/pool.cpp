#include "pool/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/collectives.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::pool {

// --- toggle ---------------------------------------------------------------

namespace {

/// -1 = follow the environment; 0/1 = set_enabled override.
std::atomic<int> g_enabled_override{-1};

bool env_enabled() {
  static const bool cached = [] {
    const char* v = std::getenv("PARDIS_POOL");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "1" || s == "true" || s == "on" || s == "yes";
  }();
  return cached;
}

}  // namespace

bool enabled() noexcept {
  const int o = g_enabled_override.load(std::memory_order_relaxed);
  return o < 0 ? env_enabled() : o != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- config ---------------------------------------------------------------

PoolConfig PoolConfig::from_env() {
  static const PoolConfig cached = [] {
    PoolConfig c;
    if (const char* v = std::getenv("PARDIS_POOL_POLICY")) {
      const std::string s(v);
      if (s == "rr" || s == "round-robin")
        c.policy = Policy::kRoundRobin;
      else if (s == "least" || s == "least-inflight")
        c.policy = Policy::kLeastInflight;
      else if (s == "overload" || s == "overload-aware")
        c.policy = Policy::kOverloadAware;
      else
        PARDIS_LOG(kWarn, "pool") << "unknown PARDIS_POOL_POLICY '" << s
                                  << "' (want rr|least|overload); keeping default";
    }
    if (const char* v = std::getenv("PARDIS_POOL_PROBATION_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms > 0) c.probation = std::chrono::milliseconds(ms);
    }
    if (const char* v = std::getenv("PARDIS_POOL_OVERLOAD_MS")) {
      const long ms = std::strtol(v, nullptr, 10);
      if (ms > 0) c.overload_quarantine = std::chrono::milliseconds(ms);
    }
    return c;
  }();
  return cached;
}

// --- GroupBinding ---------------------------------------------------------

namespace {

ULongLong fresh_binding_id() {
  // Pool binding ids share the object-id generator's uniqueness domain
  // (exactly like core's binding ids).
  return ObjectId::next().value;
}

/// The group for `name`: the registry's replica group when one exists,
/// else the activation-capable resolve path synthesizing a group of
/// one — so a pool client can still bind a not-yet-activated single
/// server.
core::ReplicaGroup resolve_group(core::ClientCtx& ctx, const std::string& name,
                                 const std::string& host) {
  auto group = ctx.orb().registry().lookup_group(name, host);
  if (group && group->valid()) return std::move(*group);
  core::ReplicaGroup g;
  g.name = name;
  g.members.push_back(ctx.orb().resolve(name, host));
  return g;
}

}  // namespace

GroupBinding::GroupBinding(core::ClientCtx& ctx, bool collective, bool degraded)
    : ctx_(&ctx), collective_(collective), degraded_(degraded) {}

void GroupBinding::init(core::ReplicaGroup group, PoolConfig cfg, core::ObjectRef initial,
                        ULongLong initial_id, const std::string& host) {
  name_ = group.name;
  host_ = host;
  balancer_ = std::make_shared<Balancer>(
      std::move(group), cfg,
      [ctx = ctx_](const std::string& key) { return ctx->inflight(key); });
  targets_[initial.primary_key()] = TargetSeq{initial_id, 0};
  binding_ =
      std::make_shared<core::Binding>(*ctx_, std::move(initial), collective_, initial_id);
  // pardis_wal: a durable (WAL-backed) group gets exactly-once
  // failover — one pinned sequencing stream whose identity survives
  // retargeting — instead of the idempotent fresh-identity scheme.
  if (binding_->ref().durable()) binding_->set_exactly_once(true);
  install_hooks();
}

void GroupBinding::install_hooks() {
  core::Binding::PoolHooks hooks;
  hooks.on_failure = [weak = weak_from_this()](ErrorCode code, const std::string& why,
                                               unsigned retry_after_ms) {
    auto self = weak.lock();
    return self ? self->on_failure(code, why, retry_after_ms) : false;
  };
  hooks.on_success = [weak = weak_from_this()] {
    if (auto self = weak.lock()) self->on_success();
  };
  binding_->set_pool_hooks(std::move(hooks));

  // Passive health: peers the client marks dead (broken futures,
  // failed probes, comm-thread send failures) and session redial
  // outcomes all land on the balancer's health scores. The weak
  // capture keeps a long-lived ClientCtx from touching a dead pool.
  ctx_->add_peer_failure_listener(
      [weak = std::weak_ptr<Balancer>(balancer_)](const transport::EndpointAddr& peer,
                                                  const std::string&) {
        if (auto balancer = weak.lock())
          balancer->report_endpoint(peer, /*resumed=*/false);
      });

  // Wire-hardening verdicts: a peer quarantined for sending garbage
  // (wire::PeerGuard keys the local transport by modeled host name)
  // hard-fails every member on that host, so selection routes around a
  // corrupting replica exactly like a crashing one.
  wire::guard().add_listener([weak = std::weak_ptr<Balancer>(balancer_)](
                                 const std::string& peer) {
    if (auto balancer = weak.lock()) balancer->report_host_abuse(peer);
  });
}

std::shared_ptr<GroupBinding> GroupBinding::bind(core::ClientCtx& ctx,
                                                 const std::string& name,
                                                 const std::string& host,
                                                 const std::string& expected_type,
                                                 PoolConfig cfg) {
  if (!enabled()) {
    // Degraded: the classic single-binding path, bit-for-bit — the
    // resolve, the binding and the invocation bytes are exactly what
    // core::bind produces; no hooks, no balancer decisions.
    auto gb = std::shared_ptr<GroupBinding>(
        new GroupBinding(ctx, /*collective=*/false, /*degraded=*/true));
    gb->binding_ = core::bind(ctx, name, host, expected_type);
    gb->name_ = name;
    gb->host_ = host;
    core::ReplicaGroup g;
    g.name = name;
    g.members.push_back(gb->binding_->ref());
    gb->balancer_ = std::make_shared<Balancer>(std::move(g), cfg);
    return gb;
  }
  core::ReplicaGroup group = resolve_group(ctx, name, host);
  core::ObjectRef initial = group.members.front();
  auto gb = std::shared_ptr<GroupBinding>(
      new GroupBinding(ctx, /*collective=*/false, /*degraded=*/false));
  gb->init(std::move(group), cfg, std::move(initial), fresh_binding_id(), host);
  (void)expected_type;  // replica type mismatches warn at dispatch
  return gb;
}

std::shared_ptr<GroupBinding> GroupBinding::spmd_bind(core::ClientCtx& ctx,
                                                      const std::string& name,
                                                      const std::string& host,
                                                      const std::string& expected_type,
                                                      PoolConfig cfg) {
  if (ctx.comm() == nullptr)
    throw BadInvOrder("pool::GroupBinding::spmd_bind requires an SPMD client");
  if (!enabled()) {
    auto gb = std::shared_ptr<GroupBinding>(
        new GroupBinding(ctx, /*collective=*/true, /*degraded=*/true));
    gb->binding_ = core::spmd_bind(ctx, name, host, expected_type);
    gb->name_ = name;
    gb->host_ = host;
    core::ReplicaGroup g;
    g.name = name;
    g.members.push_back(gb->binding_->ref());
    gb->balancer_ = std::make_shared<Balancer>(std::move(g), cfg);
    return gb;
  }
  // Rank 0 resolves the group and allocates the initial binding id;
  // the broadcast keeps every rank's member order — and therefore
  // every subsequent rank-0 pick — meaningful on all ranks.
  ByteBuffer blob;
  if (ctx.rank() == 0) {
    core::ReplicaGroup group = resolve_group(ctx, name, host);
    CdrWriter w(blob);
    group.marshal(w);
    w.write_ulonglong(fresh_binding_id());
  }
  ByteBuffer shared = rts::broadcast(*ctx.comm(), std::move(blob), 0);
  CdrReader r(shared.view());
  core::ReplicaGroup group = core::ReplicaGroup::unmarshal(r);
  const ULongLong id = r.read_ulonglong();
  core::ObjectRef initial = group.members.front();
  auto gb = std::shared_ptr<GroupBinding>(
      new GroupBinding(ctx, /*collective=*/true, /*degraded=*/false));
  gb->init(std::move(group), cfg, std::move(initial), id, host);
  (void)expected_type;
  return gb;
}

bool GroupBinding::coordinated() const {
  return collective_ && ctx_->comm() != nullptr && ctx_->size() > 1;
}

ULongLong GroupBinding::id_for(const core::ObjectRef& ref, ULongLong fresh) {
  auto it = targets_.find(ref.primary_key());
  return it != targets_.end() && it->second.id != 0 ? it->second.id : fresh;
}

void GroupBinding::switch_to(const core::ObjectRef& ref, ULongLong id) {
  if (binding_->exactly_once()) {
    // pardis_wal exactly-once: the request identity IS the dedup key.
    // The sibling continues the same (binding id, seq) stream — it
    // answers a committed-and-forwarded mutation from its log and
    // executes an uncommitted one in the same sequence slot, so no
    // per-replica parked identities exist.
    binding_->retarget(ref, binding_->id(), binding_->next_seq());
    return;
  }
  // Park the current target's sequencing identity; every replica keeps
  // its own dense (binding id, seq) stream so no server's in-order
  // dispatch gate is left waiting on a hole that went to a sibling.
  targets_[binding_->ref().primary_key()] =
      TargetSeq{binding_->id(), binding_->next_seq()};
  TargetSeq& t = targets_[ref.primary_key()];
  if (t.id == 0) t.id = id;
  binding_->retarget(ref, t.id, t.next_seq);
}

void GroupBinding::select() {
  if (degraded_) return;
  // Exactly-once (durable) bindings pin their target: the balancer
  // re-picking per call would interleave one sequencing stream across
  // replicas. Only a failover verdict moves the binding. Uniform
  // across ranks (every member of a durable group carries the marker),
  // so the coordinated broadcast below is safely skipped everywhere.
  if (binding_->exactly_once()) return;
  if (!coordinated()) {
    core::ObjectRef next = balancer_->pick();
    if (next.primary_key() != binding_->ref().primary_key())
      switch_to(next, id_for(next, fresh_binding_id()));
    return;
  }
  // Rank 0 picks; the choice (and, for a first visit, the sibling's
  // binding id) is broadcast so all P threads invoke on one replica.
  ByteBuffer blob;
  if (ctx_->rank() == 0) {
    core::ObjectRef next = balancer_->pick();
    const bool changed = next.primary_key() != binding_->ref().primary_key();
    CdrWriter w(blob);
    w.write_bool(changed);
    if (changed) {
      next.marshal(w);
      w.write_ulonglong(id_for(next, fresh_binding_id()));
    }
  }
  ByteBuffer shared = rts::broadcast(*ctx_->comm(), std::move(blob), 0);
  CdrReader r(shared.view());
  if (!r.read_bool()) return;
  core::ObjectRef next = core::ObjectRef::unmarshal(r);
  const ULongLong id = r.read_ulonglong();
  switch_to(next, id);
}

void GroupBinding::refresh_members() {
  try {
    // A failover re-resolve must observe the authoritative registry:
    // drop any pardis_ns cached view first (no-op on plain registries)
    // so a stale cache entry can never feed the failover loop the very
    // member that just died.
    ctx_->orb().registry().invalidate(name_);
    auto fresh = ctx_->orb().registry().lookup_group(name_, host_);
    if (fresh && fresh->valid()) balancer_->merge(*fresh);
  } catch (const SystemException& e) {
    // The registry may be unreachable in the same outage that broke
    // the replica; balance over the members we already know.
    PARDIS_LOG(kWarn, "pool") << "group '" << name_
                              << "': re-resolve failed: " << e.what();
  }
}

bool GroupBinding::on_failure(ErrorCode code, const std::string& why,
                              unsigned retry_after_ms) {
  const std::string failed_key = binding_->ref().primary_key();
  // Every rank records the failure on its local balancer (the verdict
  // is agreed, so the event is identical everywhere); only rank 0's
  // state drives decisions.
  balancer_->report_failure(failed_key, code, retry_after_ms);

  const bool hard = code == ErrorCode::kCommFailure || code == ErrorCode::kTimeout;
  const bool shed = code == ErrorCode::kOverload;
  if (!hard && !shed) return false;  // transient: retry in place

  if (!coordinated()) {
    if (hard) refresh_members();
    core::ObjectRef next = balancer_->pick(failed_key);
    if (next.primary_key() == failed_key) return false;
    switch_to(next, id_for(next, fresh_binding_id()));
    ++failovers_;
    if (obs::enabled()) {
      static obs::Counter& failovers = obs::metrics().counter("pool.failovers");
      failovers.add(1);
    }
    PARDIS_LOG(kInfo, "pool") << "group '" << name_ << "': failing over "
                              << failed_key << " -> " << binding_->ref().primary_key()
                              << " (" << why << ")";
    return true;
  }

  ByteBuffer blob;
  if (ctx_->rank() == 0) {
    if (hard) refresh_members();
    core::ObjectRef next = balancer_->pick(failed_key);
    const bool switched = next.primary_key() != failed_key;
    CdrWriter w(blob);
    w.write_bool(switched);
    if (switched) {
      next.marshal(w);
      w.write_ulonglong(id_for(next, fresh_binding_id()));
    }
  }
  ByteBuffer shared = rts::broadcast(*ctx_->comm(), std::move(blob), 0);
  CdrReader r(shared.view());
  if (!r.read_bool()) return false;
  core::ObjectRef next = core::ObjectRef::unmarshal(r);
  const ULongLong id = r.read_ulonglong();
  switch_to(next, id);
  ++failovers_;
  if (obs::enabled()) {
    static obs::Counter& failovers = obs::metrics().counter("pool.failovers");
    failovers.add(1);
  }
  PARDIS_LOG(kInfo, "pool") << "group '" << name_ << "': failing over " << failed_key
                            << " -> " << binding_->ref().primary_key() << " (" << why
                            << ")";
  return true;
}

void GroupBinding::on_success() {
  balancer_->report_success(binding_->ref().primary_key());
}

}  // namespace pardis::pool
