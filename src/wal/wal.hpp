// pardis_wal — per-object write-ahead log with group-commit fsync
// batching.
//
// PARDIS's persistent-object story (paper §7) stops at the repository:
// a binding survives the client, but a server crash takes the
// servant's state with it. pardis_pool made failover transparent for
// idempotent operations; this module supplies the missing half — a
// durable record of every committed non-idempotent mutation, so a
// restarted or sibling replica can reconstruct exactly the state the
// dead primary had acknowledged.
//
// Design:
//
//   * One Log per durable object replica, one file on disk. Records
//     are CRC32-framed ([len][crc][lsn][type][payload]) behind a
//     magic+version file header; LSNs are assigned monotonically at
//     append time and never reused.
//   * append() only enqueues — the caller gets an LSN back and keeps
//     running. A dedicated flusher thread drains the queue, writes all
//     pending records with one write() and makes them durable with ONE
//     fsync, so N concurrent commits pay one disk barrier, not N
//     (group commit). commit(lsn) blocks until the durable watermark
//     covers lsn. pardis-lint PT001 enforces the split: fsync is
//     unreachable from append().
//   * Recovery scans the file front to back, keeps every record whose
//     CRC matches, and truncates the first torn or corrupt frame and
//     everything after it (a torn tail is the expected shape of a
//     crash mid-write; anything *behind* a valid tail was fsynced and
//     cannot be torn). The dropped LSN is reported via obs
//     (wal.torn_dropped / Log::first_dropped_lsn) so tests and
//     operators can see exactly what a crash cost.
//
// The module depends only on common+obs; everything that understands
// request headers or POA keys lives above it in core/durable.*.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/crc.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"

namespace pardis::wal {

/// The master toggle: PARDIS_WAL=1/true/on/yes, overridable with
/// set_enabled() (tests/benches). Off, no durable marker is marshaled,
/// no log file is opened and no kHandlerStateXfer frame is sent — the
/// wire and the filesystem are byte-identical to the pre-WAL build.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Directory for log files (PARDIS_WAL_DIR, default "pardis-wal"),
/// overridable with set_dir(). Created on first Log construction.
std::string dir();
void set_dir(const std::string& d);

/// Log sequence number. 0 is never assigned (== "nothing durable").
using Lsn = ULongLong;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes` — exposed so
/// torn-write tests can forge/verify frames without a Log instance.
/// Now a thin alias over the shared pardis::crc32 (common/crc.hpp);
/// kept so existing callers and golden frame CRCs are unchanged.
inline ULong crc32(std::span<const Octet> bytes) noexcept { return pardis::crc32(bytes); }

/// One recovered or read-back record.
struct Record {
  Lsn lsn = 0;
  Octet type = 0;
  ByteBuffer payload;
};

/// Result of a pure recovery scan over a log file body (everything
/// after the 5-byte magic+version header). Factored out of the Log
/// constructor so the fuzz harness can exercise the exact recovery
/// parser against arbitrary bytes without touching the filesystem.
struct ScanResult {
  /// Records whose CRC matched, in file order (== LSN-assignment order).
  std::vector<Record> records;
  /// Bytes of valid frames from the front of `body` — the offset (minus
  /// the file header) a recovering Log truncates to.
  std::uint64_t valid_bytes = 0;
  /// LSN of the first dropped record (0 = clean scan to the end).
  Lsn first_dropped_lsn = 0;
  /// Count of dropped frames (torn tail counts as 1).
  std::uint64_t dropped = 0;
};

/// Scans `body` front to back, keeping every CRC-valid frame and
/// stopping at the first torn or corrupt one — the same semantics the
/// Log constructor applies to a reopened file.
ScanResult scan_records(std::span<const Octet> body);

/// A single object replica's write-ahead log. Thread-safe: any number
/// of threads may append/commit concurrently; read() is safe for
/// records at or below the durable watermark.
class Log {
 public:
  /// Opens (creating if absent) the log at `path` and runs recovery:
  /// header validation, CRC scan, torn-tail truncation. The recovered
  /// records are available via take_recovered() until taken.
  explicit Log(std::string path);
  ~Log();

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Enqueues one record for the flusher and returns its LSN. Never
  /// blocks on the disk (lint-enforced); durability is commit()'s job.
  Lsn append(Octet type, ByteBuffer payload);

  /// Blocks until every record with lsn' <= lsn is fsynced. Concurrent
  /// commits batch into one fsync (group commit). Throws if the log is
  /// stopped before lsn becomes durable — a committer racing the
  /// destructor must never be told an un-fsynced record is durable.
  void commit(Lsn lsn);

  /// Reads one durable record back from disk (pread; no seek shared
  /// with the flusher). Empty when lsn is unknown or not yet durable.
  std::optional<Record> read(Lsn lsn) const;

  /// Highest LSN known durable.
  Lsn durable_lsn() const noexcept { return durable_lsn_.load(std::memory_order_acquire); }
  /// Highest LSN assigned (durable or still queued).
  Lsn last_lsn() const noexcept { return next_lsn_.load(std::memory_order_acquire) - 1; }

  /// Records that survived the recovery scan, in LSN order. The buffer
  /// is moved out on first call (recovery state is transient).
  std::vector<Record> take_recovered();

  /// LSN of the first record dropped by torn-tail truncation (0 =
  /// clean recovery). Also counted in the wal.torn_dropped metric.
  Lsn first_dropped_lsn() const noexcept { return first_dropped_lsn_; }

  const std::string& path() const noexcept { return path_; }

 private:
  void flusher_main();

  struct Pending {
    Lsn lsn;
    Octet type;
    ByteBuffer payload;
  };

  std::string path_;
  int fd_ = -1;

  std::atomic<Lsn> next_lsn_{1};
  std::atomic<Lsn> durable_lsn_{0};
  Lsn first_dropped_lsn_ = 0;

  mutable Mutex mu_{"wal::Log"};
  std::condition_variable_any cv_;         // flusher wake + committer wake
  std::vector<Pending> pending_ PARDIS_GUARDED_BY(mu_);
  std::unordered_map<Lsn, std::pair<std::uint64_t, ULong>> index_
      PARDIS_GUARDED_BY(mu_);  // lsn -> (file offset, payload length)
  std::uint64_t file_size_ PARDIS_GUARDED_BY(mu_) = 0;
  std::vector<Record> recovered_ PARDIS_GUARDED_BY(mu_);
  bool stop_ PARDIS_GUARDED_BY(mu_) = false;
  bool flusher_exited_ PARDIS_GUARDED_BY(mu_) = false;

  std::thread flusher_;
};

}  // namespace pardis::wal
