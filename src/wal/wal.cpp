#include "wal/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/wire.hpp"
#include "obs/obs.hpp"
#include "obs/metrics.hpp"

namespace pardis::wal {

namespace {

/// -1 = follow the environment; 0/1 = set_enabled override.
std::atomic<int> g_enabled_override{-1};

bool env_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("PARDIS_WAL");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "1" || s == "true" || s == "on" || s == "yes";
  }();
  return on;
}

Mutex& dir_mu() {
  // pardis-lint: allow(unannotated-mutex) function-local: guards the
  // dir_storage() string below, which annotations cannot reference.
  static Mutex mu{"wal::dir"};
  return mu;
}

std::string& dir_storage() {
  static std::string d = [] {
    const char* v = std::getenv("PARDIS_WAL_DIR");
    return std::string(v != nullptr ? v : "pardis-wal");
  }();
  return d;
}

// On-disk layout. File header: magic (ULong) + version (Octet).
// Record: len (ULong, payload bytes) + crc (ULong, over lsn+type+
// payload) + lsn (ULongLong) + type (Octet) + payload. All
// little-endian host byte order — a log is private to one host.
constexpr std::uint64_t kFileHeaderSize = sizeof(ULong) + sizeof(Octet);
constexpr std::uint64_t kRecordHeaderSize =
    sizeof(ULong) + sizeof(ULong) + sizeof(ULongLong) + sizeof(Octet);

ULong frame_crc(Lsn lsn, Octet type, std::span<const Octet> payload) {
  // One chained CRC over [lsn][type][payload] without concatenating —
  // byte-identical to checksumming the assembled frame head + payload.
  ULong state = crc32_begin();
  state = crc32_update(state, {reinterpret_cast<const Octet*>(&lsn), sizeof(lsn)});
  state = crc32_update(state, {&type, sizeof(type)});
  state = crc32_update(state, payload);
  return crc32_final(state);
}

}  // namespace

bool enabled() noexcept {
  const int o = g_enabled_override.load(std::memory_order_relaxed);
  return o < 0 ? env_enabled() : o != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string dir() {
  LockGuard lock(dir_mu());
  return dir_storage();
}

void set_dir(const std::string& d) {
  LockGuard lock(dir_mu());
  dir_storage() = d;
}

ScanResult scan_records(std::span<const Octet> body) {
  ScanResult out;
  std::uint64_t off = 0;
  Lsn max_lsn = 0;
  while (off + kRecordHeaderSize <= body.size()) {
    ULong len = 0, crc = 0;
    Lsn lsn = 0;
    Octet type = 0;
    std::memcpy(&len, body.data() + off, sizeof(len));
    std::memcpy(&crc, body.data() + off + sizeof(len), sizeof(crc));
    std::memcpy(&lsn, body.data() + off + sizeof(len) + sizeof(crc), sizeof(lsn));
    std::memcpy(&type, body.data() + off + sizeof(len) + sizeof(crc) + sizeof(lsn),
                sizeof(type));
    if (off + kRecordHeaderSize + len > body.size()) break;  // torn tail
    const auto payload = body.subspan(off + kRecordHeaderSize, len);
    if (frame_crc(lsn, type, payload) != crc) {
      // Corrupt frame: everything behind it was fsynced before this
      // record was written, so the valid prefix is the durable state.
      if (out.first_dropped_lsn == 0) out.first_dropped_lsn = lsn;
      ++out.dropped;
      break;
    }
    Record rec;
    rec.lsn = lsn;
    rec.type = type;
    rec.payload = ByteBuffer::from(payload);
    out.records.push_back(std::move(rec));
    if (lsn > max_lsn) max_lsn = lsn;
    off += kRecordHeaderSize + len;
  }
  out.valid_bytes = off;
  if (off < body.size()) {
    if (out.first_dropped_lsn == 0) out.first_dropped_lsn = max_lsn + 1;
    if (out.dropped == 0) out.dropped = 1;
  }
  return out;
}

Log::Log(std::string path) : path_(std::move(path)) {
  {
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(path_).parent_path(), ec);
  }
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw SystemException(ErrorCode::kInternal, "wal: cannot open " + path_ + ": " +
                                                    std::strerror(errno));

  // --- recovery scan -------------------------------------------------
  struct ::stat st {};
  ::fstat(fd_, &st);
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  if (size == 0) {
    // Fresh log: stamp the header.
    ByteBuffer hdr;
    const ULong magic = kWalMagic;
    const Octet version = kWalVersion;
    hdr.append_raw(&magic, sizeof(magic));
    hdr.append_raw(&version, sizeof(version));
    if (::pwrite(fd_, hdr.data(), hdr.size(), 0) != static_cast<ssize_t>(hdr.size()))
      throw SystemException(ErrorCode::kInternal, "wal: cannot stamp " + path_);
    file_size_ = kFileHeaderSize;
  } else {
    ULong magic = 0;
    Octet version = 0;
    bool header_ok = size >= kFileHeaderSize &&
                     ::pread(fd_, &magic, sizeof(magic), 0) == sizeof(magic) &&
                     ::pread(fd_, &version, sizeof(version), sizeof(magic)) == sizeof(version);
    if (!header_ok || magic != kWalMagic)
      throw SystemException(ErrorCode::kInternal, "wal: " + path_ + " is not a PARDIS log");
    if (version != kWalVersion) {
      // Unknown format: recover as empty rather than misparse. The old
      // body is dropped and the header restamped NOW — leaving the old
      // version byte in place would make every future restart recover
      // empty again, silently losing all records appended since.
      PARDIS_LOG(kWarn, "wal") << path_ << ": version " << int(version)
                               << " != " << int(kWalVersion) << ", recovering empty";
      ByteBuffer hdr;
      const ULong cur_magic = kWalMagic;
      const Octet cur_version = kWalVersion;
      hdr.append_raw(&cur_magic, sizeof(cur_magic));
      hdr.append_raw(&cur_version, sizeof(cur_version));
      if (::ftruncate(fd_, static_cast<off_t>(kFileHeaderSize)) != 0 ||
          ::pwrite(fd_, hdr.data(), hdr.size(), 0) != static_cast<ssize_t>(hdr.size()) ||
          ::fsync(fd_) != 0)
        throw SystemException(ErrorCode::kInternal, "wal: cannot restamp " + path_);
      size = kFileHeaderSize;
    }

    // Pull the whole body into memory and hand it to the pure scanner
    // (shared with the fuzz harness). A short read recovers what it
    // could — the scanner treats the missing tail as torn.
    ByteBuffer body;
    const std::uint64_t body_len = size - kFileHeaderSize;
    std::uint64_t body_got = 0;
    if (body_len > 0) {
      const ssize_t got =
          ::pread(fd_, body.grow(body_len), body_len, static_cast<off_t>(kFileHeaderSize));
      body_got = got > 0 ? static_cast<std::uint64_t>(got) : 0;
    }
    ScanResult scan = scan_records(body.view().first(body_got));
    first_dropped_lsn_ = scan.first_dropped_lsn;

    std::uint64_t off = kFileHeaderSize;
    Lsn max_lsn = 0;
    for (Record& rec : scan.records) {
      const ULong len = static_cast<ULong>(rec.payload.size());
      index_[rec.lsn] = {off, len};
      if (rec.lsn > max_lsn) max_lsn = rec.lsn;
      off += kRecordHeaderSize + len;
      recovered_.push_back(std::move(rec));
    }
    if (off < size) {
      // Incomplete/corrupt tail: truncate so future appends start on a
      // clean frame boundary. (A short body read can reach here with a
      // clean scan — the unread tail is still dropped.)
      if (first_dropped_lsn_ == 0) first_dropped_lsn_ = max_lsn + 1;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0)
        throw SystemException(ErrorCode::kInternal, "wal: cannot truncate " + path_);
      PARDIS_LOG(kWarn, "wal") << path_ << ": dropped torn tail at offset " << off
                               << " (first lost lsn " << first_dropped_lsn_ << ")";
    }
    file_size_ = off;
    next_lsn_.store(max_lsn + 1, std::memory_order_release);
    durable_lsn_.store(max_lsn, std::memory_order_release);

    if (obs::enabled()) {
      static obs::Counter& recovered = obs::metrics().counter("wal.recovered");
      static obs::Counter& torn = obs::metrics().counter("wal.torn_dropped");
      recovered.add(recovered_.size());
      if (scan.dropped > 0) torn.add(scan.dropped);
    }
  }

  flusher_ = std::thread([this] { flusher_main(); });
}

Log::~Log() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Lsn Log::append(Octet type, ByteBuffer payload) {
  Lsn lsn = 0;
  {
    // The LSN is assigned in the same critical section as the pending_
    // push, so the queue is always in LSN order and every flusher batch
    // is a contiguous prefix. Assigning it outside mu_ would let a
    // preempted lower-LSN appender miss a batch whose max covers it:
    // durable_lsn_ would then ack a record that is not on disk.
    LockGuard lock(mu_);
    lsn = next_lsn_.fetch_add(1, std::memory_order_acq_rel);
    pending_.push_back(Pending{lsn, type, std::move(payload)});
  }
  cv_.notify_all();
  if (obs::enabled()) {
    static obs::Counter& appends = obs::metrics().counter("wal.appends");
    appends.add();
  }
  return lsn;
}

void Log::commit(Lsn lsn) {
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return;
  UniqueLock lock(mu_);
  while (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    // stop_ alone is not a reason to give up: the flusher drains every
    // pending record before exiting, so keep waiting while it runs.
    // Returning normally here would ack a record that was never fsynced.
    if (flusher_exited_)
      throw SystemException(ErrorCode::kInternal,
                            "wal: " + path_ + " stopped before LSN " +
                                std::to_string(lsn) + " became durable");
    cv_.wait(lock);
  }
}

std::optional<Record> Log::read(Lsn lsn) const {
  std::uint64_t off = 0;
  ULong len = 0;
  {
    LockGuard lock(mu_);
    auto it = index_.find(lsn);
    if (it == index_.end()) return std::nullopt;
    off = it->second.first;
    len = it->second.second;
  }
  if (durable_lsn_.load(std::memory_order_acquire) < lsn) return std::nullopt;
  Octet rh[kRecordHeaderSize];
  if (::pread(fd_, rh, sizeof(rh), static_cast<off_t>(off)) !=
      static_cast<ssize_t>(sizeof(rh)))
    return std::nullopt;
  Record rec;
  rec.lsn = lsn;
  std::memcpy(&rec.type, rh + sizeof(ULong) + sizeof(ULong) + sizeof(Lsn), sizeof(rec.type));
  if (len > 0 && ::pread(fd_, rec.payload.grow(len), len,
                         static_cast<off_t>(off + kRecordHeaderSize)) !=
                     static_cast<ssize_t>(len))
    return std::nullopt;
  return rec;
}

std::vector<Record> Log::take_recovered() {
  LockGuard lock(mu_);
  return std::move(recovered_);
}

void Log::flusher_main() {
  UniqueLock lock(mu_);
  while (true) {
    while (pending_.empty() && !stop_) cv_.wait(lock);
    if (pending_.empty() && stop_) {
      flusher_exited_ = true;  // commit() waiters past durable_lsn_ must throw
      cv_.notify_all();
      return;
    }

    // Take the whole batch: every record appended while the previous
    // fsync was in flight rides this one (group commit).
    std::vector<Pending> batch;
    batch.swap(pending_);

    // Frame the batch and claim its file range while still holding the
    // lock (so read() can find offsets the moment durable_lsn_ moves).
    ByteBuffer frames;
    Lsn batch_max = 0;
    std::uint64_t write_off = file_size_;
    for (const Pending& p : batch) {
      const ULong len = static_cast<ULong>(p.payload.size());
      const ULong crc = frame_crc(p.lsn, p.type, p.payload.view());
      const std::uint64_t rec_off = write_off + frames.size();
      frames.append_raw(&len, sizeof(len));
      frames.append_raw(&crc, sizeof(crc));
      frames.append_raw(&p.lsn, sizeof(p.lsn));
      frames.append_raw(&p.type, sizeof(p.type));
      frames.append(p.payload.view());
      index_[p.lsn] = {rec_off, len};
      if (p.lsn > batch_max) batch_max = p.lsn;
    }
    file_size_ += frames.size();

    lock.unlock();  // the disk barrier runs without blocking appenders
    bool ok = ::pwrite(fd_, frames.data(), frames.size(), static_cast<off_t>(write_off)) ==
              static_cast<ssize_t>(frames.size());
    // pardis-lint: allow(blocking) the flusher thread owns the one fsync per batch
    ok = ok && ::fsync(fd_) == 0;
    lock.lock();

    if (!ok) {
      // A failed barrier means the records may not be durable; leaving
      // durable_lsn_ behind keeps committers blocked rather than
      // acknowledging state the disk never took. Crash loudly instead.
      PARDIS_LOG(kError, "wal") << path_ << ": write/fsync failed: " << std::strerror(errno);
      throw SystemException(ErrorCode::kInternal, "wal: write/fsync failed on " + path_);
    }

    durable_lsn_.store(batch_max, std::memory_order_release);
    cv_.notify_all();

    if (obs::enabled()) {
      static obs::Counter& fsyncs = obs::metrics().counter("wal.fsyncs");
      static obs::Histogram& batch_size = obs::metrics().histogram("wal.batch_records");
      fsyncs.add();
      batch_size.record(static_cast<double>(batch.size()));
    }
  }
}

}  // namespace pardis::wal
