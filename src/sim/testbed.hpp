// Host and link cost models, plus presets for the paper's testbed.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.hpp"
#include "sim/fault_plan.hpp"

namespace pardis::sim {

/// A modeled machine: computing threads bound to a host charge
/// `flops / (gflops * 1e9)` virtual seconds per kernel.
struct HostModel {
  std::string name;
  /// Sustained per-thread compute rate, in GFLOP/s. Absolute values are
  /// 1997-scale so virtual times land in the paper's seconds range.
  double gflops = 1.0;
  /// Number of computing threads the host offers (paper: 4-node Onyx,
  /// 10-node SGI PC, 8 SP/2 nodes).
  int max_threads = 1;
  /// Intra-host message cost (shared memory / fast interconnect).
  double intra_latency_s = 5e-6;
  double intra_bandwidth_bps = 200e6;  // bytes per second

  /// Charges `flops` of modeled work to the calling thread's clock.
  void charge_flops(double flops) const noexcept {
    charge_seconds(flops / (gflops * 1e9));
  }

  double intra_delay(std::size_t bytes) const noexcept {
    return intra_latency_s + static_cast<double>(bytes) / intra_bandwidth_bps;
  }
};

/// A modeled network link between two hosts.
struct LinkModel {
  double latency_s = 0.0;
  double bandwidth_bps = std::numeric_limits<double>::infinity();  // bytes/s

  double delay(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }

  /// A dedicated 155 Mb/s ATM link (paper, examples 4.1 and 4.2).
  static LinkModel atm_155();
  /// Shared Ethernet (paper, example 4.3).
  static LinkModel ethernet();
  /// Loopback (same host, through the transport rather than the RTS).
  static LinkModel loopback();
};

/// A set of hosts and the links between them. Queried by the transports
/// when charging communication time.
class Testbed {
 public:
  /// Adds a host; returns a stable pointer (hosts are never removed).
  const HostModel* add_host(HostModel host);

  /// Symmetric link between two hosts (by name).
  void connect(const std::string& a, const std::string& b, LinkModel link);

  /// Host lookup by name; nullptr when unknown.
  const HostModel* host(const std::string& name) const;

  /// Link between two hosts. Same-host queries return loopback; unknown
  /// pairs return `default_link`.
  const LinkModel& link(const std::string& a, const std::string& b) const;

  void set_default_link(LinkModel link) { default_link_ = link; }

  /// Fault-injection schedule consulted by the transports. Shared:
  /// copies of a Testbed (e.g. the paper_testbed() value) see the same
  /// plan, so a test can keep scheduling faults after handing the
  /// testbed to a transport.
  FaultPlan& faults() const noexcept { return *faults_; }

  /// The paper's hardware: HOST1 = 4-node SGI Onyx R4400 (slow),
  /// HOST2 = 10-node SGI Power Challenge R8000 (fast), SP2 = 8-node IBM
  /// SP/2, WS = Sun/SGI workstation. HOST1-HOST2 use the dedicated ATM
  /// link; all other pairs use Ethernet. GFLOP/s values are 1997-scale
  /// (tens of MFLOP/s) chosen so the reproduced curves land in the same
  /// seconds range as the paper's figures.
  static Testbed paper_testbed();

  /// Conventional host names used across benches and examples.
  static constexpr const char* kHost1 = "HOST1";
  static constexpr const char* kHost2 = "HOST2";
  static constexpr const char* kSp2 = "SP2";
  static constexpr const char* kWorkstation = "WS";

 private:
  std::vector<std::unique_ptr<HostModel>> hosts_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  LinkModel default_link_ = LinkModel::ethernet();
  LinkModel loopback_ = LinkModel::loopback();
  std::shared_ptr<FaultPlan> faults_ = std::make_shared<FaultPlan>();
};

}  // namespace pardis::sim
