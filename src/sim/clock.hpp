// Virtual time.
//
// The paper's experiments ran on a 1997 testbed (SGI Onyx R4400, SGI PC
// R8000, IBM SP/2, ATM and Ethernet links). To reproduce the *shape* of
// those results deterministically on any build machine, every computing
// thread can be bound to a SimClock. Compute kernels charge modeled
// seconds to the bound clock; every message carries its sender's clock
// and the receiver merges `max(own, sender + link delay)` on receipt.
// The elapsed virtual time of a phase is the max over all participating
// threads, which yields exactly the paper's overlap algebra
// `t = t_o + max(t_i, t_d)` (caption of Figure 2).
//
// When no clock is bound to the current thread, all charging/merging is
// a no-op and timestamps read as zero, so the model costs nothing in
// ordinary (non-benchmark) use.
#pragma once

namespace pardis::sim {

/// A monotone virtual clock, owned by one computing thread at a time.
class SimClock {
 public:
  double now() const noexcept { return now_; }
  void advance(double seconds) noexcept {
    if (seconds > 0) now_ += seconds;
  }
  /// Lamport-style merge: the clock never runs backwards.
  void merge(double other_time) noexcept {
    if (other_time > now_) now_ = other_time;
  }
  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// The clock bound to the calling thread, or nullptr.
SimClock* current_clock() noexcept;

/// RAII binding of a clock to the current thread (nesting restores the
/// previous binding on destruction).
class ClockBinding {
 public:
  explicit ClockBinding(SimClock& clock) noexcept;
  ~ClockBinding();
  ClockBinding(const ClockBinding&) = delete;
  ClockBinding& operator=(const ClockBinding&) = delete;

 private:
  SimClock* previous_;
};

/// Virtual "now" of the calling thread (0 when unbound).
double timestamp_now() noexcept;

/// Advances the calling thread's clock (no-op when unbound).
void charge_seconds(double seconds) noexcept;

/// Merges a received timestamp into the calling thread's clock.
void merge_time(double remote_time) noexcept;

}  // namespace pardis::sim
