#include "sim/fault_plan.hpp"

#include <algorithm>

namespace pardis::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan::LinkSchedule& FaultPlan::link_locked(const std::string& src,
                                                const std::string& dst) {
  active_.store(true, std::memory_order_relaxed);
  return links_[{src, dst}];
}

void FaultPlan::drop_message(const std::string& src, const std::string& dst,
                             std::uint64_t index) {
  LockGuard lock(mutex_);
  link_locked(src, dst).drops.insert(index);
}

void FaultPlan::fail_message(const std::string& src, const std::string& dst,
                             std::uint64_t index) {
  LockGuard lock(mutex_);
  link_locked(src, dst).fails.insert(index);
}

void FaultPlan::duplicate_message(const std::string& src, const std::string& dst,
                                  std::uint64_t index) {
  LockGuard lock(mutex_);
  link_locked(src, dst).duplicates.insert(index);
}

void FaultPlan::delay_message(const std::string& src, const std::string& dst,
                              std::uint64_t index, double seconds) {
  LockGuard lock(mutex_);
  link_locked(src, dst).delays[index] = seconds;
}

void FaultPlan::corrupt_message(const std::string& src, const std::string& dst,
                                std::uint64_t index, std::uint64_t seed,
                                CorruptMode mode) {
  LockGuard lock(mutex_);
  link_locked(src, dst).corrupts[index] = {mode, seed};
}

void FaultPlan::corrupt_link(const std::string& a, const std::string& b,
                             std::uint64_t seed, CorruptMode mode) {
  LockGuard lock(mutex_);
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    LinkSchedule& link = link_locked(key.first, key.second);
    link.corrupt_all = true;
    link.corrupt_all_mode = mode;
    // Directions get distinct streams so request and reply corruption
    // do not mirror each other.
    link.corrupt_state = seed + (key.first < key.second ? 0 : 1);
  }
}

void FaultPlan::sever_link(const std::string& a, const std::string& b) {
  LockGuard lock(mutex_);
  link_locked(a, b).severed = true;
  link_locked(b, a).severed = true;
}

void FaultPlan::heal_locked(const std::string& a, const std::string& b) {
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    auto it = links_.find(key);
    if (it == links_.end()) continue;
    it->second.severed = false;
    it->second.heal_at_index = UINT64_MAX;
    it->second.heal_time_set = false;
    it->second.corrupt_all = false;
  }
}

void FaultPlan::heal_link(const std::string& a, const std::string& b) {
  LockGuard lock(mutex_);
  heal_locked(a, b);
}

void FaultPlan::heal_link_at(const std::string& src, const std::string& dst,
                             std::uint64_t index) {
  LockGuard lock(mutex_);
  link_locked(src, dst).heal_at_index = index;
}

void FaultPlan::heal_link_after(const std::string& a, const std::string& b,
                                double seconds) {
  LockGuard lock(mutex_);
  const auto when = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
  for (const auto& key : {std::pair{a, b}, std::pair{b, a}}) {
    LinkSchedule& link = link_locked(key.first, key.second);
    link.heal_at_time = when;
    link.heal_time_set = true;
  }
}

void FaultPlan::kill_endpoint(ULongLong key) {
  LockGuard lock(mutex_);
  active_.store(true, std::memory_order_relaxed);
  killed_.insert(key);
}

void FaultPlan::restart_endpoint(ULongLong key) {
  LockGuard lock(mutex_);
  killed_.erase(key);
}

void FaultPlan::seed_schedule(const std::string& src, const std::string& dst,
                              std::uint64_t seed, double p, std::uint64_t horizon) {
  LockGuard lock(mutex_);
  LinkSchedule& link = link_locked(src, dst);
  std::uint64_t state = seed;
  for (std::uint64_t i = 0; i < horizon; ++i) {
    // Map the top 53 bits to [0, 1) — enough resolution for a drop rate.
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    if (u < p) link.drops.insert(i);
  }
}

void FaultPlan::clear() {
  LockGuard lock(mutex_);
  links_.clear();
  killed_.clear();
  active_.store(false, std::memory_order_relaxed);
}

FaultPlan::Decision FaultPlan::on_message(const std::string& src, const std::string& dst,
                                          ULongLong dst_key) {
  Decision d;
  LockGuard lock(mutex_);
  if (killed_.count(dst_key) != 0) {
    d.sever = true;
    return d;
  }
  auto it = links_.find({src, dst});
  if (it == links_.end()) return d;
  LinkSchedule& link = it->second;
  const std::uint64_t index = link.next_index++;
  if (link.severed) {
    const bool heal_by_index = index >= link.heal_at_index;
    const bool heal_by_time =
        link.heal_time_set && std::chrono::steady_clock::now() >= link.heal_at_time;
    if (heal_by_index || heal_by_time) {
      heal_locked(src, dst);  // whole link: replies flow again too
    } else {
      d.sever = true;
      return d;
    }
  }
  if (link.fails.count(index) != 0) {
    d.fail_transient = true;
    return d;
  }
  d.drop = link.drops.count(index) != 0;
  d.duplicate = link.duplicates.count(index) != 0;
  auto delay = link.delays.find(index);
  if (delay != link.delays.end()) d.extra_delay_s = delay->second;
  if (link.corrupt_all) {
    d.corrupt = true;
    d.corrupt_mode = link.corrupt_all_mode;
    d.corrupt_rand = splitmix64(link.corrupt_state);
  } else if (auto corrupt = link.corrupts.find(index); corrupt != link.corrupts.end()) {
    d.corrupt = true;
    d.corrupt_mode = corrupt->second.first;
    // Copy the stored seed: a retry replaying this index must see the
    // identical corruption, not advance a stream.
    std::uint64_t state = corrupt->second.second;
    d.corrupt_rand = splitmix64(state);
  }
  return d;
}

void corrupt_payload(ByteBuffer& payload, CorruptMode mode, std::uint64_t rand) noexcept {
  const std::size_t size = payload.size();
  if (size == 0) return;
  switch (mode) {
    case CorruptMode::kBitFlip: {
      const std::uint64_t bit = rand % (size * 8);
      payload.mutable_view()[bit / 8] ^= static_cast<Octet>(1u << (bit % 8));
      break;
    }
    case CorruptMode::kTruncate: {
      // Always strictly shorter (keep in [0, size-1]).
      const std::size_t keep = static_cast<std::size_t>(rand % size);
      payload = ByteBuffer::from(payload.view().first(keep));
      break;
    }
    case CorruptMode::kGarbage: {
      std::uint64_t state = rand;
      const std::size_t n =
          1 + static_cast<std::size_t>(splitmix64(state) % std::min<std::size_t>(32, size));
      const std::size_t start = static_cast<std::size_t>(splitmix64(state) % (size - n + 1));
      auto bytes = payload.mutable_view();
      for (std::size_t i = 0; i < n; ++i)
        bytes[start + i] = static_cast<Octet>(splitmix64(state) & 0xFF);
      break;
    }
  }
}

}  // namespace pardis::sim
