// Deterministic fault injection for the transports.
//
// A FaultPlan holds per-link schedules (drop / transient-fail / delay /
// duplicate / sever, addressed by 0-based message index on a directed
// src→dst host pair) and a set of killed endpoints. Transports consult
// the plan on every RSR; the test installs the schedule up front, so
// every fault fires at an exact, reproducible point in the message
// stream — no sleeps, no races. `seed_schedule` derives a pseudo-random
// drop schedule from a seed (splitmix64) for soak-style tests that
// still replay bit-identically.
//
// An inactive plan (nothing installed) is a single relaxed atomic load
// on the send path, so fault-free runs stay behaviorally identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/buffer.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"

namespace pardis::sim {

/// How a corrupt-link fault mangles a payload (wire hardening: the
/// corruption shapes a real network produces).
enum class CorruptMode : Octet {
  kBitFlip = 0,   ///< flip one pseudo-randomly chosen bit
  kTruncate = 1,  ///< cut the payload short at a pseudo-random length
  kGarbage = 2,   ///< overwrite a pseudo-random run with noise bytes
};

class FaultPlan {
 public:
  /// What the transport should do with one message.
  struct Decision {
    bool drop = false;            ///< lose it silently (receiver never sees it)
    bool duplicate = false;       ///< deliver it twice
    bool fail_transient = false;  ///< sender observes TransientError
    bool sever = false;           ///< sender observes CommFailure
    double extra_delay_s = 0.0;   ///< additional modeled link delay
    bool corrupt = false;         ///< mangle the payload before delivery
    CorruptMode corrupt_mode = CorruptMode::kBitFlip;
    /// Pseudo-random draw (splitmix64) fixing exactly which bit/length/
    /// run this corruption hits, so the same seed replays bit-identically.
    std::uint64_t corrupt_rand = 0;

    bool faulty() const noexcept {
      return drop || duplicate || fail_transient || sever || extra_delay_s != 0.0 ||
             corrupt;
    }
  };

  /// True once any schedule was installed; transports skip the plan
  /// entirely while false.
  bool active() const noexcept { return active_.load(std::memory_order_relaxed); }

  /// Link name the pardis_ns announce fan-out consults for a
  /// subscriber on `host`. A dedicated "mcast:" namespace keeps
  /// announce faults (which fire once per published frame per
  /// subscriber) from consuming message indices on the host's normal
  /// transport links, so indexed schedules stay exact.
  static std::string announce_dst(const std::string& host) { return "mcast:" + host; }

  // --- schedule installation (test side) ---

  /// Silently loses message #`index` on the directed src→dst link.
  void drop_message(const std::string& src, const std::string& dst, std::uint64_t index);

  /// Message #`index` on src→dst fails at the sender with
  /// TransientError — the observable "please retry" failure.
  void fail_message(const std::string& src, const std::string& dst, std::uint64_t index);

  /// Delivers message #`index` on src→dst twice.
  void duplicate_message(const std::string& src, const std::string& dst,
                         std::uint64_t index);

  /// Adds `seconds` of modeled delay to message #`index` on src→dst.
  void delay_message(const std::string& src, const std::string& dst, std::uint64_t index,
                     double seconds);

  /// Corrupts message #`index` on src→dst: the payload is mangled per
  /// `mode` under a splitmix64 draw from `seed`, so the same seed hits
  /// the same bit/length/run every run.
  void corrupt_message(const std::string& src, const std::string& dst,
                       std::uint64_t index, std::uint64_t seed,
                       CorruptMode mode = CorruptMode::kBitFlip);

  /// Corrupts EVERY message on the link between two hosts (both
  /// directions, from now on) until heal_link/clear. Each message gets
  /// a fresh draw from the seeded stream — a persistently noisy link
  /// rather than a single flipped bit.
  void corrupt_link(const std::string& a, const std::string& b, std::uint64_t seed,
                    CorruptMode mode = CorruptMode::kBitFlip);

  /// Severs the link between two hosts (both directions, from now on):
  /// every send fails with CommFailure.
  void sever_link(const std::string& a, const std::string& b);

  /// Restores a severed link immediately (both directions). Sends that
  /// already failed stay failed; the next send goes through.
  void heal_link(const std::string& a, const std::string& b);

  /// Schedules the sever on src→dst to lift once that link's message
  /// index reaches `index` (reconnect attempts consume indices like
  /// any other send). When the trigger fires, both directions heal —
  /// matching sever_link's whole-link semantics — so the test can
  /// express "the Nth redial succeeds" without sleeps.
  void heal_link_at(const std::string& src, const std::string& dst, std::uint64_t index);

  /// Schedules the link to heal (both directions) `seconds` of wall
  /// time after now — for tests pacing reconnect backoff rather than
  /// counting attempts.
  void heal_link_after(const std::string& a, const std::string& b, double seconds);

  /// Kills the endpoint with transport key `key` (EndpointAddr::local_id
  /// for the in-process transport, tcp_ep for TCP): every send to it —
  /// including liveness probes — fails with CommFailure, which is how a
  /// dead server rank looks to its peers.
  void kill_endpoint(ULongLong key);

  /// Undoes kill_endpoint for one endpoint: the modeled process comes
  /// back up at the same address with its durable state (WAL files on
  /// disk) intact — the pardis_wal restart-recovery scenario. Other
  /// kills and link faults stay in force.
  void restart_endpoint(ULongLong key);

  /// Seeds a pseudo-random drop schedule: each of the first `horizon`
  /// messages on src→dst is dropped with probability `p` under a
  /// splitmix64 stream, so the same seed replays the same faults.
  void seed_schedule(const std::string& src, const std::string& dst, std::uint64_t seed,
                     double p, std::uint64_t horizon);

  /// Removes every schedule and killed endpoint.
  void clear();

  // --- transport side ---

  /// Consumes one message slot on the directed src→dst link and returns
  /// what to do with it. Only called while active(); every call advances
  /// the link's message index, probes included.
  Decision on_message(const std::string& src, const std::string& dst, ULongLong dst_key);

 private:
  struct LinkSchedule {
    std::set<std::uint64_t> drops;
    std::set<std::uint64_t> fails;
    std::set<std::uint64_t> duplicates;
    std::map<std::uint64_t, double> delays;
    /// index → (mode, seed) for single-message corruption.
    std::map<std::uint64_t, std::pair<CorruptMode, std::uint64_t>> corrupts;
    /// Whole-link corruption (corrupt_link) until healed.
    bool corrupt_all = false;
    CorruptMode corrupt_all_mode = CorruptMode::kBitFlip;
    std::uint64_t corrupt_state = 0;  ///< seeded stream for corrupt_all draws
    bool severed = false;
    /// Sever lifts when next_index reaches this (UINT64_MAX = never).
    std::uint64_t heal_at_index = UINT64_MAX;
    /// Sever lifts at this wall-clock instant (when heal_time_set).
    std::chrono::steady_clock::time_point heal_at_time{};
    bool heal_time_set = false;
    std::uint64_t next_index = 0;
  };

  LinkSchedule& link_locked(const std::string& src, const std::string& dst)
      PARDIS_REQUIRES(mutex_);
  void heal_locked(const std::string& a, const std::string& b) PARDIS_REQUIRES(mutex_);

  mutable Mutex mutex_{"sim.fault_plan"};
  std::atomic<bool> active_{false};
  std::map<std::pair<std::string, std::string>, LinkSchedule> links_ PARDIS_GUARDED_BY(mutex_);
  std::set<ULongLong> killed_ PARDIS_GUARDED_BY(mutex_);
};

/// Applies a Decision's corruption to `payload` in place (called by
/// both transports after the drop/duplicate verdict, before delivery).
/// Deterministic in (mode, rand); an empty payload is left untouched.
void corrupt_payload(ByteBuffer& payload, CorruptMode mode, std::uint64_t rand) noexcept;

}  // namespace pardis::sim
