#include "sim/clock.hpp"

namespace pardis::sim {

namespace {
thread_local SimClock* t_clock = nullptr;
}

SimClock* current_clock() noexcept { return t_clock; }

ClockBinding::ClockBinding(SimClock& clock) noexcept : previous_(t_clock) {
  t_clock = &clock;
}

ClockBinding::~ClockBinding() { t_clock = previous_; }

double timestamp_now() noexcept { return t_clock != nullptr ? t_clock->now() : 0.0; }

void charge_seconds(double seconds) noexcept {
  if (t_clock != nullptr) t_clock->advance(seconds);
}

void merge_time(double remote_time) noexcept {
  if (t_clock != nullptr) t_clock->merge(remote_time);
}

}  // namespace pardis::sim
