#include "sim/testbed.hpp"

#include <algorithm>

namespace pardis::sim {

LinkModel LinkModel::atm_155() {
  // 155 Mb/s ATM; effective payload bandwidth after cell overhead is
  // ~17 MB/s. One-way latency on a dedicated local link.
  return LinkModel{.latency_s = 500e-6, .bandwidth_bps = 17e6};
}

LinkModel LinkModel::ethernet() {
  // Shared 10 Mb/s Ethernet of the era: ~1 MB/s effective.
  return LinkModel{.latency_s = 1e-3, .bandwidth_bps = 1.0e6};
}

LinkModel LinkModel::loopback() {
  return LinkModel{.latency_s = 20e-6, .bandwidth_bps = 100e6};
}

const HostModel* Testbed::add_host(HostModel host) {
  hosts_.push_back(std::make_unique<HostModel>(std::move(host)));
  return hosts_.back().get();
}

const HostModel* Testbed::host(const std::string& name) const {
  for (const auto& h : hosts_)
    if (h->name == name) return h.get();
  return nullptr;
}

void Testbed::connect(const std::string& a, const std::string& b, LinkModel link) {
  auto key = std::minmax(a, b);
  links_[{key.first, key.second}] = link;
}

const LinkModel& Testbed::link(const std::string& a, const std::string& b) const {
  if (a == b) return loopback_;
  auto key = std::minmax(a, b);
  auto it = links_.find({key.first, key.second});
  return it != links_.end() ? it->second : default_link_;
}

Testbed Testbed::paper_testbed() {
  Testbed tb;
  // R4400 Onyx node: ~30 MFLOP/s sustained on dense linear algebra.
  tb.add_host(HostModel{.name = kHost1, .gflops = 0.030, .max_threads = 4});
  // R8000 Power Challenge node: ~3x faster sustained.
  tb.add_host(HostModel{.name = kHost2, .gflops = 0.090, .max_threads = 10});
  // SP/2 P2SC node.
  tb.add_host(HostModel{.name = kSp2, .gflops = 0.080, .max_threads = 8});
  // Visualization workstation.
  tb.add_host(HostModel{.name = kWorkstation, .gflops = 0.020, .max_threads = 1});
  tb.connect(kHost1, kHost2, LinkModel::atm_155());
  tb.set_default_link(LinkModel::ethernet());
  return tb;
}

}  // namespace pardis::sim
