// Announce-based discovery for pardis_ns.
//
// Repositories periodically multicast their shard map so clients can
// bootstrap by *listening* instead of being configured with
// PARDIS_REPO_ADDR. An announce frame is:
//
//     ULong     magic    0x50414E53 ("PANS")
//     Octet     version  1
//     ULongLong digest   ShardMap::digest(key) — keyed, so a listener
//                        under a different PARDIS_NS_KEY (or a frame
//                        corrupted in flight) is rejected silently
//     ShardMap  map
//
// Two carriers share the frame format:
//
//   * AnnounceBus — the Testbed-simulated multicast: subscribers are
//     transport endpoints, publish() enqueues the frame on every live
//     one under handler kHandlerAnnounce. Fault plans apply per
//     subscriber on the dedicated "mcast:<host>" link namespace
//     (FaultPlan::announce_dst), so a test can sever announcements to
//     one host without disturbing the indexed schedules of its normal
//     links.
//   * UDP — udp_announce() / UdpAnnounceListener for real processes on
//     one machine (loopback unicast to the listener's port; the
//     datagram payload is exactly the frame above).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "ns/shard_map.hpp"
#include "sim/fault_plan.hpp"
#include "transport/endpoint.hpp"

namespace pardis::ns {

/// Builds one announce frame for `map` under `key`.
ByteBuffer make_announce(const ShardMap& map, ULongLong key);

/// Parses an announce frame; nullopt when the magic, version or keyed
/// digest does not verify (never throws on garbage input).
std::optional<ShardMap> parse_announce(std::span<const Octet> bytes, ULongLong key,
                                       bool little_endian = kNativeLittleEndian);

/// Simulated multicast: fans an announce frame out to subscribed
/// endpoints. Thread-safe; dead subscribers fall off on publish.
class AnnounceBus {
 public:
  /// `faults` (optional, unowned) gates delivery per subscriber on the
  /// "mcast:<subscriber host>" links.
  explicit AnnounceBus(sim::FaultPlan* faults = nullptr) : faults_(faults) {}

  void subscribe(const std::shared_ptr<transport::Endpoint>& ep);

  /// Publishes `map` from `src_host` to every live subscriber.
  /// Returns how many subscribers received the frame.
  std::size_t publish(const ShardMap& map, ULongLong key, const std::string& src_host);

 private:
  sim::FaultPlan* faults_;
  Mutex mutex_{"ns.announce_bus"};
  std::vector<std::weak_ptr<transport::Endpoint>> subs_ PARDIS_GUARDED_BY(mutex_);
};

/// Periodic announcer: publishes `map` on `bus` every `period` from
/// its own daemon thread (repositories announce; computing threads
/// never block on it).
class Announcer {
 public:
  Announcer(AnnounceBus& bus, ShardMap map, ULongLong key, std::string src_host,
            std::chrono::milliseconds period);
  ~Announcer();

  Announcer(const Announcer&) = delete;
  Announcer& operator=(const Announcer&) = delete;

  /// One immediate publish (also what the thread does per tick).
  void announce_now();

 private:
  AnnounceBus* bus_;
  ShardMap map_;
  ULongLong key_;
  std::string src_host_;
  std::chrono::milliseconds period_;
  Mutex mutex_{"ns.announcer"};
  std::condition_variable_any cv_;
  bool stopping_ PARDIS_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

/// Drains `ep` until a verifying announce frame arrives (bootstrap:
/// make an endpoint, subscribe it, wait). nullopt on timeout or when
/// the endpoint closes.
std::optional<ShardMap> wait_for_map(transport::Endpoint& ep, ULongLong key,
                                     std::chrono::milliseconds timeout);

/// Sends one announce datagram to 127.0.0.1:`port` (UDP carrier).
/// Returns false when the socket layer refuses (no datagram loopback).
bool udp_announce(UShort port, const ShardMap& map, ULongLong key);

/// Listening socket for UDP announces. Binds 127.0.0.1:`port` (0 = an
/// ephemeral port, reported by port()).
class UdpAnnounceListener {
 public:
  explicit UdpAnnounceListener(UShort port = 0);
  ~UdpAnnounceListener();

  UdpAnnounceListener(const UdpAnnounceListener&) = delete;
  UdpAnnounceListener& operator=(const UdpAnnounceListener&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }
  UShort port() const noexcept { return port_; }

  /// Blocks until a verifying announce arrives or `timeout` passes.
  std::optional<ShardMap> wait_for_map(ULongLong key, std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  UShort port_ = 0;
};

}  // namespace pardis::ns
