// pardis_ns — sharded, replicated naming with leases, client caching,
// and announce-based discovery.
//
// The paper's repository is one process holding one namespace (§2.2:
// "Each repository is associated with a unique namespace"). pardis_ns
// turns that namespace into a *service*:
//
//   * the name space is sharded by consistent hashing (ns::ShardMap —
//     N virtual nodes per shard keep the key distribution even and
//     minimize movement when the shard count changes);
//   * each shard is a replica set of RepositoryServers, and writes fan
//     out to every replica of the owning shard, so killing one
//     repository process loses no names (dogfooding the pardis_pool
//     health machinery for read-side replica selection);
//   * clients hold an ns::ResolverCache — positive entries invalidated
//     by replica-group epoch, negative entries aging out on a TTL;
//   * registrations may carry a *lease* renewed by a background
//     heartbeat; a crashed server's names garbage-collect when the
//     heartbeat stops, instead of squatting forever;
//   * repositories announce a keyed digest of their shard map
//     (ns::AnnounceBus / UDP), so clients bootstrap by listening
//     instead of being configured with PARDIS_REPO_ADDR.
//
// Everything is gated on PARDIS_NS. Off (the default), nothing in the
// resolve or registration path changes and registration frames are
// byte-identical to the pre-ns wire format (the lease rides as an
// optional trailer that lease-free frames simply do not carry).
//
// Obs counters: ns.resolve_hits, ns.resolve_misses, ns.renewals,
// ns.expired, ns.repo_reconnects.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace pardis::ns {

/// Master toggle, read once from PARDIS_NS (1/true/on/yes). Off, the
/// naming facades degrade to the classic single-repository path.
bool enabled() noexcept;
/// Test/bench hook overriding the environment.
void set_enabled(bool on) noexcept;

struct NsConfig {
  /// Number of namespace shards, in [1, 64].
  ULong shards = 1;
  /// Virtual nodes per shard on the consistent-hash ring, in [1, 256].
  ULong vnodes = 16;
  /// Registration lease attached by the sharded facade; 0 = register
  /// permanently (the pre-ns behavior, and the wire bytes to match).
  std::chrono::milliseconds lease{0};
  /// Heartbeat cadence for lease renewal; 0 = lease / 3.
  std::chrono::milliseconds renew_interval{0};
  /// How long a cached "no such name" answer is believed.
  std::chrono::milliseconds negative_ttl{100};
  /// Cadence of shard-map announcements.
  std::chrono::milliseconds announce_period{250};
  /// Keyed digest for announce frames: a listener drops announcements
  /// whose digest does not verify under its own key, so a stray or
  /// corrupt frame cannot poison the shard map.
  ULongLong announce_key = kDefaultAnnounceKey;
  /// Client-side resolver caching (positive + negative entries).
  bool cache = true;
  /// Per-call budget for repository RPCs issued by the sharded facade;
  /// -1 = OrbConfig::resolve_timeout. Shorter values make failover to
  /// a sibling replica snappier.
  std::chrono::milliseconds repo_timeout{-1};

  static constexpr ULongLong kDefaultAnnounceKey = 0x5041524449535F4EULL;  // "PARDIS_N"

  /// The renewal cadence actually used: renew_interval, else lease/3
  /// (floored at 1 ms so a tiny lease still heartbeats).
  std::chrono::milliseconds effective_renew() const noexcept;

  /// Environment configuration, read once per process and validated:
  /// PARDIS_NS_SHARDS, PARDIS_NS_VNODES, PARDIS_NS_LEASE_MS,
  /// PARDIS_NS_RENEW_MS, PARDIS_NS_NEG_TTL_MS, PARDIS_NS_ANNOUNCE_MS,
  /// PARDIS_NS_KEY, PARDIS_NS_CACHE, PARDIS_NS_REPO_TIMEOUT_MS.
  static NsConfig from_env();

  /// Clamps out-of-range values to the documented bounds with one warn
  /// line each (never throws: a bad knob degrades, it does not take
  /// the process down). from_env() runs its result through this.
  static NsConfig validated(NsConfig raw);
};

}  // namespace pardis::ns
