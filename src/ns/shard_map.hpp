// Consistent-hash shard map for the pardis_ns namespace.
//
// The namespace splits over `shards.size()` shards; each shard is a
// replica set of repository endpoints. A name is routed by consistent
// hashing: every shard projects `vnodes` points onto a 64-bit ring
// (derived from the shard *index*, not its addresses, so replacing a
// replica moves no names), and a name lands on the first point
// clockwise from its own hash. Virtual nodes keep the per-shard load
// within a few percent of even and bound the churn when the shard
// count changes to the names between the moved points.
//
// The map is versioned: announcers publish it with a monotonically
// increasing `version`, and adopt_map keeps the highest version seen —
// so a stale repeated announcement can never roll a client back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "transport/endpoint.hpp"

namespace pardis::ns {

/// splitmix64 — the repo-standard deterministic mixer (fault plans,
/// jitter) reused for ring points and digests.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes, then mixed: the name hash for ring placement.
inline std::uint64_t hash_name(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ULL;
  }
  return mix64(h);
}

/// One ring point: (position, shard index).
using RingPoint = std::pair<std::uint64_t, ULong>;

struct ShardMap {
  /// One shard's replica set: functionally equivalent repository
  /// servers, every one holding the full shard.
  struct Shard {
    std::vector<transport::EndpointAddr> replicas;

    bool operator==(const Shard&) const = default;
  };

  ULong vnodes = 16;
  ULongLong version = 1;
  std::vector<Shard> shards;

  bool valid() const noexcept;

  /// The sorted ring (shards.size() * vnodes points). Callers on a hot
  /// path build it once and route through pick().
  std::vector<RingPoint> build_ring() const;

  /// The shard owning `name` on a prebuilt ring.
  static ULong pick(const std::vector<RingPoint>& ring, const std::string& name);

  /// Convenience routing (builds the ring; fine off the hot path).
  ULong shard_for(const std::string& name) const;

  /// Keyed digest of the marshaled map — announce frames carry it so a
  /// listener can reject frames produced under a different key (or
  /// corrupted in flight).
  ULongLong digest(ULongLong key) const;

  void marshal(CdrWriter& w) const;
  static ShardMap unmarshal(CdrReader& r);

  bool operator==(const ShardMap&) const = default;
};

}  // namespace pardis::ns
