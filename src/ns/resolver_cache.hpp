// Client-side resolver cache for pardis_ns.
//
// Two entry kinds, two invalidation disciplines:
//
//   * positive entries (a name's replica group) carry the group
//     *epoch* and never age out on their own — they die when a fresher
//     epoch is observed (note_epoch) or the name is invalidated
//     outright (the pool failover path calls ObjectRegistry::invalidate
//     before re-resolving, so a stale view can never feed failover);
//   * negative entries ("no such name") age out on a TTL — the one
//     place time-based invalidation is right, because nothing observes
//     an epoch for a name that does not exist yet.
//
// The clock is pluggable so tests drive negative-TTL expiry from the
// sim clock instead of sleeping.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/mutex.hpp"
#include "core/registry.hpp"

namespace pardis::ns {

class ResolverCache {
 public:
  enum class Outcome {
    kMiss,      ///< nothing cached: ask the repository
    kHit,       ///< positive entry returned through `out`
    kNegative,  ///< fresh "no such name" answer: report not-found
  };

  /// `now_seconds` replaces the clock for negative-entry aging; null =
  /// process steady clock.
  explicit ResolverCache(std::chrono::milliseconds negative_ttl,
                         std::function<double()> now_seconds = nullptr);

  /// Looks (name, host) up; fills `out` (may be null) on kHit.
  /// Counts obs ns.resolve_hits (hit or fresh negative) and
  /// ns.resolve_misses.
  Outcome get(const std::string& name, const std::string& host, core::ReplicaGroup* out);

  void put(const std::string& name, const std::string& host, core::ReplicaGroup group);
  void put_negative(const std::string& name, const std::string& host);

  /// Drops every entry for `name` (all hosts, both kinds).
  void invalidate(const std::string& name);

  /// A registration under `name` returned `epoch`: positive entries
  /// with an older epoch are stale and dropped, and any negative entry
  /// dies (the name exists now).
  void note_epoch(const std::string& name, ULongLong epoch);

  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    bool negative = false;
    double expires_at = 0.0;  ///< negative entries only
    core::ReplicaGroup group;
  };

  double now() const;

  mutable Mutex mutex_{"ns.resolver_cache"};
  std::chrono::milliseconds negative_ttl_;
  std::function<double()> now_seconds_;
  std::map<std::pair<std::string, std::string>, Entry> entries_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::ns
