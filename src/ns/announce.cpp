#include "ns/announce.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace pardis::ns {

// kAnnounceMagic / kAnnounceVersion come from the wire-constant
// registry (core/wire.hpp, via transport/endpoint.hpp).

ByteBuffer make_announce(const ShardMap& map, ULongLong key) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_ulong(kAnnounceMagic);
  w.write_octet(kAnnounceVersion);
  w.write_ulonglong(map.digest(key));
  map.marshal(w);
  return frame;
}

std::optional<ShardMap> parse_announce(std::span<const Octet> bytes, ULongLong key,
                                       bool little_endian) {
  try {
    CdrReader r(bytes, little_endian);
    if (r.read_ulong() != kAnnounceMagic) return std::nullopt;
    if (r.read_octet() != kAnnounceVersion) return std::nullopt;
    const ULongLong digest = r.read_ulonglong();
    ShardMap map = ShardMap::unmarshal(r);
    if (map.digest(key) != digest) return std::nullopt;  // wrong key or corrupt
    if (!map.valid()) return std::nullopt;
    return map;
  } catch (const std::exception&) {
    return std::nullopt;  // truncated / malformed frame
  }
}

// --- simulated multicast --------------------------------------------------

void AnnounceBus::subscribe(const std::shared_ptr<transport::Endpoint>& ep) {
  LockGuard lock(mutex_);
  subs_.push_back(ep);
}

std::size_t AnnounceBus::publish(const ShardMap& map, ULongLong key,
                                 const std::string& src_host) {
  const ByteBuffer frame = make_announce(map, key);
  std::vector<std::shared_ptr<transport::Endpoint>> live;
  {
    LockGuard lock(mutex_);
    auto it = subs_.begin();
    while (it != subs_.end()) {
      auto ep = it->lock();
      if (!ep || ep->closed()) {
        it = subs_.erase(it);
      } else {
        live.push_back(std::move(ep));
        ++it;
      }
    }
  }
  std::size_t delivered = 0;
  for (const auto& ep : live) {
    if (faults_ != nullptr && faults_->active()) {
      const auto d = faults_->on_message(
          src_host, sim::FaultPlan::announce_dst(ep->addr().host_model), 0);
      // Multicast is advertisory: any fault just loses this frame for
      // this subscriber (there is no sender to throw at).
      if (d.drop || d.sever || d.fail_transient) continue;
    }
    transport::RsrMessage msg;
    msg.handler = transport::kHandlerAnnounce;
    msg.little_endian = kNativeLittleEndian;
    msg.sim_time = sim::timestamp_now();
    msg.payload = frame.clone();
    ep->enqueue(std::move(msg));
    ++delivered;
  }
  return delivered;
}

Announcer::Announcer(AnnounceBus& bus, ShardMap map, ULongLong key, std::string src_host,
                     std::chrono::milliseconds period)
    : bus_(&bus),
      map_(std::move(map)),
      key_(key),
      src_host_(std::move(src_host)),
      period_(period.count() > 0 ? period : std::chrono::milliseconds(1)) {
  thread_ = std::thread([this] {
    UniqueLock lock(mutex_);
    for (;;) {
      const auto deadline = std::chrono::steady_clock::now() + period_;
      while (!stopping_) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      if (stopping_) return;
      lock.unlock();
      announce_now();
      lock.lock();
    }
  });
}

Announcer::~Announcer() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Announcer::announce_now() { bus_->publish(map_, key_, src_host_); }

std::optional<ShardMap> wait_for_map(transport::Endpoint& ep, ULongLong key,
                                     std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto res = ep.wait_for(std::chrono::ceil<std::chrono::milliseconds>(deadline - now));
    if (res.closed() || res.timed_out()) return std::nullopt;
    const auto& msg = *res.message;
    if (msg.handler != transport::kHandlerAnnounce) continue;
    if (auto map = parse_announce(msg.payload.view(), key, msg.little_endian)) return map;
  }
}

// --- UDP carrier ----------------------------------------------------------

bool udp_announce(UShort port, const ShardMap& map, ULongLong key) {
  const ByteBuffer frame = make_announce(map, key);
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return false;
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(port);
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const ssize_t n = ::sendto(fd, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  ::close(fd);
  return n == static_cast<ssize_t>(frame.size());
}

UdpAnnounceListener::UdpAnnounceListener(UShort port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    PARDIS_LOG(kWarn, "ns") << "udp announce listener: socket() failed";
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    PARDIS_LOG(kWarn, "ns") << "udp announce listener: bind failed";
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
}

UdpAnnounceListener::~UdpAnnounceListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<ShardMap> UdpAnnounceListener::wait_for_map(
    ULongLong key, std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Octet buf[64 * 1024];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int rc = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
    if (rc <= 0) continue;  // timeout or EINTR: the loop head re-checks
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (n <= 0) continue;
    // A datagram is a self-contained frame in the sender's byte order;
    // same-machine loopback means native order.
    if (auto map = parse_announce({buf, static_cast<std::size_t>(n)}, key)) return map;
  }
}

}  // namespace pardis::ns
