#include "ns/sharded_registry.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "ft/ft.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::ns {

namespace {

bool retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kCommFailure || code == ErrorCode::kTransient ||
         code == ErrorCode::kTimeout;
}

/// Synthetic reference the balancer tracks a repository replica under;
/// primary_key() is the replica's endpoint address.
core::ObjectRef replica_ref(std::size_t shard_idx, const transport::EndpointAddr& addr) {
  core::ObjectRef ref;
  ref.type_id = "IDL:pardis/ns/shard:1.0";
  ref.name = "__ns.shard" + std::to_string(shard_idx);
  ref.host = addr.host_model;
  ref.object_id = ObjectId::next();
  ref.thread_eps.push_back(addr);
  return ref;
}

}  // namespace

ShardedRegistry::ShardedRegistry(transport::Transport& transport, ShardMap map,
                                 NsConfig cfg, std::string src_host_model)
    : transport_(&transport),
      cfg_(cfg),
      src_host_model_(std::move(src_host_model)),
      cache_(cfg.negative_ttl) {
  if (!map.valid())
    throw BadParam("ShardedRegistry: invalid shard map (empty shard or replica set)");
  LockGuard lock(mutex_);
  build_shards_locked(map);
}

ShardedRegistry::~ShardedRegistry() {
  {
    LockGuard lock(lease_mutex_);
    stopping_ = true;
  }
  lease_cv_.notify_all();
  if (keeper_.joinable()) keeper_.join();
}

void ShardedRegistry::build_shards_locked(const ShardMap& map) {
  map_ = map;
  ring_ = map.build_ring();
  shards_.clear();
  shards_.reserve(map.shards.size());
  for (std::size_t s = 0; s < map.shards.size(); ++s) {
    auto shard = std::make_shared<Shard>();
    core::ReplicaGroup group;
    group.name = "__ns.shard" + std::to_string(s);
    for (const auto& addr : map.shards[s].replicas) {
      Replica rep;
      rep.addr = addr;
      rep.key = addr.to_string();
      rep.client = std::make_unique<repo::RemoteRegistry>(*transport_, addr,
                                                          cfg_.repo_timeout,
                                                          src_host_model_);
      group.members.push_back(replica_ref(s, addr));
      shard->replicas.push_back(std::move(rep));
    }
    shard->balancer = std::make_unique<pool::Balancer>(std::move(group),
                                                       pool::PoolConfig::from_env());
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<ShardedRegistry::Shard> ShardedRegistry::shard_for(
    const std::string& name) {
  LockGuard lock(mutex_);
  return shards_[ShardMap::pick(ring_, name)];
}

std::shared_ptr<ShardedRegistry::Shard> ShardedRegistry::shard_at(std::size_t idx) const {
  LockGuard lock(mutex_);
  return shards_[idx];
}

std::size_t ShardedRegistry::shard_count() const {
  LockGuard lock(mutex_);
  return shards_.size();
}

ShardMap ShardedRegistry::map() const {
  LockGuard lock(mutex_);
  return map_;
}

std::size_t ShardedRegistry::leased_names() const {
  LockGuard lock(lease_mutex_);
  return leases_.size();
}

bool ShardedRegistry::adopt_map(const ShardMap& fresh) {
  if (!fresh.valid()) return false;
  {
    LockGuard lock(mutex_);
    if (fresh.version <= map_.version) return false;
    build_shards_locked(fresh);
  }
  // Shard boundaries may have moved: every cached route is suspect.
  cache_.clear();
  return true;
}

// --- failover plumbing ----------------------------------------------------

template <typename Fn>
auto ShardedRegistry::read_one(Shard& shard, std::uint64_t salt, Fn&& op) {
  const ft::RetryPolicy pacing;  // 2 ms base, x2, deterministic jitter
  std::string avoid;
  std::exception_ptr last;
  const std::size_t attempts = shard.replicas.size();
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    const core::ObjectRef pick = shard.balancer->pick(avoid);
    const std::string key = pick.primary_key();
    auto it = std::find_if(shard.replicas.begin(), shard.replicas.end(),
                           [&](const Replica& r) { return r.key == key; });
    if (it == shard.replicas.end()) break;  // membership changed under us
    try {
      auto result = op(*it->client);
      shard.balancer->report_success(key);
      return result;
    } catch (const SystemException& e) {
      if (!retryable(e.code())) throw;
      shard.balancer->report_failure(key, e.code(), 0);
      last = std::current_exception();
      avoid = key;
      if (attempt + 1 < attempts)
        std::this_thread::sleep_for(
            ft::backoff_delay(pacing, static_cast<int>(attempt) + 1, salt));
    }
  }
  if (last) std::rethrow_exception(last);
  throw CommFailure("ns: no reachable replica in shard");
}

template <typename Fn>
auto ShardedRegistry::write_all(Shard& shard, Fn&& op)
    -> std::vector<decltype(op(std::declval<repo::RemoteRegistry&>()))> {
  std::vector<decltype(op(std::declval<repo::RemoteRegistry&>()))> results;
  std::exception_ptr last;
  for (auto& rep : shard.replicas) {
    try {
      results.push_back(op(*rep.client));
      shard.balancer->report_success(rep.key);
    } catch (const SystemException& e) {
      if (!retryable(e.code())) throw;
      shard.balancer->report_failure(rep.key, e.code(), 0);
      last = std::current_exception();
    }
  }
  // One reachable replica is enough: its copy keeps the name alive and
  // siblings resynchronize on their next registration refresh.
  if (results.empty() && last) std::rethrow_exception(last);
  return results;
}

// --- reads ----------------------------------------------------------------

std::optional<core::ObjectRef> ShardedRegistry::lookup(const std::string& name,
                                                       const std::string& host) {
  if (cfg_.cache) {
    core::ReplicaGroup cached;
    switch (cache_.get(name, host, &cached)) {
      case ResolverCache::Outcome::kHit:
        return cached.members.front();
      case ResolverCache::Outcome::kNegative:
        return std::nullopt;
      case ResolverCache::Outcome::kMiss:
        break;
    }
  }
  auto shard = shard_for(name);
  auto found = read_one(*shard, hash_name(name),
                        [&](repo::RemoteRegistry& c) { return c.lookup(name, host); });
  if (cfg_.cache) {
    if (found) {
      core::ReplicaGroup g;
      g.name = name;
      g.members.push_back(*found);
      cache_.put(name, host, std::move(g));
    } else {
      cache_.put_negative(name, host);
    }
  }
  return found;
}

std::optional<core::ReplicaGroup> ShardedRegistry::lookup_group(const std::string& name,
                                                                const std::string& host) {
  if (cfg_.cache) {
    core::ReplicaGroup cached;
    switch (cache_.get(name, host, &cached)) {
      case ResolverCache::Outcome::kHit:
        return cached;
      case ResolverCache::Outcome::kNegative:
        return std::nullopt;
      case ResolverCache::Outcome::kMiss:
        break;
    }
  }
  auto shard = shard_for(name);
  auto group = read_one(*shard, hash_name(name), [&](repo::RemoteRegistry& c) {
    return c.lookup_group(name, host);
  });
  if (cfg_.cache) {
    if (group)
      cache_.put(name, host, *group);
    else
      cache_.put_negative(name, host);
  }
  return group;
}

std::vector<std::string> ShardedRegistry::list() {
  std::set<std::string> names;
  const std::size_t n = shard_count();
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = shard_at(s);
    auto part =
        read_one(*shard, s, [&](repo::RemoteRegistry& c) { return c.list(); });
    names.insert(part.begin(), part.end());
  }
  return {names.begin(), names.end()};
}

// --- writes ---------------------------------------------------------------

void ShardedRegistry::register_object(const core::ObjectRef& ref) {
  register_leased(ref, cfg_.lease, /*replica=*/false);
}

ULongLong ShardedRegistry::register_replica(const core::ObjectRef& ref) {
  return register_leased(ref, cfg_.lease, /*replica=*/true);
}

ULongLong ShardedRegistry::register_leased(const core::ObjectRef& ref,
                                           std::chrono::milliseconds lease, bool replica) {
  auto shard = shard_for(ref.name);
  auto epochs = write_all(*shard, [&](repo::RemoteRegistry& c) {
    return c.register_leased(ref, lease, replica);
  });
  ULongLong epoch = 0;
  for (const ULongLong e : epochs) epoch = std::max(epoch, e);
  if (cfg_.cache) {
    // The name exists now: kill any negative entry and stale views.
    cache_.note_epoch(ref.name, epoch);
    cache_.invalidate(ref.name);
  }
  if (lease.count() > 0)
    enroll_lease(ref, replica);
  else
    drop_lease(ref.name, ref.object_id);
  return epoch;
}

void ShardedRegistry::unregister(const std::string& name, const std::string& host) {
  drop_lease(name);
  auto shard = shard_for(name);
  write_all(*shard, [&](repo::RemoteRegistry& c) {
    c.unregister(name, host);
    return 0;
  });
  cache_.invalidate(name);
}

void ShardedRegistry::unregister_replica(const std::string& name, const ObjectId& id) {
  drop_lease(name, id);
  auto shard = shard_for(name);
  write_all(*shard, [&](repo::RemoteRegistry& c) {
    c.unregister_replica(name, id);
    return 0;
  });
  cache_.invalidate(name);
}

bool ShardedRegistry::renew_lease(const std::string& name, const ObjectId& id,
                                  std::chrono::milliseconds lease) {
  auto shard = shard_for(name);
  auto oks = write_all(*shard, [&](repo::RemoteRegistry& c) {
    return c.renew_lease(name, id, lease);
  });
  return std::any_of(oks.begin(), oks.end(), [](bool ok) { return ok; });
}

void ShardedRegistry::invalidate(const std::string& name) { cache_.invalidate(name); }

// --- lease keeper ---------------------------------------------------------

void ShardedRegistry::enroll_lease(const core::ObjectRef& ref, bool replica) {
  LockGuard lock(lease_mutex_);
  leases_[{ref.name, ref.object_id.value}] = LeaseEntry{ref, replica};
  ensure_keeper_locked();
}

void ShardedRegistry::drop_lease(const std::string& name) {
  LockGuard lock(lease_mutex_);
  auto it = leases_.lower_bound({name, 0});
  while (it != leases_.end() && it->first.first == name) it = leases_.erase(it);
}

void ShardedRegistry::drop_lease(const std::string& name, const ObjectId& id) {
  LockGuard lock(lease_mutex_);
  leases_.erase({name, id.value});
}

void ShardedRegistry::ensure_keeper_locked() {
  if (keeper_started_ || stopping_) return;
  keeper_started_ = true;
  keeper_ = std::thread([this] { keeper_loop(); });
}

void ShardedRegistry::keeper_loop() {
  UniqueLock lock(lease_mutex_);
  while (!stopping_) {
    const auto deadline = std::chrono::steady_clock::now() + cfg_.effective_renew();
    while (!stopping_) {
      if (lease_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (stopping_) return;
    // Snapshot the enrollments so the remote calls run unlocked (a
    // renewal must never block register/unregister on the app thread).
    std::vector<LeaseEntry> batch;
    batch.reserve(leases_.size());
    for (const auto& [key, entry] : leases_) batch.push_back(entry);
    lock.unlock();
    for (const auto& entry : batch) {
      try {
        const bool renewed =
            renew_lease(entry.ref.name, entry.ref.object_id, cfg_.lease);
        if (renewed) {
          renewals_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The lease expired before we renewed (long GC pause, clock
          // hiccup): the name is gone server-side, so re-register it —
          // liveness beats a stale "expired" verdict for a server that
          // is demonstrably alive enough to heartbeat.
          PARDIS_LOG(kWarn, "ns")
              << "lease on '" << entry.ref.name << "' expired before renewal; "
              << "re-registering";
          register_leased(entry.ref, cfg_.lease, entry.replica);
        }
      } catch (const SystemException& e) {
        PARDIS_LOG(kWarn, "ns") << "lease renewal for '" << entry.ref.name
                                << "' failed: " << e.what() << " (will retry)";
      }
    }
    lock.lock();
  }
}

}  // namespace pardis::ns
