#include "ns/resolver_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::ns {

namespace {

void count_hit() {
  if (!obs::enabled()) return;
  static obs::Counter& hits = obs::metrics().counter("ns.resolve_hits");
  hits.add(1);
}

void count_miss() {
  if (!obs::enabled()) return;
  static obs::Counter& misses = obs::metrics().counter("ns.resolve_misses");
  misses.add(1);
}

}  // namespace

ResolverCache::ResolverCache(std::chrono::milliseconds negative_ttl,
                             std::function<double()> now_seconds)
    : negative_ttl_(negative_ttl), now_seconds_(std::move(now_seconds)) {}

double ResolverCache::now() const {
  if (now_seconds_) return now_seconds_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ResolverCache::Outcome ResolverCache::get(const std::string& name, const std::string& host,
                                          core::ReplicaGroup* out) {
  LockGuard lock(mutex_);
  auto it = entries_.find({name, host});
  if (it == entries_.end()) {
    count_miss();
    return Outcome::kMiss;
  }
  if (it->second.negative) {
    if (now() >= it->second.expires_at) {
      entries_.erase(it);
      count_miss();
      return Outcome::kMiss;
    }
    count_hit();
    return Outcome::kNegative;
  }
  if (out != nullptr) *out = it->second.group;
  count_hit();
  return Outcome::kHit;
}

void ResolverCache::put(const std::string& name, const std::string& host,
                        core::ReplicaGroup group) {
  LockGuard lock(mutex_);
  Entry e;
  e.group = std::move(group);
  entries_[{name, host}] = std::move(e);
}

void ResolverCache::put_negative(const std::string& name, const std::string& host) {
  LockGuard lock(mutex_);
  Entry e;
  e.negative = true;
  e.expires_at =
      now() + std::chrono::duration<double>(negative_ttl_).count();
  entries_[{name, host}] = std::move(e);
}

void ResolverCache::invalidate(const std::string& name) {
  LockGuard lock(mutex_);
  // Entries are keyed (name, host): the name's span is the contiguous
  // range starting at (name, "").
  auto it = entries_.lower_bound({name, std::string()});
  while (it != entries_.end() && it->first.first == name) it = entries_.erase(it);
}

void ResolverCache::note_epoch(const std::string& name, ULongLong epoch) {
  LockGuard lock(mutex_);
  auto it = entries_.lower_bound({name, std::string()});
  while (it != entries_.end() && it->first.first == name) {
    const bool stale_positive = !it->second.negative && it->second.group.epoch < epoch;
    if (it->second.negative || stale_positive)
      it = entries_.erase(it);
    else
      ++it;
  }
}

std::size_t ResolverCache::size() const {
  LockGuard lock(mutex_);
  return entries_.size();
}

void ResolverCache::clear() {
  LockGuard lock(mutex_);
  entries_.clear();
}

}  // namespace pardis::ns
