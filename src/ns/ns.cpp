#include "ns/ns.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/log.hpp"

namespace pardis::ns {

// --- toggle ---------------------------------------------------------------

namespace {

/// -1 = follow the environment; 0/1 = set_enabled override.
std::atomic<int> g_enabled_override{-1};

bool env_enabled() {
  static const bool cached = [] {
    const char* v = std::getenv("PARDIS_NS");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "1" || s == "true" || s == "on" || s == "yes";
  }();
  return cached;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    PARDIS_LOG(kWarn, "ns") << name << "='" << v << "' is not a number; keeping "
                            << fallback;
    return fallback;
  }
  return parsed;
}

/// Clamps one ULong knob into [lo, hi] with a located warning.
ULong clamp_knob(const char* name, long value, long lo, long hi) {
  if (value < lo || value > hi) {
    const long clamped = value < lo ? lo : hi;
    PARDIS_LOG(kWarn, "ns") << name << "=" << value << " out of range [" << lo << ", "
                            << hi << "]; clamping to " << clamped;
    return static_cast<ULong>(clamped);
  }
  return static_cast<ULong>(value);
}

/// Clamps one millisecond knob to be non-negative.
std::chrono::milliseconds clamp_ms(const char* name, std::chrono::milliseconds value) {
  if (value.count() < 0) {
    PARDIS_LOG(kWarn, "ns") << name << "=" << value.count()
                            << " is negative; clamping to 0";
    return std::chrono::milliseconds(0);
  }
  return value;
}

}  // namespace

bool enabled() noexcept {
  const int o = g_enabled_override.load(std::memory_order_relaxed);
  return o < 0 ? env_enabled() : o != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- config ---------------------------------------------------------------

std::chrono::milliseconds NsConfig::effective_renew() const noexcept {
  if (renew_interval.count() > 0) return renew_interval;
  const auto third = lease / 3;
  return third.count() > 0 ? third : std::chrono::milliseconds(1);
}

NsConfig NsConfig::validated(NsConfig raw) {
  NsConfig c = raw;
  c.shards = clamp_knob("PARDIS_NS_SHARDS", static_cast<long>(raw.shards), 1, 64);
  c.vnodes = clamp_knob("PARDIS_NS_VNODES", static_cast<long>(raw.vnodes), 1, 256);
  c.lease = clamp_ms("PARDIS_NS_LEASE_MS", raw.lease);
  c.renew_interval = clamp_ms("PARDIS_NS_RENEW_MS", raw.renew_interval);
  c.negative_ttl = clamp_ms("PARDIS_NS_NEG_TTL_MS", raw.negative_ttl);
  if (raw.announce_period.count() <= 0) {
    PARDIS_LOG(kWarn, "ns") << "PARDIS_NS_ANNOUNCE_MS=" << raw.announce_period.count()
                            << " is not positive; clamping to 1";
    c.announce_period = std::chrono::milliseconds(1);
  }
  if (c.renew_interval.count() > 0 && c.lease.count() > 0 &&
      c.renew_interval >= c.lease) {
    PARDIS_LOG(kWarn, "ns") << "PARDIS_NS_RENEW_MS (" << c.renew_interval.count()
                            << ") >= PARDIS_NS_LEASE_MS (" << c.lease.count()
                            << "): renewals would race expiry; using lease/3";
    c.renew_interval = std::chrono::milliseconds(0);
  }
  // repo_timeout: -1 is the documented "inherit the resolve budget"
  // sentinel, so only positive values and that sentinel survive.
  if (raw.repo_timeout.count() <= 0 && raw.repo_timeout.count() != -1) {
    PARDIS_LOG(kWarn, "ns") << "PARDIS_NS_REPO_TIMEOUT_MS=" << raw.repo_timeout.count()
                            << " is not positive; using the resolve timeout";
    c.repo_timeout = std::chrono::milliseconds(-1);
  }
  return c;
}

NsConfig NsConfig::from_env() {
  static const NsConfig cached = [] {
    NsConfig c;
    c.shards = static_cast<ULong>(env_long("PARDIS_NS_SHARDS", static_cast<long>(c.shards)));
    c.vnodes = static_cast<ULong>(env_long("PARDIS_NS_VNODES", static_cast<long>(c.vnodes)));
    c.lease = std::chrono::milliseconds(env_long("PARDIS_NS_LEASE_MS", c.lease.count()));
    c.renew_interval =
        std::chrono::milliseconds(env_long("PARDIS_NS_RENEW_MS", c.renew_interval.count()));
    c.negative_ttl =
        std::chrono::milliseconds(env_long("PARDIS_NS_NEG_TTL_MS", c.negative_ttl.count()));
    c.announce_period = std::chrono::milliseconds(
        env_long("PARDIS_NS_ANNOUNCE_MS", c.announce_period.count()));
    if (const char* v = std::getenv("PARDIS_NS_KEY")) {
      char* end = nullptr;
      const unsigned long long key = std::strtoull(v, &end, 0);
      if (end != v && *end == '\0')
        c.announce_key = key;
      else
        PARDIS_LOG(kWarn, "ns") << "PARDIS_NS_KEY='" << v
                                << "' is not a number; keeping the default key";
    }
    if (const char* v = std::getenv("PARDIS_NS_CACHE")) {
      const std::string s(v);
      c.cache = !(s == "0" || s == "false" || s == "off" || s == "no");
    }
    c.repo_timeout = std::chrono::milliseconds(
        env_long("PARDIS_NS_REPO_TIMEOUT_MS", c.repo_timeout.count()));
    return validated(c);
  }();
  return cached;
}

}  // namespace pardis::ns
