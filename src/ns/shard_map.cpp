#include "ns/shard_map.hpp"

#include <algorithm>

#include "common/buffer.hpp"

namespace pardis::ns {

bool ShardMap::valid() const noexcept {
  if (vnodes == 0 || shards.empty()) return false;
  for (const auto& s : shards)
    if (s.replicas.empty()) return false;
  return true;
}

std::vector<RingPoint> ShardMap::build_ring() const {
  std::vector<RingPoint> ring;
  ring.reserve(static_cast<std::size_t>(shards.size()) * vnodes);
  for (ULong s = 0; s < shards.size(); ++s)
    for (ULong v = 0; v < vnodes; ++v)
      // Points derive from (shard index, vnode index) only: replica
      // address changes never move names between shards.
      ring.emplace_back(mix64((static_cast<std::uint64_t>(s) << 32) | v), s);
  std::sort(ring.begin(), ring.end());
  return ring;
}

ULong ShardMap::pick(const std::vector<RingPoint>& ring, const std::string& name) {
  const std::uint64_t h = hash_name(name);
  // First point clockwise from h; wrap to the lowest point. Ties on
  // the position resolve to the lower shard via the pair ordering.
  auto it = std::lower_bound(ring.begin(), ring.end(), RingPoint{h, 0});
  if (it == ring.end()) it = ring.begin();
  return it->second;
}

ULong ShardMap::shard_for(const std::string& name) const {
  return pick(build_ring(), name);
}

ULongLong ShardMap::digest(ULongLong key) const {
  ByteBuffer bytes;
  CdrWriter w(bytes);
  marshal(w);
  std::uint64_t h = mix64(key ^ 0xD1B54A32D192ED03ULL);
  for (const Octet b : bytes.view()) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ key);
}

void ShardMap::marshal(CdrWriter& w) const {
  w.write_ulong(vnodes);
  w.write_ulonglong(version);
  w.write_ulong(static_cast<ULong>(shards.size()));
  for (const auto& s : shards) {
    w.write_ulong(static_cast<ULong>(s.replicas.size()));
    for (const auto& r : s.replicas) r.marshal(w);
  }
}

ShardMap ShardMap::unmarshal(CdrReader& r) {
  ShardMap m;
  m.vnodes = r.read_ulong();
  m.version = r.read_ulonglong();
  const ULong n = r.read_ulong();
  m.shards.resize(n);
  for (ULong i = 0; i < n; ++i) {
    const ULong reps = r.read_ulong();
    m.shards[i].replicas.resize(reps);
    for (ULong j = 0; j < reps; ++j)
      m.shards[i].replicas[j] = transport::EndpointAddr::unmarshal(r);
  }
  return m;
}

}  // namespace pardis::ns
