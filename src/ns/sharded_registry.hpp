// The client-side sharded naming facade.
//
// ShardedRegistry is a core::ObjectRegistry whose backing store is a
// *set* of repository shards (ns::ShardMap), each shard a replica set
// of RepositoryServers. It slots in wherever an ObjectRegistry goes —
// Orb::resolve, pool::GroupBinding, the repo facades — so the rest of
// the stack is shard-oblivious.
//
//   * Reads (lookup / lookup_group) consult the ResolverCache first,
//     then route to the owning shard and pick a replica through a
//     pardis_pool Balancer (dogfooding PR 5's health machinery: a
//     replica that failed recently is quarantined, reads prefer
//     healthy siblings). A CommFailure / timeout fails over to the
//     next sibling with ft::backoff_delay pacing between attempts.
//   * Writes (register / unregister / renew) fan out to EVERY replica
//     of the owning shard; one success is enough (the kill-one-shard
//     guarantee: any surviving replica still holds the name), and the
//     returned epoch is the maximum observed.
//   * When cfg.lease > 0, registrations carry the lease on the wire
//     and enroll in the LeaseKeeper: a background heartbeat — off the
//     comm thread, it owns its own thread — renews every
//     effective_renew() until the name is unregistered or the
//     registry destroyed. A process that dies silently stops renewing
//     and its names expire server-side.
//
// Thread-safe; the lease keeper shares the instance with application
// threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "ns/ns.hpp"
#include "ns/resolver_cache.hpp"
#include "ns/shard_map.hpp"
#include "pool/pool.hpp"
#include "repo/repository.hpp"

namespace pardis::ns {

class ShardedRegistry final : public core::ObjectRegistry {
 public:
  /// `map` must be valid (>= 1 shard, every shard >= 1 replica).
  /// `src_host_model` names the client's modeled host for fault-plan
  /// links and link costs.
  ShardedRegistry(transport::Transport& transport, ShardMap map,
                  NsConfig cfg = NsConfig::from_env(), std::string src_host_model = "");
  ~ShardedRegistry() override;

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  void register_object(const core::ObjectRef& ref) override;
  std::optional<core::ObjectRef> lookup(const std::string& name,
                                        const std::string& host) override;
  void unregister(const std::string& name, const std::string& host) override;
  std::vector<std::string> list() override;

  ULongLong register_replica(const core::ObjectRef& ref) override;
  std::optional<core::ReplicaGroup> lookup_group(const std::string& name,
                                                 const std::string& host) override;
  void unregister_replica(const std::string& name, const ObjectId& id) override;

  ULongLong register_leased(const core::ObjectRef& ref, std::chrono::milliseconds lease,
                            bool replica) override;
  bool renew_lease(const std::string& name, const ObjectId& id,
                   std::chrono::milliseconds lease) override;

  void invalidate(const std::string& name) override;

  /// Adopts a fresher shard map (announce-based discovery): a map with
  /// a higher version replaces the current one (and flushes the
  /// resolver cache — shard boundaries may have moved); an equal or
  /// older version is ignored, so repeated announcements are harmless.
  /// Returns true when the map was adopted.
  bool adopt_map(const ShardMap& fresh);

  ShardMap map() const;
  ResolverCache& cache() noexcept { return cache_; }
  std::size_t shard_count() const;
  /// Successful lease renewals sent by the keeper (tests).
  std::uint64_t renewals() const noexcept {
    return renewals_.load(std::memory_order_relaxed);
  }
  /// Names currently enrolled for background renewal (tests).
  std::size_t leased_names() const;

 private:
  struct Replica {
    transport::EndpointAddr addr;
    std::string key;  ///< addr.to_string(); the balancer's member key
    std::unique_ptr<repo::RemoteRegistry> client;
  };
  struct Shard {
    std::vector<Replica> replicas;
    std::unique_ptr<pool::Balancer> balancer;
  };

  void build_shards_locked(const ShardMap& map) PARDIS_REQUIRES(mutex_);
  /// The shard owning `name` (held alive by the shared_ptr across the
  /// remote calls even if adopt_map swaps the shard set mid-flight).
  std::shared_ptr<Shard> shard_for(const std::string& name);
  std::shared_ptr<Shard> shard_at(std::size_t idx) const;

  /// Runs `op` against one healthy replica of the shard, failing over
  /// to siblings on CommFailure / timeout / transient errors with
  /// backoff pacing. Rethrows the last error when every replica fails.
  template <typename Fn>
  auto read_one(Shard& shard, std::uint64_t salt, Fn&& op);

  /// Runs `op` against every replica of the shard; returns the results
  /// of the successful calls and rethrows the last error when none
  /// succeeded.
  template <typename Fn>
  auto write_all(Shard& shard, Fn&& op)
      -> std::vector<decltype(op(std::declval<repo::RemoteRegistry&>()))>;

  void enroll_lease(const core::ObjectRef& ref, bool replica);
  void drop_lease(const std::string& name);
  void drop_lease(const std::string& name, const ObjectId& id);
  void keeper_loop();
  void ensure_keeper_locked() PARDIS_REQUIRES(lease_mutex_);

  transport::Transport* transport_;
  NsConfig cfg_;
  std::string src_host_model_;
  ResolverCache cache_;

  mutable Mutex mutex_{"ns.sharded_registry"};
  ShardMap map_ PARDIS_GUARDED_BY(mutex_);
  std::vector<RingPoint> ring_ PARDIS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Shard>> shards_ PARDIS_GUARDED_BY(mutex_);

  // --- lease keeper ---
  struct LeaseEntry {
    core::ObjectRef ref;  ///< kept so an expired lease can re-register
    bool replica = false;
  };
  mutable Mutex lease_mutex_{"ns.lease_keeper"};
  std::condition_variable_any lease_cv_;
  std::map<std::pair<std::string, ULongLong>, LeaseEntry> leases_
      PARDIS_GUARDED_BY(lease_mutex_);  ///< key: (name, id)
  std::thread keeper_;
  bool keeper_started_ PARDIS_GUARDED_BY(lease_mutex_) = false;
  bool stopping_ PARDIS_GUARDED_BY(lease_mutex_) = false;
  std::atomic<std::uint64_t> renewals_{0};
};

}  // namespace pardis::ns
