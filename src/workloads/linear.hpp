// Dense linear-system workloads for the paper's §4.1 experiment: the
// same system solved by a direct method (Gaussian elimination) and an
// iterative method (Jacobi), plus the flop-count formulas the virtual
// clock charges.
#pragma once

#include <cstdint>
#include <vector>

namespace pardis::workloads {

struct DenseSystem {
  std::size_t n = 0;
  std::vector<std::vector<double>> a;  ///< rows (matches the IDL `matrix` shape)
  std::vector<double> b;
  std::vector<double> x_true;
};

/// Reproducible diagonally-dominant system with known solution
/// (guarantees Jacobi convergence).
DenseSystem make_system(std::size_t n, std::uint64_t seed);

/// Gaussian elimination with partial pivoting; returns x.
std::vector<double> gaussian_solve(std::vector<std::vector<double>> a, std::vector<double> b);

struct JacobiResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< max-norm of the final update
};

/// Jacobi iteration until the max-norm update falls below `tol`.
JacobiResult jacobi_solve(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b, double tol,
                          std::size_t max_iterations = 100000);

/// max_i |x1[i] - x2[i]| (the client's agreement metric in §4.1).
double max_abs_diff(const std::vector<double>& x1, const std::vector<double>& x2);

/// Modeled work: ~2/3 n^3 flops for elimination plus back substitution.
double gaussian_flops(std::size_t n);

/// Modeled work: ~2 n^2 flops per Jacobi sweep.
double jacobi_flops(std::size_t n, std::size_t iterations);

/// Iterations Jacobi needs on make_system matrices — used to charge
/// virtual time consistently with the real run.
std::size_t jacobi_iterations_estimate(std::size_t n, double tol);

}  // namespace pardis::workloads
