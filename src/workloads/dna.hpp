// Synthetic DNA-database workload for the paper's §4.2 experiment: an
// SPMD object searches the database for sequences containing a
// substring or whose single-edit derivatives (transposition, deletion,
// substitution, addition) contain it; five list-server objects expose
// the per-category partial results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pardis::workloads {

/// Match categories, in the paper's order: one exact list plus one per
/// edit-distance derivative.
enum class EditKind : int {
  kExact = 0,
  kTransposition = 1,
  kDeletion = 2,
  kSubstitution = 3,
  kAddition = 4,
};

inline constexpr int kEditKindCount = 5;
const char* edit_kind_name(EditKind kind) noexcept;

/// Reproducible database of ACGT strings with lengths in
/// [min_len, max_len].
std::vector<std::string> make_dna_database(std::size_t count, std::size_t min_len,
                                           std::size_t max_len, std::uint64_t seed);

/// True when `pattern` occurs in `seq` exactly.
bool matches_exact(const std::string& seq, const std::string& pattern);
/// ... in some derivative of `seq` with two adjacent characters swapped.
bool matches_transposition(const std::string& seq, const std::string& pattern);
/// ... with one character of `seq` deleted.
bool matches_deletion(const std::string& seq, const std::string& pattern);
/// ... with one character of `seq` substituted.
bool matches_substitution(const std::string& seq, const std::string& pattern);
/// ... with one character inserted into `seq`.
bool matches_addition(const std::string& seq, const std::string& pattern);

bool matches(const std::string& seq, const std::string& pattern, EditKind kind);

/// Sequences of `db[first, last)` matching under `kind`.
std::vector<std::string> search_range(const std::vector<std::string>& db, std::size_t first,
                                      std::size_t last, const std::string& pattern,
                                      EditKind kind);

/// Modeled cost of matching one sequence, in flops. The kinds have
/// different weights — the reason the paper's Fig. 4 "balance by
/// numbers, not weight" placement dips at 3 processors.
double match_flops(std::size_t seq_len, std::size_t pattern_len, EditKind kind);

/// Modeled cost of a whole-range scan.
double search_flops(const std::vector<std::string>& db, std::size_t first, std::size_t last,
                    std::size_t pattern_len, EditKind kind);

/// Relative cost of one list-server query per kind (§4.2: "different
/// list servers take different time to process client's queries").
/// exact:1, transposition:3, deletion:3, substitution:2, addition:4.
double query_weight(EditKind kind) noexcept;

/// Sum of the five query weights.
double total_query_weight() noexcept;

}  // namespace pardis::workloads
