#include "workloads/linear.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/error.hpp"

namespace pardis::workloads {

DenseSystem make_system(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  DenseSystem sys;
  sys.n = n;
  sys.a.assign(n, std::vector<double>(n));
  sys.x_true.resize(n);
  sys.b.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) sys.x_true[i] = coeff(rng);
  for (std::size_t i = 0; i < n; ++i) {
    double off_diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Non-negative off-diagonals keep the Jacobi spectral radius
      // close to the row-sum bound (random signs would cancel and make
      // the iteration converge unrealistically fast).
      sys.a[i][j] = std::abs(coeff(rng));
      off_diag += sys.a[i][j];
    }
    // Strict diagonal dominance with a thin margin: Jacobi contraction
    // ~0.98, so the iterative method needs hundreds of sweeps — at
    // small n it is the slower of the two methods, and the direct
    // method's O(n^3) overtakes it as n grows (the Fig. 2 regime).
    sys.a[i][i] = 1.02 * off_diag + 0.5;
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) sys.b[i] += sys.a[i][j] * sys.x_true[j];
  return sys;
}

std::vector<double> gaussian_solve(std::vector<std::vector<double>> a,
                                   std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n) throw BadParam("gaussian_solve: shape mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[pivot][k])) pivot = i;
    if (a[pivot][k] == 0.0) throw BadParam("gaussian_solve: singular matrix");
    std::swap(a[k], a[pivot]);
    std::swap(b[k], b[pivot]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i][k] / a[k][k];
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a[ii][j] * x[j];
    x[ii] = s / a[ii][ii];
  }
  return x;
}

JacobiResult jacobi_solve(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b, double tol,
                          std::size_t max_iterations) {
  const std::size_t n = b.size();
  if (a.size() != n) throw BadParam("jacobi_solve: shape mismatch");
  JacobiResult res;
  res.x.assign(n, 0.0);
  std::vector<double> next(n);
  for (res.iterations = 0; res.iterations < max_iterations; ++res.iterations) {
    double max_update = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = b[i];
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) s -= a[i][j] * res.x[j];
      next[i] = s / a[i][i];
      max_update = std::max(max_update, std::abs(next[i] - res.x[i]));
    }
    res.x.swap(next);
    res.residual = max_update;
    if (max_update < tol) {
      ++res.iterations;
      return res;
    }
  }
  return res;
}

double max_abs_diff(const std::vector<double>& x1, const std::vector<double>& x2) {
  if (x1.size() != x2.size()) throw BadParam("max_abs_diff: size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < x1.size(); ++i) d = std::max(d, std::abs(x1[i] - x2[i]));
  return d;
}

double gaussian_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd + 2.0 * nd * nd;
}

double jacobi_flops(std::size_t n, std::size_t iterations) {
  const double nd = static_cast<double>(n);
  return 2.0 * nd * nd * static_cast<double>(iterations);
}

std::size_t jacobi_iterations_estimate(std::size_t n, double tol) {
  // make_system matrices have Jacobi contraction factor ~0.98; the
  // update shrinks geometrically from an O(1) start. n only enters
  // through the max over components.
  (void)n;
  const double start = 1.0;
  std::size_t iters = 1;
  for (double err = start; err >= tol && iters < 100000; err *= 0.98) ++iters;
  return iters;
}

}  // namespace pardis::workloads
