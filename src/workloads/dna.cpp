#include "workloads/dna.hpp"

#include <random>

#include "common/error.hpp"

namespace pardis::workloads {

const char* edit_kind_name(EditKind kind) noexcept {
  switch (kind) {
    case EditKind::kExact: return "exact";
    case EditKind::kTransposition: return "transposition";
    case EditKind::kDeletion: return "deletion";
    case EditKind::kSubstitution: return "substitution";
    case EditKind::kAddition: return "addition";
  }
  return "?";
}

std::vector<std::string> make_dna_database(std::size_t count, std::size_t min_len,
                                           std::size_t max_len, std::uint64_t seed) {
  if (min_len == 0 || max_len < min_len) throw BadParam("make_dna_database: bad lengths");
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len(min_len, max_len);
  std::uniform_int_distribution<int> base(0, 3);
  std::vector<std::string> db(count);
  for (auto& s : db) {
    s.resize(len(rng));
    for (char& c : s) c = kBases[base(rng)];
  }
  return db;
}

bool matches_exact(const std::string& seq, const std::string& pattern) {
  return seq.find(pattern) != std::string::npos;
}

bool matches_transposition(const std::string& seq, const std::string& pattern) {
  std::string v = seq;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    std::swap(v[i], v[i + 1]);
    if (matches_exact(v, pattern)) return true;
    std::swap(v[i], v[i + 1]);
  }
  return false;
}

bool matches_deletion(const std::string& seq, const std::string& pattern) {
  if (seq.size() <= 1) return false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::string v = seq.substr(0, i) + seq.substr(i + 1);
    if (matches_exact(v, pattern)) return true;
  }
  return false;
}

bool matches_substitution(const std::string& seq, const std::string& pattern) {
  // One character of seq replaced by anything: pattern occurs in a
  // window of seq with at most one mismatch.
  const std::size_t m = pattern.size();
  if (m == 0 || m > seq.size()) return false;
  for (std::size_t start = 0; start + m <= seq.size(); ++start) {
    std::size_t mismatches = 0;
    for (std::size_t j = 0; j < m && mismatches <= 1; ++j)
      if (seq[start + j] != pattern[j]) ++mismatches;
    if (mismatches <= 1) return true;
  }
  return false;
}

bool matches_addition(const std::string& seq, const std::string& pattern) {
  // One character inserted into seq: pattern occurs with one gap in
  // the sequence (pattern split into a prefix/suffix around one
  // inserted base), or trivially if it already occurs.
  if (matches_exact(seq, pattern)) return true;
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  for (std::size_t i = 0; i <= seq.size(); ++i) {
    for (char b : kBases) {
      std::string v = seq.substr(0, i) + b + seq.substr(i);
      if (matches_exact(v, pattern)) return true;
    }
  }
  return false;
}

bool matches(const std::string& seq, const std::string& pattern, EditKind kind) {
  switch (kind) {
    case EditKind::kExact: return matches_exact(seq, pattern);
    case EditKind::kTransposition: return matches_transposition(seq, pattern);
    case EditKind::kDeletion: return matches_deletion(seq, pattern);
    case EditKind::kSubstitution: return matches_substitution(seq, pattern);
    case EditKind::kAddition: return matches_addition(seq, pattern);
  }
  throw BadParam("matches: bad edit kind");
}

std::vector<std::string> search_range(const std::vector<std::string>& db, std::size_t first,
                                      std::size_t last, const std::string& pattern,
                                      EditKind kind) {
  if (last > db.size() || first > last) throw BadParam("search_range: bad range");
  std::vector<std::string> out;
  for (std::size_t i = first; i < last; ++i)
    if (matches(db[i], pattern, kind)) out.push_back(db[i]);
  return out;
}

double match_flops(std::size_t seq_len, std::size_t pattern_len, EditKind kind) {
  const double base = static_cast<double>(seq_len) * static_cast<double>(pattern_len);
  switch (kind) {
    case EditKind::kExact: return base;
    case EditKind::kTransposition: return base * static_cast<double>(seq_len);
    case EditKind::kDeletion: return base * static_cast<double>(seq_len);
    case EditKind::kSubstitution: return 2.0 * base;
    case EditKind::kAddition: return 4.0 * base * static_cast<double>(seq_len);
  }
  return base;
}

double query_weight(EditKind kind) noexcept {
  switch (kind) {
    case EditKind::kExact: return 1.0;
    case EditKind::kTransposition: return 3.0;
    case EditKind::kDeletion: return 3.0;
    case EditKind::kSubstitution: return 2.0;
    case EditKind::kAddition: return 4.0;
  }
  return 1.0;
}

double total_query_weight() noexcept {
  double total = 0.0;
  for (int k = 0; k < kEditKindCount; ++k)
    total += query_weight(static_cast<EditKind>(k));
  return total;
}

double search_flops(const std::vector<std::string>& db, std::size_t first, std::size_t last,
                    std::size_t pattern_len, EditKind kind) {
  double total = 0.0;
  for (std::size_t i = first; i < last; ++i)
    total += match_flops(db[i].size(), pattern_len, kind);
  return total;
}

}  // namespace pardis::workloads
