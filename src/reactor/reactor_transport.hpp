// reactor::ReactorTransport — the multiplexed TCP transport engine.
//
// Implements the exact Transport interface TcpTransport does, over the
// same wire format and the same EndpointAddr (kTcp) address family, so
// everything stacked on a Transport — flow sessions, wire-guard
// quarantine, CRC trailers, the hello handshake, fault plans —
// composes unchanged. What changes is the machinery:
//
//   * receive: N reactor::EventLoops multiplex every socket (epoll)
//     instead of one blocking reader thread per accepted connection;
//   * endpoints run lock-free MPSC mailboxes (Endpoint::use_mailbox),
//     so delivery from a loop never blocks on a consumer lock;
//   * send: small frames coalesce per connection into one kHandlerPack
//     wire message (PARDIS_REACTOR_PACK), flushed when a size
//     threshold fills or an adaptive window expires, and written with
//     one gather syscall (sendmsg of header + queued payloads);
//   * with packing off, rsr() emits frames byte-identical to
//     TcpTransport — golden-bytes tests pin it.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "reactor/event_loop.hpp"
#include "transport/transport.hpp"

namespace pardis::reactor {

class ReactorTransport final : public transport::Transport {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) nonblocking and starts the
  /// event loops. `testbed` (optional, unowned) supplies link costs
  /// and fault plans; `listen_backlog` 0 = PARDIS_LISTEN_BACKLOG.
  explicit ReactorTransport(UShort port = 0, const sim::Testbed* testbed = nullptr,
                            int listen_backlog = 0);
  ~ReactorTransport() override;

  ReactorTransport(const ReactorTransport&) = delete;
  ReactorTransport& operator=(const ReactorTransport&) = delete;

  UShort port() const noexcept { return port_; }

  std::shared_ptr<transport::Endpoint> create_endpoint(const std::string& host_model) override;
  void rsr(const transport::EndpointAddr& dst, transport::HandlerId handler,
           ByteBuffer payload, const std::string& src_host_model) override;

  /// Flushes pending packs best-effort, stops and joins every event
  /// loop, and severs all connections. Idempotent; the destructor
  /// calls it. Pending futures upstream fail through the normal
  /// machinery: any later rsr() throws CommFailure.
  void shutdown();

  /// Test introspection: frames currently coalescing toward `dst`'s
  /// host:port (0 when no cached connection).
  std::size_t pending_pack_frames(const transport::EndpointAddr& dst) const;

 private:
  friend class EventLoop;

  /// Resolves the connection for host:port via a per-thread fast path
  /// (senders stream to one destination), falling back to dial().
  std::shared_ptr<Conn> connect_to(const std::string& host, UShort port);
  /// Dial-cache probe + actual connect/hello for a cache miss.
  std::shared_ptr<Conn> dial(const std::string& host, UShort port);
  /// Shards an accepted socket onto a loop (called by loop 0).
  void adopt_accepted(int fd);
  /// Routes one received frame to its endpoint mailbox (loop thread;
  /// `conn` carries the read-side endpoint cache).
  void deliver_frame(Conn& conn, ULongLong dst_ep, transport::HandlerId handler,
                     double sim_time, bool little, std::span<const Octet> payload);
  /// Drops a broken connection from the dial cache and severs it.
  void evict_conn(const std::shared_ptr<Conn>& conn);

  /// Appends one small frame to `conn`'s coalescing buffer, flushing
  /// inline at the size threshold (or window 0) and arming the loop
  /// timer otherwise.
  void append_pack(const std::shared_ptr<Conn>& conn, ULongLong dst_ep,
                   transport::HandlerId handler, ByteBuffer payload);
  /// Classic single-frame send (pack off / oversized frames); flushes
  /// any coalescing frames first so per-connection order holds.
  void send_frame_now(const std::shared_ptr<Conn>& conn, ULongLong dst_ep,
                      transport::HandlerId handler, const ByteBuffer& payload);
  /// Writes one whole wire message without ever blocking: bytes the
  /// kernel refuses (or that must queue behind earlier spilled bytes,
  /// to keep stream order) land in conn.outq and EPOLLOUT is armed.
  /// Shared by sender threads and loop threads — a sender parked on
  /// the socket while holding conn.mutex would wedge the loop, which
  /// takes that mutex every iteration. False = the connection failed
  /// (marked dead; caller evicts/kills it).
  bool write_or_spill(Conn& conn, std::vector<iovec>& iov) PARDIS_REQUIRES(conn.mutex);
  /// Gather-writes (or spills) the coalescing buffer as one packed
  /// wire message. Strictly nonblocking; False as write_or_spill.
  bool flush_pack(Conn& conn) PARDIS_REQUIRES(conn.mutex);
  /// Sender-side backpressure: blocks the *sender* (never a loop, and
  /// never while holding conn->mutex) until the loop drains conn->outq
  /// below the spill limit. Evicts and throws CommFailure when the
  /// connection dies or the transport stops while parked.
  void wait_for_drain(const std::shared_ptr<Conn>& conn);

  const sim::Testbed* testbed_;
  int listen_fd_ = -1;
  UShort port_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<EventLoop>> loops_;

  mutable Mutex mutex_{"reactor.transport"};
  ULongLong next_ep_ PARDIS_GUARDED_BY(mutex_) = 1;
  std::map<ULongLong, std::weak_ptr<transport::Endpoint>> endpoints_
      PARDIS_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_ptr<Conn>> conns_ PARDIS_GUARDED_BY(mutex_);  // dialed
};

}  // namespace pardis::reactor
