#include "reactor/reactor_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "common/cdr.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "reactor/reactor.hpp"
#include "sim/clock.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::reactor {

namespace {

constexpr std::size_t kHeaderSize = 32;  // same bytes as TcpTransport

std::string peer_key(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return {};
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return {};
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

int default_listen_backlog() {
  static const int v = env_int("PARDIS_LISTEN_BACKLOG", 64);
  return v;
}

/// Blocking whole-buffer write for the pre-nonblocking hello send.
bool write_full(int fd, const Octet* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

// Packed subheaders are always little-endian (see event_loop.cpp).
void wr_le64(Octet* p, ULongLong v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<Octet>((v >> (8 * i)) & 0xff);
}

void wr_le32(Octet* p, ULong v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<Octet>((v >> (8 * i)) & 0xff);
}

void wr_lef64(Octet* p, double d) {
  ULongLong bits = 0;
  static_assert(sizeof(d) == sizeof(bits));
  std::memcpy(&bits, &d, sizeof(bits));
  wr_le64(p, bits);
}

/// One gather syscall per iteration until the iov list is fully sent or
/// the kernel buffer fills. Advances `idx` (and partially consumed iov
/// entries) through the list. Returns 1 = done, 0 = EAGAIN, -1 = error.
int send_some(int fd, std::vector<iovec>& iov, std::size_t& idx) {
  while (idx < iov.size()) {
    msghdr mh{};
    mh.msg_iov = iov.data() + idx;
    mh.msg_iovlen = std::min<std::size_t>(iov.size() - idx, 64);
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      return -1;
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0 && idx < iov.size()) {
      if (left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
        iov[idx].iov_len -= left;
        left = 0;
      }
    }
  }
  return 1;
}

/// Copies the unsent tail of an iov list into `seg` (EPOLLOUT spill).
void append_iov_tail(Segment& seg, const std::vector<iovec>& iov, std::size_t idx) {
  for (std::size_t i = idx; i < iov.size(); ++i)
    seg.bytes.append_raw(iov[i].iov_base, iov[i].iov_len);
}

}  // namespace

ReactorTransport::ReactorTransport(UShort port, const sim::Testbed* testbed, int listen_backlog)
    : testbed_(testbed) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw CommFailure("ReactorTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw CommFailure("ReactorTransport: bind(127.0.0.1:" + std::to_string(port) +
                      ") failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen_backlog <= 0) listen_backlog = default_listen_backlog();
  if (::listen(listen_fd_, listen_backlog) != 0) {
    ::close(listen_fd_);
    throw CommFailure("ReactorTransport: listen() failed");
  }

  const int n = loop_count();
  loops_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) loops_.push_back(std::make_unique<EventLoop>(*this, i));
  loops_[0]->watch_listener(listen_fd_);
  for (auto& loop : loops_) loop->start();
}

ReactorTransport::~ReactorTransport() { shutdown(); }

void ReactorTransport::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  // Final best-effort drain: frames rsr() already accepted into
  // coalescing buffers ride out before the loops stop (in-flight
  // batches either hit the wire or their futures fail through the
  // severed sockets below — never silently park). flush_pack is
  // nonblocking, so a backpressured peer whose kernel buffer never
  // drains cannot hang shutdown: its bytes spill to outq and are
  // abandoned when the socket is severed below.
  std::vector<std::shared_ptr<Conn>> dialed;
  {
    LockGuard lock(mutex_);
    dialed.reserve(conns_.size());
    for (auto& [key, conn] : conns_) dialed.push_back(conn);
  }
  for (auto& conn : dialed) {
    LockGuard lock(conn->mutex);
    if (!conn->dead.load(std::memory_order_acquire)) flush_pack(*conn);
  }
  for (auto& loop : loops_) loop->request_stop();
  for (auto& loop : loops_) loop->join();
  for (auto& loop : loops_) loop->drop_all_conns();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  LockGuard lock(mutex_);
  // shutdown() fails any sender still writing; ~Conn closes each fd
  // once the last holder lets go (same fd-recycling discipline as
  // TcpTransport::drop_connection).
  for (auto& [key, conn] : conns_) {
    conn->dead.store(true, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->drained.notify_all();  // senders parked on backpressure bail out
  }
  conns_.clear();
}

std::shared_ptr<transport::Endpoint> ReactorTransport::create_endpoint(
    const std::string& host_model) {
  LockGuard lock(mutex_);
  transport::EndpointAddr addr;
  addr.kind = transport::AddrKind::kTcp;
  addr.host_model = host_model;
  addr.tcp_host = "127.0.0.1";
  addr.tcp_port = port_;
  addr.tcp_ep = next_ep_++;
  auto ep = std::make_shared<transport::Endpoint>(addr);
  ep->use_mailbox();  // loops must never block on a consumer lock
  endpoints_[addr.tcp_ep] = ep;
  return ep;
}

void ReactorTransport::adopt_accepted(int fd) {
  if (stopping_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  if (transport::tcp_nodelay()) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  auto conn = std::make_shared<Conn>(fd, peer_key(fd), std::string{});
  EventLoop& loop =
      *loops_[std::hash<std::string>{}(conn->peer) % loops_.size()];
  conn->loop = &loop;
  loop.adopt_conn(conn);
}

void ReactorTransport::deliver_frame(Conn& conn, ULongLong dst_ep,
                                     transport::HandlerId handler, double sim_time,
                                     bool little, std::span<const Octet> payload) {
  std::shared_ptr<transport::Endpoint> ep;
  if (conn.rd_last_dst == dst_ep) ep = conn.rd_last_ep.lock();
  if (!ep) {
    {
      LockGuard lock(mutex_);
      auto it = endpoints_.find(dst_ep);
      if (it != endpoints_.end()) ep = it->second.lock();
    }
    if (!ep) {
      PARDIS_LOG(kWarn, "reactor") << "RSR for unknown endpoint " << dst_ep << ", dropped";
      return;  // one-way semantics: drop
    }
    conn.rd_last_dst = dst_ep;
    conn.rd_last_ep = ep;
  }
  if (obs::enabled()) {
    static obs::Counter& received = obs::metrics().counter("transport.reactor.rsr_received");
    static obs::Counter& bytes = obs::metrics().counter("transport.reactor.bytes_received");
    received.add(1);
    bytes.add(payload.size());
  }
  transport::RsrMessage msg;
  msg.handler = handler;
  msg.sim_time = sim_time;
  msg.little_endian = little;
  msg.payload = ByteBuffer::from(payload);
  msg.src_peer = conn.peer;
  ep->enqueue(std::move(msg));
}

std::shared_ptr<Conn> ReactorTransport::connect_to(const std::string& host, UShort port) {
  // Fast path: the previous dial from this thread. Senders almost
  // always stream to one destination, so this skips the key build,
  // transport mutex, and map probe per message. Weak so a cached entry
  // never pins a Conn (and its fd) past eviction or shutdown; a dead
  // or dropped conn simply misses and takes the slow path below.
  thread_local const ReactorTransport* cached_tp = nullptr;
  thread_local UShort cached_port = 0;
  thread_local std::string cached_host;
  thread_local std::weak_ptr<Conn> cached_conn;
  if (cached_tp == this && cached_port == port && cached_host == host) {
    std::shared_ptr<Conn> conn = cached_conn.lock();
    if (conn && !conn->dead.load(std::memory_order_acquire)) return conn;
  }
  std::shared_ptr<Conn> conn = dial(host, port);
  cached_tp = this;
  cached_port = port;
  cached_host = host;
  cached_conn = conn;
  return conn;
}

std::shared_ptr<Conn> ReactorTransport::dial(const std::string& host, UShort port) {
  const std::string key = host + ":" + std::to_string(port);
  {
    LockGuard lock(mutex_);
    auto it = conns_.find(key);
    if (it != conns_.end()) {
      if (!it->second->dead.load(std::memory_order_acquire)) return it->second;
      conns_.erase(it);  // dead socket: fall through and redial
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw CommFailure("ReactorTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw BadParam("ReactorTransport: bad address " + host);
  }
  // pardis-lint: allow(blocking) first dial of a peer: the kernel
  // handshake blocks once per connection, after which the cached Conn
  // is reused; loopback/testbed dials complete immediately.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw CommFailure("ReactorTransport: connect to " + key +
                      " failed: " + std::strerror(errno));
  }
  if (transport::tcp_nodelay()) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (wire::hello_enabled()) {
    // Same announce as TcpTransport, sent while the fd is still
    // blocking, plus the pack capability bit when this sender may
    // emit kHandlerPack frames (informational: hello is one-way, so
    // packing stays a sender-side knob, not a negotiation).
    wire::Hello hello = wire::local_hello();
    if (pack_enabled()) hello.features |= transport::kFeaturePack;
    ByteBuffer hello_payload;
    CdrWriter hw(hello_payload);
    hello.marshal(hw);
    ByteBuffer frame;
    frame.reserve(kHeaderSize + hello_payload.size());
    CdrWriter w(frame);
    w.write_octet(kNativeLittleEndian ? 1 : 0);
    w.write_ulong(static_cast<ULong>(hello_payload.size()));
    w.write_ulonglong(0);
    w.write_ulong(transport::kHandlerHello);
    w.write_double(sim::timestamp_now());
    require(frame.size() == kHeaderSize, "reactor hello frame header size drifted");
    frame.append(hello_payload.view());
    if (!write_full(fd, frame.data(), frame.size())) {
      ::close(fd);
      throw CommFailure("ReactorTransport: hello to " + key + " failed");
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    ::close(fd);
    throw CommFailure("ReactorTransport: O_NONBLOCK on " + key + " failed");
  }

  auto conn = std::make_shared<Conn>(fd, peer_key(fd), key);
  EventLoop& loop = *loops_[std::hash<std::string>{}(key) % loops_.size()];
  conn->loop = &loop;  // before sharing: senders read it unsynchronized
  {
    LockGuard lock(mutex_);
    if (stopping_.load(std::memory_order_acquire))
      throw CommFailure("ReactorTransport: shutting down");  // ~Conn closes fd
    auto [it, inserted] = conns_.try_emplace(key, conn);
    if (!inserted) return it->second;  // lost a benign race; ~Conn closes our fd
  }
  loop.adopt_conn(conn);
  return conn;
}

void ReactorTransport::evict_conn(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true, std::memory_order_release);
  if (!conn->dial_key.empty()) {
    LockGuard lock(mutex_);
    auto it = conns_.find(conn->dial_key);
    if (it != conns_.end() && it->second == conn) conns_.erase(it);
  }
  if (obs::enabled()) {
    static obs::Counter& evicted = obs::metrics().counter("transport.reactor.conn_evicted");
    evicted.add(1);
  }
  // Shutdown only, never close: racing senders fail their writes and
  // the fd number stays reserved until ~Conn (see TcpTransport).
  ::shutdown(conn->fd, SHUT_RDWR);
  // Taking the mutex before notifying closes the window where a
  // backpressured sender has checked dead but not yet parked; the
  // bounded waits in wait_for_drain make a miss cheap regardless.
  {
    LockGuard lock(conn->mutex);
  }
  conn->drained.notify_all();
}

void ReactorTransport::rsr(const transport::EndpointAddr& dst, transport::HandlerId handler,
                           ByteBuffer payload, const std::string& src_host_model) {
  if (dst.kind != transport::AddrKind::kTcp)
    throw BadParam("ReactorTransport: destination is not tcp");
  if (stopping_.load(std::memory_order_acquire))
    throw CommFailure("ReactorTransport: shutting down");
  obs::SpanScope span;
  if (obs::enabled()) {
    if (obs::current_context().valid()) span.open("rsr:reactor", "transport");
    static obs::Counter& sent = obs::metrics().counter("transport.reactor.rsr_sent");
    static obs::Counter& bytes = obs::metrics().counter("transport.reactor.bytes_sent");
    sent.add(1);
    bytes.add(kHeaderSize + payload.size());
  }
  sim::FaultPlan::Decision fault;
  if (testbed_ != nullptr && testbed_->faults().active()) {
    fault = testbed_->faults().on_message(src_host_model, dst.host_model, dst.tcp_ep);
    transport::apply_fault(fault, dst);  // throws on sever / transient failure
  }
  double delay = fault.extra_delay_s;
  if (testbed_ != nullptr && !src_host_model.empty() && !dst.host_model.empty())
    delay += testbed_->link(src_host_model, dst.host_model).delay(payload.size());
  sim::charge_seconds(delay);
  if (fault.drop) return;  // the sender was still charged for the send
  if (fault.corrupt)
    sim::corrupt_payload(payload, fault.corrupt_mode, fault.corrupt_rand);

  auto conn = connect_to(dst.tcp_host, dst.tcp_port);
  // Coalesce only frames that leave room for siblings in one packed
  // message below the flush threshold; larger ones go out classically.
  const bool packable =
      pack_enabled() && transport::kPackSubheaderSize + payload.size() +
                                kHeaderSize <
                            pack_threshold_bytes();
  const int copies = fault.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    ByteBuffer body = (i + 1 < copies) ? payload.clone() : std::move(payload);
    if (packable) {
      append_pack(conn, dst.tcp_ep, handler, std::move(body));
    } else {
      send_frame_now(conn, dst.tcp_ep, handler, body);
    }
  }
}

void ReactorTransport::append_pack(const std::shared_ptr<Conn>& conn, ULongLong dst_ep,
                                   transport::HandlerId handler, ByteBuffer payload) {
  const auto now = std::chrono::steady_clock::now();
  bool arm = false;
  bool failed = false;
  bool parked = false;
  {
    LockGuard lock(conn->mutex);
    // Adaptive window (DDSI-flavored): sends arriving back-to-back
    // (within the knob ceiling of the previous one) double the window
    // up to PARDIS_REACTOR_FLUSH_US; expiry flushes that caught
    // nothing halve it (event_loop.cpp). Window 0 = flush inline, so
    // an isolated request never waits on a timer.
    const unsigned ceiling = flush_window_us();
    if (ceiling > 0 && conn->last_send.time_since_epoch().count() != 0 &&
        now - conn->last_send <= std::chrono::microseconds(ceiling)) {
      conn->window_us =
          conn->window_us == 0 ? ceiling / 8 + 1 : std::min(ceiling, conn->window_us * 2);
    }
    conn->last_send = now;

    PendingFrame frame;
    wr_le64(frame.subheader.data(), dst_ep);
    wr_le32(frame.subheader.data() + 8, handler);
    wr_le32(frame.subheader.data() + 12, static_cast<ULong>(payload.size()));
    wr_lef64(frame.subheader.data() + 16, sim::timestamp_now());
    frame.payload = std::move(payload);
    conn->pack_bytes += transport::kPackSubheaderSize + frame.payload.size();
    conn->pack.push_back(std::move(frame));

    if (conn->pack_bytes >= pack_threshold_bytes() || conn->window_us == 0) {
      if (!flush_pack(*conn)) {
        failed = true;
      } else {
        parked = conn->outq_bytes > spill_limit_bytes();
      }
    } else if (!conn->flush_armed) {
      conn->flush_armed = true;
      conn->flush_deadline = now + std::chrono::microseconds(conn->window_us);
      arm = true;
    }
  }
  if (failed) {
    evict_conn(conn);
    throw CommFailure("ReactorTransport: send to " + conn->dial_key + " failed");
  }
  if (arm) conn->loop->wake();  // loop recomputes its flush timeout
  if (parked) wait_for_drain(conn);
}

void ReactorTransport::send_frame_now(const std::shared_ptr<Conn>& conn, ULongLong dst_ep,
                                      transport::HandlerId handler, const ByteBuffer& payload) {
  ByteBuffer frame;
  frame.reserve(kHeaderSize + payload.size());
  CdrWriter w(frame);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(static_cast<ULong>(payload.size()));
  w.write_ulonglong(dst_ep);
  w.write_ulong(handler);
  w.write_double(sim::timestamp_now());
  require(frame.size() == kHeaderSize, "reactor frame header size drifted");
  frame.append(payload.view());

  bool failed = false;
  bool parked = false;
  {
    LockGuard lock(conn->mutex);
    // Pack-before-frame order: anything already coalescing precedes
    // this frame on the wire.
    if (!flush_pack(*conn)) {
      failed = true;
    } else {
      std::vector<iovec> iov{{frame.data(), frame.size()}};
      if (!write_or_spill(*conn, iov)) {
        failed = true;
      } else {
        parked = conn->outq_bytes > spill_limit_bytes();
      }
    }
  }
  if (failed) {
    evict_conn(conn);
    throw CommFailure("ReactorTransport: send to " + conn->dial_key + " failed");
  }
  if (parked) wait_for_drain(conn);
}

/// Builds the gather list for one packed wire message. `header` must
/// outlive the returned iov.
static void build_pack_iov(Conn& conn, ByteBuffer& header, std::vector<iovec>& iov)
    PARDIS_REQUIRES(conn.mutex) {
  CdrWriter w(header);
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  w.write_ulong(static_cast<ULong>(conn.pack_bytes));
  w.write_ulonglong(0);  // transport-level: no endpoint routing
  w.write_ulong(transport::kHandlerPack);
  w.write_double(sim::timestamp_now());
  require(header.size() == kHeaderSize, "reactor pack header size drifted");
  iov.reserve(1 + 2 * conn.pack.size());
  iov.push_back({header.data(), header.size()});
  for (auto& frame : conn.pack) {
    iov.push_back({frame.subheader.data(), frame.subheader.size()});
    if (!frame.payload.empty())
      iov.push_back({frame.payload.data(), frame.payload.size()});
  }
}

namespace {

void count_pack_flush(std::size_t frames, std::size_t wire_bytes) {
  if (!obs::enabled()) return;
  static obs::Counter& packs = obs::metrics().counter("transport.reactor.packs_sent");
  static obs::Counter& packed = obs::metrics().counter("transport.reactor.packed_frames_sent");
  static obs::Counter& bytes = obs::metrics().counter("transport.reactor.pack_bytes_sent");
  packs.add(1);
  packed.add(frames);
  bytes.add(wire_bytes);
}

}  // namespace

bool ReactorTransport::write_or_spill(Conn& conn, std::vector<iovec>& iov) {
  std::size_t idx = 0;
  if (conn.outq.empty()) {
    const int r = send_some(conn.fd, iov, idx);
    if (r < 0) {
      conn.dead.store(true, std::memory_order_release);
      return false;
    }
    if (r == 1) return true;
  }
  // Kernel buffer full — or spilled bytes are already parked ahead of
  // us, and stream order says we queue behind them. Either way the
  // unsent tail lands in outq and EPOLLOUT drains it FIFO; no thread
  // ever blocks on the socket while holding conn.mutex.
  Segment seg;
  append_iov_tail(seg, iov, idx);
  conn.outq_bytes += seg.bytes.size();
  conn.outq.push_back(std::move(seg));
  if (!conn.want_write) {
    conn.want_write = true;
    conn.loop->update_interest(conn, true);
  }
  return true;
}

bool ReactorTransport::flush_pack(Conn& conn) {
  if (conn.pack.empty()) {
    conn.flush_armed = false;
    return true;
  }
  ByteBuffer header;
  std::vector<iovec> iov;
  build_pack_iov(conn, header, iov);
  count_pack_flush(conn.pack.size(), kHeaderSize + conn.pack_bytes);
  const bool ok = write_or_spill(conn, iov);
  conn.pack.clear();
  conn.pack_bytes = 0;
  conn.flush_armed = false;
  return ok;
}

void ReactorTransport::wait_for_drain(const std::shared_ptr<Conn>& conn) {
  // Blocking-send backpressure without the deadlock: the sender parks
  // HERE, where the condvar wait releases conn->mutex, so the loop
  // stays free to take it, drain outq on EPOLLOUT, and notify. Two
  // mutually backpressured processes therefore keep reading each
  // other and both kernel buffers eventually drain. Bounded waits
  // re-check liveness so shutdown or a dead peer breaks the park.
  const std::size_t limit = spill_limit_bytes();
  UniqueLock lock(conn->mutex);
  while (conn->outq_bytes > limit) {
    if (conn->dead.load(std::memory_order_acquire) ||
        stopping_.load(std::memory_order_acquire)) {
      lock.unlock();
      evict_conn(conn);
      throw CommFailure("ReactorTransport: send to " + conn->dial_key +
                        " failed under backpressure");
    }
    // pardis-lint: allow(blocking) sender-thread write backpressure:
    // bounded, re-checks liveness, and the condvar wait releases
    // conn->mutex so no loop thread can be held up by this park.
    conn->drained.wait_for(lock, std::chrono::milliseconds(50));
  }
}

std::size_t ReactorTransport::pending_pack_frames(const transport::EndpointAddr& dst) const {
  const std::string key = dst.tcp_host + ":" + std::to_string(dst.tcp_port);
  std::shared_ptr<Conn> conn;
  {
    LockGuard lock(mutex_);
    auto it = conns_.find(key);
    if (it == conns_.end()) return 0;
    conn = it->second;
  }
  LockGuard lock(conn->mutex);
  return conn->pack.size();
}

}  // namespace pardis::reactor
