#include "reactor/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "reactor/reactor.hpp"
#include "reactor/reactor_transport.hpp"
#include "transport/pack.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::reactor {

namespace {

constexpr std::size_t kHeaderSize = 32;    // same bytes as TcpTransport
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxEvents = 64;

/// Listener re-arm delay after accept failure (fd exhaustion &
/// friends); shares the knob with TcpTransport's accept loop.
int accept_backoff_ms() {
  static const int v = [] {
    const char* s = std::getenv("PARDIS_ACCEPT_BACKOFF_MS");
    if (s == nullptr || *s == '\0') return 10;
    const int n = std::atoi(s);
    return n > 0 ? n : 10;
  }();
  return v;
}

}  // namespace

Conn::Conn(int fd_in, std::string peer_in, std::string dial_key_in)
    : fd(fd_in), peer(std::move(peer_in)), dial_key(std::move(dial_key_in)) {}

Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

EventLoop::EventLoop(ReactorTransport& owner, int index) : owner_(owner), index_(index) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw CommFailure("reactor: epoll_create1 failed");
  wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakefd_ < 0) {
    ::close(epfd_);
    epfd_ = -1;
    throw CommFailure("reactor: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
}

EventLoop::~EventLoop() {
  request_stop();
  join();
  drop_all_conns();
  if (epfd_ >= 0) ::close(epfd_);
  if (wakefd_ >= 0) ::close(wakefd_);
}

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::request_stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() {
  if (wakefd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wakefd_, &one, sizeof(one));
}

void EventLoop::watch_listener(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd, &ev);
}

void EventLoop::adopt_conn(const std::shared_ptr<Conn>& conn) {
  {
    LockGuard lock(mutex_);
    conns_[conn->fd] = conn;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->fd, &ev);
}

void EventLoop::update_interest(Conn& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::drop_all_conns() {
  std::map<int, std::shared_ptr<Conn>> doomed;
  {
    LockGuard lock(mutex_);
    doomed.swap(conns_);
  }
  for (auto& [fd, conn] : doomed) {
    conn->dead.store(true, std::memory_order_release);
    if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    ::shutdown(fd, SHUT_RDWR);
    conn->drained.notify_all();  // senders parked on backpressure bail out
  }
}

void EventLoop::run() {
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    maybe_resume_listener();
    const int timeout_ms = wait_timeout_ms();
    const int n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      PARDIS_LOG(kWarn, "reactor") << "loop " << index_
                                   << " epoll_wait failed: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakefd_) {
        drain_wakeups();
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        LockGuard lock(mutex_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn) conn_event(conn, events[i].events);
    }
    flush_due_packs();
  }
}

void EventLoop::drain_wakeups() {
  std::uint64_t count = 0;
  while (::read(wakefd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED) continue;  // peer gone mid-handshake; next
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient exhaustion (EMFILE & friends) or a hard error.
      // Returning to epoll_wait with the connection still pending
      // would make level-triggered epoll report the listener ready
      // immediately, spinning the loop at 100% CPU until fds free —
      // so drop the listener from the epoll set and re-arm it after a
      // backoff instead.
      if (obs::enabled()) {
        static obs::Counter& retries = obs::metrics().counter("transport.reactor.accept_retries");
        retries.add(1);
      }
      PARDIS_LOG(kWarn, "reactor") << "accept failed: " << std::strerror(errno)
                                   << "; pausing listener for " << accept_backoff_ms()
                                   << "ms";
      pause_listener();
      return;
    }
    owner_.adopt_accepted(fd);
  }
}

void EventLoop::pause_listener() {
  if (listener_paused_ || listen_fd_ < 0) return;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  listener_paused_ = true;
  listener_resume_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(accept_backoff_ms());
}

void EventLoop::maybe_resume_listener() {
  if (!listener_paused_ || std::chrono::steady_clock::now() < listener_resume_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  listener_paused_ = false;
}

void EventLoop::conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    kill_conn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0 && !write_ready(*conn)) {
    kill_conn(conn);
    return;
  }
  if ((events & EPOLLIN) != 0 && !read_ready(*conn)) kill_conn(conn);
}

bool EventLoop::read_ready(Conn& conn) {
  for (;;) {
    const std::size_t old = conn.rdbuf.size();
    conn.rdbuf.resize(old + kReadChunk);
    const ssize_t n = ::read(conn.fd, conn.rdbuf.data() + old, kReadChunk);
    if (n < 0) {
      conn.rdbuf.resize(old);
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    if (n == 0) {
      conn.rdbuf.resize(old);
      return false;  // orderly close
    }
    conn.rdbuf.resize(old + static_cast<std::size_t>(n));
    if (!parse_rdbuf(conn)) return false;
    // A short read usually means the socket is drained; if more bytes
    // raced in, level-triggered epoll re-reports readiness.
    if (static_cast<std::size_t>(n) < kReadChunk) return true;
  }
}

bool EventLoop::parse_rdbuf(Conn& conn) {
  auto& buf = conn.rdbuf;
  while (buf.size() - conn.rdoff >= kHeaderSize) {
    const Octet* h = buf.data() + conn.rdoff;
    const bool little = h[0] != 0;
    CdrReader r(std::span<const Octet>(h, kHeaderSize), little);
    r.read_octet();  // byte-order flag
    const ULong payload_len = r.read_ulong();
    const ULongLong dst_ep = r.read_ulonglong();
    const ULong handler = r.read_ulong();
    const Double time = r.read_double();

    // Same desync-or-hostile policy as TcpTransport::reader_loop: a
    // length beyond the frame bound or an unregistered handler id means
    // the stream cannot be resynchronized — disconnect.
    if (payload_len > wire::max_frame_bytes()) {
      wire::guard().note_bad_frame(
          conn.peer, "framed payload of " + std::to_string(payload_len) + " bytes exceeds " +
                         std::to_string(wire::max_frame_bytes()));
      return false;
    }
    if (handler == 0 || handler > transport::kHandlerPack) {
      wire::guard().note_bad_frame(conn.peer,
                                   "unknown handler id " + std::to_string(handler));
      return false;
    }
    if (buf.size() - conn.rdoff < kHeaderSize + payload_len) break;  // partial frame

    const std::span<const Octet> payload(buf.data() + conn.rdoff + kHeaderSize, payload_len);
    conn.rdoff += kHeaderSize + payload_len;

    // Quarantined peers get the TCP-level disconnect, as in the
    // blocking transport.
    if (wire::guard().quarantined(conn.peer)) return false;

    if (handler == transport::kHandlerHello) {
      try {
        CdrReader hr(payload, little);
        wire::Hello::unmarshal(hr).validate();
      } catch (const MarshalError& e) {
        wire::guard().note_bad_frame(conn.peer, e.what());
        PARDIS_LOG(kWarn, "reactor") << "rejecting peer " << conn.peer << ": " << e.what();
        return false;
      }
      continue;
    }
    if (handler == transport::kHandlerPack) {
      if (!parse_packed(conn, little, payload)) return false;
      continue;
    }
    owner_.deliver_frame(conn, dst_ep, handler, time, little, payload);
  }

  // Compact: drop consumed bytes once they dominate the buffer, so a
  // long-lived connection does not accrete every frame it ever read.
  if (conn.rdoff == buf.size()) {
    buf.clear();
    conn.rdoff = 0;
  } else if (conn.rdoff >= kReadChunk) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(conn.rdoff));
    conn.rdoff = 0;
  }
  return true;
}

bool EventLoop::parse_packed(Conn& conn, bool little, std::span<const Octet> payload) {
  if (obs::enabled()) {
    static obs::Counter& packs = obs::metrics().counter("transport.reactor.packs_received");
    packs.add(1);
  }
  const std::string err =
      transport::walk_packed(payload, [&](const transport::PackedSubframe& sf) {
        owner_.deliver_frame(conn, sf.dst_ep, sf.handler, sf.sim_time, little, sf.payload);
      });
  if (!err.empty()) {
    wire::guard().note_bad_frame(conn.peer, err);
    return false;
  }
  return true;
}

bool EventLoop::write_ready(Conn& conn) {
  bool progressed = false;
  bool ok = true;
  {
    LockGuard lock(conn.mutex);
    while (!conn.outq.empty()) {
      Segment& seg = conn.outq.front();
      const ssize_t n = ::send(conn.fd, seg.bytes.data() + seg.off,
                               seg.bytes.size() - seg.off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = errno == EAGAIN || errno == EWOULDBLOCK;  // else: kill conn
        break;                                         // still armed for EPOLLOUT
      }
      seg.off += static_cast<std::size_t>(n);
      conn.outq_bytes -= static_cast<std::size_t>(n);
      progressed = true;
      if (seg.off == seg.bytes.size()) conn.outq.pop_front();
    }
    if (ok && conn.outq.empty() && conn.want_write) {
      conn.want_write = false;
      update_interest(conn, false);
    }
  }
  // Wake senders parked on backpressure (wait_for_drain); notify
  // outside the lock so they can reacquire it immediately.
  if (progressed) conn.drained.notify_all();
  return ok;
}

void EventLoop::kill_conn(const std::shared_ptr<Conn>& conn) {
  conn->dead.store(true, std::memory_order_release);
  {
    LockGuard lock(mutex_);
    conns_.erase(conn->fd);
  }
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  owner_.evict_conn(conn);
}

int EventLoop::flush_timeout_ms() {
  std::vector<std::shared_ptr<Conn>> snapshot;
  {
    LockGuard lock(mutex_);
    snapshot.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) snapshot.push_back(conn);
  }
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (auto& conn : snapshot) {
    LockGuard lock(conn->mutex);
    if (conn->flush_armed && conn->flush_deadline < earliest) earliest = conn->flush_deadline;
  }
  if (earliest == std::chrono::steady_clock::time_point::max()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (earliest <= now) return 0;
  // Round UP so the loop never spins sub-millisecond waiting for a
  // deadline epoll_wait cannot express; flushing a hair late only
  // lengthens one window.
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(earliest - now);
  const auto ms = (us.count() + 999) / 1000;
  return static_cast<int>(ms > 1000 ? 1000 : ms);
}

int EventLoop::wait_timeout_ms() {
  int timeout = flush_timeout_ms();
  if (listener_paused_) {
    const auto now = std::chrono::steady_clock::now();
    int resume_ms = 0;
    if (listener_resume_ > now) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          listener_resume_ - now)
                          .count() +
                      1;
      resume_ms = static_cast<int>(ms > 1000 ? 1000 : ms);
    }
    timeout = timeout < 0 ? resume_ms : std::min(timeout, resume_ms);
  }
  return timeout;
}

void EventLoop::flush_due_packs() {
  std::vector<std::shared_ptr<Conn>> snapshot;
  {
    LockGuard lock(mutex_);
    snapshot.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) snapshot.push_back(conn);
  }
  const auto now = std::chrono::steady_clock::now();
  for (auto& conn : snapshot) {
    bool failed = false;
    {
      LockGuard lock(conn->mutex);
      if (!conn->flush_armed || conn->flush_deadline > now) continue;
      // The window expired with little coalesced: the sender is not
      // bursting, so shrink toward immediate flushing.
      if (conn->pack.size() <= 1) conn->window_us /= 2;
      if (!owner_.flush_pack(*conn)) failed = true;
    }
    if (failed) kill_conn(conn);
  }
}

}  // namespace pardis::reactor
