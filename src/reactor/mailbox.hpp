// Lock-free MPSC mailbox (Vyukov intrusive queue) — the reactor's
// receive-side replacement for the Endpoint mutex+condvar deque.
//
// Why: an epoll event loop delivering into a mutex-guarded queue can
// block behind the consumer (a POA loop holding the lock while it
// drains), turning one slow servant into head-of-line blocking for
// every connection sharded onto that loop. The Vyukov queue gives
// producers a wait-free push (one atomic exchange + one store), so the
// event loop never sleeps on a consumer lock — pardis-lint PT001
// extends to `EventLoop::run` to keep it that way.
//
// Contract:
//   * push() — any thread, lock-free, never fails.
//   * try_pop() — SINGLE consumer only. May return nullptr while a
//     producer is mid-push (between the exchange and the next-link
//     store); callers that need "empty vs in-flight" pair it with an
//     external size counter (Endpoint does).
//   * Nodes are heap-allocated by the caller and freed by the caller
//     after try_pop() returns them; the stub node is a member and is
//     never returned.
#pragma once

#include <atomic>
#include <utility>

namespace pardis::reactor {

template <typename T>
class MpscQueue {
 public:
  struct Node {
    explicit Node(T v) : value(std::move(v)) {}
    Node() = default;
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Single-threaded at destruction: free anything never consumed.
    while (Node* n = try_pop()) delete n;
  }

  /// Wait-free multi-producer push; takes ownership of `n`.
  void push(Node* n) {
    n->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    // The queue is momentarily "broken" here: n is reachable as head
    // but prev->next does not point at it yet. try_pop() detects the
    // gap (tail == head but next == nullptr) and reports empty; the
    // store below heals it.
    prev->next.store(n, std::memory_order_release);
  }

  /// Single-consumer pop; nullptr when empty OR when the only pending
  /// node is still being linked by its producer.
  Node* try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or producer mid-push)
      tail_ = next;
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    // tail is the last linked node. If a producer has exchanged head_
    // but not yet linked, head != tail and we must report empty rather
    // than re-insert the stub into the middle of its pending chain.
    if (tail != head_.load(std::memory_order_acquire)) return nullptr;
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

 private:
  std::atomic<Node*> head_;  // producers exchange here
  Node* tail_;               // consumer-owned
  Node stub_;
};

}  // namespace pardis::reactor
