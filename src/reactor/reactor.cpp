#include "reactor/reactor.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "reactor/reactor_transport.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::reactor {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtol(v, nullptr, 10);
}

// Each knob: -1 = defer to the environment, >= 0 = test override. The
// env read is cached in a static local on first use (wire_guard idiom).
std::atomic<int> g_enabled{-1};
std::atomic<int> g_loops{-1};
std::atomic<int> g_pack{-1};
std::atomic<int> g_flush_us{-1};
std::atomic<long> g_pack_bytes{-1};
std::atomic<long> g_spill_bytes{-1};

/// Packed payloads can approach twice the flush threshold (the flush
/// fires after the append that crossed it, and any single packable
/// frame is itself below the threshold), so the threshold must stay
/// within half the receiver's frame bound or every oversized packed
/// message would be rejected by parse_rdbuf and kill the connection.
std::size_t clamp_pack_threshold(std::size_t v) {
  const std::size_t cap = wire::max_frame_bytes() / 2;
  return v > cap ? cap : v;
}

}  // namespace

bool enabled() noexcept {
  const int o = g_enabled.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = env_flag("PARDIS_REACTOR", false);
  return env;
}

void set_enabled(int v) noexcept { g_enabled.store(v, std::memory_order_relaxed); }

int loop_count() noexcept {
  const int o = g_loops.load(std::memory_order_relaxed);
  if (o > 0) return o;
  static const int env = [] {
    const long n = env_long("PARDIS_REACTOR_LOOPS", 0);
    if (n > 0) return static_cast<int>(n);
    const unsigned hw = std::thread::hardware_concurrency();
    const int cores = hw > 0 ? static_cast<int>(hw) : 1;
    return cores < 4 ? cores : 4;
  }();
  return env;
}

void set_loop_count(int v) noexcept { g_loops.store(v, std::memory_order_relaxed); }

bool pack_enabled() noexcept {
  const int o = g_pack.load(std::memory_order_relaxed);
  if (o >= 0) return o > 0;
  static const bool env = env_flag("PARDIS_REACTOR_PACK", true);
  return env;
}

void set_pack(int v) noexcept { g_pack.store(v, std::memory_order_relaxed); }

unsigned flush_window_us() noexcept {
  const int o = g_flush_us.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<unsigned>(o);
  static const unsigned env = [] {
    const long n = env_long("PARDIS_REACTOR_FLUSH_US", 100);
    return n >= 0 ? static_cast<unsigned>(n) : 100u;
  }();
  return env;
}

void set_flush_window_us(int v) noexcept { g_flush_us.store(v, std::memory_order_relaxed); }

std::size_t pack_threshold_bytes() noexcept {
  const long o = g_pack_bytes.load(std::memory_order_relaxed);
  if (o > 0) return clamp_pack_threshold(static_cast<std::size_t>(o));
  static const std::size_t env = [] {
    const long n = env_long("PARDIS_REACTOR_PACK_BYTES", 16 * 1024);
    return n > 0 ? static_cast<std::size_t>(n) : std::size_t{16} * 1024;
  }();
  return clamp_pack_threshold(env);
}

void set_pack_threshold_bytes(long v) noexcept {
  g_pack_bytes.store(v, std::memory_order_relaxed);
}

std::size_t spill_limit_bytes() noexcept {
  const long o = g_spill_bytes.load(std::memory_order_relaxed);
  if (o > 0) return static_cast<std::size_t>(o);
  static const std::size_t env = [] {
    const long n = env_long("PARDIS_REACTOR_SPILL_BYTES", 4 * 1024 * 1024);
    return n > 0 ? static_cast<std::size_t>(n) : std::size_t{4} * 1024 * 1024;
  }();
  return env;
}

void set_spill_limit_bytes(long v) noexcept {
  g_spill_bytes.store(v, std::memory_order_relaxed);
}

std::unique_ptr<transport::Transport> make_tcp_transport(UShort port,
                                                         const sim::Testbed* testbed,
                                                         int listen_backlog) {
  if (enabled())
    return std::make_unique<ReactorTransport>(port, testbed, listen_backlog);
  return std::make_unique<transport::TcpTransport>(port, testbed, listen_backlog);
}

}  // namespace pardis::reactor
