// reactor::EventLoop — one epoll multiplexer thread.
//
// A ReactorTransport owns N loops (PARDIS_REACTOR_LOOPS, default
// min(4, cores)); every socket — accepted or dialed — is sharded onto
// one loop by peer hash and stays there for life. Each loop blocks in
// epoll_wait on its sockets plus an eventfd wakeup, so the whole
// receive side of a process costs N threads instead of
// thread-per-connection, and the timeout doubles as the timer for the
// adaptive pack-flush windows of the connections it owns.
//
// Discipline: the loop thread must never block anywhere else —
// delivery lands in lock-free endpoint mailboxes, writes are
// nonblocking with EPOLLOUT spill, and pardis-lint PT001 walks the
// call graph from EventLoop::run to keep it that way.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"
#include "core/wire.hpp"

namespace pardis::transport {
class Endpoint;
}

namespace pardis::reactor {

class EventLoop;
class ReactorTransport;

/// A fully framed run of wire bytes (or the unsent tail of one) queued
/// behind a kernel send buffer that filled mid-write.
struct Segment {
  ByteBuffer bytes;
  std::size_t off = 0;
};

/// One small frame waiting in a connection's coalescing buffer: the
/// 24-byte packed subheader is prebuilt, the payload rides unchanged.
struct PendingFrame {
  std::array<Octet, transport::kPackSubheaderSize> subheader;
  ByteBuffer payload;
};

/// One multiplexed TCP connection. Accepted and dialed sockets share
/// the struct; the fd is nonblocking either way. The last shared_ptr
/// holder closes the fd (eviction paths call ::shutdown only, so a
/// racing sender can never aim bytes at a recycled descriptor number).
struct Conn {
  Conn(int fd_in, std::string peer_in, std::string dial_key_in);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  const int fd;
  /// "ip:port" of the remote — the wire::PeerGuard quarantine key.
  const std::string peer;
  /// "host:port" cache key when this process dialed the connection;
  /// empty for accepted sockets.
  const std::string dial_key;
  /// Set once the connection is known broken; senders evict and redial.
  std::atomic<bool> dead{false};
  /// The event loop this connection is sharded onto (set at adoption,
  /// before the conn is shared; never reassigned).
  EventLoop* loop = nullptr;

  /// Guards the write-side state below AND the write stream itself:
  /// whole wire messages are emitted under it, so concurrent senders
  /// never interleave bytes on the socket.
  mutable Mutex mutex{"reactor.conn"};
  /// Coalescing buffer: small frames awaiting one packed wire message.
  std::vector<PendingFrame> pack PARDIS_GUARDED_BY(mutex);
  /// Bytes `pack` will occupy on the wire (subheaders + payloads).
  std::size_t pack_bytes PARDIS_GUARDED_BY(mutex) = 0;
  /// Coalescing flush window state machine (see DESIGN.md): IDLE
  /// (not armed) -> ARMED (deadline set, loop timer pending) -> FLUSH.
  bool flush_armed PARDIS_GUARDED_BY(mutex) = false;
  std::chrono::steady_clock::time_point flush_deadline PARDIS_GUARDED_BY(mutex){};
  /// Current adaptive window in µs: doubled (up to the knob ceiling)
  /// when sends arrive back-to-back, halved when an expiry flush finds
  /// nothing coalesced; 0 = flush inline in the sender.
  unsigned window_us PARDIS_GUARDED_BY(mutex) = 0;
  std::chrono::steady_clock::time_point last_send PARDIS_GUARDED_BY(mutex){};
  /// Wire bytes spilled by a nonblocking write; drained on EPOLLOUT
  /// strictly before anything newer. EVERY writer spills — sender
  /// threads included — so no thread ever blocks on the socket while
  /// holding `mutex` (the loop takes it each iteration; a sender
  /// parked inside it would wedge every connection on the loop).
  std::deque<Segment> outq PARDIS_GUARDED_BY(mutex);
  /// Unsent bytes currently parked in `outq`; past the spill limit,
  /// senders wait on `drained` for blocking-send backpressure.
  std::size_t outq_bytes PARDIS_GUARDED_BY(mutex) = 0;
  bool want_write PARDIS_GUARDED_BY(mutex) = false;
  /// Signaled when the loop drains `outq` bytes or the connection
  /// dies; only sender threads ever wait on it (bounded re-checks, so
  /// a missed wakeup costs milliseconds, never a hang).
  std::condition_variable_any drained;

  // Read-side reassembly buffer: touched only by the owning loop thread.
  std::vector<Octet> rdbuf;
  std::size_t rdoff = 0;  ///< parse cursor into rdbuf
  // Read-side endpoint cache (loop thread only): a connection's frames
  // overwhelmingly target one endpoint, so delivery skips the
  // transport's endpoint-map mutex per frame. Weak so a closed
  // endpoint is never kept alive; ids are never reused, so a hit can
  // never alias a different endpoint.
  ULongLong rd_last_dst = 0;
  std::weak_ptr<transport::Endpoint> rd_last_ep;
};

class EventLoop {
 public:
  EventLoop(ReactorTransport& owner, int index);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Starts the loop thread (after construction so `owner` is whole).
  void start();
  /// Asks the thread to exit and wakes it; join() completes shutdown.
  void request_stop();
  void join();
  /// eventfd poke: re-evaluate timers / newly adopted fds (any thread).
  void wake();

  /// Registers `conn` with this loop's epoll. The caller must have set
  /// conn->loop to this loop BEFORE sharing the conn (dial-cache
  /// insertion), so no thread ever observes a null loop.
  void adopt_conn(const std::shared_ptr<Conn>& conn);
  /// Accept duty for the transport's listener (loop 0; call before
  /// start()).
  void watch_listener(int listen_fd);
  /// Arms/disarms EPOLLOUT interest for `conn` (epoll_ctl is
  /// thread-safe; callers hold conn.mutex for the want_write flag).
  void update_interest(Conn& conn, bool want_write);
  /// Severs and forgets every connection (transport shutdown, after
  /// join()).
  void drop_all_conns();

 private:
  /// Thread body. pardis-lint PT001 entry point: everything reachable
  /// from here must stay nonblocking (epoll_wait carries the only
  /// sleep).
  void run();
  void drain_wakeups();
  void accept_ready();
  /// Unregisters the listener from epoll after an accept failure (fd
  /// exhaustion & friends): with level-triggered epoll the unaccepted
  /// pending connection would otherwise make every epoll_wait return
  /// immediately and spin the loop at 100% CPU until fds free.
  void pause_listener();
  /// Re-registers the listener once the backoff deadline passes.
  void maybe_resume_listener();
  /// epoll_wait timeout: min of the earliest pack-flush deadline and
  /// the listener-resume deadline (-1 = neither armed).
  int wait_timeout_ms();
  void conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  /// Reads until EAGAIN, parsing complete frames; false = kill conn.
  bool read_ready(Conn& conn);
  bool parse_rdbuf(Conn& conn);
  bool parse_packed(Conn& conn, bool little, std::span<const Octet> payload);
  /// Drains spilled segments on EPOLLOUT; false = kill conn.
  bool write_ready(Conn& conn);
  /// Removes `conn` from this loop and severs the socket.
  void kill_conn(const std::shared_ptr<Conn>& conn);
  /// Millis until the earliest armed flush deadline (-1 = none).
  int flush_timeout_ms();
  void flush_due_packs();

  ReactorTransport& owner_;
  const int index_;
  int epfd_ = -1;
  int wakefd_ = -1;
  int listen_fd_ = -1;
  // Accept-backoff state; loop thread only (accept_ready / run).
  bool listener_paused_ = false;
  std::chrono::steady_clock::time_point listener_resume_{};
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  mutable Mutex mutex_{"reactor.loop"};
  std::map<int, std::shared_ptr<Conn>> conns_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::reactor
