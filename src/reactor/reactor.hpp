// pardis_reactor knobs + transport factory.
//
// The reactor is the throughput engine (ROADMAP item 3): a small set of
// epoll event loops multiplexing every connection, DDSI-style packed
// wire messages, gather writes, and lock-free endpoint mailboxes. All
// of it is knob-gated; with PARDIS_REACTOR off (the default) nothing
// here runs and the classic thread-per-connection TcpTransport carries
// the wire byte-identically to before.
//
//   PARDIS_REACTOR=1           use ReactorTransport where the ORB would
//                              dial TCP (default off)
//   PARDIS_REACTOR_LOOPS=N     event loops (default min(4, cores))
//   PARDIS_REACTOR_PACK=0      disable small-frame coalescing (default
//                              on when the reactor is on; pack-off
//                              wires are byte-identical to TcpTransport)
//   PARDIS_REACTOR_FLUSH_US=N  max adaptive coalescing window, µs
//                              (default 100)
//   PARDIS_REACTOR_PACK_BYTES=N flush threshold / max packed payload
//                              bytes (default 16384; clamped to half
//                              PARDIS_MAX_FRAME_BYTES so a packed
//                              message can never trip the receiver's
//                              oversize bound)
//   PARDIS_REACTOR_SPILL_BYTES=N bytes parked behind EPOLLOUT before a
//                              sender blocks for backpressure
//                              (default 4 MiB)
#pragma once

#include <cstddef>
#include <memory>

#include "transport/transport.hpp"

namespace pardis::reactor {

/// PARDIS_REACTOR: route TCP-addressed traffic through the reactor.
bool enabled() noexcept;
/// Override: 1 = on, 0 = off, -1 = back to the environment value.
void set_enabled(int v) noexcept;

/// PARDIS_REACTOR_LOOPS (default min(4, hardware threads), at least 1).
int loop_count() noexcept;
void set_loop_count(int v) noexcept;

/// PARDIS_REACTOR_PACK: coalesce small frames into kHandlerPack wire
/// messages (default on). Pack-off reactors emit the classic framing.
bool pack_enabled() noexcept;
void set_pack(int v) noexcept;

/// PARDIS_REACTOR_FLUSH_US: ceiling of the adaptive coalescing window.
unsigned flush_window_us() noexcept;
void set_flush_window_us(int v) noexcept;

/// PARDIS_REACTOR_PACK_BYTES: packed-payload flush threshold. Clamped
/// to wire::max_frame_bytes()/2 — the flush fires after an append and
/// every packable frame is itself below the threshold, so a packed
/// payload can approach twice the threshold; the clamp guarantees it
/// stays within the receiver's frame bound.
std::size_t pack_threshold_bytes() noexcept;
void set_pack_threshold_bytes(long v) noexcept;

/// PARDIS_REACTOR_SPILL_BYTES: unsent bytes parked behind EPOLLOUT on
/// one connection before rsr() blocks the sender (blocking-send
/// backpressure; the event loops themselves never block).
std::size_t spill_limit_bytes() noexcept;
void set_spill_limit_bytes(long v) noexcept;

/// The TCP transport the ORB should stand up for `port`: a
/// ReactorTransport when enabled(), the classic TcpTransport otherwise.
std::unique_ptr<transport::Transport> make_tcp_transport(
    UShort port = 0, const sim::Testbed* testbed = nullptr, int listen_backlog = 0);

}  // namespace pardis::reactor
