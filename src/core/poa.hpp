// The PARDIS POA: server-side request delivery.
//
// "After all objects have been created, the programmer usually passes
// control to PARDIS by calling POA::impl_is_ready(). ... Since the
// programmer may want to additionally poll for requests during
// processing, PARDIS allows the server to invoke
// POA::process_requests() at any time during computation. ... Both
// invocations must be collective with respect to all processing
// threads of the server." (paper §3.3)
//
// Dispatch ordering: requests of one binding run in invocation order
// (PARDIS "guarantees that sequence of invocation is preserved");
// across bindings, SPMD requests run in the completion order observed
// by server rank 0, which broadcasts the dispatch schedule so all
// threads dispatch collectively in the same order. Single objects are
// dispatched by their owning thread alone — this is what enables the
// paper's §4.2 "parallel interaction" with single objects distributed
// over the threads of a parallel server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/durable.hpp"
#include "core/orb.hpp"
#include "core/servant.hpp"
#include "rts/domain.hpp"

namespace pardis::core {

namespace detail {
struct PoaShared;
}

class Poa {
 public:
  /// Collective across the server domain: every computing thread
  /// constructs its Poa at the same point.
  Poa(Orb& orb, rts::DomainContext& dctx);
  ~Poa();

  Poa(const Poa&) = delete;
  Poa& operator=(const Poa&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }
  const transport::EndpointAddr& endpoint_addr() const;

  /// Collective: activates an SPMD object. Every thread passes its
  /// servant instance (rank-local state lives in the servant).
  /// `arg_specs` registers server-side distribution templates per
  /// operation (by dseq-argument position) — they are published inside
  /// the object reference.
  /// With `replica` (pardis_pool) the object joins the replica group
  /// registered under `name` (ObjectRegistry::register_replica)
  /// instead of claiming the single binding for it, and deactivation
  /// withdraws only this member.
  ObjectRef activate_spmd(ServantBase& servant, const std::string& name,
                          std::map<std::string, std::vector<DistSpec>> arg_specs = {},
                          bool replica = false);

  /// Local: activates a single object owned by the calling thread.
  /// Single objects never operate on distributed arguments (§3.1).
  /// `replica` as in activate_spmd.
  ObjectRef activate_single(ServantBase& servant, const std::string& name,
                            bool replica = false);

  /// Collective poll-once; dispatches every deliverable request.
  /// Returns the number of requests this thread dispatched.
  int process_requests();

  /// Collective blocking loop; returns after deactivate().
  void impl_is_ready();

  /// Makes impl_is_ready return (on every thread) at the next round.
  /// Callable from servant code or any other thread.
  void deactivate();

  /// Requests ingested but not yet dispatched on this rank — the depth
  /// the admission watermarks measure. Thread-safe (a relaxed mirror of
  /// the queue size), for tests and diagnostics.
  std::size_t pending_requests() const noexcept {
    return depth_mirror_.load(std::memory_order_relaxed);
  }

  /// Admission watermarks after constructor validation: a degenerate
  /// configuration (low >= high, which would flip the overload state
  /// on every request) is clamped to low = high - 1.
  std::size_t high_watermark() const noexcept { return high_watermark_; }
  std::size_t low_watermark() const noexcept { return low_watermark_; }

 private:
  struct Assembling {
    RequestHeader header;          // representative (first body seen)
    std::map<int, ServerInvocation::Body> bodies;  // by client rank
    std::uint64_t complete_order = 0;
    /// When the first body arrived: the request's deadline budget (if
    /// any) counts queue-wait from here.
    std::chrono::steady_clock::time_point first_arrival{};
    bool complete() const {
      return bodies.size() == static_cast<std::size_t>(header.client_size);
    }
  };
  using Key = std::pair<ULongLong, ULong>;  // (binding id, seq no)

  void drain();
  void ingest(transport::RsrMessage&& msg);
  /// With `expired_only`, dispatches only deadline-expired entries
  /// (each answers kTimeout without running the servant) — the
  /// admission controller's expired-first eviction path.
  int dispatch_ready_singles(bool expired_only = false);
  /// pardis_flow admission control: recomputes the overloaded_
  /// hysteresis state from the assembly-queue depth.
  void update_overload_state();
  /// True when admission control rejected this new request; the caller
  /// (ingest) then drops it without assembling. Sends the kOverload
  /// reply (with the retry-after hint) unless the request is oneway.
  bool shed_if_overloaded(const RequestHeader& header);
  /// The binding's next in-order sequence number out of `next_map`
  /// (next_seq_, or the rank-0 scheduler's working copy), after
  /// consuming any contiguous run of shed sequence numbers: an
  /// admission-rejected request leaves a hole in the binding's
  /// invocation order that the dispatch horizon must skip, not wait
  /// on. Markers below the horizon (the request was re-sent with the
  /// retry flag and admitted) are dropped as stale.
  ULong expected_seq(std::map<ULongLong, ULong>& next_map, ULongLong binding_id);
  /// `key` is taken by value: callers pass references into
  /// `assembling_`, which dispatch erases before using the key again.
  /// With `expired`, the servant is not run: every client rank gets a
  /// kTimeout error reply instead (the request outwaited its deadline
  /// in the server queue).
  void dispatch(Key key, bool expired = false);
  /// True when the request's deadline budget elapsed since its first
  /// body arrived here.
  bool deadline_passed(const Assembling& a) const;
  void wait_until_assembled(const Key& key);
  int round(bool& deactivated);

  // --- pardis_wal durability (all no-ops unless wal::enabled() and the
  // servant opted in via _durable()) -------------------------------------

  /// Opens (and recovers) this rank's log for a freshly activated
  /// durable object, then pulls a state snapshot from a group sibling
  /// if one is serving (register-then-pull join).
  void setup_durable(const ObjectRef& ref, ServantBase& servant, bool spmd);
  /// Replays one recovered/transferred mutation record through the
  /// servant without sending any reply.
  void replay_mutation(const ObjectRef& ref, ServantBase& servant, bool spmd,
                       durable::MutationRecord&& m);
  /// kHandlerStateXfer frames (join requests, snapshots outside a
  /// join, post-commit appends from the sibling's matching rank).
  void handle_state_xfer(transport::RsrMessage&& msg);
  /// Applies one forwarded mutation record: re-log under our own LSN,
  /// execute unless dedup-by-seq suppresses it, answer any assembling
  /// retry of the same key from the recorded reply frames.
  void apply_xfer_append(durable::DurableObj& dur, ByteBuffer payload);
  /// True when the request is a retry of a mutation this replica has
  /// durably committed: the recorded reply frames are re-sent and the
  /// request must not assemble (the servant never runs twice).
  bool answer_retry_from_log(const RequestHeader& header, const Key& key);
  /// fsync-then-forward-then-reply commit of one durable dispatch.
  void commit_durable(durable::DurableObj& dur, const Key& key,
                      const RequestHeader& header, ServerInvocation& inv);
  /// Streams a committed record to every group sibling's matching rank.
  void forward_append(durable::DurableObj& dur, const ByteBuffer& payload);
  /// Blocks a scheduled fresh durable dispatch until every earlier
  /// sequence number of its binding has landed here (own dispatch,
  /// forwarded append, or shed hole) — appends travel rank-to-rank
  /// asynchronously, so a collective schedule can outrun them.
  void wait_for_durable_horizon(const Key& key);
  /// Writes (and commits) a state checkpoint to the object's own log.
  void snapshot_durable(durable::DurableObj& dur, ServantBase& servant);

  Orb* orb_;
  rts::Communicator* comm_;
  int rank_;
  int size_;
  std::string host_model_;
  std::shared_ptr<transport::Endpoint> endpoint_;
  detail::PoaShared* shared_;

  std::map<Key, Assembling> assembling_;
  std::map<ULongLong, ULong> next_seq_;  // per binding
  /// pardis_wal: this rank's durable-object replicas, by object id.
  /// Only this POA thread touches it (logs have their own locking).
  std::map<ULongLong, durable::DurableObj> durable_;
  /// Sequence numbers shed by admission control, per binding: holes
  /// the in-order gate skips (consumed by expected_seq). Holes in a
  /// single-object binding are local to the owning rank; holes in an
  /// SPMD binding originate at rank 0 and reach every other rank
  /// through the round schedule, so all threads skip the same
  /// sequence numbers and next_seq_ stays collectively consistent.
  std::map<ULongLong, std::set<ULong>> shed_seqs_;
  /// SPMD sequence numbers rank 0 shed since the last round, awaiting
  /// broadcast in the next schedule. Only populated on rank 0.
  std::vector<Key> shed_bcast_;
  /// Replayed dispatches (retry-flagged, seq below the binding's next)
  /// the coordinator has put into a schedule but not yet dispatched:
  /// keeps one replay from landing in two outstanding schedules when a
  /// nested round runs. Only populated on rank 0.
  std::set<Key> scheduled_replays_;
  std::uint64_t completion_counter_ = 0;
  ULongLong round_serial_ = 0;

  // pardis_flow admission control (constants cached from OrbConfig;
  // high_ == 0 disables it). Each server thread guards its own
  // assembly queue, but the shed *decision* for SPMD objects is the
  // coordinator's alone: rank 0 rejects with kOverload and the round
  // schedule carries its shed sequence numbers to the other ranks. An
  // independent per-rank shed would desynchronize the dispatch
  // horizon — the shedding rank skips a sequence number the
  // coordinator schedules, silently sitting out a collective dispatch
  // the other ranks execute. Single objects shed locally: only the
  // owning rank ever dispatches their bindings.
  std::size_t high_watermark_ = 0;
  std::size_t low_watermark_ = 0;
  ULong overload_retry_after_ms_ = 0;
  /// Bound on wait_until_assembled (0 = unbounded): a scheduled
  /// collective dispatch whose bodies never finish arriving fails the
  /// round with CommFailure instead of wedging every rank.
  std::chrono::milliseconds assembly_stall_{0};
  bool overloaded_ = false;
  std::atomic<std::size_t> depth_mirror_{0};
};

}  // namespace pardis::core
