// Object registry interface + the in-process implementation.
//
// The paper's Object Repository defines a naming domain: "On
// activation, every object registers with an object repository, which
// is searched when the client requests a connection to a specific
// object. Each repository is associated with a unique namespace."
// The repo module layers a transport-reachable repository service and
// the Implementation Repository on top of this interface.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/object_ref.hpp"

namespace pardis::core {

class ObjectRegistry {
 public:
  virtual ~ObjectRegistry() = default;

  /// Registers (or re-registers) a named object.
  virtual void register_object(const ObjectRef& ref) = 0;

  /// Looks a name up; `host` narrows the search when several objects
  /// share a name across hosts (empty host matches any).
  virtual std::optional<ObjectRef> lookup(const std::string& name,
                                          const std::string& host) = 0;

  virtual void unregister(const std::string& name, const std::string& host) = 0;

  /// Registered names (diagnostics).
  virtual std::vector<std::string> list() = 0;
};

/// Registry for metaapplications living in one process; also the
/// backing store of the repo module's repository server.
class InProcessRegistry final : public ObjectRegistry {
 public:
  void register_object(const ObjectRef& ref) override;
  std::optional<ObjectRef> lookup(const std::string& name, const std::string& host) override;
  void unregister(const std::string& name, const std::string& host) override;
  std::vector<std::string> list() override;

 private:
  std::mutex mutex_;
  // key: (name, host) — one object per name per host.
  std::map<std::pair<std::string, std::string>, ObjectRef> objects_;
};

}  // namespace pardis::core
