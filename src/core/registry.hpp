// Object registry interface + the in-process implementation.
//
// The paper's Object Repository defines a naming domain: "On
// activation, every object registers with an object repository, which
// is searched when the client requests a connection to a specific
// object. Each repository is associated with a unique namespace."
// The repo module layers a transport-reachable repository service and
// the Implementation Repository on top of this interface.
//
// pardis_pool extends the binding model from name -> one ObjectRef to
// name -> *replica group*: N functionally equivalent servers register
// under one name, and the group carries an epoch that is bumped on
// every membership change so clients can detect stale views. Plain
// lookup() against a group name keeps working (it returns the first
// member), so non-pool clients are unaffected.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/object_ref.hpp"

namespace pardis::core {

/// One name's replica set (pardis_pool). Members are functionally
/// equivalent servers; the epoch counts membership changes since the
/// group was created.
struct ReplicaGroup {
  std::string name;
  ULongLong epoch = 0;
  std::vector<ObjectRef> members;

  bool valid() const noexcept { return !members.empty(); }

  void marshal(CdrWriter& w) const;
  static ReplicaGroup unmarshal(CdrReader& r);
};

class ObjectRegistry {
 public:
  virtual ~ObjectRegistry() = default;

  /// Registers (or re-registers) a named object.
  virtual void register_object(const ObjectRef& ref) = 0;

  /// Looks a name up; `host` narrows the search when several objects
  /// share a name across hosts (empty host matches any).
  virtual std::optional<ObjectRef> lookup(const std::string& name,
                                          const std::string& host) = 0;

  virtual void unregister(const std::string& name, const std::string& host) = 0;

  /// Registered names (diagnostics).
  virtual std::vector<std::string> list() = 0;

  // --- pardis_pool: replica groups -------------------------------------

  /// Registers `ref` as one member of the replica group named
  /// `ref.name` (creating the group if needed) and returns the group
  /// epoch after the change. The default degrades gracefully for
  /// registries without group support: plain register_object, epoch 0.
  virtual ULongLong register_replica(const ObjectRef& ref);

  /// All replicas registered under `name` (`host` narrows as in
  /// lookup). Registries without group support synthesize a group of
  /// one from lookup(). nullopt when nothing matches.
  virtual std::optional<ReplicaGroup> lookup_group(const std::string& name,
                                                   const std::string& host);

  /// Removes the member with `id` from the group named `name`; the
  /// last removal deletes the group. The default falls back to
  /// unregister(name, "").
  virtual void unregister_replica(const std::string& name, const ObjectId& id);
};

/// Registry for metaapplications living in one process; also the
/// backing store of the repo module's repository server.
class InProcessRegistry final : public ObjectRegistry {
 public:
  void register_object(const ObjectRef& ref) override;
  std::optional<ObjectRef> lookup(const std::string& name, const std::string& host) override;
  void unregister(const std::string& name, const std::string& host) override;
  std::vector<std::string> list() override;

  ULongLong register_replica(const ObjectRef& ref) override;
  std::optional<ReplicaGroup> lookup_group(const std::string& name,
                                           const std::string& host) override;
  void unregister_replica(const std::string& name, const ObjectId& id) override;

 private:
  /// Adds `ref` to the live group for its name (replacing the member
  /// with the same object id, else the same host, else appending) and
  /// bumps the epoch. Caller holds mutex_; the group must exist.
  void join_group_locked(ReplicaGroup& group, const ObjectRef& ref);

  std::mutex mutex_;
  // key: (name, host) — one object per name per host.
  std::map<std::pair<std::string, std::string>, ObjectRef> objects_;
  /// pardis_pool replica groups, by name. A name lives in `groups_`
  /// once register_replica touches it; single-binding registrations
  /// of the same name then *join* the group (epoch bump) instead of
  /// silently shadowing earlier members.
  std::map<std::string, ReplicaGroup> groups_;
};

}  // namespace pardis::core

namespace pardis {

template <>
struct CdrTraits<core::ReplicaGroup> {
  static void marshal(CdrWriter& w, const core::ReplicaGroup& g) { g.marshal(w); }
  static void unmarshal(CdrReader& r, core::ReplicaGroup& g) {
    g = core::ReplicaGroup::unmarshal(r);
  }
};

}  // namespace pardis
