// Object registry interface + the in-process implementation.
//
// The paper's Object Repository defines a naming domain: "On
// activation, every object registers with an object repository, which
// is searched when the client requests a connection to a specific
// object. Each repository is associated with a unique namespace."
// The repo module layers a transport-reachable repository service and
// the Implementation Repository on top of this interface.
//
// pardis_pool extends the binding model from name -> one ObjectRef to
// name -> *replica group*: N functionally equivalent servers register
// under one name, and the group carries an epoch that is bumped on
// every membership change so clients can detect stale views. Plain
// lookup() against a group name keeps working (it returns the first
// member), so non-pool clients are unaffected.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/object_ref.hpp"

namespace pardis::core {

/// One name's replica set (pardis_pool). Members are functionally
/// equivalent servers; the epoch counts membership changes since the
/// group was created.
struct ReplicaGroup {
  std::string name;
  ULongLong epoch = 0;
  std::vector<ObjectRef> members;

  bool valid() const noexcept { return !members.empty(); }

  void marshal(CdrWriter& w) const;
  static ReplicaGroup unmarshal(CdrReader& r);
};

class ObjectRegistry {
 public:
  virtual ~ObjectRegistry() = default;

  /// Registers (or re-registers) a named object.
  virtual void register_object(const ObjectRef& ref) = 0;

  /// Looks a name up; `host` narrows the search when several objects
  /// share a name across hosts (empty host matches any).
  virtual std::optional<ObjectRef> lookup(const std::string& name,
                                          const std::string& host) = 0;

  virtual void unregister(const std::string& name, const std::string& host) = 0;

  /// Registered names (diagnostics).
  virtual std::vector<std::string> list() = 0;

  // --- pardis_pool: replica groups -------------------------------------

  /// Registers `ref` as one member of the replica group named
  /// `ref.name` (creating the group if needed) and returns the group
  /// epoch after the change. The default degrades gracefully for
  /// registries without group support: plain register_object, epoch 0.
  virtual ULongLong register_replica(const ObjectRef& ref);

  /// All replicas registered under `name` (`host` narrows as in
  /// lookup). Registries without group support synthesize a group of
  /// one from lookup(). nullopt when nothing matches.
  virtual std::optional<ReplicaGroup> lookup_group(const std::string& name,
                                                   const std::string& host);

  /// Removes the member with `id` from the group named `name`; the
  /// last removal deletes the group. The default falls back to
  /// unregister(name, "").
  virtual void unregister_replica(const std::string& name, const ObjectId& id);

  // --- pardis_ns: leases and cached facades ----------------------------

  /// Registers `ref` with a liveness lease (pardis_ns): unless renewed
  /// within `lease`, the registration garbage-collects as if
  /// unregistered — a crashed server stops occupying its name without
  /// anyone sending an unregister. `lease <= 0` registers permanently
  /// (exactly like the lease-free calls). `replica` picks the group
  /// path (register_replica semantics) and the return value is the
  /// group epoch (0 on the single-binding path). The default ignores
  /// the lease, so registries without lease support keep working.
  virtual ULongLong register_leased(const ObjectRef& ref, std::chrono::milliseconds lease,
                                    bool replica);

  /// Extends the lease of the registration with `id` under `name` to
  /// `lease` from now. Returns false when no such leased registration
  /// exists (it may have already expired — the caller should
  /// re-register). The default reports no lease support.
  virtual bool renew_lease(const std::string& name, const ObjectId& id,
                           std::chrono::milliseconds lease);

  /// Drops any cached view of `name` (pardis_ns resolver caches): the
  /// next lookup observes the authoritative registry. Plain registries
  /// have nothing cached; the default is a no-op. Failover paths call
  /// this before re-resolving so a stale cache entry can never feed
  /// the re-resolve loop.
  virtual void invalidate(const std::string& name);
};

/// Registry for metaapplications living in one process; also the
/// backing store of the repo module's repository server.
class InProcessRegistry final : public ObjectRegistry {
 public:
  void register_object(const ObjectRef& ref) override;
  std::optional<ObjectRef> lookup(const std::string& name, const std::string& host) override;
  void unregister(const std::string& name, const std::string& host) override;
  std::vector<std::string> list() override;

  ULongLong register_replica(const ObjectRef& ref) override;
  std::optional<ReplicaGroup> lookup_group(const std::string& name,
                                           const std::string& host) override;
  void unregister_replica(const std::string& name, const ObjectId& id) override;

  ULongLong register_leased(const ObjectRef& ref, std::chrono::milliseconds lease,
                            bool replica) override;
  bool renew_lease(const std::string& name, const ObjectId& id,
                   std::chrono::milliseconds lease) override;

  /// Replaces the lease clock (seconds, monotone). Tests drive lease
  /// expiry deterministically from the sim clock through this; the
  /// default reads the process steady clock.
  void set_time_source(std::function<double()> now_seconds);

  /// Collects expired leases now (also runs lazily inside every public
  /// operation). Returns how many registrations were dropped.
  std::size_t expire_leases();

 private:
  /// Adds `ref` to the live group for its name (replacing the member
  /// with the same object id, else the same host, else appending) and
  /// bumps the epoch. Caller holds mutex_; the group must exist.
  void join_group_locked(ReplicaGroup& group, const ObjectRef& ref) PARDIS_REQUIRES(mutex_);
  /// Creates (or finds) the group for `name`, seeding members from any
  /// earlier single bindings and the epoch from the tombstone floor.
  ReplicaGroup& group_for_locked(const std::string& name) PARDIS_REQUIRES(mutex_);
  /// Erases the group, remembering its final epoch so a later
  /// re-creation continues the sequence instead of restarting at 1
  /// (clients compare epochs to detect stale views — they must never
  /// regress, even across group death).
  void erase_group_locked(std::map<std::string, ReplicaGroup>::iterator git)
      PARDIS_REQUIRES(mutex_);
  /// Drops every registration whose lease expired. Caller holds mutex_.
  std::size_t gc_locked() PARDIS_REQUIRES(mutex_);
  double now_locked() const PARDIS_REQUIRES(mutex_);

  mutable Mutex mutex_{"core.registry"};
  // key: (name, host) — one object per name per host.
  std::map<std::pair<std::string, std::string>, ObjectRef> objects_ PARDIS_GUARDED_BY(mutex_);
  /// pardis_pool replica groups, by name. A name lives in `groups_`
  /// once register_replica touches it; single-binding registrations
  /// of the same name then *join* the group (epoch bump) instead of
  /// silently shadowing earlier members.
  std::map<std::string, ReplicaGroup> groups_ PARDIS_GUARDED_BY(mutex_);
  /// Epoch floor for names whose group died: the next group under the
  /// name starts above this, keeping epochs monotone per name.
  std::map<std::string, ULongLong> epoch_floor_ PARDIS_GUARDED_BY(mutex_);
  /// Lease expiry instants (seconds on the time source's clock).
  /// Singles key by (name, host); group members by (name, object id).
  std::map<std::pair<std::string, std::string>, double> object_leases_
      PARDIS_GUARDED_BY(mutex_);
  std::map<std::pair<std::string, ULongLong>, double> member_leases_
      PARDIS_GUARDED_BY(mutex_);
  std::function<double()> now_seconds_ PARDIS_GUARDED_BY(mutex_);  ///< null = steady clock
};

}  // namespace pardis::core

namespace pardis {

template <>
struct CdrTraits<core::ReplicaGroup> {
  static void marshal(CdrWriter& w, const core::ReplicaGroup& g) { g.marshal(w); }
  static void unmarshal(CdrReader& r, core::ReplicaGroup& g) {
    g = core::ReplicaGroup::unmarshal(r);
  }
};

}  // namespace pardis
