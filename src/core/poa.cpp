#include "core/poa.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "check/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/collectives.hpp"

namespace pardis::core {

namespace detail {

struct PoaShared {
  struct ObjEntry {
    ObjectRef ref;
    bool spmd = false;
    int owner_rank = -1;  // single objects only
    std::vector<ServantBase*> servants;
    /// pardis_pool: registered via register_replica; withdrawal must
    /// remove only this member, not every sibling on the host.
    bool replica = false;
  };

  explicit PoaShared(Orb& orb_ref, int nranks) : orb(&orb_ref), eps(nranks) {}

  Orb* orb;
  std::vector<transport::EndpointAddr> eps;
  Mutex mutex{"core.poa_shared"};
  std::map<ULongLong, ObjEntry> objects PARDIS_GUARDED_BY(mutex);  // by object id value
  std::atomic<bool> deactivated{false};
  std::atomic<int> refs{0};

  const ObjEntry* find(ULongLong object_id) {
    LockGuard lock(mutex);
    auto it = objects.find(object_id);
    return it != objects.end() ? &it->second : nullptr;
  }
};

}  // namespace detail

using detail::PoaShared;

Poa::Poa(Orb& orb, rts::DomainContext& dctx)
    : orb_(&orb),
      comm_(&dctx.comm),
      rank_(dctx.rank),
      size_(dctx.size),
      host_model_(dctx.host != nullptr ? dctx.host->name : "") {
  endpoint_ = orb_->transport().create_endpoint(host_model_);

  const OrbConfig& cfg = orb_->config();
  high_watermark_ = cfg.poa_high_watermark;
  low_watermark_ = cfg.poa_low_watermark != 0 ? cfg.poa_low_watermark
                                              : cfg.poa_high_watermark / 2;
  if (high_watermark_ != 0 && low_watermark_ >= high_watermark_) {
    // Degenerate hysteresis: with low >= high the controller would
    // enter overload at one ingest and exit at the very next check,
    // flip-flopping the shed decision per request. Clamp to the
    // widest valid band instead.
    PARDIS_LOG(kWarn, "poa") << "low watermark " << low_watermark_
                             << " >= high watermark " << high_watermark_
                             << "; clamping low to " << (high_watermark_ - 1);
    low_watermark_ = high_watermark_ - 1;
  }
  overload_retry_after_ms_ = static_cast<ULong>(cfg.overload_retry_after.count());
  assembly_stall_ = cfg.poa_assembly_stall;

  auto* fresh = rank_ == 0 ? new PoaShared(orb, size_) : nullptr;
  const auto addr =
      rts::broadcast_value<ULongLong>(*comm_, reinterpret_cast<ULongLong>(fresh), 0);
  shared_ = reinterpret_cast<PoaShared*>(addr);
  shared_->refs.fetch_add(1, std::memory_order_relaxed);

  // Publish every thread's endpoint address: SPMD object references
  // carry all of them. Only the coordinator writes the shared copy —
  // it is the only reader (activate_spmd), and concurrent identical
  // writes from every rank would still be a data race.
  auto blobs = rts::allgather(*comm_, cdr_encode(endpoint_->addr()));
  if (rank_ == 0) {
    for (int r = 0; r < size_; ++r)
      shared_->eps[static_cast<std::size_t>(r)] =
          cdr_decode<transport::EndpointAddr>(blobs[static_cast<std::size_t>(r)].view());
  }
  rts::barrier(*comm_);
}

Poa::~Poa() {
  endpoint_->close();
  if (shared_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last thread out: withdraw every object this POA published.
    for (const auto& [id, entry] : shared_->objects) {
      orb_->unregister_servants(entry.ref.object_id);
      if (entry.replica)
        orb_->registry().unregister_replica(entry.ref.name, entry.ref.object_id);
      else
        orb_->registry().unregister(entry.ref.name, entry.ref.host);
    }
    delete shared_;
  }
}

const transport::EndpointAddr& Poa::endpoint_addr() const { return endpoint_->addr(); }

ObjectRef Poa::activate_spmd(ServantBase& servant, const std::string& name,
                             std::map<std::string, std::vector<DistSpec>> arg_specs,
                             bool replica) {
  // Gather the per-rank servant pointers (same address space).
  auto ptrs = rts::allgather_values<ULongLong>(
      *comm_, reinterpret_cast<ULongLong>(&servant));
  std::vector<ServantBase*> servants;
  servants.reserve(ptrs.size());
  for (auto p : ptrs) servants.push_back(reinterpret_cast<ServantBase*>(p));

  ByteBuffer blob;
  if (rank_ == 0) {
    ObjectRef ref;
    ref.type_id = servant._type_id();
    ref.name = name;
    ref.host = host_model_;
    ref.object_id = ObjectId::next();
    ref.spmd = true;
    ref.thread_eps = shared_->eps;
    ref.arg_specs = std::move(arg_specs);
    CdrWriter w(blob);
    ref.marshal(w);
  }
  ByteBuffer shared_blob = rts::broadcast(*comm_, std::move(blob), 0);
  ObjectRef ref = cdr_decode<ObjectRef>(shared_blob.view());

  if (rank_ == 0) {
    {
      LockGuard lock(shared_->mutex);
      shared_->objects[ref.object_id.value] =
          PoaShared::ObjEntry{ref, /*spmd=*/true, /*owner_rank=*/-1, servants, replica};
    }
    orb_->register_servants(ref, servants, comm_->group_key());
    if (replica)
      orb_->registry().register_replica(ref);
    else
      orb_->registry().register_object(ref);
  }
  rts::barrier(*comm_);
  return ref;
}

ObjectRef Poa::activate_single(ServantBase& servant, const std::string& name,
                               bool replica) {
  ObjectRef ref;
  ref.type_id = servant._type_id();
  ref.name = name;
  ref.host = host_model_;
  ref.object_id = ObjectId::next();
  ref.spmd = false;
  ref.thread_eps = {endpoint_->addr()};
  {
    LockGuard lock(shared_->mutex);
    shared_->objects[ref.object_id.value] =
        PoaShared::ObjEntry{ref, /*spmd=*/false, rank_, {&servant}, replica};
  }
  orb_->register_servants(ref, {&servant}, nullptr);
  if (replica)
    orb_->registry().register_replica(ref);
  else
    orb_->registry().register_object(ref);
  return ref;
}

// release, paired with the acquire load in round(): the deactivating
// thread's store must happen-before the server threads' teardown
// (~Poa deletes the PoaShared holding this very flag).
void Poa::deactivate() { shared_->deactivated.store(true, std::memory_order_release); }

void Poa::drain() {
  while (auto msg = endpoint_->poll()) ingest(std::move(*msg));
}

void Poa::ingest(transport::RsrMessage&& msg) {
  if (msg.handler == transport::kHandlerPing) return;  // liveness probe, no payload
  if (msg.handler != transport::kHandlerOrbRequest) {
    PARDIS_LOG(kWarn, "poa") << "unexpected RSR handler " << msg.handler << ", dropped";
    return;
  }
  if (obs::enabled()) {
    static obs::Counter& requests = obs::metrics().counter("orb.requests_received");
    static obs::Counter& bytes = obs::metrics().counter("orb.request_bytes_received");
    requests.add(1);
    bytes.add(msg.payload.size());
  }
  CdrReader r(msg.payload.view(), msg.little_endian);
  RequestHeader header = RequestHeader::unmarshal(r);

  const PoaShared::ObjEntry* entry = shared_->find(header.object_id.value);
  if (entry == nullptr) {
    if (!header.oneway()) {
      ReplyHeader eh;
      eh.request_id = header.request_id;
      eh.server_rank = rank_;
      eh.server_size = size_;
      eh.status = ReplyStatus::kSystemException;
      eh.error_code = ErrorCode::kObjectNotExist;
      eh.error_message = "no object " + header.object_id.to_string() + " at this server";
      ByteBuffer frame;
      CdrWriter w(frame);
      eh.marshal(w);
      orb_->transport().rsr(header.reply_to, transport::kHandlerOrbReply, std::move(frame),
                            host_model_);
    }
    return;
  }

  ServerInvocation::Body body;
  body.client_rank = header.client_rank;
  body.little = msg.little_endian;
  body.bytes = ByteBuffer::from(msg.payload.view().subspan(r.offset()));
  body.reply_to = header.reply_to;
  body.request_id = header.request_id;

  const Key key{header.binding_id, header.seq_no};
  // A body below the binding's dispatch horizon is a duplicate of an
  // already-executed request (an injected duplicate, or a stray
  // resend): drop it. Retry-flagged bodies are kept — they re-form the
  // assembly so an idempotent operation whose replies were lost can be
  // replayed.
  auto ns = next_seq_.find(header.binding_id);
  if (ns != next_seq_.end() && header.seq_no < ns->second && !header.retry()) return;
  // Admission control applies only to genuinely new requests: a later
  // body of a matrix already assembling must never be shed (it would
  // tear the assembly and strand the other ranks' bodies). For SPMD
  // objects only the coordinator sheds: rank 0's decision reaches the
  // other ranks through the round schedule, so every thread punches
  // the same holes and the dispatch horizon stays identical. A rank
  // shedding independently would skip a sequence number the
  // coordinator schedules and silently sit out that collective
  // dispatch — collective ops inside the servant would then deadlock
  // the server, and the shedding rank's reply slice would be lost.
  if (high_watermark_ != 0 && (!entry->spmd || rank_ == 0) &&
      assembling_.find(key) == assembling_.end() && shed_if_overloaded(header)) {
    // The shed request consumed a slot in the binding's invocation
    // order; mark the hole so the dispatch horizon skips it instead of
    // waiting forever (a retry re-fills the slot and voids the marker).
    shed_seqs_[header.binding_id].insert(header.seq_no);
    if (entry->spmd) shed_bcast_.push_back(key);
    return;
  }
  Assembling& a = assembling_[key];
  if (a.bodies.empty()) {
    a.header = header;
    a.first_arrival = std::chrono::steady_clock::now();
  }
  // emplace: one body per client rank, so a duplicated frame or a
  // retry re-send of a piece we already have cannot tear the assembly.
  a.bodies.emplace(header.client_rank, std::move(body));
  if (a.complete()) a.complete_order = ++completion_counter_;
  depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);
}

void Poa::update_overload_state() {
  // Expired-deadline requests do not count toward the load: they are
  // rejected with kTimeout at schedule time without running the
  // servant, so a seat held by one must never cost a live request its
  // admission — expired requests shed first, by construction.
  std::size_t depth = 0;
  for (const auto& [key, a] : assembling_)
    if (!(a.complete() && deadline_passed(a))) ++depth;
  if (!overloaded_ && depth >= high_watermark_) {
    overloaded_ = true;
    if (obs::enabled()) {
      static obs::Counter& entered = obs::metrics().counter("flow.poa_overload_entered");
      entered.add(1);
    }
    PARDIS_LOG(kWarn, "poa") << "rank " << rank_ << " overloaded: " << depth
                             << " queued requests (high watermark " << high_watermark_
                             << "); shedding until " << low_watermark_;
  } else if (overloaded_ && depth <= low_watermark_) {
    overloaded_ = false;
  }
}

bool Poa::shed_if_overloaded(const RequestHeader& header) {
  if (obs::enabled()) {
    static obs::Histogram& depth = obs::metrics().histogram("poa.queue_depth");
    depth.record(static_cast<double>(assembling_.size()));
  }
  update_overload_state();
  if (overloaded_) {
    // Expired-deadline requests shed first: free the seats held by
    // requests nobody waits for anymore before rejecting a live one.
    // Restricted to this rank's single-object queue — collective
    // expiry stays with the rank-0 schedule (kSchedExpired), where all
    // ranks agree on it.
    if (dispatch_ready_singles(/*expired_only=*/true) > 0) update_overload_state();
  }
  if (!overloaded_) return false;

  if (obs::enabled()) {
    static obs::Counter& shed = obs::metrics().counter("flow.poa_shed");
    shed.add(1);
  }
  if (!header.oneway()) {
    ReplyHeader eh;
    eh.request_id = header.request_id;
    eh.server_rank = rank_;
    eh.server_size = size_;
    eh.status = ReplyStatus::kSystemException;
    eh.error_code = ErrorCode::kOverload;
    eh.error_message = "server overloaded: '" + header.operation + "' shed at " +
                       std::to_string(assembling_.size()) + " queued requests";
    eh.retry_after_ms = overload_retry_after_ms_;
    ByteBuffer frame;
    CdrWriter w(frame);
    eh.marshal(w);
    try {
      orb_->transport().rsr(header.reply_to, transport::kHandlerOrbReply,
                            std::move(frame), host_model_);
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "poa") << "overload reply undeliverable: " << e.what();
    }
  }
  return true;
}

bool Poa::deadline_passed(const Assembling& a) const {
  if (a.header.deadline_ms == 0) return false;
  return std::chrono::steady_clock::now() >=
         a.first_arrival + std::chrono::milliseconds(a.header.deadline_ms);
}

void Poa::dispatch(Key key, bool expired) {
  auto it = assembling_.find(key);
  require(it != assembling_.end(), "poa: dispatching unknown request");
  Assembling a = std::move(it->second);
  assembling_.erase(it);
  depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);

  const PoaShared::ObjEntry* entry = shared_->find(a.header.object_id.value);
  require(entry != nullptr, "poa: object vanished before dispatch");

  std::vector<ServerInvocation::Body> bodies;
  bodies.reserve(a.bodies.size());
  for (auto& [rank, body] : a.bodies) bodies.push_back(std::move(body));

  const bool spmd = entry->spmd;
  // The dispatch span restores the client's trace context from the
  // PIOP header: everything below (servant run, reply sends) parents
  // under the client invocation span, across process boundaries.
  obs::SpanScope dispatch_span;
  const double dispatch_start_us = obs::enabled() ? obs::wall_now_us() : 0.0;
  if (obs::enabled())
    dispatch_span.open_remote("dispatch:" + a.header.operation, "server", a.header.trace);

  ServerInvocation inv(
      entry->ref, spmd ? comm_ : nullptr, spmd ? rank_ : 0, spmd ? size_ : 1, a.header,
      std::move(bodies), [this](const transport::EndpointAddr& to, ByteBuffer frame) {
        orb_->transport().rsr(to, transport::kHandlerOrbReply, std::move(frame), host_model_);
      });
  inv.set_trace(dispatch_span.context());

  ServantBase* servant = entry->servants[spmd ? static_cast<std::size_t>(rank_) : 0];
  // A client that vanished mid-invocation must not take the server
  // down: reply-delivery failures are logged and dropped.
  auto deliver_error = [&inv](const SystemException& e) {
    try {
      inv.send_error(e);
    } catch (const CommFailure& ce) {
      PARDIS_LOG(kWarn, "poa") << "error reply undeliverable: " << ce.what();
    }
  };
  if (expired) {
    // The request outwaited its deadline budget in this queue: reject
    // with kTimeout instead of computing a result nobody waits for.
    if (obs::enabled()) {
      static obs::Counter& rejected = obs::metrics().counter("poa.deadline_rejected");
      rejected.add(1);
    }
    deliver_error(TimeoutError("deadline of " + std::to_string(a.header.deadline_ms) +
                               " ms expired in the server queue for '" +
                               a.header.operation + "'"));
  } else {
    try {
      {
        obs::SpanScope servant_span;
        if (obs::enabled()) servant_span.open("servant:" + a.header.operation, "server");
        servant->_dispatch(inv);
      }
      inv.send_replies();
    } catch (const CommFailure& e) {
      PARDIS_LOG(kWarn, "poa") << "reply undeliverable (client gone?): " << e.what();
    } catch (const SystemException& e) {
      deliver_error(e);
    } catch (const std::exception& e) {
      deliver_error(InternalError(std::string("servant failure: ") + e.what()));
    }
  }
  if (obs::enabled()) {
    static obs::Counter& dispatched = obs::metrics().counter("poa.dispatched");
    static obs::Histogram& latency = obs::metrics().histogram("poa.dispatch_us");
    dispatched.add(1);
    latency.record(obs::wall_now_us() - dispatch_start_us);
  }
  // Raise-only: a replayed dispatch (retry, seq below next) must not
  // regress the binding's horizon.
  ULong& next = next_seq_[key.first];
  if (key.second + 1 > next) next = key.second + 1;
  // Consume shed holes now adjacent to the horizon, so the binding's
  // next in-order request is not held up by one that was never
  // admitted. Safe for SPMD bindings: their holes all originate from
  // the coordinator's schedule, so every thread consumes the same set
  // in the same collective dispatch order and next_seq_ stays
  // identical across ranks.
  expected_seq(next_seq_, key.first);
  scheduled_replays_.erase(key);
}

ULong Poa::expected_seq(std::map<ULongLong, ULong>& next_map, ULongLong binding_id) {
  ULong& next = next_map[binding_id];
  auto sh = shed_seqs_.find(binding_id);
  if (sh == shed_seqs_.end()) return next;
  auto& seqs = sh->second;
  seqs.erase(seqs.begin(), seqs.lower_bound(next));  // stale: retried and admitted
  while (!seqs.empty() && *seqs.begin() == next) {
    seqs.erase(seqs.begin());
    ++next;
  }
  if (seqs.empty()) shed_seqs_.erase(sh);
  return next;
}

int Poa::dispatch_ready_singles(bool expired_only) {
  int dispatched = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = assembling_.begin(); it != assembling_.end(); ++it) {
      if (!it->second.complete()) continue;
      const PoaShared::ObjEntry* entry = shared_->find(it->second.header.object_id.value);
      if (entry == nullptr || entry->spmd || entry->owner_rank != rank_) continue;
      const ULong expected = expected_seq(next_seq_, it->first.first);
      // In-order dispatch, plus replays: a retry-flagged request below
      // the horizon re-executes (idempotent; its replies were lost).
      const bool replay = it->second.header.retry() && it->first.second < expected;
      if (!replay && it->first.second != expected) continue;
      const bool expired = deadline_passed(it->second);
      if (expired_only && !expired) continue;
      dispatch(it->first, expired);
      ++dispatched;
      progressed = true;
      break;  // iterator invalidated
    }
  }
  return dispatched;
}

void Poa::wait_until_assembled(const Key& key) {
  const auto started = std::chrono::steady_clock::now();
  for (;;) {
    auto it = assembling_.find(key);
    if (it != assembling_.end() && it->second.complete()) return;
    if (assembly_stall_.count() > 0 &&
        std::chrono::steady_clock::now() - started >= assembly_stall_) {
      // The coordinator scheduled this dispatch, but the bodies never
      // finished arriving here (a slice lost at a bounded queue, a
      // client that died mid-send). Unbounded waiting would block
      // every rank behind this entry forever — fail the round loudly
      // instead; the client's retry machinery owns end-to-end
      // recovery.
      if (obs::enabled()) {
        static obs::Counter& stalls =
            obs::metrics().counter("flow.poa_assembly_stalls");
        stalls.add(1);
      }
      throw CommFailure("POA rank " + std::to_string(rank_) + " waited " +
                        std::to_string(assembly_stall_.count()) +
                        " ms for scheduled request " + std::to_string(key.first) +
                        "#" + std::to_string(key.second) +
                        " to assemble (slice lost or client gone; see "
                        "PARDIS_POA_ASSEMBLY_STALL_MS)");
    }
    auto res = endpoint_->wait_for(std::chrono::milliseconds(200));
    if (res.closed())
      throw CommFailure("POA endpoint closed while assembling " +
                        std::to_string(key.first) + "#" +
                        std::to_string(key.second));
    if (res.message) {
      ingest(std::move(*res.message));
      drain();
    }
  }
}

int Poa::round(bool& deactivated) {
  drain();
  int dispatched = dispatch_ready_singles();

  // Rank 0 schedules the collective (SPMD) dispatches for this round
  // and broadcasts the schedule; all threads then execute it in order.
  // Per-entry flags: kSchedReplay / kSchedExpired (core/wire.hpp).
  ByteBuffer schedule;
  if (rank_ == 0) {
    struct Sched {
      Key key;
      Octet flags;
    };
    std::vector<Sched> ready;
    std::map<ULongLong, ULong> next = next_seq_;
    // Working copies: the schedule simulation must not advance the
    // real horizon (dispatch does that when the entries execute), so
    // shed holes are skipped against copies too.
    std::map<ULongLong, std::set<ULong>> holes = shed_seqs_;
    auto local_expected = [&next, &holes](ULongLong binding_id) {
      ULong& n = next[binding_id];
      auto sh = holes.find(binding_id);
      if (sh != holes.end()) {
        auto& seqs = sh->second;
        seqs.erase(seqs.begin(), seqs.lower_bound(n));
        while (!seqs.empty() && *seqs.begin() == n) {
          seqs.erase(seqs.begin());
          ++n;
        }
      }
      return n;
    };
    bool progressed = true;
    while (progressed) {
      progressed = false;
      const Assembling* best = nullptr;
      Key best_key{};
      bool best_replay = false;
      for (const auto& [key, a] : assembling_) {
        if (!a.complete()) continue;
        const PoaShared::ObjEntry* entry = shared_->find(a.header.object_id.value);
        if (entry == nullptr || !entry->spmd) continue;
        if (std::find_if(ready.begin(), ready.end(),
                         [&key_ref = key](const Sched& s) { return s.key == key_ref; }) !=
            ready.end())
          continue;
        const ULong expected = local_expected(key.first);
        // In-order dispatch, plus replays: a retry-flagged request
        // below the horizon re-executes (idempotent; replies lost).
        // The coordinator decides uniformly for all threads, so a
        // replay is dispatched collectively exactly once.
        const bool replay = a.header.retry() && key.second < expected;
        if (replay) {
          if (scheduled_replays_.count(key) != 0) continue;
        } else if (key.second != expected) {
          continue;
        }
        if (best == nullptr || a.complete_order < best->complete_order) {
          best = &a;
          best_key = key;
          best_replay = replay;
        }
      }
      if (best != nullptr) {
        Octet flags = 0;
        if (best_replay) {
          flags = static_cast<Octet>(flags | kSchedReplay);
          scheduled_replays_.insert(best_key);
        } else {
          next[best_key.first] = best_key.second + 1;
        }
        // Deadline check at scheduling time, decided once here so every
        // thread agrees whether the servant runs or the request is
        // rejected with kTimeout.
        if (deadline_passed(*best)) flags = static_cast<Octet>(flags | kSchedExpired);
        ready.push_back(Sched{best_key, flags});
        progressed = true;
        // An entry that will run the servant closes this round's
        // schedule: anything batched behind it would carry an expiry
        // verdict decided now but dispatched only after an arbitrarily
        // long execution — a request could outwait its whole deadline
        // budget in that gap and still run. Expired entries are cheap
        // rejects, so they may keep batching; the next live request is
        // scheduled by the next round with a fresh verdict.
        if ((flags & kSchedExpired) == 0) break;
      }
    }
    CdrWriter w(schedule);
    w.write_ulonglong(++round_serial_);
    w.write_bool(shared_->deactivated.load(std::memory_order_acquire));
    // Coordinated shedding: the SPMD sequence numbers this rank's
    // admission control rejected since the last round travel with the
    // schedule, so every thread skips the same holes. The simulation
    // above already saw them (shed_seqs_ was updated at ingest).
    w.write_ulong(static_cast<ULong>(shed_bcast_.size()));
    for (const Key& k : shed_bcast_) {
      w.write_ulonglong(k.first);
      w.write_ulong(k.second);
    }
    shed_bcast_.clear();
    w.write_ulong(static_cast<ULong>(ready.size()));
    for (const Sched& s : ready) {
      w.write_ulonglong(s.key.first);
      w.write_ulong(s.key.second);
      w.write_octet(s.flags);
    }
  }
  // The schedule is ORB control plane: it travels on the untimestamped
  // channel so the coordinator's virtual clock does not leak into the
  // other computing threads.
  ByteBuffer round_msg;
  if (size_ == 1) {
    round_msg = std::move(schedule);
  } else if (rank_ == 0) {
    for (int r = 1; r < size_; ++r)
      comm_->send_control(r, rts::kTagPoaRound, schedule.clone());
    round_msg = std::move(schedule);
  } else {
    round_msg = comm_->recv(0, rts::kTagPoaRound).payload;
  }
  CdrReader r(round_msg.view());
  // Schedule serial numbers detect coordinator/worker round skew (a
  // broken collective-call discipline in server code shows up here
  // instead of as a silent hang).
  const ULongLong serial = r.read_ulonglong();
  if (rank_ != 0) {
    if (serial != round_serial_ + 1 && check::enabled())
      check::violation("poa", "dispatch-round skew between threads: rank " +
                                  std::to_string(rank_) + " expected round " +
                                  std::to_string(round_serial_ + 1) + ", coordinator sent round " +
                                  std::to_string(serial));
    require(serial == round_serial_ + 1, "poa: dispatch-round skew between threads");
    round_serial_ = serial;
  }
  deactivated = r.read_bool();
  // Apply the coordinator's shed holes before this round's dispatches
  // (idempotent on rank 0, which punched them at ingest): the horizon
  // then skips the same sequence numbers on every thread, and a
  // locally assembled slice of a shed request frees its queue seat. A
  // retry-flagged assembly is spared — the client already re-filled
  // the slot, and that replacement must dispatch, not be torn.
  const ULong shed_count = r.read_ulong();
  for (ULong i = 0; i < shed_count; ++i) {
    const ULongLong binding = r.read_ulonglong();
    const ULong seq = r.read_ulong();
    shed_seqs_[binding].insert(seq);
    auto stale = assembling_.find(Key{binding, seq});
    if (stale != assembling_.end() && !stale->second.header.retry())
      assembling_.erase(stale);
  }
  if (shed_count > 0)
    depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);
  const ULong count = r.read_ulong();
  for (ULong i = 0; i < count; ++i) {
    const ULongLong binding = r.read_ulonglong();
    const ULong seq = r.read_ulong();
    const Octet flags = r.read_octet();
    const Key key{binding, seq};
    // A servant may poll for requests *during* its own dispatch
    // (POA::process_requests, §3.3); such a nested round can already
    // have executed entries of this schedule. next_seq_ tracks what
    // ran, identically on every thread. Replay entries sit below the
    // horizon by construction and appear in exactly one schedule, so
    // they always execute.
    const bool replay = (flags & kSchedReplay) != 0;
    auto ns = next_seq_.find(binding);
    if (!replay && ns != next_seq_.end() && seq < ns->second) continue;
    wait_until_assembled(key);
    dispatch(key, (flags & kSchedExpired) != 0);
    ++dispatched;
  }
  // New singles may have been drained while waiting for SPMD bodies.
  dispatched += dispatch_ready_singles();
  return dispatched;
}

int Poa::process_requests() {
  bool deactivated = false;
  return round(deactivated);
}

void Poa::impl_is_ready() {
  for (;;) {
    if (rank_ == 0 && endpoint_->pending() == 0 && assembling_.empty()) {
      // Pace idle rounds so the polling loop does not spin.
      auto res = endpoint_->wait_for(std::chrono::milliseconds(2));
      if (res.closed())
        throw CommFailure("POA endpoint closed while serving: " +
                          endpoint_->addr().to_string());
      if (res.message) ingest(std::move(*res.message));
    }
    bool deactivated = false;
    round(deactivated);
    if (deactivated) return;
  }
}

}  // namespace pardis::core
