#include "core/poa.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "check/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/collectives.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::core {

namespace detail {

struct PoaShared {
  struct ObjEntry {
    ObjectRef ref;
    bool spmd = false;
    int owner_rank = -1;  // single objects only
    std::vector<ServantBase*> servants;
    /// pardis_pool: registered via register_replica; withdrawal must
    /// remove only this member, not every sibling on the host.
    bool replica = false;
  };

  explicit PoaShared(Orb& orb_ref, int nranks) : orb(&orb_ref), eps(nranks) {}

  Orb* orb;
  std::vector<transport::EndpointAddr> eps;
  Mutex mutex{"core.poa_shared"};
  std::map<ULongLong, ObjEntry> objects PARDIS_GUARDED_BY(mutex);  // by object id value
  std::atomic<bool> deactivated{false};
  std::atomic<int> refs{0};

  const ObjEntry* find(ULongLong object_id) {
    LockGuard lock(mutex);
    auto it = objects.find(object_id);
    return it != objects.end() ? &it->second : nullptr;
  }
};

}  // namespace detail

using detail::PoaShared;

Poa::Poa(Orb& orb, rts::DomainContext& dctx)
    : orb_(&orb),
      comm_(&dctx.comm),
      rank_(dctx.rank),
      size_(dctx.size),
      host_model_(dctx.host != nullptr ? dctx.host->name : "") {
  endpoint_ = orb_->transport().create_endpoint(host_model_);

  const OrbConfig& cfg = orb_->config();
  high_watermark_ = cfg.poa_high_watermark;
  low_watermark_ = cfg.poa_low_watermark != 0 ? cfg.poa_low_watermark
                                              : cfg.poa_high_watermark / 2;
  if (high_watermark_ != 0 && low_watermark_ >= high_watermark_) {
    // Degenerate hysteresis: with low >= high the controller would
    // enter overload at one ingest and exit at the very next check,
    // flip-flopping the shed decision per request. Clamp to the
    // widest valid band instead.
    PARDIS_LOG(kWarn, "poa") << "low watermark " << low_watermark_
                             << " >= high watermark " << high_watermark_
                             << "; clamping low to " << (high_watermark_ - 1);
    low_watermark_ = high_watermark_ - 1;
  }
  overload_retry_after_ms_ = static_cast<ULong>(cfg.overload_retry_after.count());
  assembly_stall_ = cfg.poa_assembly_stall;

  auto* fresh = rank_ == 0 ? new PoaShared(orb, size_) : nullptr;
  const auto addr =
      rts::broadcast_value<ULongLong>(*comm_, reinterpret_cast<ULongLong>(fresh), 0);
  shared_ = reinterpret_cast<PoaShared*>(addr);
  shared_->refs.fetch_add(1, std::memory_order_relaxed);

  // Publish every thread's endpoint address: SPMD object references
  // carry all of them. Only the coordinator writes the shared copy —
  // it is the only reader (activate_spmd), and concurrent identical
  // writes from every rank would still be a data race.
  auto blobs = rts::allgather(*comm_, cdr_encode(endpoint_->addr()));
  if (rank_ == 0) {
    for (int r = 0; r < size_; ++r)
      shared_->eps[static_cast<std::size_t>(r)] =
          cdr_decode<transport::EndpointAddr>(blobs[static_cast<std::size_t>(r)].view());
  }
  rts::barrier(*comm_);
}

Poa::~Poa() {
  endpoint_->close();
  if (shared_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last thread out: withdraw every object this POA published.
    for (const auto& [id, entry] : shared_->objects) {
      orb_->unregister_servants(entry.ref.object_id);
      if (entry.replica)
        orb_->registry().unregister_replica(entry.ref.name, entry.ref.object_id);
      else
        orb_->registry().unregister(entry.ref.name, entry.ref.host);
    }
    delete shared_;
  }
}

const transport::EndpointAddr& Poa::endpoint_addr() const { return endpoint_->addr(); }

ObjectRef Poa::activate_spmd(ServantBase& servant, const std::string& name,
                             std::map<std::string, std::vector<DistSpec>> arg_specs,
                             bool replica) {
  // Gather the per-rank servant pointers (same address space).
  auto ptrs = rts::allgather_values<ULongLong>(
      *comm_, reinterpret_cast<ULongLong>(&servant));
  std::vector<ServantBase*> servants;
  servants.reserve(ptrs.size());
  for (auto p : ptrs) servants.push_back(reinterpret_cast<ServantBase*>(p));

  ByteBuffer blob;
  if (rank_ == 0) {
    ObjectRef ref;
    ref.type_id = servant._type_id();
    ref.name = name;
    ref.host = host_model_;
    ref.object_id = ObjectId::next();
    ref.spmd = true;
    ref.thread_eps = shared_->eps;
    ref.arg_specs = std::move(arg_specs);
    if (wal::enabled() && servant._durable()) ref.set_durable();
    CdrWriter w(blob);
    ref.marshal(w);
  }
  ByteBuffer shared_blob = rts::broadcast(*comm_, std::move(blob), 0);
  ObjectRef ref = cdr_decode<ObjectRef>(shared_blob.view());

  if (rank_ == 0) {
    {
      LockGuard lock(shared_->mutex);
      shared_->objects[ref.object_id.value] =
          PoaShared::ObjEntry{ref, /*spmd=*/true, /*owner_rank=*/-1, servants, replica};
    }
    orb_->register_servants(ref, servants, comm_->group_key());
    if (replica)
      orb_->registry().register_replica(ref);
    else
      orb_->registry().register_object(ref);
  }
  rts::barrier(*comm_);
  if (ref.durable()) {
    // Register-then-pull: the group already routes appends at us, so
    // nothing committed on a sibling between registration and the
    // snapshot pull can be lost (it is either in the snapshot or in a
    // stashed append).
    setup_durable(ref, servant, /*spmd=*/true);
    rts::barrier(*comm_);
  }
  return ref;
}

ObjectRef Poa::activate_single(ServantBase& servant, const std::string& name,
                               bool replica) {
  ObjectRef ref;
  ref.type_id = servant._type_id();
  ref.name = name;
  ref.host = host_model_;
  ref.object_id = ObjectId::next();
  ref.spmd = false;
  ref.thread_eps = {endpoint_->addr()};
  if (wal::enabled() && servant._durable()) ref.set_durable();
  {
    LockGuard lock(shared_->mutex);
    shared_->objects[ref.object_id.value] =
        PoaShared::ObjEntry{ref, /*spmd=*/false, rank_, {&servant}, replica};
  }
  orb_->register_servants(ref, {&servant}, nullptr);
  if (replica)
    orb_->registry().register_replica(ref);
  else
    orb_->registry().register_object(ref);
  if (ref.durable()) setup_durable(ref, servant, /*spmd=*/false);
  return ref;
}

// release, paired with the acquire load in round(): the deactivating
// thread's store must happen-before the server threads' teardown
// (~Poa deletes the PoaShared holding this very flag).
void Poa::deactivate() { shared_->deactivated.store(true, std::memory_order_release); }

void Poa::drain() {
  while (auto msg = endpoint_->poll()) ingest(std::move(*msg));
}

void Poa::ingest(transport::RsrMessage&& msg) {
  if (msg.handler == transport::kHandlerPing) return;  // liveness probe, no payload
  if (msg.handler == transport::kHandlerStateXfer) {
    const std::string src_peer = msg.src_peer;
    try {
      handle_state_xfer(std::move(msg));
    } catch (const MarshalError& e) {
      PARDIS_LOG(kWarn, "wal") << "dropped malformed state-transfer frame: " << e.what();
      wire::guard().note_bad_frame(src_peer, e.what());
    }
    return;
  }
  if (msg.handler != transport::kHandlerOrbRequest) {
    PARDIS_LOG(kWarn, "poa") << "unexpected RSR handler " << msg.handler << ", dropped";
    return;
  }
  if (obs::enabled()) {
    static obs::Counter& requests = obs::metrics().counter("orb.requests_received");
    static obs::Counter& bytes = obs::metrics().counter("orb.request_bytes_received");
    requests.add(1);
    bytes.add(msg.payload.size());
  }
  CdrReader r(msg.payload.view(), msg.little_endian);
  RequestHeader header;
  try {
    header = RequestHeader::unmarshal(r);
  } catch (const MarshalError& e) {
    // A malformed request is unanswerable (its reply_to cannot be
    // trusted): drop it and charge the sending peer. The client's
    // deadline + retry recovers delivery.
    PARDIS_LOG(kWarn, "poa") << "dropped malformed request: " << e.what();
    wire::guard().note_bad_frame(msg.src_peer, e.what());
    return;
  }

  const PoaShared::ObjEntry* entry = shared_->find(header.object_id.value);
  if (entry == nullptr) {
    if (!header.oneway()) {
      ReplyHeader eh;
      eh.request_id = header.request_id;
      eh.server_rank = rank_;
      eh.server_size = size_;
      eh.status = ReplyStatus::kSystemException;
      eh.error_code = ErrorCode::kObjectNotExist;
      eh.error_message = "no object " + header.object_id.to_string() + " at this server";
      eh.crc = wire::frame_crc();
      ByteBuffer frame;
      CdrWriter w(frame);
      eh.marshal(w);
      if (eh.crc) wire::append_crc(frame);
      orb_->transport().rsr(header.reply_to, transport::kHandlerOrbReply, std::move(frame),
                            host_model_);
    }
    return;
  }

  ServerInvocation::Body body;
  body.client_rank = header.client_rank;
  body.little = msg.little_endian;
  // rest() respects the CRC trailer trimmed during unmarshal;
  // re-slicing msg.payload would leak the trailer into the body.
  body.bytes = ByteBuffer::from(r.rest());
  body.reply_to = header.reply_to;
  body.request_id = header.request_id;

  const Key key{header.binding_id, header.seq_no};
  // A body below the binding's dispatch horizon is a duplicate of an
  // already-executed request (an injected duplicate, or a stray
  // resend): drop it. Retry-flagged bodies are kept — they re-form the
  // assembly so an idempotent operation whose replies were lost can be
  // replayed.
  auto ns = next_seq_.find(header.binding_id);
  if (ns != next_seq_.end() && header.seq_no < ns->second && !header.retry()) return;
  // pardis_wal exactly-once: a retry of a mutation this replica has
  // durably committed is answered from the log (the recorded reply
  // frames carry the original request id, which the retry reuses) and
  // never re-assembles — the servant must not run it a second time.
  if (header.retry() && answer_retry_from_log(header, key)) return;
  // Admission control applies only to genuinely new requests: a later
  // body of a matrix already assembling must never be shed (it would
  // tear the assembly and strand the other ranks' bodies). For SPMD
  // objects only the coordinator sheds: rank 0's decision reaches the
  // other ranks through the round schedule, so every thread punches
  // the same holes and the dispatch horizon stays identical. A rank
  // shedding independently would skip a sequence number the
  // coordinator schedules and silently sit out that collective
  // dispatch — collective ops inside the servant would then deadlock
  // the server, and the shedding rank's reply slice would be lost.
  if (high_watermark_ != 0 && (!entry->spmd || rank_ == 0) &&
      assembling_.find(key) == assembling_.end() && shed_if_overloaded(header)) {
    // The shed request consumed a slot in the binding's invocation
    // order; mark the hole so the dispatch horizon skips it instead of
    // waiting forever (a retry re-fills the slot and voids the marker).
    shed_seqs_[header.binding_id].insert(header.seq_no);
    if (entry->spmd) shed_bcast_.push_back(key);
    return;
  }
  Assembling& a = assembling_[key];
  if (a.bodies.empty()) {
    a.header = header;
    a.first_arrival = std::chrono::steady_clock::now();
  } else if (header.retry()) {
    // A retry re-fill of a torn assembly (a frame of the original
    // matrix was lost or rejected as corrupt) restarts the queue
    // deadline budget: the client granted a fresh budget with the
    // retry, and judging it by the stale first arrival would expire
    // every re-send of a matrix that sat out one client deadline.
    a.first_arrival = std::chrono::steady_clock::now();
  }
  // emplace: one body per client rank, so a duplicated frame or a
  // retry re-send of a piece we already have cannot tear the assembly.
  a.bodies.emplace(header.client_rank, std::move(body));
  if (a.complete()) a.complete_order = ++completion_counter_;
  depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);
}

void Poa::update_overload_state() {
  // Expired-deadline requests do not count toward the load: they are
  // rejected with kTimeout at schedule time without running the
  // servant, so a seat held by one must never cost a live request its
  // admission — expired requests shed first, by construction.
  std::size_t depth = 0;
  for (const auto& [key, a] : assembling_)
    if (!(a.complete() && deadline_passed(a))) ++depth;
  if (!overloaded_ && depth >= high_watermark_) {
    overloaded_ = true;
    if (obs::enabled()) {
      static obs::Counter& entered = obs::metrics().counter("flow.poa_overload_entered");
      entered.add(1);
    }
    PARDIS_LOG(kWarn, "poa") << "rank " << rank_ << " overloaded: " << depth
                             << " queued requests (high watermark " << high_watermark_
                             << "); shedding until " << low_watermark_;
  } else if (overloaded_ && depth <= low_watermark_) {
    overloaded_ = false;
  }
}

bool Poa::shed_if_overloaded(const RequestHeader& header) {
  if (obs::enabled()) {
    static obs::Histogram& depth = obs::metrics().histogram("poa.queue_depth");
    depth.record(static_cast<double>(assembling_.size()));
  }
  update_overload_state();
  if (overloaded_) {
    // Expired-deadline requests shed first: free the seats held by
    // requests nobody waits for anymore before rejecting a live one.
    // Restricted to this rank's single-object queue — collective
    // expiry stays with the rank-0 schedule (kSchedExpired), where all
    // ranks agree on it.
    if (dispatch_ready_singles(/*expired_only=*/true) > 0) update_overload_state();
  }
  if (!overloaded_) return false;

  if (obs::enabled()) {
    static obs::Counter& shed = obs::metrics().counter("flow.poa_shed");
    shed.add(1);
  }
  if (!header.oneway()) {
    ReplyHeader eh;
    eh.request_id = header.request_id;
    eh.server_rank = rank_;
    eh.server_size = size_;
    eh.status = ReplyStatus::kSystemException;
    eh.error_code = ErrorCode::kOverload;
    eh.error_message = "server overloaded: '" + header.operation + "' shed at " +
                       std::to_string(assembling_.size()) + " queued requests";
    eh.retry_after_ms = overload_retry_after_ms_;
    eh.crc = wire::frame_crc();
    ByteBuffer frame;
    CdrWriter w(frame);
    eh.marshal(w);
    if (eh.crc) wire::append_crc(frame);
    try {
      orb_->transport().rsr(header.reply_to, transport::kHandlerOrbReply,
                            std::move(frame), host_model_);
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "poa") << "overload reply undeliverable: " << e.what();
    }
  }
  return true;
}

bool Poa::deadline_passed(const Assembling& a) const {
  if (a.header.deadline_ms == 0) return false;
  return std::chrono::steady_clock::now() >=
         a.first_arrival + std::chrono::milliseconds(a.header.deadline_ms);
}

void Poa::dispatch(Key key, bool expired) {
  auto it = assembling_.find(key);
  require(it != assembling_.end(), "poa: dispatching unknown request");
  Assembling a = std::move(it->second);
  assembling_.erase(it);
  depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);

  const PoaShared::ObjEntry* entry = shared_->find(a.header.object_id.value);
  require(entry != nullptr, "poa: object vanished before dispatch");

  std::vector<ServerInvocation::Body> bodies;
  bodies.reserve(a.bodies.size());
  for (auto& [rank, body] : a.bodies) bodies.push_back(std::move(body));

  const bool spmd = entry->spmd;
  // The dispatch span restores the client's trace context from the
  // PIOP header: everything below (servant run, reply sends) parents
  // under the client invocation span, across process boundaries.
  obs::SpanScope dispatch_span;
  const double dispatch_start_us = obs::enabled() ? obs::wall_now_us() : 0.0;
  if (obs::enabled())
    dispatch_span.open_remote("dispatch:" + a.header.operation, "server", a.header.trace);

  ServerInvocation inv(
      entry->ref, spmd ? comm_ : nullptr, spmd ? rank_ : 0, spmd ? size_ : 1, a.header,
      std::move(bodies), [this](const transport::EndpointAddr& to, ByteBuffer frame) {
        orb_->transport().rsr(to, transport::kHandlerOrbReply, std::move(frame), host_model_);
      });
  inv.set_trace(dispatch_span.context());

  ServantBase* servant = entry->servants[spmd ? static_cast<std::size_t>(rank_) : 0];
  // A client that vanished mid-invocation must not take the server
  // down: reply-delivery failures are logged and dropped.
  auto deliver_error = [&inv](const SystemException& e) {
    try {
      inv.send_error(e);
    } catch (const CommFailure& ce) {
      PARDIS_LOG(kWarn, "poa") << "error reply undeliverable: " << ce.what();
    }
  };
  if (expired) {
    // The request outwaited its deadline budget in this queue: reject
    // with kTimeout instead of computing a result nobody waits for.
    if (obs::enabled()) {
      static obs::Counter& rejected = obs::metrics().counter("poa.deadline_rejected");
      rejected.add(1);
    }
    deliver_error(TimeoutError("deadline of " + std::to_string(a.header.deadline_ms) +
                               " ms expired in the server queue for '" +
                               a.header.operation + "'"));
  } else {
    try {
      {
        obs::SpanScope servant_span;
        if (obs::enabled()) servant_span.open("servant:" + a.header.operation, "server");
        servant->_dispatch(inv);
      }
      auto dit = durable_.find(a.header.object_id.value);
      if (dit != durable_.end())
        commit_durable(dit->second, key, a.header, inv);
      else
        inv.send_replies();
    } catch (const CommFailure& e) {
      PARDIS_LOG(kWarn, "poa") << "reply undeliverable (client gone?): " << e.what();
    } catch (const SystemException& e) {
      deliver_error(e);
    } catch (const std::exception& e) {
      deliver_error(InternalError(std::string("servant failure: ") + e.what()));
    }
  }
  if (obs::enabled()) {
    static obs::Counter& dispatched = obs::metrics().counter("poa.dispatched");
    static obs::Histogram& latency = obs::metrics().histogram("poa.dispatch_us");
    dispatched.add(1);
    latency.record(obs::wall_now_us() - dispatch_start_us);
  }
  // Raise-only: a replayed dispatch (retry, seq below next) must not
  // regress the binding's horizon.
  ULong& next = next_seq_[key.first];
  if (key.second + 1 > next) next = key.second + 1;
  // Consume shed holes now adjacent to the horizon, so the binding's
  // next in-order request is not held up by one that was never
  // admitted. Safe for SPMD bindings: their holes all originate from
  // the coordinator's schedule, so every thread consumes the same set
  // in the same collective dispatch order and next_seq_ stays
  // identical across ranks.
  expected_seq(next_seq_, key.first);
  scheduled_replays_.erase(key);
}

ULong Poa::expected_seq(std::map<ULongLong, ULong>& next_map, ULongLong binding_id) {
  ULong& next = next_map[binding_id];
  auto sh = shed_seqs_.find(binding_id);
  if (sh == shed_seqs_.end()) return next;
  auto& seqs = sh->second;
  seqs.erase(seqs.begin(), seqs.lower_bound(next));  // stale: retried and admitted
  while (!seqs.empty() && *seqs.begin() == next) {
    seqs.erase(seqs.begin());
    ++next;
  }
  if (seqs.empty()) shed_seqs_.erase(sh);
  return next;
}

int Poa::dispatch_ready_singles(bool expired_only) {
  int dispatched = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = assembling_.begin(); it != assembling_.end(); ++it) {
      if (!it->second.complete()) continue;
      const PoaShared::ObjEntry* entry = shared_->find(it->second.header.object_id.value);
      if (entry == nullptr || entry->spmd || entry->owner_rank != rank_) continue;
      const ULong expected = expected_seq(next_seq_, it->first.first);
      // In-order dispatch, plus replays: a retry-flagged request below
      // the horizon re-executes (idempotent; its replies were lost).
      const bool replay = it->second.header.retry() && it->first.second < expected;
      if (!replay && it->first.second != expected) continue;
      const bool expired = deadline_passed(it->second);
      if (expired_only && !expired) continue;
      dispatch(it->first, expired);
      ++dispatched;
      progressed = true;
      break;  // iterator invalidated
    }
  }
  return dispatched;
}

void Poa::wait_until_assembled(const Key& key) {
  const auto started = std::chrono::steady_clock::now();
  for (;;) {
    auto it = assembling_.find(key);
    if (it != assembling_.end() && it->second.complete()) return;
    if (assembly_stall_.count() > 0 &&
        std::chrono::steady_clock::now() - started >= assembly_stall_) {
      // The coordinator scheduled this dispatch, but the bodies never
      // finished arriving here (a slice lost at a bounded queue, a
      // client that died mid-send). Unbounded waiting would block
      // every rank behind this entry forever — fail the round loudly
      // instead; the client's retry machinery owns end-to-end
      // recovery.
      if (obs::enabled()) {
        static obs::Counter& stalls =
            obs::metrics().counter("flow.poa_assembly_stalls");
        stalls.add(1);
      }
      throw CommFailure("POA rank " + std::to_string(rank_) + " waited " +
                        std::to_string(assembly_stall_.count()) +
                        " ms for scheduled request " + std::to_string(key.first) +
                        "#" + std::to_string(key.second) +
                        " to assemble (slice lost or client gone; see "
                        "PARDIS_POA_ASSEMBLY_STALL_MS)");
    }
    auto res = endpoint_->wait_for(std::chrono::milliseconds(200));
    if (res.closed())
      throw CommFailure("POA endpoint closed while assembling " +
                        std::to_string(key.first) + "#" +
                        std::to_string(key.second));
    if (res.message) {
      ingest(std::move(*res.message));
      drain();
    }
  }
}

void Poa::replay_mutation(const ObjectRef& ref, ServantBase& servant, bool spmd,
                          durable::MutationRecord&& m) {
  // Recovery/append replay executes through the normal skeleton with a
  // reply sink: the effect lands in the servant, nothing leaves. Runs
  // on this rank alone — durable mutations must not use collectives or
  // distributed arguments (each replica rank replays independently).
  ServerInvocation inv(ref, spmd ? comm_ : nullptr, spmd ? rank_ : 0, spmd ? size_ : 1,
                       m.header, std::move(m.bodies),
                       [](const transport::EndpointAddr&, ByteBuffer) {});
  try {
    servant._dispatch(inv);
  } catch (const std::exception& e) {
    PARDIS_LOG(kWarn, "wal") << "replay of '" << m.header.operation
                             << "' failed: " << e.what();
  }
}

void Poa::snapshot_durable(durable::DurableObj& dur, ServantBase& servant) {
  durable::SnapshotRecord snap;
  CdrWriter sw(snap.state);
  servant._snapshot_state(sw);
  snap.binding_next = dur.binding_next;
  snap.committed = dur.committed;
  const wal::Lsn lsn = dur.log->append(wal::kRecordSnapshot, durable::encode_snapshot(snap));
  dur.log->commit(lsn);
  if (obs::enabled()) {
    static obs::Counter& snapshots = obs::metrics().counter("wal.snapshots");
    snapshots.add(1);
  }
}

void Poa::setup_durable(const ObjectRef& ref, ServantBase& servant, bool spmd) {
  durable::DurableObj dur;
  dur.name = ref.name;
  dur.object_id = ref.object_id.value;
  dur.spmd = spmd;
  dur.log = std::make_unique<wal::Log>(durable::wal_path(ref.name, host_model_, rank_));

  // Local recovery, in LSN order: a snapshot wholesale-replaces state
  // (the last one wins — it was written after everything before it),
  // a mutation re-executes unless dedup-by-seq shows its effect is
  // already inside the restored state.
  std::size_t replayed = 0;
  for (wal::Record& rec : dur.log->take_recovered()) {
    if (rec.type == wal::kRecordSnapshot) {
      durable::SnapshotRecord snap = durable::decode_snapshot(rec.payload.view());
      CdrReader sr(snap.state.view());
      servant._restore_state(sr);
      dur.binding_next = std::move(snap.binding_next);
      dur.committed = std::move(snap.committed);
    } else if (rec.type == wal::kRecordMutation) {
      durable::MutationRecord m = durable::decode_mutation(rec.payload.view());
      const Key key{m.header.binding_id, m.header.seq_no};
      dur.committed[key] = rec.lsn;
      ULong& bn = dur.binding_next[key.first];
      if (key.second >= bn) {
        replay_mutation(ref, servant, spmd, std::move(m));
        bn = key.second + 1;
        ++replayed;
      }
    } else {
      PARDIS_LOG(kWarn, "wal") << "unknown record type " << static_cast<int>(rec.type)
                               << " at LSN " << rec.lsn << ", skipped";
    }
  }
  if (replayed > 0 && obs::enabled()) {
    static obs::Counter& counter = obs::metrics().counter("wal.replay_executed");
    counter.add(replayed);
  }
  for (const auto& [binding, next] : dur.binding_next) {
    ULong& n = next_seq_[binding];
    if (next > n) n = next;
  }

  // Join pull: if a group sibling is already serving, its state
  // supersedes whatever local recovery rebuilt — our log may hold a
  // record that was fsynced but never forwarded before a crash, and
  // its effect was never acknowledged (replies leave only after
  // forwarding), so dropping it keeps the group convergent.
  std::optional<ReplicaGroup> group;
  try {
    group = orb_->registry().lookup_group(ref.name, "");
  } catch (const SystemException&) {
  }
  const ObjectRef* sibling = nullptr;
  if (group) {
    for (const ObjectRef& m : group->members)
      if (m.object_id != ref.object_id && m.server_size() == ref.server_size()) {
        sibling = &m;
        break;
      }
  }
  const std::size_t ep_index = spmd ? static_cast<std::size_t>(rank_) : 0;
  std::vector<ByteBuffer> stashed;  // appends committed mid-pull, record payloads
  std::vector<transport::RsrMessage> deferred;  // ordinary traffic arriving mid-pull
  bool pulled = false;
  if (sibling != nullptr && ep_index < sibling->thread_eps.size()) {
    try {
      orb_->transport().rsr(
          sibling->thread_eps[ep_index], transport::kHandlerStateXfer,
          durable::make_xfer_request(sibling->object_id.value, endpoint_->addr()),
          host_model_);
      const auto deadline = std::chrono::steady_clock::now() + orb_->config().resolve_timeout;
      while (!pulled && std::chrono::steady_clock::now() < deadline) {
        auto res = endpoint_->wait_for(std::chrono::milliseconds(20));
        if (res.closed()) break;
        if (!res.message) continue;
        if (res.message->handler != transport::kHandlerStateXfer) {
          // Not ingested yet: the object is already registered, so a
          // request dispatched now would take the non-durable branch
          // (durable_ lacks this object) and be acked without ever
          // being logged or forwarded. Held until durable_ is
          // populated below, then ingested in arrival order.
          deferred.push_back(std::move(*res.message));
          continue;
        }
        CdrReader r(res.message->payload.view(), res.message->little_endian);
        const Octet sub = r.read_octet();
        if (sub == wal::kXferSnapshot) {
          durable::XferSnapshot xs = durable::decode_xfer_snapshot(r);
          CdrReader sr(xs.state.view());
          servant._restore_state(sr);
          dur.binding_next = std::move(xs.binding_next);
          dur.committed.clear();
          // Re-log the tail under our own LSNs: their effects are
          // inside the restored state (no execution), but a client
          // retry must still find the recorded reply frames here.
          for (const ByteBuffer& tail : xs.tail_records) {
            durable::MutationRecord m = durable::decode_mutation(tail.view());
            const Key k{m.header.binding_id, m.header.seq_no};
            const wal::Lsn lsn = dur.log->append(wal::kRecordMutation, tail.clone());
            dur.log->commit(lsn);
            dur.committed[k] = lsn;
            ULong& bn = dur.binding_next[k.first];
            if (k.second + 1 > bn) bn = k.second + 1;
          }
          pulled = true;
        } else if (sub == wal::kXferAppend) {
          r.read_ulonglong();  // target: us
          const ULong len = r.read_ulong();
          stashed.push_back(ByteBuffer::from(r.read_bytes(len)));
        } else {
          PARDIS_LOG(kWarn, "wal") << "unexpected sub-op " << static_cast<int>(sub)
                                   << " during state pull, dropped";
        }
      }
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "wal") << "state pull from sibling failed: " << e.what();
    }
    if (pulled) {
      for (const auto& [binding, next] : dur.binding_next) {
        ULong& n = next_seq_[binding];
        if (next > n) n = next;
      }
      // Checkpoint: the pulled state must survive our own restart even
      // though the records before it no longer describe it.
      snapshot_durable(dur, servant);
      if (obs::enabled()) {
        static obs::Counter& joins = obs::metrics().counter("wal.joins");
        joins.add(1);
      }
    } else {
      PARDIS_LOG(kWarn, "wal") << "no state snapshot from sibling of '" << ref.name
                               << "' within resolve timeout; serving from local log";
    }
  }
  durable::DurableObj& placed = durable_[dur.object_id] = std::move(dur);
  for (ByteBuffer& payload : stashed) apply_xfer_append(placed, std::move(payload));
  for (transport::RsrMessage& m : deferred) ingest(std::move(m));
}

void Poa::handle_state_xfer(transport::RsrMessage&& msg) {
  CdrReader r(msg.payload.view(), msg.little_endian);
  const Octet sub = r.read_octet();
  if (sub == wal::kXferRequest) {
    const ULongLong target = r.read_ulonglong();
    const auto reply_to = transport::EndpointAddr::unmarshal(r);
    auto it = durable_.find(target);
    const PoaShared::ObjEntry* entry = shared_->find(target);
    if (it == durable_.end() || entry == nullptr) {
      PARDIS_LOG(kWarn, "wal") << "state request for unknown durable object " << target;
      return;
    }
    durable::DurableObj& dur = it->second;
    ServantBase* servant =
        entry->servants[entry->spmd ? static_cast<std::size_t>(rank_) : 0];
    ByteBuffer state;
    CdrWriter sw(state);
    servant->_snapshot_state(sw);
    // Tail: the mutation records backing the replay window, oldest
    // first, so the joiner can answer retries without re-executing.
    std::map<wal::Lsn, ByteBuffer> tail;
    for (const auto& [key, lsn] : dur.committed)
      if (auto rec = dur.log->read(lsn)) tail.emplace(lsn, std::move(rec->payload));
    std::vector<ByteBuffer> tail_v;
    tail_v.reserve(tail.size());
    for (auto& [lsn, payload] : tail) tail_v.push_back(std::move(payload));
    try {
      orb_->transport().rsr(reply_to, transport::kHandlerStateXfer,
                            durable::make_xfer_snapshot(state, dur.binding_next, tail_v),
                            host_model_);
      if (obs::enabled()) {
        static obs::Counter& sent = obs::metrics().counter("wal.xfer_snapshots");
        sent.add(1);
      }
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "wal") << "state snapshot undeliverable: " << e.what();
    }
  } else if (sub == wal::kXferAppend) {
    const ULongLong target = r.read_ulonglong();
    const ULong len = r.read_ulong();
    ByteBuffer payload = ByteBuffer::from(r.read_bytes(len));
    auto it = durable_.find(target);
    if (it == durable_.end()) {
      PARDIS_LOG(kWarn, "wal") << "append for unknown durable object " << target
                               << ", dropped";
      return;
    }
    apply_xfer_append(it->second, std::move(payload));
  } else {
    PARDIS_LOG(kWarn, "wal") << "unexpected state-transfer sub-op "
                             << static_cast<int>(sub) << ", dropped";
  }
}

void Poa::apply_xfer_append(durable::DurableObj& dur, ByteBuffer payload) {
  durable::MutationRecord m = durable::decode_mutation(payload.view());
  const Key key{m.header.binding_id, m.header.seq_no};
  if (dur.committed.count(key) != 0) return;  // duplicate forward
  const wal::Lsn lsn = dur.log->append(wal::kRecordMutation, payload.clone());
  dur.log->commit(lsn);
  dur.committed[key] = lsn;
  ULong& bn = dur.binding_next[key.first];
  const bool execute = key.second >= bn;
  if (key.second + 1 > bn) bn = key.second + 1;
  // Raise our dispatch horizon too: a fresh dispatch of this sequence
  // number here would double-execute what the primary already ran.
  ULong& next = next_seq_[key.first];
  if (key.second + 1 > next) next = key.second + 1;
  std::vector<ServerInvocation::BuiltReply> replies = std::move(m.replies);
  const PoaShared::ObjEntry* entry = shared_->find(dur.object_id);
  if (execute && entry != nullptr)
    replay_mutation(entry->ref,
                    *entry->servants[entry->spmd ? static_cast<std::size_t>(rank_) : 0],
                    entry->spmd, std::move(m));
  // A retry of the same key may already be assembling here (the client
  // failed over before this append landed): answer it from the
  // recorded frames and free the seat — it sits below the horizon now
  // and would otherwise never dispatch.
  auto as = assembling_.find(key);
  if (as != assembling_.end()) {
    for (const auto& [crank, body] : as->second.bodies)
      for (ServerInvocation::BuiltReply& rep : replies) {
        if (rep.client_rank != crank) continue;
        try {
          orb_->transport().rsr(body.reply_to, transport::kHandlerOrbReply,
                                rep.frame.clone(), host_model_);
        } catch (const SystemException& e) {
          PARDIS_LOG(kWarn, "wal") << "logged reply undeliverable: " << e.what();
        }
      }
    assembling_.erase(as);
    depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);
  }
  durable::prune(dur);
  if (obs::enabled()) {
    static obs::Counter& applied = obs::metrics().counter("wal.appends_applied");
    applied.add(1);
  }
}

bool Poa::answer_retry_from_log(const RequestHeader& header, const Key& key) {
  auto dit = durable_.find(header.object_id.value);
  if (dit == durable_.end()) return false;
  durable::DurableObj& dur = dit->second;
  auto cit = dur.committed.find(key);
  if (cit == dur.committed.end()) return false;
  std::optional<wal::Record> rec = dur.log->read(cit->second);
  if (!rec) {
    PARDIS_LOG(kWarn, "wal") << "committed record at LSN " << cit->second
                             << " unreadable; letting the retry re-assemble";
    return false;
  }
  durable::MutationRecord m = durable::decode_mutation(rec->payload.view());
  if (obs::enabled()) {
    static obs::Counter& answered = obs::metrics().counter("wal.retry_answered");
    answered.add(1);
  }
  // Frames suppressed at the original dispatch (non-zero server rank,
  // no distributed out arguments) stay suppressed: the record simply
  // holds none for this client rank, and we still swallow the retry.
  for (ServerInvocation::BuiltReply& rep : m.replies) {
    if (rep.client_rank != header.client_rank) continue;
    try {
      orb_->transport().rsr(header.reply_to, transport::kHandlerOrbReply,
                            std::move(rep.frame), host_model_);
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "poa") << "logged reply undeliverable: " << e.what();
    }
  }
  return true;
}

void Poa::commit_durable(durable::DurableObj& dur, const Key& key,
                         const RequestHeader& header, ServerInvocation& inv) {
  const double start_us = obs::enabled() ? obs::wall_now_us() : 0.0;
  std::vector<ServerInvocation::BuiltReply> built = inv.build_replies();
  ByteBuffer payload = durable::encode_mutation(header, inv.bodies(), built);
  const wal::Lsn lsn = dur.log->append(wal::kRecordMutation, payload.clone());
  dur.log->commit(lsn);  // group-commit fsync barrier
  dur.committed[key] = lsn;
  ULong& bn = dur.binding_next[key.first];
  if (key.second + 1 > bn) bn = key.second + 1;
  durable::prune(dur);
  // Forward before replying: once the client sees the ack, the
  // mutation must exist beyond this process (a sibling's log), or a
  // crash here would lose an acknowledged write on failover.
  forward_append(dur, payload);
  if (obs::enabled()) {
    static obs::Counter& commits = obs::metrics().counter("wal.commits");
    static obs::Histogram& us = obs::metrics().histogram("wal.commit_us");
    commits.add(1);
    us.record(obs::wall_now_us() - start_us);
  }
  inv.send_built(std::move(built));
}

void Poa::forward_append(durable::DurableObj& dur, const ByteBuffer& payload) {
  std::optional<ReplicaGroup> group;
  try {
    group = orb_->registry().lookup_group(dur.name, "");
  } catch (const SystemException&) {
    return;  // registry unreachable: siblings resync on their next join
  }
  if (!group) return;
  const std::size_t ep_index = dur.spmd ? static_cast<std::size_t>(rank_) : 0;
  const int width = dur.spmd ? size_ : 1;
  for (const ObjectRef& m : group->members) {
    if (m.object_id.value == dur.object_id) continue;
    if (m.server_size() != width || ep_index >= m.thread_eps.size()) continue;
    try {
      orb_->transport().rsr(m.thread_eps[ep_index], transport::kHandlerStateXfer,
                            durable::make_xfer_append(m.object_id.value, payload.view()),
                            host_model_);
      if (obs::enabled()) {
        static obs::Counter& forwarded = obs::metrics().counter("wal.appends_forwarded");
        forwarded.add(1);
      }
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "wal") << "append to sibling undeliverable: " << e.what();
    }
  }
}

void Poa::wait_for_durable_horizon(const Key& key) {
  if (durable_.empty()) return;
  auto it = assembling_.find(key);
  if (it == assembling_.end()) return;
  if (durable_.find(it->second.header.object_id.value) == durable_.end()) return;
  const auto started = std::chrono::steady_clock::now();
  while (expected_seq(next_seq_, key.first) < key.second) {
    if (assembly_stall_.count() > 0 &&
        std::chrono::steady_clock::now() - started >= assembly_stall_) {
      throw CommFailure("POA rank " + std::to_string(rank_) +
                        " waited " + std::to_string(assembly_stall_.count()) +
                        " ms for the durable horizon of binding " +
                        std::to_string(key.first) + " to reach seq " +
                        std::to_string(key.second) + " (forwarded append lost?)");
    }
    auto res = endpoint_->wait_for(std::chrono::milliseconds(10));
    if (res.closed())
      throw CommFailure("POA endpoint closed while waiting for the durable horizon of " +
                        std::to_string(key.first) + "#" + std::to_string(key.second));
    if (res.message) {
      ingest(std::move(*res.message));
      drain();
    }
  }
}

int Poa::round(bool& deactivated) {
  drain();
  int dispatched = dispatch_ready_singles();

  // Rank 0 schedules the collective (SPMD) dispatches for this round
  // and broadcasts the schedule; all threads then execute it in order.
  // Per-entry flags: kSchedReplay / kSchedExpired (core/wire.hpp).
  ByteBuffer schedule;
  if (rank_ == 0) {
    struct Sched {
      Key key;
      Octet flags;
    };
    std::vector<Sched> ready;
    std::map<ULongLong, ULong> next = next_seq_;
    // Working copies: the schedule simulation must not advance the
    // real horizon (dispatch does that when the entries execute), so
    // shed holes are skipped against copies too.
    std::map<ULongLong, std::set<ULong>> holes = shed_seqs_;
    auto local_expected = [&next, &holes](ULongLong binding_id) {
      ULong& n = next[binding_id];
      auto sh = holes.find(binding_id);
      if (sh != holes.end()) {
        auto& seqs = sh->second;
        seqs.erase(seqs.begin(), seqs.lower_bound(n));
        while (!seqs.empty() && *seqs.begin() == n) {
          seqs.erase(seqs.begin());
          ++n;
        }
      }
      return n;
    };
    bool progressed = true;
    while (progressed) {
      progressed = false;
      const Assembling* best = nullptr;
      Key best_key{};
      bool best_replay = false;
      for (const auto& [key, a] : assembling_) {
        if (!a.complete()) continue;
        const PoaShared::ObjEntry* entry = shared_->find(a.header.object_id.value);
        if (entry == nullptr || !entry->spmd) continue;
        if (std::find_if(ready.begin(), ready.end(),
                         [&key_ref = key](const Sched& s) { return s.key == key_ref; }) !=
            ready.end())
          continue;
        const ULong expected = local_expected(key.first);
        // In-order dispatch, plus replays: a retry-flagged request
        // below the horizon re-executes (idempotent; replies lost).
        // The coordinator decides uniformly for all threads, so a
        // replay is dispatched collectively exactly once.
        const bool replay = a.header.retry() && key.second < expected;
        if (replay) {
          if (scheduled_replays_.count(key) != 0) continue;
        } else if (key.second != expected) {
          continue;
        }
        if (best == nullptr || a.complete_order < best->complete_order) {
          best = &a;
          best_key = key;
          best_replay = replay;
        }
      }
      if (best != nullptr) {
        Octet flags = 0;
        if (best_replay) {
          flags = static_cast<Octet>(flags | kSchedReplay);
          scheduled_replays_.insert(best_key);
        } else {
          next[best_key.first] = best_key.second + 1;
        }
        // Deadline check at scheduling time, decided once here so every
        // thread agrees whether the servant runs or the request is
        // rejected with kTimeout.
        if (deadline_passed(*best)) flags = static_cast<Octet>(flags | kSchedExpired);
        ready.push_back(Sched{best_key, flags});
        progressed = true;
        // An entry that will run the servant closes this round's
        // schedule: anything batched behind it would carry an expiry
        // verdict decided now but dispatched only after an arbitrarily
        // long execution — a request could outwait its whole deadline
        // budget in that gap and still run. Expired entries are cheap
        // rejects, so they may keep batching; the next live request is
        // scheduled by the next round with a fresh verdict.
        if ((flags & kSchedExpired) == 0) break;
      }
    }
    CdrWriter w(schedule);
    w.write_ulonglong(++round_serial_);
    w.write_bool(shared_->deactivated.load(std::memory_order_acquire));
    // Coordinated shedding: the SPMD sequence numbers this rank's
    // admission control rejected since the last round travel with the
    // schedule, so every thread skips the same holes. The simulation
    // above already saw them (shed_seqs_ was updated at ingest).
    w.write_ulong(static_cast<ULong>(shed_bcast_.size()));
    for (const Key& k : shed_bcast_) {
      w.write_ulonglong(k.first);
      w.write_ulong(k.second);
    }
    shed_bcast_.clear();
    w.write_ulong(static_cast<ULong>(ready.size()));
    for (const Sched& s : ready) {
      w.write_ulonglong(s.key.first);
      w.write_ulong(s.key.second);
      w.write_octet(s.flags);
    }
  }
  // The schedule is ORB control plane: it travels on the untimestamped
  // channel so the coordinator's virtual clock does not leak into the
  // other computing threads.
  ByteBuffer round_msg;
  if (size_ == 1) {
    round_msg = std::move(schedule);
  } else if (rank_ == 0) {
    for (int r = 1; r < size_; ++r)
      comm_->send_control(r, rts::kTagPoaRound, schedule.clone());
    round_msg = std::move(schedule);
  } else {
    round_msg = comm_->recv(0, rts::kTagPoaRound).payload;
  }
  CdrReader r(round_msg.view());
  // Schedule serial numbers detect coordinator/worker round skew (a
  // broken collective-call discipline in server code shows up here
  // instead of as a silent hang).
  const ULongLong serial = r.read_ulonglong();
  if (rank_ != 0) {
    if (serial != round_serial_ + 1 && check::enabled())
      check::violation("poa", "dispatch-round skew between threads: rank " +
                                  std::to_string(rank_) + " expected round " +
                                  std::to_string(round_serial_ + 1) + ", coordinator sent round " +
                                  std::to_string(serial));
    require(serial == round_serial_ + 1, "poa: dispatch-round skew between threads");
    round_serial_ = serial;
  }
  deactivated = r.read_bool();
  // Apply the coordinator's shed holes before this round's dispatches
  // (idempotent on rank 0, which punched them at ingest): the horizon
  // then skips the same sequence numbers on every thread, and a
  // locally assembled slice of a shed request frees its queue seat. A
  // retry-flagged assembly is spared — the client already re-filled
  // the slot, and that replacement must dispatch, not be torn.
  const ULong shed_count = r.read_ulong();
  for (ULong i = 0; i < shed_count; ++i) {
    const ULongLong binding = r.read_ulonglong();
    const ULong seq = r.read_ulong();
    shed_seqs_[binding].insert(seq);
    auto stale = assembling_.find(Key{binding, seq});
    if (stale != assembling_.end() && !stale->second.header.retry())
      assembling_.erase(stale);
  }
  if (shed_count > 0)
    depth_mirror_.store(assembling_.size(), std::memory_order_relaxed);
  const ULong count = r.read_ulong();
  for (ULong i = 0; i < count; ++i) {
    const ULongLong binding = r.read_ulonglong();
    const ULong seq = r.read_ulong();
    const Octet flags = r.read_octet();
    const Key key{binding, seq};
    // A servant may poll for requests *during* its own dispatch
    // (POA::process_requests, §3.3); such a nested round can already
    // have executed entries of this schedule. next_seq_ tracks what
    // ran, identically on every thread. Replay entries sit below the
    // horizon by construction and appear in exactly one schedule, so
    // they always execute.
    const bool replay = (flags & kSchedReplay) != 0;
    auto ns = next_seq_.find(binding);
    if (!replay && ns != next_seq_.end() && seq < ns->second) continue;
    wait_until_assembled(key);
    // Fresh dispatches to a durable object must not outrun the
    // forwarded appends of earlier sequence numbers (rank-to-rank, so
    // a sibling rank can lag behind the coordinator's horizon).
    if (!replay) wait_for_durable_horizon(key);
    dispatch(key, (flags & kSchedExpired) != 0);
    ++dispatched;
  }
  // New singles may have been drained while waiting for SPMD bodies.
  dispatched += dispatch_ready_singles();
  return dispatched;
}

int Poa::process_requests() {
  bool deactivated = false;
  return round(deactivated);
}

void Poa::impl_is_ready() {
  for (;;) {
    if (rank_ == 0 && endpoint_->pending() == 0 && assembling_.empty()) {
      // Pace idle rounds so the polling loop does not spin.
      auto res = endpoint_->wait_for(std::chrono::milliseconds(2));
      if (res.closed())
        throw CommFailure("POA endpoint closed while serving: " +
                          endpoint_->addr().to_string());
      if (res.message) ingest(std::move(*res.message));
    }
    bool deactivated = false;
    round(deactivated);
    if (deactivated) return;
  }
}

}  // namespace pardis::core
