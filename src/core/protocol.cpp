#include "core/protocol.hpp"

#include "transport/wire_guard.hpp"

namespace pardis::core {

void RequestHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_ulonglong(binding_id);
  w.write_ulong(seq_no);
  w.write_ulonglong(object_id.value);
  w.write_string(operation);
  Octet f =
      static_cast<Octet>(flags & ~(kFlagTraced | kFlagDeadline | kFlagRetry | kFlagCrc));
  if (trace.valid()) f = static_cast<Octet>(f | kFlagTraced);
  if (deadline_ms != 0) f = static_cast<Octet>(f | kFlagDeadline);
  if (attempt != 0) f = static_cast<Octet>(f | kFlagRetry);
  if (crc) f = static_cast<Octet>(f | kFlagCrc);
  w.write_octet(f);
  w.write_long(client_rank);
  w.write_long(client_size);
  reply_to.marshal(w);
  if (trace.valid()) {
    w.write_ulonglong(trace.trace_id);
    w.write_ulonglong(trace.span_id);
  }
  if (deadline_ms != 0) w.write_ulong(deadline_ms);
  if (attempt != 0) w.write_ulong(attempt);
}

RequestHeader RequestHeader::unmarshal(CdrReader& r) {
  RequestHeader h;
  h.request_id.value = r.read_ulonglong();
  h.binding_id = r.read_ulonglong();
  h.seq_no = r.read_ulong();
  h.object_id.value = r.read_ulonglong();
  h.operation = r.read_string();
  h.flags = r.read_octet();
  // The CRC trailer covers the whole frame (header + body), so it is
  // verified as soon as the flag is seen — before any further field is
  // trusted — and trimmed so body extraction never sees it. h.crc
  // stays false: a re-marshal of this header is unsealed.
  if ((h.flags & kFlagCrc) != 0) {
    wire::verify_crc(r, "RequestHeader");
    h.flags = static_cast<Octet>(h.flags & ~kFlagCrc);
  }
  if (wire::strict() && (h.flags & ~kKnownRequestFlags) != 0)
    throw DecodeError("unknown flag bits " + std::to_string(h.flags & ~kKnownRequestFlags),
                      r.offset(), "RequestHeader");
  h.client_rank = r.read_long();
  h.client_size = r.read_long();
  if (h.client_size < 1 || h.client_size > kMaxSpmdWidth)
    throw DecodeError("client_size " + std::to_string(h.client_size) + " outside [1, " +
                          std::to_string(kMaxSpmdWidth) + "]",
                      r.offset(), "RequestHeader");
  h.reply_to = transport::EndpointAddr::unmarshal(r);
  if ((h.flags & kFlagTraced) != 0) {
    h.trace.trace_id = r.read_ulonglong();
    h.trace.span_id = r.read_ulonglong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagTraced);
  }
  if ((h.flags & kFlagDeadline) != 0) {
    h.deadline_ms = r.read_ulong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagDeadline);
  }
  if ((h.flags & kFlagRetry) != 0) {
    h.attempt = r.read_ulong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagRetry);
    if (h.attempt == 0)
      throw DecodeError("kFlagRetry set with attempt 0", r.offset(), "RequestHeader");
  }
  if (h.client_rank < 0 || h.client_rank >= h.client_size)
    throw DecodeError("client rank " + std::to_string(h.client_rank) +
                          " outside matrix of " + std::to_string(h.client_size),
                      r.offset(), "RequestHeader");
  return h;
}

void ReplyHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_long(server_rank);
  w.write_long(server_size);
  w.write_octet(static_cast<Octet>(static_cast<Octet>(status) |
                                   (trace.valid() ? kReplyFlagTraced : 0) |
                                   (retry_after_ms != 0 ? kReplyFlagRetryAfter : 0) |
                                   (crc ? kReplyFlagCrc : 0)));
  if (status != ReplyStatus::kOk) {
    w.write_octet(static_cast<Octet>(error_code));
    w.write_string(error_message);
  }
  if (trace.valid()) {
    w.write_ulonglong(trace.trace_id);
    w.write_ulonglong(trace.span_id);
  }
  if (retry_after_ms != 0) w.write_ulong(retry_after_ms);
}

ReplyHeader ReplyHeader::unmarshal(CdrReader& r) {
  ReplyHeader h;
  h.request_id.value = r.read_ulonglong();
  h.server_rank = r.read_long();
  h.server_size = r.read_long();
  if (h.server_size < 1 || h.server_size > kMaxSpmdWidth)
    throw DecodeError("server_size " + std::to_string(h.server_size) + " outside [1, " +
                          std::to_string(kMaxSpmdWidth) + "]",
                      r.offset(), "ReplyHeader");
  if (h.server_rank < 0 || h.server_rank >= h.server_size)
    throw DecodeError("server rank " + std::to_string(h.server_rank) +
                          " outside matrix of " + std::to_string(h.server_size),
                      r.offset(), "ReplyHeader");
  const Octet raw_status = r.read_octet();
  if ((raw_status & kReplyFlagCrc) != 0) wire::verify_crc(r, "ReplyHeader");
  const bool traced = (raw_status & kReplyFlagTraced) != 0;
  const bool retry_after = (raw_status & kReplyFlagRetryAfter) != 0;
  const Octet status = static_cast<Octet>(raw_status & ~kKnownReplyFlags);
  if (status > static_cast<Octet>(ReplyStatus::kSystemException))
    throw DecodeError("bad status octet " + std::to_string(raw_status), r.offset(),
                      "ReplyHeader");
  h.status = static_cast<ReplyStatus>(status);
  if (wire::strict() && retry_after && h.status == ReplyStatus::kOk)
    throw DecodeError("retry-after hint on a kOk reply (impossible combination)",
                      r.offset(), "ReplyHeader");
  if (h.status != ReplyStatus::kOk) {
    const Octet ec = r.read_octet();
    if (ec > static_cast<Octet>(ErrorCode::kOverload))
      throw DecodeError("unknown error code octet " + std::to_string(ec), r.offset(),
                        "ReplyHeader");
    h.error_code = static_cast<ErrorCode>(ec);
    h.error_message = r.read_string();
  }
  if (traced) {
    h.trace.trace_id = r.read_ulonglong();
    h.trace.span_id = r.read_ulonglong();
  }
  if (retry_after) h.retry_after_ms = r.read_ulong();
  return h;
}

void throw_reply_error(const ReplyHeader& header) {
  if (header.error_code == ErrorCode::kOverload)
    throw OverloadError("(from server) " + header.error_message,
                        header.retry_after_ms);
  throw_error_code(header.error_code, "(from server) " + header.error_message);
}

void throw_error_code(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kBadParam: throw BadParam(message);
    case ErrorCode::kMarshal: throw MarshalError(message);
    case ErrorCode::kCommFailure: throw CommFailure(message);
    case ErrorCode::kObjectNotExist: throw ObjectNotExist(message);
    case ErrorCode::kNoImplement: throw NoImplement(message);
    case ErrorCode::kBadInvOrder: throw BadInvOrder(message);
    case ErrorCode::kTransient: throw TransientError(message);
    case ErrorCode::kTimeout: throw TimeoutError(message);
    case ErrorCode::kBadTag: throw BadTag(message);
    case ErrorCode::kOverload: throw OverloadError(message);
    default: throw InternalError(message);
  }
}

}  // namespace pardis::core
