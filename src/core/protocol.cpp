#include "core/protocol.hpp"

namespace pardis::core {

void RequestHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_ulonglong(binding_id);
  w.write_ulong(seq_no);
  w.write_ulonglong(object_id.value);
  w.write_string(operation);
  w.write_octet(flags);
  w.write_long(client_rank);
  w.write_long(client_size);
  reply_to.marshal(w);
}

RequestHeader RequestHeader::unmarshal(CdrReader& r) {
  RequestHeader h;
  h.request_id.value = r.read_ulonglong();
  h.binding_id = r.read_ulonglong();
  h.seq_no = r.read_ulong();
  h.object_id.value = r.read_ulonglong();
  h.operation = r.read_string();
  h.flags = r.read_octet();
  h.client_rank = r.read_long();
  h.client_size = r.read_long();
  h.reply_to = transport::EndpointAddr::unmarshal(r);
  if (h.client_rank < 0 || h.client_rank >= h.client_size)
    throw MarshalError("RequestHeader: client rank out of range");
  return h;
}

void ReplyHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_long(server_rank);
  w.write_long(server_size);
  w.write_octet(static_cast<Octet>(status));
  if (status != ReplyStatus::kOk) {
    w.write_octet(static_cast<Octet>(error_code));
    w.write_string(error_message);
  }
}

ReplyHeader ReplyHeader::unmarshal(CdrReader& r) {
  ReplyHeader h;
  h.request_id.value = r.read_ulonglong();
  h.server_rank = r.read_long();
  h.server_size = r.read_long();
  const Octet status = r.read_octet();
  if (status > static_cast<Octet>(ReplyStatus::kSystemException))
    throw MarshalError("ReplyHeader: bad status octet");
  h.status = static_cast<ReplyStatus>(status);
  if (h.status != ReplyStatus::kOk) {
    h.error_code = static_cast<ErrorCode>(r.read_octet());
    h.error_message = r.read_string();
  }
  return h;
}

void throw_reply_error(const ReplyHeader& header) {
  const std::string msg = "(from server) " + header.error_message;
  switch (header.error_code) {
    case ErrorCode::kBadParam: throw BadParam(msg);
    case ErrorCode::kMarshal: throw MarshalError(msg);
    case ErrorCode::kCommFailure: throw CommFailure(msg);
    case ErrorCode::kObjectNotExist: throw ObjectNotExist(msg);
    case ErrorCode::kNoImplement: throw NoImplement(msg);
    case ErrorCode::kBadInvOrder: throw BadInvOrder(msg);
    case ErrorCode::kTransient: throw TransientError(msg);
    case ErrorCode::kTimeout: throw TimeoutError(msg);
    case ErrorCode::kBadTag: throw BadTag(msg);
    default: throw InternalError(msg);
  }
}

}  // namespace pardis::core
