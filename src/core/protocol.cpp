#include "core/protocol.hpp"

namespace pardis::core {

void RequestHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_ulonglong(binding_id);
  w.write_ulong(seq_no);
  w.write_ulonglong(object_id.value);
  w.write_string(operation);
  Octet f = static_cast<Octet>(flags & ~(kFlagTraced | kFlagDeadline | kFlagRetry));
  if (trace.valid()) f = static_cast<Octet>(f | kFlagTraced);
  if (deadline_ms != 0) f = static_cast<Octet>(f | kFlagDeadline);
  if (attempt != 0) f = static_cast<Octet>(f | kFlagRetry);
  w.write_octet(f);
  w.write_long(client_rank);
  w.write_long(client_size);
  reply_to.marshal(w);
  if (trace.valid()) {
    w.write_ulonglong(trace.trace_id);
    w.write_ulonglong(trace.span_id);
  }
  if (deadline_ms != 0) w.write_ulong(deadline_ms);
  if (attempt != 0) w.write_ulong(attempt);
}

RequestHeader RequestHeader::unmarshal(CdrReader& r) {
  RequestHeader h;
  h.request_id.value = r.read_ulonglong();
  h.binding_id = r.read_ulonglong();
  h.seq_no = r.read_ulong();
  h.object_id.value = r.read_ulonglong();
  h.operation = r.read_string();
  h.flags = r.read_octet();
  h.client_rank = r.read_long();
  h.client_size = r.read_long();
  h.reply_to = transport::EndpointAddr::unmarshal(r);
  if ((h.flags & kFlagTraced) != 0) {
    h.trace.trace_id = r.read_ulonglong();
    h.trace.span_id = r.read_ulonglong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagTraced);
  }
  if ((h.flags & kFlagDeadline) != 0) {
    h.deadline_ms = r.read_ulong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagDeadline);
  }
  if ((h.flags & kFlagRetry) != 0) {
    h.attempt = r.read_ulong();
    h.flags = static_cast<Octet>(h.flags & ~kFlagRetry);
  }
  if (h.client_rank < 0 || h.client_rank >= h.client_size)
    throw MarshalError("RequestHeader: client rank out of range");
  return h;
}

void ReplyHeader::marshal(CdrWriter& w) const {
  w.write_ulonglong(request_id.value);
  w.write_long(server_rank);
  w.write_long(server_size);
  w.write_octet(static_cast<Octet>(static_cast<Octet>(status) |
                                   (trace.valid() ? kReplyFlagTraced : 0) |
                                   (retry_after_ms != 0 ? kReplyFlagRetryAfter : 0)));
  if (status != ReplyStatus::kOk) {
    w.write_octet(static_cast<Octet>(error_code));
    w.write_string(error_message);
  }
  if (trace.valid()) {
    w.write_ulonglong(trace.trace_id);
    w.write_ulonglong(trace.span_id);
  }
  if (retry_after_ms != 0) w.write_ulong(retry_after_ms);
}

ReplyHeader ReplyHeader::unmarshal(CdrReader& r) {
  ReplyHeader h;
  h.request_id.value = r.read_ulonglong();
  h.server_rank = r.read_long();
  h.server_size = r.read_long();
  const Octet raw_status = r.read_octet();
  const bool traced = (raw_status & kReplyFlagTraced) != 0;
  const bool retry_after = (raw_status & kReplyFlagRetryAfter) != 0;
  const Octet status =
      static_cast<Octet>(raw_status & ~(kReplyFlagTraced | kReplyFlagRetryAfter));
  if (status > static_cast<Octet>(ReplyStatus::kSystemException))
    throw MarshalError("ReplyHeader: bad status octet");
  h.status = static_cast<ReplyStatus>(status);
  if (h.status != ReplyStatus::kOk) {
    h.error_code = static_cast<ErrorCode>(r.read_octet());
    h.error_message = r.read_string();
  }
  if (traced) {
    h.trace.trace_id = r.read_ulonglong();
    h.trace.span_id = r.read_ulonglong();
  }
  if (retry_after) h.retry_after_ms = r.read_ulong();
  return h;
}

void throw_reply_error(const ReplyHeader& header) {
  if (header.error_code == ErrorCode::kOverload)
    throw OverloadError("(from server) " + header.error_message,
                        header.retry_after_ms);
  throw_error_code(header.error_code, "(from server) " + header.error_message);
}

void throw_error_code(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kBadParam: throw BadParam(message);
    case ErrorCode::kMarshal: throw MarshalError(message);
    case ErrorCode::kCommFailure: throw CommFailure(message);
    case ErrorCode::kObjectNotExist: throw ObjectNotExist(message);
    case ErrorCode::kNoImplement: throw NoImplement(message);
    case ErrorCode::kBadInvOrder: throw BadInvOrder(message);
    case ErrorCode::kTransient: throw TransientError(message);
    case ErrorCode::kTimeout: throw TimeoutError(message);
    case ErrorCode::kBadTag: throw BadTag(message);
    case ErrorCode::kOverload: throw OverloadError(message);
    default: throw InternalError(message);
  }
}

}  // namespace pardis::core
