#include "core/client.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rts/collectives.hpp"
#include "transport/wire_guard.hpp"

namespace pardis::core {

std::chrono::milliseconds default_invocation_deadline() {
  static const std::chrono::milliseconds cached = [] {
    const char* v = std::getenv("PARDIS_FT_DEADLINE_MS");
    if (v == nullptr) return std::chrono::milliseconds(0);
    const long ms = std::strtol(v, nullptr, 10);
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }();
  return cached;
}

ClientCtx::ClientCtx(Orb& orb, rts::DomainContext& dctx)
    : orb_(&orb),
      comm_(&dctx.comm),
      rank_(dctx.rank),
      size_(dctx.size),
      host_model_(dctx.host != nullptr ? dctx.host->name : "") {
  endpoint_ = orb_->transport().create_endpoint(host_model_);
}

ClientCtx::ClientCtx(Orb& orb, std::string host_model)
    : orb_(&orb), comm_(nullptr), rank_(0), size_(1), host_model_(std::move(host_model)) {
  endpoint_ = orb_->transport().create_endpoint(host_model_);
}

void ClientCtx::send_rsr(const transport::EndpointAddr& dst,
                         transport::HandlerId handler, ByteBuffer frame) {
  if (sender_ != nullptr) {
    sender_->enqueue(dst, handler, std::move(frame));
    return;
  }
  orb_->transport().rsr(dst, handler, std::move(frame), host_model_);
}

void ClientCtx::enable_comm_thread() {
  if (sender_ == nullptr)
    sender_ = std::make_unique<CommSender>(orb_->transport(), host_model_);
}

void ClientCtx::flush_sends() {
  if (sender_ != nullptr) sender_->flush();
}

void ClientCtx::pump() {
  harvest_send_failures();
  while (auto msg = endpoint_->poll()) route(std::move(*msg));
}

bool ClientCtx::pump_blocking(std::chrono::milliseconds timeout) {
  harvest_send_failures();
  auto res = endpoint_->wait_for(timeout);
  if (res.closed())
    throw CommFailure("client endpoint closed while awaiting replies: " +
                      endpoint_->addr().to_string());
  if (!res.message) return false;
  route(std::move(*res.message));
  pump();  // drain whatever else arrived with it
  return true;
}

void ClientCtx::harvest_send_failures() {
  if (sender_ == nullptr) return;
  for (auto& f : sender_->take_failures()) fail_peer(f.dst, f.message);
}

void ClientCtx::fail_peer(const transport::EndpointAddr& peer, const std::string& why) {
  PARDIS_LOG(kWarn, "client") << "peer " << peer.to_string() << " marked dead: " << why;
  if (obs::enabled()) {
    static obs::Counter& failed = obs::metrics().counter("ft.peers_failed");
    failed.add(1);
  }
  for (const auto& listener : peer_failure_listeners_) listener(peer, why);
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto pending = it->second.lock();
    if (!pending) {
      it = pending_.erase(it);
      continue;
    }
    bool bound = false;
    for (const auto& ep : pending->peers())
      if (ep == peer) {
        bound = true;
        break;
      }
    if (bound) {
      pending->fail(ErrorCode::kCommFailure,
                    "peer " + peer.to_string() + " unreachable: " + why);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClientCtx::probe_peers(PendingReply& pending) {
  for (const auto& peer : pending.peers()) {
    try {
      obs::SpanScope span;
      if (obs::enabled() && obs::current_context().valid())
        span.open("ft:probe", "client");
      orb_->transport().rsr(peer, transport::kHandlerPing, ByteBuffer(), host_model_);
    } catch (const SystemException& e) {
      fail_peer(peer, e.what());
      if (pending.complete()) return;
    }
  }
}

std::size_t ClientCtx::window_inflight(const std::string& key) const {
  auto it = inflight_.find(key);
  return it != inflight_.end() ? static_cast<std::size_t>(it->second) : 0;
}

void ClientCtx::window_acquire(const std::string& key,
                               const std::vector<transport::EndpointAddr>& peers) {
  const std::size_t cap = orb_->config().inflight_window;
  if (cap == 0 || key.empty()) return;
  if (window_inflight(key) >= cap) {
    if (orb_->config().window_policy == OrbConfig::WindowPolicy::kFail) {
      if (obs::enabled()) {
        static obs::Counter& rejects = obs::metrics().counter("flow.window_rejects");
        rejects.add(1);
      }
      throw OverloadError("in-flight window to " + key + " is full (" +
                          std::to_string(cap) + " outstanding)");
    }
    if (obs::enabled()) {
      static obs::Counter& waits = obs::metrics().counter("flow.window_waits");
      waits.add(1);
    }
    // kBlock: pump replies until an outstanding invocation to this peer
    // completes (its PendingReply releases the slot). SPMD clients
    // invoke collectively in a uniform order, so every rank blocks at
    // the same call and no cross-rank deadlock can form.
    while (window_inflight(key) >= cap) {
      if (!pump_blocking(std::chrono::milliseconds(100))) {
        // A whole window with nothing delivered: check the peers are
        // still alive so a dead server fails the outstanding futures
        // (releasing their slots) instead of blocking forever.
        for (const auto& peer : peers) {
          try {
            orb_->transport().rsr(peer, transport::kHandlerPing, ByteBuffer(),
                                  host_model_);
          } catch (const SystemException& e) {
            fail_peer(peer, e.what());
          }
        }
      }
    }
  }
  ++inflight_[key];
}

void ClientCtx::window_release(const std::string& key) noexcept {
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  if (--it->second <= 0) inflight_.erase(it);
}

void ClientCtx::route(transport::RsrMessage&& msg) {
  if (msg.handler == transport::kHandlerPing) return;  // liveness probe, no payload
  if (msg.handler != transport::kHandlerOrbReply) {
    PARDIS_LOG(kWarn, "client") << "unexpected RSR handler " << msg.handler << ", dropped";
    return;
  }
  if (obs::enabled()) {
    static obs::Counter& replies = obs::metrics().counter("orb.replies_received");
    static obs::Counter& bytes = obs::metrics().counter("orb.reply_bytes_received");
    replies.add(1);
    bytes.add(msg.payload.size());
  }
  CdrReader r(msg.payload.view(), msg.little_endian);
  ReplyHeader header;
  try {
    header = ReplyHeader::unmarshal(r);
  } catch (const MarshalError& e) {
    // A malformed reply resolves nothing: the pending request times out
    // and retries, and the sending peer is charged a bad frame.
    PARDIS_LOG(kWarn, "client") << "dropped malformed reply: " << e.what();
    wire::guard().note_bad_frame(msg.src_peer, e.what());
    return;
  }
  auto it = pending_.find(header.request_id.value);
  if (it == pending_.end()) return;  // late reply for a resolved-by-error request
  auto pending = it->second.lock();
  if (!pending) {
    pending_.erase(it);
    return;
  }
  // rest() respects the trimmed CRC trailer; re-slicing msg.payload
  // would leak the 4 trailer bytes into the reply body.
  ByteBuffer body = ByteBuffer::from(r.rest());
  pending->deliver(header, msg.little_endian, std::move(body));
  if (pending->complete()) pending_.erase(header.request_id.value);
}

void ClientCtx::track(const std::shared_ptr<PendingReply>& pending) {
  pending_[pending->id().value] = pending;
}

void ClientCtx::untrack(RequestId id) { pending_.erase(id.value); }

namespace {

ULongLong next_binding_id() {
  // Binding ids share the object-id generator's uniqueness domain.
  return ObjectId::next().value;
}

void check_type(const ObjectRef& ref, const std::string& expected) {
  if (!expected.empty() && ref.type_id != expected) {
    PARDIS_LOG(kWarn, "client") << "binding to " << ref.name << ": object type "
                                << ref.type_id << " != proxy type " << expected
                                << " (operations may be rejected)";
  }
}

void apply_collocation(Binding& b, ClientCtx& ctx, bool collective) {
  const Orb::CollocatedEntry* entry = ctx.orb().collocated(b.ref().object_id);
  if (entry == nullptr) return;
  // "Local" means the same (modeled) host as well as the same process;
  // a same-process object on a different modeled host must still go
  // through the transport so its costs are charged correctly.
  if (b.ref().host != ctx.host_model()) return;
  if (!collective) {
    // Direct call into a single object living in this process.
    if (!entry->spmd) b.set_collocated(entry->servants.front());
    return;
  }
  // Collective collocation requires the client and server to be the
  // same domain (thread ranks correspond one-to-one).
  if (entry->spmd && entry->group == ctx.comm()->group_key() &&
      static_cast<int>(entry->servants.size()) == ctx.size())
    b.set_collocated(entry->servants[static_cast<std::size_t>(ctx.rank())]);
}

}  // namespace

BindingPtr bind(ClientCtx& ctx, const std::string& name, const std::string& host,
                const std::string& expected_type) {
  ObjectRef ref = ctx.orb().resolve(name, host);
  check_type(ref, expected_type);
  auto b = std::make_shared<Binding>(ctx, std::move(ref), /*collective=*/false,
                                     next_binding_id());
  apply_collocation(*b, ctx, /*collective=*/false);
  return b;
}

BindingPtr bind_object(ClientCtx& ctx, const ObjectRef& ref,
                       const std::string& expected_type) {
  if (!ref.valid()) throw BadParam("bind_object: invalid reference");
  check_type(ref, expected_type);
  auto b = std::make_shared<Binding>(ctx, ref, /*collective=*/false, next_binding_id());
  apply_collocation(*b, ctx, /*collective=*/false);
  return b;
}

BindingPtr spmd_bind_object(ClientCtx& ctx, const ObjectRef& ref,
                            const std::string& expected_type) {
  if (ctx.comm() == nullptr)
    throw BadInvOrder("spmd_bind_object requires an SPMD client");
  if (!ref.valid()) throw BadParam("spmd_bind_object: invalid reference");
  check_type(ref, expected_type);
  // All threads share one binding id (rank 0 allocates it).
  const auto id = rts::broadcast_value<ULongLong>(
      *ctx.comm(), ctx.rank() == 0 ? next_binding_id() : 0, 0);
  auto b = std::make_shared<Binding>(ctx, ref, /*collective=*/true, id);
  apply_collocation(*b, ctx, /*collective=*/true);
  return b;
}

BindingPtr spmd_bind(ClientCtx& ctx, const std::string& name, const std::string& host,
                     const std::string& expected_type) {
  if (ctx.comm() == nullptr)
    throw BadInvOrder("spmd_bind requires an SPMD client (use bind for single clients)");
  // Rank 0 resolves; the reference and a fresh binding id are
  // broadcast so every thread shares one binding.
  ByteBuffer blob;
  if (ctx.rank() == 0) {
    ObjectRef ref = ctx.orb().resolve(name, host);
    CdrWriter w(blob);
    ref.marshal(w);
    w.write_ulonglong(next_binding_id());
  }
  ByteBuffer shared = rts::broadcast(*ctx.comm(), std::move(blob), 0);
  CdrReader r(shared.view());
  ObjectRef ref = ObjectRef::unmarshal(r);
  const ULongLong id = r.read_ulonglong();
  check_type(ref, expected_type);
  auto b = std::make_shared<Binding>(ctx, std::move(ref), /*collective=*/true, id);
  apply_collocation(*b, ctx, /*collective=*/true);
  return b;
}

ClientRequest::ClientRequest(Binding& binding, std::string operation, bool oneway,
                             bool has_dist_out)
    : binding_(&binding),
      operation_(std::move(operation)),
      oneway_(oneway),
      has_dist_out_(has_dist_out) {
  const int q = server_size();
  bodies_.resize(static_cast<std::size_t>(q));
  writers_.reserve(static_cast<std::size_t>(q));
  for (auto& b : bodies_) writers_.emplace_back(b);
}

int ClientRequest::my_client_rank() const noexcept {
  return binding_->collective() ? binding_->ctx().rank() : 0;
}

std::shared_ptr<PendingReply> ClientRequest::invoke(int attempt) {
  if (attempt < 1) throw BadParam("ClientRequest::invoke: attempt must be >= 1");
  ClientCtx& ctx = binding_->ctx();
  const ObjectRef& ref = binding_->ref();

  // The client invocation span: covers marshaling and the sends, and
  // is the parent every downstream span (transport, POA dispatch,
  // servant, reply, future resolve) hangs off via the PIOP header.
  obs::SpanScope span;
  if (obs::enabled()) span.open("invoke:" + operation_, "client");

  // pardis_flow backpressure: one window slot per outstanding
  // non-oneway invocation, keyed by the object's rank-0 endpoint; held
  // from the first send until the reply completes or fails (the
  // PendingReply's release hook), so a re-send attempt claims its own
  // slot after the failed attempt freed its one at failure time.
  // Acquired before the sequence number is taken: a kFail rejection
  // must leave no hole in the binding's invocation order.
  const std::string window_key = !oneway_ ? ref.primary_key() : std::string();
  if (!window_key.empty()) ctx.window_acquire(window_key, ref.thread_eps);

  if (attempt == 1) {
    issued_id_ = RequestId::next();
    issued_seq_ = binding_->take_seq();
  }
  // A re-send keeps the first attempt's identity: the POA deduplicates
  // bodies it already assembled and replays the sequence number when
  // needed, so a partially-delivered request matrix is completed
  // rather than torn by fresh ids.
  RequestHeader h;
  h.request_id = issued_id_;
  h.binding_id = binding_->id();
  h.seq_no = issued_seq_;
  h.object_id = ref.object_id;
  h.operation = operation_;
  h.flags = static_cast<Octet>((oneway_ ? kFlagOneway : 0) |
                               (binding_->collective() ? kFlagCollective : 0));
  h.client_rank = my_client_rank();
  h.client_size = binding_->collective() ? ctx.size() : 1;
  h.reply_to = ctx.endpoint().addr();
  h.trace = span.context();
  h.deadline_ms = static_cast<ULong>(binding_->deadline().count());
  h.attempt = static_cast<ULong>(attempt - 1);
  h.crc = wire::frame_crc();

  std::uint64_t bytes_out = 0;
  try {
    for (int q = 0; q < server_size(); ++q) {
      ByteBuffer frame;
      CdrWriter w(frame);
      h.marshal(w);
      frame.append(bodies_[static_cast<std::size_t>(q)].view());
      if (h.crc) wire::append_crc(frame);
      bytes_out += frame.size();
      ctx.send_rsr(ref.thread_eps[static_cast<std::size_t>(q)],
                   transport::kHandlerOrbRequest, std::move(frame));
    }
  } catch (...) {
    if (!window_key.empty()) ctx.window_release(window_key);
    throw;
  }
  if (obs::enabled()) {
    static obs::Counter& transported =
        obs::metrics().counter("orb.invocations_transported");
    static obs::Counter& requests = obs::metrics().counter("orb.requests_sent");
    static obs::Counter& bytes = obs::metrics().counter("orb.request_bytes_sent");
    transported.add(1);
    requests.add(static_cast<std::uint64_t>(server_size()));
    bytes.add(bytes_out);
  }
  if (oneway_) return nullptr;

  const int expected = has_dist_out_ ? server_size() : 1;
  auto pending = std::make_shared<PendingReply>(ctx, h.request_id, expected);
  if (!window_key.empty())
    pending->set_release([ctx_ptr = &ctx, window_key] {
      ctx_ptr->window_release(window_key);
    });
  pending->set_trace(h.trace, operation_);
  pending->set_peers(ref.thread_eps);
  pending->set_deadline(binding_->deadline());
  ctx.track(pending);
  return pending;
}

}  // namespace pardis::core
