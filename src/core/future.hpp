// PARDIS futures (paper §3.3).
//
// A non-blocking stub returns immediately after the request is sent,
// with futures of its out arguments and return value. "Trying to read
// a future before ... it becomes resolved will cause the program to
// block until the result is delivered. Alternatively, the programmer
// may poll on a future." All futures of one invocation resolve
// together when the server completes. The C++ mapping follows ABC++
// (implicit conversion to the underlying type blocks).
#pragma once

#include <memory>

#include "check/check.hpp"
#include "core/pending_reply.hpp"

namespace pardis::core {

template <typename T>
class Future {
 public:
  Future() = default;

  /// True once every expected reply arrived (polls the client engine,
  /// draining any transport traffic non-blockingly).
  bool resolved() {
    if (!pending_) return value_ != nullptr;
    return pending_->resolved();
  }

  /// Blocks until resolution, then yields the value. Throws the
  /// server's system exception if the invocation failed.
  const T& get() {
    if (pending_) pending_->wait();
    if (!value_) throw BadInvOrder("Future: read of an unbound future");
    return *value_;
  }

  /// ABC++-style implicit read: `X1_real = X1;` blocks until resolved.
  operator T() { return get(); }

  /// Stub wiring: binds this future to an in-flight invocation and the
  /// slot its decoder fills.
  void _bind(std::shared_ptr<PendingReply> pending, std::shared_ptr<T> slot) {
    if (check::enabled() && (pending_ != nullptr || value_ != nullptr))
      check::violation("future",
                       "_bind on an already-bound future (futures are one-shot; "
                       "rebinding silently drops the pending invocation)");
    pending_ = std::move(pending);
    value_ = std::move(slot);
  }

  /// Pre-resolved future (collocated direct-call path).
  static Future<T> ready(T value) {
    Future<T> f;
    f.value_ = std::make_shared<T>(std::move(value));
    return f;
  }

 private:
  std::shared_ptr<PendingReply> pending_;
  std::shared_ptr<T> value_;
};

/// Future of an operation's completion only (void result).
class FutureVoid {
 public:
  FutureVoid() = default;

  bool resolved() { return !pending_ || pending_->resolved(); }

  void get() {
    if (pending_) pending_->wait();
  }

  void _bind(std::shared_ptr<PendingReply> pending) {
    if (check::enabled() && pending_ != nullptr)
      check::violation("future",
                       "_bind on an already-bound future (futures are one-shot; "
                       "rebinding silently drops the pending invocation)");
    pending_ = std::move(pending);
  }

  static FutureVoid ready() { return FutureVoid{}; }

 private:
  std::shared_ptr<PendingReply> pending_;
};

}  // namespace pardis::core
