#include "core/comm_thread.hpp"

#include <utility>

#include "common/log.hpp"

namespace pardis::core {

CommSender::CommSender(transport::Transport& transport, std::string host_model)
    : transport_(&transport), host_model_(std::move(host_model)) {
  thread_ = std::thread([this] { run(); });
}

CommSender::~CommSender() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CommSender::enqueue(const transport::EndpointAddr& dst, transport::HandlerId handler,
                         ByteBuffer payload) {
  {
    LockGuard lock(mutex_);
    if (stopping_) throw BadInvOrder("CommSender: enqueue after shutdown");
    queue_.push_back(Item{dst, handler, std::move(payload), sim::timestamp_now()});
    ++in_flight_;
  }
  cv_.notify_all();
}

void CommSender::flush() {
  UniqueLock lock(mutex_);
  while (in_flight_ != 0 && !stopping_) cv_.wait(lock);
}

std::vector<CommSender::SendFailure> CommSender::take_failures() {
  if (!has_failures_.load(std::memory_order_acquire)) return {};
  LockGuard lock(mutex_);
  has_failures_.store(false, std::memory_order_release);
  return std::exchange(failures_, {});
}

double CommSender::sim_time() const {
  LockGuard lock(mutex_);
  return clock_.now();
}

void CommSender::run() {
  sim::ClockBinding binding(clock_);
  for (;;) {
    Item item;
    {
      UniqueLock lock(mutex_);
      // pardis-lint: allow(blocking) the comm thread's idle wait for
      // work — scheduling, not message processing; enqueue() wakes it.
      while (queue_.empty() && !stopping_) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping with nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    // The message cannot leave before the computing thread handed it
    // over; the transfer itself is charged to this thread's clock.
    sim::merge_time(item.issue_time);
    try {
      transport_->rsr(item.dst, item.handler, std::move(item.payload), host_model_);
    } catch (const SystemException& e) {
      PARDIS_LOG(kWarn, "comm-thread") << "async send failed: " << e.what();
      LockGuard lock(mutex_);
      failures_.push_back(SendFailure{item.dst, e.what()});
      has_failures_.store(true, std::memory_order_release);
    }
    {
      LockGuard lock(mutex_);
      --in_flight_;
    }
    cv_.notify_all();
  }
}

}  // namespace pardis::core
