#include "core/ior.hpp"

#include "common/error.hpp"

namespace pardis::core {

namespace {
constexpr char kPrefix[] = "IOR:";
constexpr char kHex[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string object_to_string(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("object_to_string: invalid reference");
  ByteBuffer buf;
  CdrWriter w(buf);
  // A leading byte-order octet makes the hex string self-describing.
  w.write_octet(kNativeLittleEndian ? 1 : 0);
  ref.marshal(w);
  std::string out(kPrefix);
  out.reserve(out.size() + buf.size() * 2);
  for (Octet b : buf.view()) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

ObjectRef string_to_object(const std::string& ior) {
  if (ior.rfind(kPrefix, 0) != 0) throw BadParam("string_to_object: missing IOR: prefix");
  const std::string hex = ior.substr(sizeof(kPrefix) - 1);
  if (hex.empty() || hex.size() % 2 != 0)
    throw BadParam("string_to_object: odd-length IOR body");
  ByteBuffer buf;
  buf.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw BadParam("string_to_object: non-hex character");
    *buf.grow(1) = static_cast<Octet>((hi << 4) | lo);
  }
  CdrReader probe(buf.view());
  const bool little = probe.read_octet() != 0;
  CdrReader r(buf.view(), little);
  r.read_octet();
  return ObjectRef::unmarshal(r);
}

}  // namespace pardis::core
