// PIOP — the PARDIS inter-ORB protocol message headers.
//
// Every ORB message rides a one-way transport RSR. An SPMD invocation
// by a client of P threads on a server of Q threads is P x Q request
// messages (each carrying only the argument pieces moving between that
// thread pair) followed, unless the operation is oneway, by Q x P reply
// messages. Non-distributed payloads are carried redundantly by the
// rank-0 row so any single message loss model stays simple.
#pragma once

#include <string>

#include "common/cdr.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "core/wire.hpp"  // kFlag* / ReplyStatus / kReplyFlag* / kSched*
#include "obs/obs.hpp"
#include "transport/endpoint.hpp"

namespace pardis::core {

struct RequestHeader {
  RequestId request_id;       ///< per sending client thread
  ULongLong binding_id = 0;   ///< proxy binding (sequencing domain)
  ULong seq_no = 0;           ///< per-binding invocation sequence number
  ObjectId object_id;
  std::string operation;
  Octet flags = 0;
  Long client_rank = 0;
  Long client_size = 1;
  transport::EndpointAddr reply_to;
  /// Tracing context of the client invocation span. Only marshaled
  /// when valid (kFlagTraced); an untraced header is byte-identical to
  /// the pre-observability wire format.
  obs::TraceContext trace;
  /// Invocation time budget in milliseconds, 0 = none. Relative, not
  /// an absolute timestamp: the client measures it from invoke(), the
  /// POA from arrival of the first request body, so no cross-host
  /// clock synchronization is needed. Marshaled only when nonzero
  /// (kFlagDeadline); a deadline-free header stays byte-identical to
  /// the pre-ft wire format.
  ULong deadline_ms = 0;
  /// Zero-based retry attempt: 0 for the first send, N for the Nth
  /// re-send of the same (request_id, seq_no). Marshaled only when
  /// nonzero (kFlagRetry); tells the POA to accept duplicate bodies
  /// and to replay an already-dispatched sequence number.
  ULong attempt = 0;
  /// Frame-integrity intent: when true, marshal() sets kFlagCrc and
  /// the sender appends a wire::append_crc trailer after the body.
  /// unmarshal() verifies + strips the trailer and leaves this false,
  /// so a re-marshal of a received header (WAL durable records)
  /// produces unsealed bytes rather than a flag with no trailer.
  bool crc = false;

  bool oneway() const noexcept { return (flags & kFlagOneway) != 0; }
  bool collective() const noexcept { return (flags & kFlagCollective) != 0; }
  bool retry() const noexcept { return attempt > 0; }

  void marshal(CdrWriter& w) const;
  static RequestHeader unmarshal(CdrReader& r);
};

struct ReplyHeader {
  RequestId request_id;  ///< echo of the client thread's request id
  Long server_rank = 0;
  Long server_size = 1;
  ReplyStatus status = ReplyStatus::kOk;
  ErrorCode error_code = ErrorCode::kUnknown;  ///< when status != kOk
  std::string error_message;
  /// Server-side dispatch span (same trace id the request carried);
  /// marshaled only when valid (kReplyFlagTraced).
  obs::TraceContext trace;
  /// Overload shed hint: how long the client should wait before
  /// re-sending, in milliseconds. Marshaled only when nonzero
  /// (kReplyFlagRetryAfter); honored by ft::with_retry.
  ULong retry_after_ms = 0;
  /// Frame-integrity intent (kReplyFlagCrc); same contract as
  /// RequestHeader::crc.
  bool crc = false;

  void marshal(CdrWriter& w) const;
  static ReplyHeader unmarshal(CdrReader& r);
};

/// Rebuilds the typed system exception a reply carried.
[[noreturn]] void throw_reply_error(const ReplyHeader& header);

/// Throws the typed system exception matching `code` (the locally
/// generated counterpart of throw_reply_error, used for failures the
/// client engine detects itself: deadline expiry, severed peers).
[[noreturn]] void throw_error_code(ErrorCode code, const std::string& message);

}  // namespace pardis::core
