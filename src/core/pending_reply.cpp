#include "core/pending_reply.hpp"

#include <algorithm>

#include "core/client.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core {

void PendingReply::set_trace(const obs::TraceContext& trace, const std::string& operation) {
  operation_ = operation;
  if (!trace.valid()) return;
  trace_ = trace;
  issue_wall_us_ = obs::wall_now_us();
}

void PendingReply::set_deadline(std::chrono::milliseconds budget) {
  if (budget.count() <= 0) return;
  deadline_budget_ = budget;
  deadline_ = std::chrono::steady_clock::now() + budget;
  has_deadline_ = true;
}

void PendingReply::fail(ErrorCode code, std::string message) {
  if (complete()) return;  // first outcome wins
  failed_ = std::make_pair(code, std::move(message));
  if (obs::enabled()) {
    static obs::Counter& failed = obs::metrics().counter("ft.futures_failed");
    failed.add(1);
  }
  maybe_release();
}

void PendingReply::maybe_release() noexcept {
  if (!release_) return;
  auto fn = std::move(release_);
  release_ = nullptr;
  fn();
}

bool PendingReply::deadline_expired() {
  if (!has_deadline_ || complete()) return failed_.has_value();
  if (std::chrono::steady_clock::now() < deadline_) return false;
  if (obs::enabled()) {
    static obs::Counter& expired = obs::metrics().counter("ft.deadlines_expired");
    expired.add(1);
  }
  fail(ErrorCode::kTimeout,
       "deadline of " + std::to_string(deadline_budget_.count()) +
           " ms expired waiting for '" + operation_ + "'");
  return true;
}

PendingReply::PendingReply(ClientCtx& ctx, RequestId id, int expected)
    : ctx_(&ctx), id_(id), expected_(expected) {
  if (expected <= 0) throw BadParam("PendingReply: expected reply count must be positive");
  bodies_.reserve(static_cast<std::size_t>(expected));
}

PendingReply::~PendingReply() { maybe_release(); }

void PendingReply::deliver(const ReplyHeader& header, bool little, ByteBuffer body) {
  if (failed_) return;  // locally failed; late replies are moot
  if (header.status != ReplyStatus::kOk) {
    if (!error_) error_ = header;  // first error wins; later bodies are moot
    maybe_release();
    return;
  }
  // One body per server rank: an injected duplicate or a replayed
  // idempotent dispatch must not double-count toward `expected_`.
  for (const auto& b : bodies_)
    if (b.server_rank == header.server_rank) return;
  bodies_.push_back(RawBody{header.server_rank, little, std::move(body)});
  ++received_;
  if (complete()) maybe_release();
}

void PendingReply::finish() {
  if (failed_) {
    // A locally detected failure (deadline, dead peer): surface it on
    // every future touch, like a server error reply.
    throw_error_code(failed_->first, failed_->second);
  }
  if (error_) {
    // Decoding never ran; surface the server's exception every time
    // the caller touches a future of this invocation.
    throw_reply_error(*error_);
  }
  if (decoded_) return;
  decoded_ = true;
  // The resolve span: decode of the assembled replies, closing the
  // client side of the trace this invocation opened.
  obs::SpanScope span;
  if (obs::enabled() && trace_.valid())
    span.open_remote("resolve:" + operation_, "client", trace_);
  if (decoder_) {
    std::vector<ReplyDecoder::BodyView> views;
    views.reserve(bodies_.size());
    for (auto& b : bodies_)
      views.push_back(
          ReplyDecoder::BodyView{b.server_rank, CdrReader(b.bytes.view(), b.little)});
    ReplyDecoder dec(std::move(views));
    decoder_(dec);
  }
  if (obs::enabled()) {
    static obs::Counter& resolved = obs::metrics().counter("orb.futures_resolved");
    resolved.add(1);
    if (issue_wall_us_ > 0.0) {
      static obs::Histogram& latency =
          obs::metrics().histogram("orb.invoke_to_resolve_us");
      latency.record(obs::wall_now_us() - issue_wall_us_);
    }
  }
}

bool PendingReply::resolved() {
  if (!complete()) ctx_->pump();
  if (!complete() && !deadline_expired()) return false;
  finish();
  return true;
}

void PendingReply::wait() {
  while (!complete()) {
    if (deadline_expired()) break;
    auto timeout = std::chrono::milliseconds(100);
    if (has_deadline_) {
      // Never oversleep the deadline; +1 ms so the re-check after the
      // wake sees it as expired.
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 deadline_ - std::chrono::steady_clock::now()) +
                             std::chrono::milliseconds(1);
      if (remaining < timeout) timeout = std::max(remaining, std::chrono::milliseconds(1));
    }
    if (!ctx_->pump_blocking(timeout) && !complete()) {
      // Nothing arrived in a whole window: make sure the peers this
      // invocation depends on are still reachable.
      ctx_->probe_peers(*this);
    }
  }
  finish();
}

}  // namespace pardis::core
