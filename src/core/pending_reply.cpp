#include "core/pending_reply.hpp"

#include "core/client.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core {

void PendingReply::set_trace(const obs::TraceContext& trace, const std::string& operation) {
  if (!trace.valid()) return;
  trace_ = trace;
  operation_ = operation;
  issue_wall_us_ = obs::wall_now_us();
}

PendingReply::PendingReply(ClientCtx& ctx, RequestId id, int expected)
    : ctx_(&ctx), id_(id), expected_(expected) {
  if (expected <= 0) throw BadParam("PendingReply: expected reply count must be positive");
  bodies_.reserve(static_cast<std::size_t>(expected));
}

PendingReply::~PendingReply() = default;

void PendingReply::deliver(const ReplyHeader& header, bool little, ByteBuffer body) {
  if (header.status != ReplyStatus::kOk) {
    if (!error_) error_ = header;  // first error wins; later bodies are moot
    return;
  }
  bodies_.push_back(RawBody{header.server_rank, little, std::move(body)});
  ++received_;
}

void PendingReply::finish() {
  if (error_) {
    // Decoding never ran; surface the server's exception every time
    // the caller touches a future of this invocation.
    throw_reply_error(*error_);
  }
  if (decoded_) return;
  decoded_ = true;
  // The resolve span: decode of the assembled replies, closing the
  // client side of the trace this invocation opened.
  obs::SpanScope span;
  if (obs::enabled() && trace_.valid())
    span.open_remote("resolve:" + operation_, "client", trace_);
  if (decoder_) {
    std::vector<ReplyDecoder::BodyView> views;
    views.reserve(bodies_.size());
    for (auto& b : bodies_)
      views.push_back(
          ReplyDecoder::BodyView{b.server_rank, CdrReader(b.bytes.view(), b.little)});
    ReplyDecoder dec(std::move(views));
    decoder_(dec);
  }
  if (obs::enabled()) {
    static obs::Counter& resolved = obs::metrics().counter("orb.futures_resolved");
    resolved.add(1);
    if (issue_wall_us_ > 0.0) {
      static obs::Histogram& latency =
          obs::metrics().histogram("orb.invoke_to_resolve_us");
      latency.record(obs::wall_now_us() - issue_wall_us_);
    }
  }
}

bool PendingReply::resolved() {
  if (!complete()) ctx_->pump();
  if (!complete()) return false;
  finish();
  return true;
}

void PendingReply::wait() {
  while (!complete()) {
    ctx_->pump_blocking(std::chrono::milliseconds(100));
  }
  finish();
}

}  // namespace pardis::core
