#include "core/pending_reply.hpp"

#include "core/client.hpp"

namespace pardis::core {

PendingReply::PendingReply(ClientCtx& ctx, RequestId id, int expected)
    : ctx_(&ctx), id_(id), expected_(expected) {
  if (expected <= 0) throw BadParam("PendingReply: expected reply count must be positive");
  bodies_.reserve(static_cast<std::size_t>(expected));
}

PendingReply::~PendingReply() = default;

void PendingReply::deliver(const ReplyHeader& header, bool little, ByteBuffer body) {
  if (header.status != ReplyStatus::kOk) {
    if (!error_) error_ = header;  // first error wins; later bodies are moot
    return;
  }
  bodies_.push_back(RawBody{header.server_rank, little, std::move(body)});
  ++received_;
}

void PendingReply::finish() {
  if (error_) {
    // Decoding never ran; surface the server's exception every time
    // the caller touches a future of this invocation.
    throw_reply_error(*error_);
  }
  if (decoded_) return;
  decoded_ = true;
  if (!decoder_) return;
  std::vector<ReplyDecoder::BodyView> views;
  views.reserve(bodies_.size());
  for (auto& b : bodies_)
    views.push_back(ReplyDecoder::BodyView{b.server_rank, CdrReader(b.bytes.view(), b.little)});
  ReplyDecoder dec(std::move(views));
  decoder_(dec);
}

bool PendingReply::resolved() {
  if (!complete()) ctx_->pump();
  if (!complete()) return false;
  finish();
  return true;
}

void PendingReply::wait() {
  while (!complete()) {
    ctx_->pump_blocking(std::chrono::milliseconds(100));
  }
  finish();
}

}  // namespace pardis::core
