// Communication threads — the paper's §6 proposal, implemented.
//
// "Our most immediate experiments will deal with using communication
// threads (additional to the computing threads) as sending and
// receiving processes between parallel applications. This might
// alleviate such problems as pipeline congestion..."
//
// A CommSender owns one helper thread with its own virtual clock.
// Computing threads enqueue outgoing RSRs instead of pushing them into
// the transport themselves; the helper performs the sends, so the
// *transfer* time is charged to the communication thread while the
// computing thread continues immediately. A message leaves no earlier
// than it was handed over: the helper's clock merges the enqueue
// timestamp before charging the transfer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "sim/clock.hpp"
#include "transport/transport.hpp"

namespace pardis::core {

class CommSender {
 public:
  /// `transport` must outlive the sender. `host_model` names the host
  /// the communication thread runs on (its NIC side).
  CommSender(transport::Transport& transport, std::string host_model);
  ~CommSender();

  CommSender(const CommSender&) = delete;
  CommSender& operator=(const CommSender&) = delete;

  /// Hands one outgoing RSR to the communication thread and returns
  /// immediately (the calling computing thread is not charged for the
  /// transfer).
  void enqueue(const transport::EndpointAddr& dst, transport::HandlerId handler,
               ByteBuffer payload);

  /// Blocks (real time) until everything enqueued so far was sent.
  void flush();

  /// One failed asynchronous send. The computing thread already moved
  /// on when the failure surfaced, so it is recorded here and drained
  /// by the owning client context on its next pump, which then fails
  /// every pending invocation bound to the unreachable peer.
  struct SendFailure {
    transport::EndpointAddr dst;
    std::string message;
  };

  /// Drains the recorded send failures (a relaxed flag keeps the
  /// nothing-failed path lock-free).
  std::vector<SendFailure> take_failures();

  /// The communication thread's virtual clock (diagnostics).
  double sim_time() const;

 private:
  struct Item {
    transport::EndpointAddr dst;
    transport::HandlerId handler;
    ByteBuffer payload;
    double issue_time;
  };

  void run();

  transport::Transport* transport_;
  std::string host_model_;
  mutable Mutex mutex_{"core.comm_sender"};
  std::condition_variable_any cv_;
  std::deque<Item> queue_ PARDIS_GUARDED_BY(mutex_);
  std::vector<SendFailure> failures_ PARDIS_GUARDED_BY(mutex_);
  std::atomic<bool> has_failures_{false};
  bool stopping_ PARDIS_GUARDED_BY(mutex_) = false;
  std::size_t in_flight_ PARDIS_GUARDED_BY(mutex_) = 0;
  sim::SimClock clock_;
  std::thread thread_;
};

}  // namespace pardis::core
