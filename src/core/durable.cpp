#include "core/durable.hpp"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core::durable {

namespace {

/// 0 = follow the environment; else set_replay_window override.
std::atomic<ULong> g_window_override{0};

ULong env_window() {
  static const ULong cached = [] {
    if (const char* v = std::getenv("PARDIS_WAL_REPLAY_WINDOW")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) return static_cast<ULong>(n);
    }
    return ULong{1024};
  }();
  return cached;
}

/// Path components come from user-chosen object names and host model
/// labels; anything outside [A-Za-z0-9._-] becomes '_' so one flat
/// directory holds every log.
std::string sanitize(const std::string& s) {
  std::string out = s.empty() ? "_" : s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

ULong replay_window() noexcept {
  const ULong o = g_window_override.load(std::memory_order_relaxed);
  return o != 0 ? o : env_window();
}

void set_replay_window(ULong window) noexcept {
  g_window_override.store(window, std::memory_order_relaxed);
}

std::string wal_path(const std::string& name, const std::string& host, int rank) {
  return wal::dir() + "/" + sanitize(name) + "@" + sanitize(host) + ".r" +
         std::to_string(rank) + ".wal";
}

ByteBuffer encode_mutation(const RequestHeader& header,
                           const std::vector<ServerInvocation::Body>& bodies,
                           const std::vector<ServerInvocation::BuiltReply>& replies) {
  ByteBuffer payload;
  CdrWriter w(payload);
  header.marshal(w);
  w.write_ulong(static_cast<ULong>(bodies.size()));
  for (const auto& b : bodies) {
    w.write_long(b.client_rank);
    w.write_bool(b.little);
    b.reply_to.marshal(w);
    w.write_ulonglong(b.request_id.value);
    w.write_ulong(static_cast<ULong>(b.bytes.size()));
    w.write_bytes(b.bytes.view());
  }
  w.write_ulong(static_cast<ULong>(replies.size()));
  for (const auto& r : replies) {
    w.write_long(r.client_rank);
    r.to.marshal(w);
    w.write_ulong(static_cast<ULong>(r.frame.size()));
    w.write_bytes(r.frame.view());
  }
  return payload;
}

MutationRecord decode_mutation(std::span<const Octet> payload) {
  CdrReader r(payload);
  MutationRecord rec;
  rec.header = RequestHeader::unmarshal(r);
  const ULong nbodies = r.read_ulong();
  rec.bodies.reserve(nbodies);
  for (ULong i = 0; i < nbodies; ++i) {
    ServerInvocation::Body b;
    b.client_rank = r.read_long();
    b.little = r.read_bool();
    b.reply_to = transport::EndpointAddr::unmarshal(r);
    b.request_id.value = r.read_ulonglong();
    const ULong len = r.read_ulong();
    b.bytes = ByteBuffer::from(r.read_bytes(len));
    rec.bodies.push_back(std::move(b));
  }
  const ULong nreplies = r.read_ulong();
  rec.replies.reserve(nreplies);
  for (ULong i = 0; i < nreplies; ++i) {
    ServerInvocation::BuiltReply br;
    br.client_rank = r.read_long();
    br.to = transport::EndpointAddr::unmarshal(r);
    const ULong len = r.read_ulong();
    br.frame = ByteBuffer::from(r.read_bytes(len));
    rec.replies.push_back(std::move(br));
  }
  return rec;
}

ByteBuffer encode_snapshot(const SnapshotRecord& snap) {
  ByteBuffer payload;
  CdrWriter w(payload);
  w.write_ulong(static_cast<ULong>(snap.state.size()));
  w.write_bytes(snap.state.view());
  w.write_ulong(static_cast<ULong>(snap.binding_next.size()));
  for (const auto& [binding, next] : snap.binding_next) {
    w.write_ulonglong(binding);
    w.write_ulong(next);
  }
  w.write_ulong(static_cast<ULong>(snap.committed.size()));
  for (const auto& [key, lsn] : snap.committed) {
    w.write_ulonglong(key.first);
    w.write_ulong(key.second);
    w.write_ulonglong(lsn);
  }
  return payload;
}

SnapshotRecord decode_snapshot(std::span<const Octet> payload) {
  CdrReader r(payload);
  SnapshotRecord snap;
  const ULong state_len = r.read_ulong();
  snap.state = ByteBuffer::from(r.read_bytes(state_len));
  const ULong nbindings = r.read_ulong();
  for (ULong i = 0; i < nbindings; ++i) {
    const ULongLong binding = r.read_ulonglong();
    snap.binding_next[binding] = r.read_ulong();
  }
  const ULong ncommitted = r.read_ulong();
  for (ULong i = 0; i < ncommitted; ++i) {
    const ULongLong binding = r.read_ulonglong();
    const ULong seq = r.read_ulong();
    snap.committed[Key{binding, seq}] = r.read_ulonglong();
  }
  return snap;
}

std::size_t prune(DurableObj& dur) {
  const ULong window = replay_window();
  std::size_t pruned = 0;
  for (auto it = dur.committed.begin(); it != dur.committed.end();) {
    const ULong next = dur.binding_next[it->first.first];
    if (next > window && it->first.second < next - window) {
      it = dur.committed.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  if (pruned > 0 && obs::enabled()) {
    static obs::Counter& counter = obs::metrics().counter("wal.replay_pruned");
    counter.add(pruned);
  }
  return pruned;
}

ByteBuffer make_xfer_request(ULongLong target_object_id,
                             const transport::EndpointAddr& reply_to) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(wal::kXferRequest);
  w.write_ulonglong(target_object_id);
  reply_to.marshal(w);
  return frame;
}

ByteBuffer make_xfer_snapshot(const ByteBuffer& state,
                              const std::map<ULongLong, ULong>& binding_next,
                              const std::vector<ByteBuffer>& tail_records) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(wal::kXferSnapshot);
  w.write_ulong(static_cast<ULong>(state.size()));
  w.write_bytes(state.view());
  w.write_ulong(static_cast<ULong>(binding_next.size()));
  for (const auto& [binding, next] : binding_next) {
    w.write_ulonglong(binding);
    w.write_ulong(next);
  }
  w.write_ulong(static_cast<ULong>(tail_records.size()));
  for (const auto& rec : tail_records) {
    w.write_ulong(static_cast<ULong>(rec.size()));
    w.write_bytes(rec.view());
  }
  return frame;
}

XferSnapshot decode_xfer_snapshot(CdrReader& r) {
  XferSnapshot xs;
  const ULong state_len = r.read_ulong();
  xs.state = ByteBuffer::from(r.read_bytes(state_len));
  const ULong nbindings = r.read_ulong();
  for (ULong i = 0; i < nbindings; ++i) {
    const ULongLong binding = r.read_ulonglong();
    xs.binding_next[binding] = r.read_ulong();
  }
  const ULong nrecords = r.read_ulong();
  xs.tail_records.reserve(nrecords);
  for (ULong i = 0; i < nrecords; ++i) {
    const ULong len = r.read_ulong();
    xs.tail_records.push_back(ByteBuffer::from(r.read_bytes(len)));
  }
  return xs;
}

ByteBuffer make_xfer_append(ULongLong target_object_id,
                            std::span<const Octet> record_payload) {
  ByteBuffer frame;
  CdrWriter w(frame);
  w.write_octet(wal::kXferAppend);
  w.write_ulonglong(target_object_id);
  w.write_ulong(static_cast<ULong>(record_payload.size()));
  w.write_bytes(record_payload);
  return frame;
}

}  // namespace pardis::core::durable
