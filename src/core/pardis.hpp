// Umbrella header: everything a PARDIS metaapplication (or generated
// stub code) needs.
#pragma once

#include "core/client.hpp"
#include "core/future.hpp"
#include "core/ior.hpp"
#include "core/object_ref.hpp"
#include "core/orb.hpp"
#include "core/pending_reply.hpp"
#include "core/poa.hpp"
#include "core/protocol.hpp"
#include "core/registry.hpp"
#include "core/servant.hpp"
#include "dist/dsequence.hpp"
#include "rts/collectives.hpp"
#include "rts/domain.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/transport.hpp"

namespace pardis {

/// Managed pointer to a distributed sequence — the `_var` mapping of a
/// dsequence typedef (paper: "managed pointers ... implemented as
/// handles to the data; this makes distributed future instantiation
/// computationally inexpensive").
template <typename T>
using DSeqVar = std::shared_ptr<dist::DSequence<T>>;

}  // namespace pardis
