// Server-side dispatch: ServantBase and ServerInvocation.
//
// The IDL compiler generates, for every interface, a skeleton class
// `POA_<interface>` deriving from ServantBase whose `_dispatch`
// unmarshals arguments through a ServerInvocation, calls the user's
// virtual method, and marshals the reply. A ServerInvocation exists
// per server computing thread per dispatched request; for SPMD objects
// all threads dispatch the same request collectively.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/object_ref.hpp"
#include "core/protocol.hpp"
#include "dist/dsequence.hpp"
#include "rts/communicator.hpp"

namespace pardis::core {

class ServerInvocation;

/// Base of every generated skeleton.
class ServantBase {
 public:
  virtual ~ServantBase() = default;

  /// IDL repository id of the most-derived interface.
  virtual const char* _type_id() const = 0;

  /// Generated: unmarshal, call the user method, marshal the reply.
  virtual void _dispatch(ServerInvocation& inv) = 0;

  // --- pardis_wal durability -------------------------------------------

  /// Opt-in to WAL-backed durable state. A durable servant's committed
  /// mutations survive crashes (replayed from the log) and replicate
  /// to group siblings; it must also implement the state pair below.
  /// Effective only when wal::enabled() — with PARDIS_WAL off a
  /// durable servant behaves exactly like any other.
  virtual bool _durable() const { return false; }

  /// Serializes this rank's full servant state (snapshot records and
  /// replica join transfers). Pair with _restore_state: restoring a
  /// snapshot into a fresh servant must reproduce the snapshotted one.
  virtual void _snapshot_state(CdrWriter& w) const { (void)w; }

  /// Replaces this rank's state with a snapshot taken by
  /// _snapshot_state (possibly on a sibling replica).
  virtual void _restore_state(CdrReader& r) { (void)r; }
};

/// One assembled request on one server computing thread.
///
/// Unmarshal methods must be called in IDL argument order; reply
/// methods in reply order (return value first, then out/inout
/// arguments) — exactly what generated skeletons do.
class ServerInvocation {
 public:
  struct Body {
    int client_rank = 0;
    bool little = kNativeLittleEndian;
    ByteBuffer bytes;
    transport::EndpointAddr reply_to;
    RequestId request_id;
  };

  /// `comm` is the server domain communicator (nullptr for standalone
  /// single-object servers), `send` fires one reply RSR.
  using ReplySender = std::function<void(const transport::EndpointAddr&, ByteBuffer)>;

  ServerInvocation(const ObjectRef& ref, rts::Communicator* comm, int server_rank,
                   int server_size, const RequestHeader& header, std::vector<Body> bodies,
                   ReplySender send);

  const std::string& operation() const noexcept { return header_.operation; }
  bool oneway() const noexcept { return header_.oneway(); }
  int client_size() const noexcept { return header_.client_size; }
  int server_rank() const noexcept { return server_rank_; }
  int server_size() const noexcept { return server_size_; }
  const ObjectRef& ref() const noexcept { return *ref_; }

  /// Server domain communicator; throws for standalone servers (single
  /// objects never carry distributed arguments — paper §3.1).
  rts::Communicator& comm() const;

  /// Observability wiring (set by the POA): the dispatch span replies
  /// are sent under; echoed in traced reply headers.
  void set_trace(const obs::TraceContext& trace) noexcept { trace_ = trace; }

  // --- request unmarshaling (IDL argument order) ------------------------

  /// Non-distributed in/inout argument: every client thread marshaled
  /// it; rank 0's copy is authoritative (the others are decoded to
  /// advance their cursors).
  template <typename T>
  T in_value() {
    std::optional<T> result;
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      T v;
      CdrTraits<T>::unmarshal(readers_[i], v);
      if (bodies_[i].client_rank == 0) result = std::move(v);
    }
    if (!result) throw MarshalError("in_value: no client rank 0 body");
    return std::move(*result);
  }

  /// Distributed in argument: assembles this thread's local part from
  /// the pieces each client thread sent it. The server-side
  /// distribution comes from the spec registered for this operation.
  template <typename T>
  dist::DSequence<T> in_dseq() {
    const DistSpec spec = ref_->spec_for(operation(), next_dseq_index_++);
    std::optional<dist::DSequence<T>> result;
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      CdrReader& r = readers_[i];
      const ULongLong n = r.read_ulonglong();
      const dist::Distribution d_client = dist::Distribution::unmarshal(r);
      if (!result) {
        const dist::Distribution d_server = spec.instantiate(n, server_size_);
        result.emplace(comm(), n, d_server);
        plan_cache_.emplace_back(d_client, result->distribution());
      }
      const dist::TransferPlan& plan = plan_cache_.back();
      for (const dist::TransferPiece& piece : plan.pieces()) {
        if (piece.src_rank != bodies_[i].client_rank || piece.dst_rank != server_rank_)
          continue;
        result->decode_range(piece.span, r);
      }
    }
    if (!result) throw MarshalError("in_dseq: no request bodies");
    return std::move(*result);
  }

  /// Distributed out argument, step 1: creates the result container
  /// the user method fills. Length and client-side distribution come
  /// from the client's expectation; the server-side distribution from
  /// the registered spec. Call `out_dseq` with the filled container in
  /// the reply phase.
  template <typename T>
  dist::DSequence<T> out_dseq_make() {
    const DistSpec spec = ref_->spec_for(operation(), next_dseq_index_++);
    std::optional<dist::Distribution> expected;
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      dist::Distribution d = dist::Distribution::unmarshal(readers_[i]);
      if (bodies_[i].client_rank == 0) expected = std::move(d);
    }
    if (!expected) throw MarshalError("out_dseq_make: no client rank 0 body");
    const std::size_t n = expected->global_size();
    expected_out_.push_back(std::move(*expected));
    return dist::DSequence<T>(comm(), n, spec.instantiate(n, server_size_));
  }

  // --- reply marshaling (return value first, then out/inout args) -------

  /// Non-distributed result/out argument: carried only by server rank
  /// 0 (to every client thread).
  template <typename T>
  void out_value(const T& v) {
    if (server_rank_ != 0) return;
    for (auto& w : reply_writers_) CdrTraits<T>::marshal(w, v);
  }

  /// Distributed out argument: each client thread's reply gets the
  /// pieces moving from this server thread to it, with explicit global
  /// spans (the client does not know the server-side distribution).
  template <typename T>
  void out_dseq(const dist::DSequence<T>& result) {
    if (next_expected_out_ >= expected_out_.size())
      throw BadInvOrder("out_dseq: no matching out_dseq_make");
    const dist::Distribution& d_client = expected_out_[next_expected_out_++];
    if (d_client.global_size() != result.size())
      throw BadParam("out_dseq: result length differs from the client's expectation");
    dist::TransferPlan plan(result.distribution(), d_client);
    std::size_t my_elements = 0;
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      CdrWriter& w = reply_writers_[i];
      std::vector<dist::TransferPiece> mine;
      for (const dist::TransferPiece& piece : plan.pieces())
        if (piece.src_rank == server_rank_ && piece.dst_rank == bodies_[i].client_rank)
          mine.push_back(piece);
      w.write_ulong(static_cast<ULong>(mine.size()));
      for (const dist::TransferPiece& piece : mine) {
        w.write_ulonglong(piece.span.begin);
        w.write_ulonglong(piece.span.end);
        result.encode_range(piece.span, w);
        my_elements += piece.span.size();
      }
    }
    if (obs::enabled()) {
      static obs::Counter& transferred = obs::metrics().counter("dist.transfer_elements");
      transferred.add(my_elements);
    }
    sent_dist_out_ = true;
  }

  // --- completion (called by the POA) ------------------------------------

  /// One fully framed success reply, built but not yet sent. The POA's
  /// durable commit path materializes these first, logs them inside
  /// the mutation record (so a client retry can be answered with the
  /// exact original frames), and only then lets them leave.
  struct BuiltReply {
    int client_rank = 0;
    transport::EndpointAddr to;
    ByteBuffer frame;
  };

  /// Frames the success replies without sending them, applying the
  /// same suppression rules as send_replies (empty for oneway, and for
  /// non-zero server ranks without distributed out arguments).
  std::vector<BuiltReply> build_replies();

  /// Sends frames produced by build_replies.
  void send_built(std::vector<BuiltReply> replies);

  /// Sends the success replies built above. Replies from non-zero
  /// server ranks are suppressed when the operation has no distributed
  /// out arguments (mirrored by the client's expected-reply count).
  void send_replies();

  /// Reports a dispatch failure to every participating client thread.
  void send_error(const SystemException& e);

  /// The assembled request bodies (durable commit path: logged inside
  /// the mutation record).
  const std::vector<Body>& bodies() const noexcept { return bodies_; }

 private:
  ByteBuffer frame_reply(std::size_t body_index, ReplyStatus status, ErrorCode code,
                         const std::string& message, ByteBuffer body);
  void send_reply_to(std::size_t body_index, ReplyStatus status, ErrorCode code,
                     const std::string& message, ByteBuffer body);

  const ObjectRef* ref_;
  rts::Communicator* comm_;
  int server_rank_;
  int server_size_;
  RequestHeader header_;
  std::vector<Body> bodies_;
  std::vector<CdrReader> readers_;
  std::vector<ByteBuffer> reply_bodies_;
  std::vector<CdrWriter> reply_writers_;
  ReplySender send_;
  std::size_t next_dseq_index_ = 0;
  std::vector<dist::Distribution> expected_out_;
  std::size_t next_expected_out_ = 0;
  std::vector<dist::TransferPlan> plan_cache_;
  bool sent_dist_out_ = false;
  obs::TraceContext trace_;
};

}  // namespace pardis::core
