// Object references — the PARDIS analogue of a CORBA IOR.
//
// A reference to an SPMD object carries the endpoint address of *every*
// computing thread of its server, so the ORB can deliver a request to
// all of them and move distributed arguments directly between the
// corresponding threads of client and server (paper §1, §2.1). It also
// carries the server-side distribution specs the implementation
// registered for its distributed `in` arguments ("the server can set
// the distribution of any of the 'in' arguments to its operations
// prior to object registration", §3.2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/cdr.hpp"
#include "common/ids.hpp"
#include "dist/distribution.hpp"
#include "transport/endpoint.hpp"

namespace pardis::core {

/// A distribution *template* (paper §3.2): the shape of a distribution
/// independent of sequence length, instantiated per call.
struct DistSpec {
  dist::DistKind kind = dist::DistKind::kBlock;
  std::size_t block_size = 1;          ///< cyclic
  int root = 0;                        ///< concentrated
  std::vector<double> proportions;     ///< irregular

  static DistSpec block() { return {}; }
  static DistSpec cyclic(std::size_t bs) {
    DistSpec s;
    s.kind = dist::DistKind::kCyclic;
    s.block_size = bs;
    return s;
  }
  static DistSpec irregular(std::vector<double> props) {
    DistSpec s;
    s.kind = dist::DistKind::kIrregular;
    s.proportions = std::move(props);
    return s;
  }
  static DistSpec concentrated(int root) {
    DistSpec s;
    s.kind = dist::DistKind::kConcentrated;
    s.root = root;
    return s;
  }

  dist::Distribution instantiate(std::size_t n, int nranks) const;

  bool operator==(const DistSpec&) const = default;

  void marshal(CdrWriter& w) const;
  static DistSpec unmarshal(CdrReader& r);
};

/// Reference to a PARDIS object (single or SPMD).
struct ObjectRef {
  std::string type_id;   ///< IDL repository id, e.g. "IDL:direct:1.0"
  std::string name;      ///< name registered with the object repository
  std::string host;      ///< modeled host the server runs on
  ObjectId object_id;
  bool spmd = false;
  /// One endpoint per server computing thread (single objects: exactly
  /// one — the owning thread's endpoint).
  std::vector<transport::EndpointAddr> thread_eps;
  /// Registered server-side distribution specs: operation -> one spec
  /// per distributed `in`/`out` argument (by dseq-argument position).
  std::map<std::string, std::vector<DistSpec>> arg_specs;

  int server_size() const noexcept { return static_cast<int>(thread_eps.size()); }
  bool valid() const noexcept { return object_id.valid() && !thread_eps.empty(); }

  /// Stable per-server identity string: the rank-0 endpoint address.
  /// Keys the flow in-flight window and the pool balancer's health
  /// map (empty for a reference with no endpoints).
  std::string primary_key() const {
    return thread_eps.empty() ? std::string() : thread_eps.front().to_string();
  }

  /// Spec for the i-th dseq argument of `operation` (BLOCK when not
  /// registered).
  DistSpec spec_for(const std::string& operation, std::size_t dseq_index) const;

  /// pardis_wal: whether this object's state is WAL-backed (the POA
  /// set the marker at activation). Travels as an arg_specs
  /// pseudo-operation (core::kDurableMarkerOp) because ObjectRef has
  /// no trailing-field extension point — a trailer would corrupt
  /// ReplicaGroup member-sequence parsing. A WAL-off ref never carries
  /// it, so the marshaled bytes stay identical to the pre-WAL format.
  bool durable() const;
  void set_durable();

  bool operator==(const ObjectRef&) const = default;

  void marshal(CdrWriter& w) const;
  static ObjectRef unmarshal(CdrReader& r);
};

}  // namespace pardis::core

namespace pardis {

template <>
struct CdrTraits<core::DistSpec> {
  static void marshal(CdrWriter& w, const core::DistSpec& s) { s.marshal(w); }
  static void unmarshal(CdrReader& r, core::DistSpec& s) { s = core::DistSpec::unmarshal(r); }
};

template <>
struct CdrTraits<core::ObjectRef> {
  static void marshal(CdrWriter& w, const core::ObjectRef& ref) { ref.marshal(w); }
  static void unmarshal(CdrReader& r, core::ObjectRef& ref) {
    ref = core::ObjectRef::unmarshal(r);
  }
};

}  // namespace pardis
