// The PARDIS Object Request Broker.
//
// "An entity called the Object Request Broker (ORB) delivers requests
// from clients to servers, and also identifies, locates and activates
// objects" (paper §2.1). One Orb instance serves a whole process; the
// per-computing-thread machinery lives in ClientCtx (client side) and
// Poa (server side).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/object_ref.hpp"
#include "core/registry.hpp"
#include "transport/transport.hpp"

namespace pardis::core {

class ServantBase;

/// Process-wide ORB tunables.
struct OrbConfig {
  /// How long resolve() polls the registry for an activation to
  /// complete before throwing ObjectNotExist.
  std::chrono::milliseconds resolve_timeout{5000};

  // --- pardis_flow: overload protection and backpressure ---------------

  /// POA admission watermarks (per server thread, counted over the
  /// request-assembly queue). Past `poa_high_watermark`, new requests
  /// are shed with kOverload until the queue drains to
  /// `poa_low_watermark`; 0 disables admission control entirely. A low
  /// watermark of 0 with a nonzero high defaults to high/2.
  std::size_t poa_high_watermark = 0;
  std::size_t poa_low_watermark = 0;

  /// Retry-after hint carried on kOverload replies (kReplyFlagRetryAfter).
  std::chrono::milliseconds overload_retry_after{50};

  /// How long a server thread may wait for the bodies of a
  /// collectively scheduled request to finish assembling before it
  /// fails the round with CommFailure. A slice lost at a bounded
  /// queue (or a client that died mid-send) would otherwise block
  /// every rank of an SPMD server forever; the bound turns the wedge
  /// into a located failure. 0 waits without bound.
  std::chrono::milliseconds poa_assembly_stall{30000};

  /// Client-side backpressure: max outstanding non-oneway transported
  /// invocations per peer object; 0 disables the window.
  std::size_t inflight_window = 0;

  /// What a full window does to the next invoke: block (pumping
  /// replies; the SPMD-safe default — collective invocation order
  /// makes every rank block at the same call) or fail fast with
  /// OverloadError.
  enum class WindowPolicy { kBlock, kFail };
  WindowPolicy window_policy = WindowPolicy::kBlock;

  /// Kernel accept-queue depth for TcpTransport listeners; 0 keeps the
  /// transport default (PARDIS_LISTEN_BACKLOG or 64).
  int listen_backlog = 0;

  /// Defaults overridden by the environment (read once per process):
  /// PARDIS_RESOLVE_TIMEOUT_MS, PARDIS_POA_HIGH_WATERMARK,
  /// PARDIS_POA_LOW_WATERMARK, PARDIS_OVERLOAD_RETRY_AFTER_MS,
  /// PARDIS_POA_ASSEMBLY_STALL_MS, PARDIS_INFLIGHT_WINDOW,
  /// PARDIS_WINDOW_POLICY (block|fail), PARDIS_LISTEN_BACKLOG.
  static OrbConfig from_env();
};

class Orb {
 public:
  /// `transport` and `registry` are unowned and must outlive the Orb.
  Orb(transport::Transport& transport, ObjectRegistry& registry,
      OrbConfig config = OrbConfig::from_env())
      : transport_(&transport), registry_(&registry), config_(config) {}

  /// Flushes any pending observability exports (trace/metrics files) so
  /// short-lived processes get their dumps even before atexit runs.
  ~Orb();

  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  transport::Transport& transport() noexcept { return *transport_; }
  ObjectRegistry& registry() noexcept { return *registry_; }

  /// Hook invoked when a bind target is not registered; returns true
  /// when an activation was started (the Orb then re-polls the
  /// registry). Installed by the repo module's activation agent.
  using Activator = std::function<bool(const std::string& name, const std::string& host)>;
  void set_activator(Activator activator) { activator_ = std::move(activator); }

  const OrbConfig& config() const noexcept { return config_; }

  /// Locates (and if needed activates) the named object. Throws
  /// ObjectNotExist after `timeout` of activation polling; the default
  /// (-1 sentinel) uses config().resolve_timeout.
  ObjectRef resolve(const std::string& name, const std::string& host,
                    std::chrono::milliseconds timeout = std::chrono::milliseconds(-1));

  // --- collocation support ---------------------------------------------

  /// Records the in-process servants implementing `ref` (index =
  /// server thread rank; `group` identifies the server domain's
  /// communicator group, nullptr for standalone servers).
  void register_servants(const ObjectRef& ref, std::vector<ServantBase*> per_rank,
                         const void* group);
  void unregister_servants(const ObjectId& id);

  struct CollocatedEntry {
    std::vector<ServantBase*> servants;
    const void* group = nullptr;
    bool spmd = false;
  };

  /// The in-process servants for `id`, or nullptr when the object is
  /// remote (the common case).
  const CollocatedEntry* collocated(const ObjectId& id) const;

 private:
  transport::Transport* transport_;
  ObjectRegistry* registry_;
  OrbConfig config_;
  Activator activator_;
  mutable Mutex mutex_{"core.orb_servants"};
  std::map<ObjectId, CollocatedEntry> servants_ PARDIS_GUARDED_BY(mutex_);
};

}  // namespace pardis::core
