#include "core/object_ref.hpp"

#include "common/error.hpp"
#include "core/wire.hpp"

namespace pardis::core {

dist::Distribution DistSpec::instantiate(std::size_t n, int nranks) const {
  switch (kind) {
    case dist::DistKind::kBlock:
      return dist::Distribution::block(n, nranks);
    case dist::DistKind::kCyclic:
      return dist::Distribution::cyclic(n, nranks, block_size);
    case dist::DistKind::kIrregular: {
      // A template registered for fewer/more ranks than the actual
      // domain is padded/truncated; equal weights fill the gap.
      std::vector<double> props = proportions;
      props.resize(static_cast<std::size_t>(nranks),
                   props.empty() ? 1.0 : props.back());
      return dist::Distribution::irregular(n, props);
    }
    case dist::DistKind::kConcentrated:
      return dist::Distribution::concentrated(n, nranks, root < nranks ? root : 0);
  }
  throw InternalError("DistSpec: bad kind");
}

void DistSpec::marshal(CdrWriter& w) const {
  w.write_octet(static_cast<Octet>(kind));
  w.write_ulonglong(block_size);
  w.write_long(root);
  w.write_prim_seq<double>(proportions);
}

DistSpec DistSpec::unmarshal(CdrReader& r) {
  DistSpec s;
  const Octet kind = r.read_octet();
  if (kind > static_cast<Octet>(dist::DistKind::kConcentrated))
    throw MarshalError("DistSpec: bad kind octet");
  s.kind = static_cast<dist::DistKind>(kind);
  s.block_size = r.read_ulonglong();
  s.root = r.read_long();
  s.proportions = r.read_prim_seq<double>();
  return s;
}

DistSpec ObjectRef::spec_for(const std::string& operation, std::size_t dseq_index) const {
  auto it = arg_specs.find(operation);
  if (it == arg_specs.end() || dseq_index >= it->second.size()) return DistSpec::block();
  return it->second[dseq_index];
}

bool ObjectRef::durable() const { return arg_specs.count(kDurableMarkerOp) != 0; }

void ObjectRef::set_durable() { arg_specs.emplace(kDurableMarkerOp, std::vector<DistSpec>{}); }

void ObjectRef::marshal(CdrWriter& w) const {
  w.write_string(type_id);
  w.write_string(name);
  w.write_string(host);
  w.write_ulonglong(object_id.value);
  w.write_bool(spmd);
  w.write_ulong(static_cast<ULong>(thread_eps.size()));
  for (const auto& ep : thread_eps) ep.marshal(w);
  w.write_ulong(static_cast<ULong>(arg_specs.size()));
  for (const auto& [op, specs] : arg_specs) {
    w.write_string(op);
    w.write_ulong(static_cast<ULong>(specs.size()));
    for (const auto& s : specs) s.marshal(w);
  }
}

ObjectRef ObjectRef::unmarshal(CdrReader& r) {
  ObjectRef ref;
  ref.type_id = r.read_string();
  ref.name = r.read_string();
  ref.host = r.read_string();
  ref.object_id.value = r.read_ulonglong();
  ref.spmd = r.read_bool();
  const ULong neps = r.read_ulong();
  ref.thread_eps.reserve(neps);
  for (ULong i = 0; i < neps; ++i) ref.thread_eps.push_back(transport::EndpointAddr::unmarshal(r));
  const ULong nops = r.read_ulong();
  for (ULong i = 0; i < nops; ++i) {
    std::string op = r.read_string();
    const ULong nspecs = r.read_ulong();
    std::vector<DistSpec> specs;
    specs.reserve(nspecs);
    for (ULong j = 0; j < nspecs; ++j) specs.push_back(DistSpec::unmarshal(r));
    ref.arg_specs.emplace(std::move(op), std::move(specs));
  }
  return ref;
}

}  // namespace pardis::core
