#include "core/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pardis::core {

void ReplicaGroup::marshal(CdrWriter& w) const {
  w.write_string(name);
  w.write_ulonglong(epoch);
  w.write_ulong(static_cast<ULong>(members.size()));
  for (const auto& m : members) m.marshal(w);
}

ReplicaGroup ReplicaGroup::unmarshal(CdrReader& r) {
  ReplicaGroup g;
  g.name = r.read_string();
  g.epoch = r.read_ulonglong();
  const ULong n = r.read_ulong();
  g.members.reserve(n);
  for (ULong i = 0; i < n; ++i) g.members.push_back(ObjectRef::unmarshal(r));
  return g;
}

// --- graceful defaults for registries without group support ---------------

ULongLong ObjectRegistry::register_replica(const ObjectRef& ref) {
  register_object(ref);
  return 0;
}

std::optional<ReplicaGroup> ObjectRegistry::lookup_group(const std::string& name,
                                                         const std::string& host) {
  auto found = lookup(name, host);
  if (!found) return std::nullopt;
  ReplicaGroup g;
  g.name = name;
  g.members.push_back(std::move(*found));
  return g;
}

void ObjectRegistry::unregister_replica(const std::string& name, const ObjectId&) {
  unregister(name, "");
}

// --- InProcessRegistry ----------------------------------------------------

void InProcessRegistry::join_group_locked(ReplicaGroup& group, const ObjectRef& ref) {
  auto same_id = std::find_if(group.members.begin(), group.members.end(),
                              [&](const ObjectRef& m) { return m.object_id == ref.object_id; });
  if (same_id != group.members.end()) {
    *same_id = ref;
  } else {
    // A restarted server re-registers with a fresh object id but the
    // same host: replace its dead predecessor instead of accumulating
    // ghosts.
    auto same_host = std::find_if(group.members.begin(), group.members.end(),
                                  [&](const ObjectRef& m) { return m.host == ref.host; });
    if (same_host != group.members.end() && !ref.host.empty())
      *same_host = ref;
    else
      group.members.push_back(ref);
  }
  ++group.epoch;
}

void InProcessRegistry::register_object(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("register_object: invalid reference");
  if (ref.name.empty()) throw BadParam("register_object: object has no name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(ref.name);
  if (git != groups_.end()) {
    // The name is a live replica group: a concurrent single-binding
    // re-registration joins it (and bumps the epoch) rather than
    // last-writer-wins dropping the earlier members.
    join_group_locked(git->second, ref);
    return;
  }
  objects_[{ref.name, ref.host}] = ref;
}

std::optional<ObjectRef> InProcessRegistry::lookup(const std::string& name,
                                                   const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!host.empty()) {
    auto it = objects_.find({name, host});
    if (it != objects_.end()) return it->second;
  } else {
    for (const auto& [key, ref] : objects_)
      if (key.first == name) return ref;
  }
  // Group fallback: plain bind() against a replicated name resolves to
  // the first matching member, so non-pool clients keep working.
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    for (const auto& m : git->second.members)
      if (host.empty() || m.host == host) return m;
  }
  return std::nullopt;
}

void InProcessRegistry::unregister(const std::string& name, const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!host.empty()) {
    objects_.erase({name, host});
  } else {
    for (auto it = objects_.begin(); it != objects_.end();)
      it = it->first.first == name ? objects_.erase(it) : std::next(it);
  }
  auto git = groups_.find(name);
  if (git == groups_.end()) return;
  auto& members = git->second.members;
  const auto before = members.size();
  members.erase(std::remove_if(members.begin(), members.end(),
                               [&](const ObjectRef& m) {
                                 return host.empty() || m.host == host;
                               }),
                members.end());
  if (members.size() != before) ++git->second.epoch;
  if (members.empty()) groups_.erase(git);
}

std::vector<std::string> InProcessRegistry::list() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [key, ref] : objects_) names.push_back(key.first + "@" + key.second);
  for (const auto& [name, group] : groups_)
    for (const auto& m : group.members) names.push_back(name + "@" + m.host);
  return names;
}

ULongLong InProcessRegistry::register_replica(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("register_replica: invalid reference");
  if (ref.name.empty()) throw BadParam("register_replica: object has no name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(ref.name);
  if (git == groups_.end()) {
    ReplicaGroup g;
    g.name = ref.name;
    // A single binding registered earlier under this name seeds the
    // group, so mixing register_object and register_replica on one
    // name never drops a server.
    for (auto it = objects_.begin(); it != objects_.end();) {
      if (it->first.first == ref.name) {
        g.members.push_back(it->second);
        it = objects_.erase(it);
      } else {
        ++it;
      }
    }
    git = groups_.emplace(ref.name, std::move(g)).first;
  }
  join_group_locked(git->second, ref);
  return git->second.epoch;
}

std::optional<ReplicaGroup> InProcessRegistry::lookup_group(const std::string& name,
                                                            const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    if (host.empty()) return git->second;
    ReplicaGroup g;
    g.name = name;
    g.epoch = git->second.epoch;
    for (const auto& m : git->second.members)
      if (m.host == host) g.members.push_back(m);
    if (g.members.empty()) return std::nullopt;
    return g;
  }
  // Synthesize a group of singles so pool clients can balance over
  // servers that registered through plain register_object.
  ReplicaGroup g;
  g.name = name;
  for (const auto& [key, ref] : objects_)
    if (key.first == name && (host.empty() || key.second == host))
      g.members.push_back(ref);
  if (g.members.empty()) return std::nullopt;
  return g;
}

void InProcessRegistry::unregister_replica(const std::string& name, const ObjectId& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    auto& members = git->second.members;
    const auto before = members.size();
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const ObjectRef& m) { return m.object_id == id; }),
                  members.end());
    if (members.size() != before) ++git->second.epoch;
    if (members.empty()) groups_.erase(git);
  }
  // A matching single binding (registered before the group formed, or
  // through the degraded default) is withdrawn too.
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.first == name && it->second.object_id == id)
      it = objects_.erase(it);
    else
      ++it;
  }
}

}  // namespace pardis::core
