#include "core/registry.hpp"

#include "common/error.hpp"

namespace pardis::core {

void InProcessRegistry::register_object(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("register_object: invalid reference");
  if (ref.name.empty()) throw BadParam("register_object: object has no name");
  std::lock_guard<std::mutex> lock(mutex_);
  objects_[{ref.name, ref.host}] = ref;
}

std::optional<ObjectRef> InProcessRegistry::lookup(const std::string& name,
                                                   const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!host.empty()) {
    auto it = objects_.find({name, host});
    if (it != objects_.end()) return it->second;
    return std::nullopt;
  }
  for (const auto& [key, ref] : objects_)
    if (key.first == name) return ref;
  return std::nullopt;
}

void InProcessRegistry::unregister(const std::string& name, const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!host.empty()) {
    objects_.erase({name, host});
    return;
  }
  for (auto it = objects_.begin(); it != objects_.end();)
    it = it->first.first == name ? objects_.erase(it) : std::next(it);
}

std::vector<std::string> InProcessRegistry::list() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [key, ref] : objects_) names.push_back(key.first + "@" + key.second);
  return names;
}

}  // namespace pardis::core
