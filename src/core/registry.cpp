#include "core/registry.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace pardis::core {

void ReplicaGroup::marshal(CdrWriter& w) const {
  w.write_string(name);
  w.write_ulonglong(epoch);
  w.write_ulong(static_cast<ULong>(members.size()));
  for (const auto& m : members) m.marshal(w);
}

ReplicaGroup ReplicaGroup::unmarshal(CdrReader& r) {
  ReplicaGroup g;
  g.name = r.read_string();
  g.epoch = r.read_ulonglong();
  const ULong n = r.read_ulong();
  g.members.reserve(n);
  for (ULong i = 0; i < n; ++i) g.members.push_back(ObjectRef::unmarshal(r));
  return g;
}

// --- graceful defaults for registries without group support ---------------

ULongLong ObjectRegistry::register_replica(const ObjectRef& ref) {
  register_object(ref);
  return 0;
}

std::optional<ReplicaGroup> ObjectRegistry::lookup_group(const std::string& name,
                                                         const std::string& host) {
  auto found = lookup(name, host);
  if (!found) return std::nullopt;
  ReplicaGroup g;
  g.name = name;
  g.members.push_back(std::move(*found));
  return g;
}

void ObjectRegistry::unregister_replica(const std::string& name, const ObjectId&) {
  unregister(name, "");
}

ULongLong ObjectRegistry::register_leased(const ObjectRef& ref, std::chrono::milliseconds,
                                          bool replica) {
  // Registries without lease support register permanently: the name
  // stays bound until an explicit unregister, exactly as before leases.
  if (replica) return register_replica(ref);
  register_object(ref);
  return 0;
}

bool ObjectRegistry::renew_lease(const std::string&, const ObjectId&,
                                 std::chrono::milliseconds) {
  return false;  // nothing leased here
}

void ObjectRegistry::invalidate(const std::string&) {}

// --- InProcessRegistry ----------------------------------------------------

double InProcessRegistry::now_locked() const {
  if (now_seconds_) return now_seconds_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void InProcessRegistry::set_time_source(std::function<double()> now_seconds) {
  LockGuard lock(mutex_);
  now_seconds_ = std::move(now_seconds);
}

std::size_t InProcessRegistry::gc_locked() {
  if (object_leases_.empty() && member_leases_.empty()) return 0;
  const double now = now_locked();
  std::size_t dropped = 0;
  for (auto it = object_leases_.begin(); it != object_leases_.end();) {
    if (it->second <= now) {
      objects_.erase(it->first);
      it = object_leases_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  for (auto it = member_leases_.begin(); it != member_leases_.end();) {
    if (it->second > now) {
      ++it;
      continue;
    }
    const auto& [name, id_value] = it->first;
    auto git = groups_.find(name);
    if (git != groups_.end()) {
      auto& members = git->second.members;
      const auto before = members.size();
      members.erase(std::remove_if(members.begin(), members.end(),
                                   [&](const ObjectRef& m) {
                                     return m.object_id.value == id_value;
                                   }),
                    members.end());
      if (members.size() != before) {
        ++git->second.epoch;
        ++dropped;
      }
      if (members.empty()) erase_group_locked(git);
    }
    it = member_leases_.erase(it);
  }
  if (dropped != 0 && obs::enabled()) {
    static obs::Counter& expired = obs::metrics().counter("ns.expired");
    expired.add(dropped);
  }
  return dropped;
}

std::size_t InProcessRegistry::expire_leases() {
  LockGuard lock(mutex_);
  return gc_locked();
}

void InProcessRegistry::erase_group_locked(std::map<std::string, ReplicaGroup>::iterator git) {
  ULongLong& floor = epoch_floor_[git->first];
  floor = std::max(floor, git->second.epoch);
  groups_.erase(git);
}

void InProcessRegistry::join_group_locked(ReplicaGroup& group, const ObjectRef& ref) {
  auto same_id = std::find_if(group.members.begin(), group.members.end(),
                              [&](const ObjectRef& m) { return m.object_id == ref.object_id; });
  if (same_id != group.members.end()) {
    *same_id = ref;
  } else {
    // A restarted server re-registers with a fresh object id but the
    // same host: replace its dead predecessor instead of accumulating
    // ghosts.
    auto same_host = std::find_if(group.members.begin(), group.members.end(),
                                  [&](const ObjectRef& m) { return m.host == ref.host; });
    if (same_host != group.members.end() && !ref.host.empty()) {
      member_leases_.erase({group.name, same_host->object_id.value});
      *same_host = ref;
    } else {
      group.members.push_back(ref);
    }
  }
  ++group.epoch;
}

ReplicaGroup& InProcessRegistry::group_for_locked(const std::string& name) {
  auto git = groups_.find(name);
  if (git != groups_.end()) return git->second;
  ReplicaGroup g;
  g.name = name;
  // A re-created group continues the dead group's epoch sequence, so
  // clients comparing epochs never observe a regression across the
  // unregister-all / re-register window.
  if (auto fit = epoch_floor_.find(name); fit != epoch_floor_.end()) g.epoch = fit->second;
  // A single binding registered earlier under this name seeds the
  // group, so mixing register_object and register_replica on one
  // name never drops a server. Its lease (if any) follows it.
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.first == name) {
      if (auto lit = object_leases_.find(it->first); lit != object_leases_.end()) {
        member_leases_[{name, it->second.object_id.value}] = lit->second;
        object_leases_.erase(lit);
      }
      g.members.push_back(it->second);
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  return groups_.emplace(name, std::move(g)).first->second;
}

void InProcessRegistry::register_object(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("register_object: invalid reference");
  if (ref.name.empty()) throw BadParam("register_object: object has no name");
  LockGuard lock(mutex_);
  gc_locked();
  auto git = groups_.find(ref.name);
  if (git != groups_.end()) {
    // The name is a live replica group: a concurrent single-binding
    // re-registration joins it (and bumps the epoch) rather than
    // last-writer-wins dropping the earlier members.
    join_group_locked(git->second, ref);
    member_leases_.erase({ref.name, ref.object_id.value});  // permanent
    return;
  }
  objects_[{ref.name, ref.host}] = ref;
  object_leases_.erase({ref.name, ref.host});  // permanent registration
}

std::optional<ObjectRef> InProcessRegistry::lookup(const std::string& name,
                                                   const std::string& host) {
  LockGuard lock(mutex_);
  gc_locked();
  if (!host.empty()) {
    auto it = objects_.find({name, host});
    if (it != objects_.end()) return it->second;
  } else {
    for (const auto& [key, ref] : objects_)
      if (key.first == name) return ref;
  }
  // Group fallback: plain bind() against a replicated name resolves to
  // the first matching member, so non-pool clients keep working.
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    for (const auto& m : git->second.members)
      if (host.empty() || m.host == host) return m;
  }
  return std::nullopt;
}

void InProcessRegistry::unregister(const std::string& name, const std::string& host) {
  LockGuard lock(mutex_);
  gc_locked();
  if (!host.empty()) {
    objects_.erase({name, host});
    object_leases_.erase({name, host});
  } else {
    for (auto it = objects_.begin(); it != objects_.end();) {
      if (it->first.first == name) {
        object_leases_.erase(it->first);
        it = objects_.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto git = groups_.find(name);
  if (git == groups_.end()) return;
  auto& members = git->second.members;
  const auto before = members.size();
  members.erase(std::remove_if(members.begin(), members.end(),
                               [&](const ObjectRef& m) {
                                 if (!host.empty() && m.host != host) return false;
                                 member_leases_.erase({name, m.object_id.value});
                                 return true;
                               }),
                members.end());
  if (members.size() != before) ++git->second.epoch;
  if (members.empty()) erase_group_locked(git);
}

std::vector<std::string> InProcessRegistry::list() {
  LockGuard lock(mutex_);
  gc_locked();
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [key, ref] : objects_) names.push_back(key.first + "@" + key.second);
  for (const auto& [name, group] : groups_)
    for (const auto& m : group.members) names.push_back(name + "@" + m.host);
  return names;
}

ULongLong InProcessRegistry::register_replica(const ObjectRef& ref) {
  return register_leased(ref, std::chrono::milliseconds(0), true);
}

ULongLong InProcessRegistry::register_leased(const ObjectRef& ref,
                                             std::chrono::milliseconds lease, bool replica) {
  const char* what = replica ? "register_replica" : "register_object";
  if (!ref.valid()) throw BadParam(std::string(what) + ": invalid reference");
  if (ref.name.empty()) throw BadParam(std::string(what) + ": object has no name");
  LockGuard lock(mutex_);
  gc_locked();
  auto git = groups_.find(ref.name);
  if (!replica && git == groups_.end()) {
    objects_[{ref.name, ref.host}] = ref;
    if (lease.count() > 0)
      object_leases_[{ref.name, ref.host}] = now_locked() + lease.count() / 1000.0;
    else
      object_leases_.erase({ref.name, ref.host});
    return 0;
  }
  ReplicaGroup& group = git != groups_.end() ? git->second : group_for_locked(ref.name);
  join_group_locked(group, ref);
  if (lease.count() > 0)
    member_leases_[{ref.name, ref.object_id.value}] = now_locked() + lease.count() / 1000.0;
  else
    member_leases_.erase({ref.name, ref.object_id.value});
  return group.epoch;
}

bool InProcessRegistry::renew_lease(const std::string& name, const ObjectId& id,
                                    std::chrono::milliseconds lease) {
  LockGuard lock(mutex_);
  // GC first: a lease that already expired is gone — renewing it would
  // resurrect a name other clients may have watched disappear. The
  // owner gets `false` and re-registers instead.
  gc_locked();
  const double expiry = now_locked() + lease.count() / 1000.0;
  bool renewed = false;
  if (auto it = member_leases_.find({name, id.value}); it != member_leases_.end()) {
    it->second = expiry;
    renewed = true;
  } else {
    for (const auto& [key, ref] : objects_) {
      if (key.first != name || ref.object_id != id) continue;
      if (auto lit = object_leases_.find(key); lit != object_leases_.end()) {
        lit->second = expiry;
        renewed = true;
      }
      break;
    }
  }
  if (renewed && obs::enabled()) {
    static obs::Counter& renewals = obs::metrics().counter("ns.renewals");
    renewals.add(1);
  }
  return renewed;
}

std::optional<ReplicaGroup> InProcessRegistry::lookup_group(const std::string& name,
                                                            const std::string& host) {
  LockGuard lock(mutex_);
  gc_locked();
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    if (host.empty()) return git->second;
    ReplicaGroup g;
    g.name = name;
    g.epoch = git->second.epoch;
    for (const auto& m : git->second.members)
      if (m.host == host) g.members.push_back(m);
    if (g.members.empty()) return std::nullopt;
    return g;
  }
  // Synthesize a group of singles so pool clients can balance over
  // servers that registered through plain register_object.
  ReplicaGroup g;
  g.name = name;
  for (const auto& [key, ref] : objects_)
    if (key.first == name && (host.empty() || key.second == host))
      g.members.push_back(ref);
  if (g.members.empty()) return std::nullopt;
  return g;
}

void InProcessRegistry::unregister_replica(const std::string& name, const ObjectId& id) {
  LockGuard lock(mutex_);
  gc_locked();
  member_leases_.erase({name, id.value});
  auto git = groups_.find(name);
  if (git != groups_.end()) {
    auto& members = git->second.members;
    const auto before = members.size();
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const ObjectRef& m) { return m.object_id == id; }),
                  members.end());
    if (members.size() != before) ++git->second.epoch;
    if (members.empty()) erase_group_locked(git);
  }
  // A matching single binding (registered before the group formed, or
  // through the degraded default) is withdrawn too.
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.first == name && it->second.object_id == id) {
      object_leases_.erase(it->first);
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pardis::core
