// Durable-object glue between the POA and pardis_wal.
//
// The wal module is deliberately ignorant of PIOP: it frames opaque
// payloads. This header owns the payload formats —
//
//   * the *mutation record* (wal::kRecordMutation): one committed
//     non-idempotent dispatch, complete enough to (a) re-execute the
//     servant call during recovery and (b) answer a client retry with
//     the exact reply frames the original dispatch built, without
//     running the servant again;
//   * the *snapshot record* (wal::kRecordSnapshot): a servant state
//     checkpoint plus the per-binding dispatch horizon and the
//     replay-window index, so recovery restores state without
//     replaying the whole log;
//   * the kHandlerStateXfer frames (request / snapshot / append) that
//     move state between replica siblings on join and after every
//     commit.
//
// Everything here is reached only when wal::enabled(): with PARDIS_WAL
// off no record is written, no frame is sent, and the wire stays
// byte-identical to the pre-WAL build.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/servant.hpp"
#include "wal/wal.hpp"

namespace pardis::core::durable {

/// (binding id, sequence number) — the POA's dedup/replay key.
using Key = std::pair<ULongLong, ULong>;

/// How many committed entries per binding the dedup/replay table keeps
/// below the horizon (PARDIS_WAL_REPLAY_WINDOW, default 1024).
/// Entries older than the window are pruned from memory once durable —
/// a retry that far behind the horizon has long been answered.
ULong replay_window() noexcept;
/// Test hook overriding the environment.
void set_replay_window(ULong window) noexcept;

/// Log file for one replica of one durable object:
/// <wal::dir()>/<name>@<host>.r<rank>.wal — name and host sanitized. A
/// restart on the same host reopens the same file; siblings on other
/// hosts (or other ranks) never collide.
std::string wal_path(const std::string& name, const std::string& host, int rank);

/// One committed dispatch, as logged.
struct MutationRecord {
  RequestHeader header;
  std::vector<ServerInvocation::Body> bodies;
  std::vector<ServerInvocation::BuiltReply> replies;
};

ByteBuffer encode_mutation(const RequestHeader& header,
                           const std::vector<ServerInvocation::Body>& bodies,
                           const std::vector<ServerInvocation::BuiltReply>& replies);
MutationRecord decode_mutation(std::span<const Octet> payload);

/// One state checkpoint, as logged. `committed` LSNs refer to records
/// in the same log the snapshot lives in.
struct SnapshotRecord {
  ByteBuffer state;
  std::map<ULongLong, ULong> binding_next;
  std::map<Key, wal::Lsn> committed;
};

ByteBuffer encode_snapshot(const SnapshotRecord& snap);
SnapshotRecord decode_snapshot(std::span<const Octet> payload);

/// Per-rank runtime state of one durable object replica.
struct DurableObj {
  std::string name;
  ULongLong object_id = 0;  ///< this replica's object id
  bool spmd = false;
  std::unique_ptr<wal::Log> log;
  /// Dedup/replay table: committed (binding, seq) -> LSN of its
  /// mutation record. Log-backed (rebuilt by recovery) and bounded by
  /// replay_window() via prune().
  std::map<Key, wal::Lsn> committed;
  /// Per-binding dispatch horizon as durably known (mirrors the POA's
  /// next_seq_ for this object's bindings; survives restart through
  /// snapshots and record replay).
  std::map<ULongLong, ULong> binding_next;
};

/// Drops committed entries more than replay_window() behind their
/// binding's horizon. Returns how many were pruned (also counted in
/// wal.replay_pruned).
std::size_t prune(DurableObj& dur);

// --- kHandlerStateXfer frames ----------------------------------------------
//
// Leading octet: wal::kXferRequest / kXferSnapshot / kXferAppend.

/// Joiner -> sibling: "send me your state". `target_object_id` names
/// the sibling's replica (how its POA finds the DurableObj); the
/// snapshot comes back to `reply_to`.
ByteBuffer make_xfer_request(ULongLong target_object_id,
                             const transport::EndpointAddr& reply_to);

/// Sibling -> joiner: current state + the log tail backing the replay
/// window (full mutation-record payloads, oldest first; the joiner
/// re-appends them to its own log under fresh LSNs).
ByteBuffer make_xfer_snapshot(const ByteBuffer& state,
                              const std::map<ULongLong, ULong>& binding_next,
                              const std::vector<ByteBuffer>& tail_records);

struct XferSnapshot {
  ByteBuffer state;
  std::map<ULongLong, ULong> binding_next;
  std::vector<ByteBuffer> tail_records;
};
/// `r` positioned just past the leading sub-op octet.
XferSnapshot decode_xfer_snapshot(CdrReader& r);

/// Committer -> every sibling, after the local fsync: one mutation
/// record payload, applied (and re-logged) on arrival.
ByteBuffer make_xfer_append(ULongLong target_object_id,
                            std::span<const Octet> record_payload);

}  // namespace pardis::core::durable
