// Small helpers referenced by IDL-generated stub code.
#pragma once

#include <memory>

#include "core/client.hpp"
#include "dist/dsequence.hpp"

namespace pardis::core {

template <typename T>
using DSeqVarT = std::shared_ptr<dist::DSequence<T>>;

/// Creates the target container for a non-blocking out dsequence:
/// collective for SPMD clients, plain local storage for single clients.
template <typename T>
DSeqVarT<T> make_dseq(ClientCtx& ctx, std::size_t n, const DistSpec& spec) {
  if (ctx.comm() != nullptr)
    return std::make_shared<dist::DSequence<T>>(*ctx.comm(), n,
                                                spec.instantiate(n, ctx.size()));
  return std::make_shared<dist::DSequence<T>>(n);
}

/// Single-client (non-distributed) view over plain vector storage, used
/// by the generated single-mapping stubs (paper §3.1: a second stub
/// "with corresponding nondistributed arguments to support single
/// invocations").
template <typename T>
dist::DSequence<T> single_view(std::vector<T>& storage) {
  return dist::DSequence<T>::local_view(
      0, dist::Distribution::block(storage.size(), 1), std::span<T>(storage));
}

template <typename T>
dist::DSequence<T> single_view(const std::vector<T>& storage) {
  // The view is used for encode only; DSequence needs a mutable span.
  auto& mut = const_cast<std::vector<T>&>(storage);
  return single_view(mut);
}

/// Called by generated stubs when the collocation bypass is taken (the
/// servant is in-process and the call is a direct virtual dispatch).
/// Pairs with orb.invocations_transported counted in ClientRequest.
inline void note_collocated_call() {
  if (!obs::enabled()) return;
  static obs::Counter& c = obs::metrics().counter("orb.invocations_bypassed");
  c.add(1);
}

}  // namespace pardis::core
